"""Tests for the property graph store, pattern matching and mini-Cypher."""

import pytest

from repro.exceptions import CypherError, GraphError
from repro.graphdb.cypher import CypherEngine
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.match import (
    EdgePattern,
    GraphPattern,
    NodePattern,
    match_pattern,
)


def clinical_graph():
    g = PropertyGraph()
    g.add_node("n1", label="fever", entityType="Sign_symptom", doc_id="d1")
    g.add_node("n2", label="cough", entityType="Sign_symptom", doc_id="d1")
    g.add_node("n3", label="aspirin", entityType="Medication", doc_id="d1")
    g.add_node("n4", label="fever", entityType="Sign_symptom", doc_id="d2")
    g.add_edge("n1", "n2", "OVERLAP")
    g.add_edge("n1", "n3", "BEFORE")
    g.add_edge("n2", "n3", "BEFORE")
    return g


class TestPropertyGraph:
    def test_counts(self):
        g = clinical_graph()
        assert g.n_nodes == 4
        assert g.n_edges == 3

    def test_node_lookup(self):
        g = clinical_graph()
        assert g.node("n1").get("label") == "fever"
        with pytest.raises(GraphError):
            g.node("missing")

    def test_add_node_merges_properties(self):
        g = clinical_graph()
        g.add_node("n1", severity="mild")
        node = g.node("n1")
        assert node.get("label") == "fever"
        assert node.get("severity") == "mild"

    def test_edge_requires_endpoints(self):
        g = clinical_graph()
        with pytest.raises(GraphError):
            g.add_edge("n1", "nope", "BEFORE")

    def test_out_in_edges_with_label_filter(self):
        g = clinical_graph()
        assert len(g.out_edges("n1")) == 2
        assert len(g.out_edges("n1", label="BEFORE")) == 1
        assert len(g.in_edges("n3")) == 2

    def test_neighbors(self):
        g = clinical_graph()
        assert g.neighbors("n2") == {"n1", "n3"}

    def test_remove_node_drops_incident_edges(self):
        g = clinical_graph()
        g.remove_node("n3")
        assert g.n_edges == 1
        assert g.out_edges("n1", label="BEFORE") == []

    def test_remove_edge(self):
        g = clinical_graph()
        edge = g.out_edges("n1", label="OVERLAP")[0]
        g.remove_edge(edge.edge_id)
        assert g.out_edges("n1", label="OVERLAP") == []

    def test_find_nodes_scan(self):
        g = clinical_graph()
        hits = g.find_nodes(entityType="Sign_symptom")
        assert {n.node_id for n in hits} == {"n1", "n2", "n4"}

    def test_find_nodes_with_index(self):
        g = clinical_graph()
        g.create_property_index("entityType")
        hits = g.find_nodes(entityType="Medication")
        assert [n.node_id for n in hits] == ["n3"]

    def test_index_updates_with_mutations(self):
        g = clinical_graph()
        g.create_property_index("entityType")
        g.add_node("n5", entityType="Medication", label="heparin")
        assert len(g.find_nodes(entityType="Medication")) == 2
        g.remove_node("n3")
        assert len(g.find_nodes(entityType="Medication")) == 1

    def test_find_nodes_multi_criteria(self):
        g = clinical_graph()
        hits = g.find_nodes(entityType="Sign_symptom", doc_id="d2")
        assert [n.node_id for n in hits] == ["n4"]


class TestPatternMatching:
    def test_single_node_pattern(self):
        g = clinical_graph()
        pattern = GraphPattern(
            nodes=[NodePattern("a", (("entityType", "Medication"),))]
        )
        bindings = match_pattern(g, pattern)
        assert len(bindings) == 1
        assert bindings[0]["a"].node_id == "n3"

    def test_edge_pattern_directed(self):
        g = clinical_graph()
        pattern = GraphPattern(
            nodes=[
                NodePattern("s", (("entityType", "Sign_symptom"),)),
                NodePattern("m", (("entityType", "Medication"),)),
            ],
            edges=[EdgePattern("s", "m", "BEFORE")],
        )
        bindings = match_pattern(g, pattern)
        assert {b["s"].node_id for b in bindings} == {"n1", "n2"}

    def test_direction_matters(self):
        g = clinical_graph()
        pattern = GraphPattern(
            nodes=[
                NodePattern("m", (("entityType", "Medication"),)),
                NodePattern("s", (("entityType", "Sign_symptom"),)),
            ],
            edges=[EdgePattern("m", "s", "BEFORE")],
        )
        assert match_pattern(g, pattern) == []

    def test_undirected_edge(self):
        g = clinical_graph()
        pattern = GraphPattern(
            nodes=[NodePattern("a"), NodePattern("b")],
            edges=[EdgePattern("a", "b", "OVERLAP", directed=False)],
        )
        bindings = match_pattern(g, pattern)
        pairs = {
            frozenset((b["a"].node_id, b["b"].node_id)) for b in bindings
        }
        assert pairs == {frozenset({"n1", "n2"})}

    def test_injective_binding(self):
        g = clinical_graph()
        pattern = GraphPattern(
            nodes=[
                NodePattern("a", (("entityType", "Medication"),)),
                NodePattern("b", (("entityType", "Medication"),)),
            ]
        )
        assert match_pattern(g, pattern) == []

    def test_predicate_constraint(self):
        g = clinical_graph()
        pattern = GraphPattern(
            nodes=[
                NodePattern(
                    "a",
                    predicate=lambda node: "fev" in str(node.get("label")),
                )
            ]
        )
        bindings = match_pattern(g, pattern)
        assert {b["a"].node_id for b in bindings} == {"n1", "n4"}

    def test_limit(self):
        g = clinical_graph()
        pattern = GraphPattern(nodes=[NodePattern("a")])
        assert len(match_pattern(g, pattern, limit=2)) == 2

    def test_undeclared_edge_var_rejected(self):
        pattern = GraphPattern(
            nodes=[NodePattern("a")], edges=[EdgePattern("a", "zz")]
        )
        with pytest.raises(ValueError):
            match_pattern(PropertyGraph(), pattern)

    def test_triangle_pattern(self):
        g = clinical_graph()
        pattern = GraphPattern(
            nodes=[NodePattern("a"), NodePattern("b"), NodePattern("c")],
            edges=[
                EdgePattern("a", "b", "OVERLAP"),
                EdgePattern("a", "c", "BEFORE"),
                EdgePattern("b", "c", "BEFORE"),
            ],
        )
        bindings = match_pattern(g, pattern)
        assert len(bindings) == 1
        assert bindings[0]["c"].node_id == "n3"


class TestCypher:
    def _engine(self):
        engine = CypherEngine()
        engine.run(
            "CREATE (a:Concept {nodeId: 'x1', label: 'fever', "
            "entityType: 'Sign_symptom'}), (b:Concept {nodeId: 'x2', "
            "label: 'cough', entityType: 'Sign_symptom'}), "
            "(a)-[:OVERLAP]->(b)"
        )
        return engine

    def test_create_nodes_and_edges(self):
        engine = self._engine()
        assert engine.graph.n_nodes == 2
        assert engine.graph.n_edges == 1

    def test_match_returns_rows(self):
        engine = self._engine()
        rows = engine.run(
            "MATCH (a:Concept)-[r:OVERLAP]->(b:Concept) RETURN a.label, b.label"
        )
        assert rows == [{"a.label": "fever", "b.label": "cough"}]

    def test_match_with_where_contains(self):
        engine = self._engine()
        rows = engine.run(
            "MATCH (a:Concept) WHERE a.label CONTAINS 'fev' RETURN a.nodeId"
        )
        assert rows == [{"a.nodeId": "x1"}]

    def test_where_equality_and_inequality(self):
        engine = self._engine()
        rows = engine.run(
            "MATCH (a:Concept) WHERE a.label = 'cough' AND a.entityType <> 'Medication' RETURN a.label"
        )
        assert rows == [{"a.label": "cough"}]

    def test_count(self):
        engine = self._engine()
        assert engine.run("MATCH (a:Concept) RETURN count(*)") == [
            {"count": 2}
        ]

    def test_limit(self):
        engine = self._engine()
        rows = engine.run("MATCH (a:Concept) RETURN a LIMIT 1")
        assert len(rows) == 1

    def test_return_whole_node(self):
        engine = self._engine()
        rows = engine.run("MATCH (a:Concept {label: 'fever'}) RETURN a")
        assert rows[0]["a"]["entityType"] == "Sign_symptom"

    def test_numeric_and_boolean_literals(self):
        engine = CypherEngine()
        engine.run("CREATE (a:X {n: 3, f: 2.5, ok: true, missing: null})")
        rows = engine.run("MATCH (a:X) RETURN a.n, a.f, a.ok")
        assert rows == [{"a.n": 3, "a.f": 2.5, "a.ok": True}]

    def test_reversed_edge_syntax(self):
        engine = CypherEngine()
        engine.run(
            "CREATE (a:X {nodeId: 'a'}), (b:X {nodeId: 'b'}), (a)-[:R]->(b)"
        )
        rows = engine.run("MATCH (b:X)<-[:R]-(a:X) RETURN b.nodeId")
        assert rows == [{"b.nodeId": "b"}]

    def test_undirected_match(self):
        engine = self._engine()
        rows = engine.run(
            "MATCH (a:Concept {label: 'cough'})-[:OVERLAP]-(b) RETURN b.label"
        )
        assert rows == [{"b.label": "fever"}]

    def test_escaped_quotes(self):
        engine = CypherEngine()
        engine.run("CREATE (a:X {label: 'patient\\'s pain'})")
        rows = engine.run("MATCH (a:X) RETURN a.label")
        assert rows == [{"a.label": "patient's pain"}]

    def test_parse_errors(self):
        engine = CypherEngine()
        with pytest.raises(CypherError):
            engine.run("")
        with pytest.raises(CypherError):
            engine.run("DELETE (a)")
        with pytest.raises(CypherError):
            engine.run("MATCH (a RETURN a")
        with pytest.raises(CypherError):
            engine.run("MATCH (a) RETURN a trailing garbage")

    def test_create_edge_unbound_variable(self):
        engine = CypherEngine()
        with pytest.raises(CypherError):
            engine.run("CREATE (a:X)-[:R]->(a)-[:R]->(zz:..)")
