"""Tests for feature hashing and evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ml.features import FeatureHasher, hash_feature
from repro.ml.metrics import (
    PRF1,
    average_precision,
    classification_f1,
    confusion_matrix,
    ndcg_at_k,
    per_class_f1,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
    span_prf1,
)


class TestFeatureHashing:
    def test_deterministic(self):
        assert hash_feature("w=fever", 1024) == hash_feature("w=fever", 1024)

    def test_index_in_range(self):
        for feature in ("a", "b", "w=fever", "suf3=ver"):
            index, sign = hash_feature(feature, 128)
            assert 0 <= index < 128
            assert sign in (1.0, -1.0)

    def test_transform_shape(self):
        hasher = FeatureHasher(n_features=256)
        x = hasher.transform([{"a": 1.0}, {"b": 2.0, "c": 1.0}])
        assert x.shape == (2, 256)
        assert x.nnz >= 2

    def test_transform_accepts_iterables(self):
        hasher = FeatureHasher(n_features=256)
        x = hasher.transform([["a", "b"], ["c"]])
        assert x.shape == (2, 256)

    def test_unsigned_mode(self):
        hasher = FeatureHasher(n_features=64, signed=False)
        x = hasher.transform([["a", "b", "c", "d"]])
        assert (x.data > 0).all()

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            FeatureHasher(n_features=0)

    def test_indices_of(self):
        hasher = FeatureHasher(n_features=512)
        indices = hasher.indices_of(["a", "b"])
        assert indices.shape == (2,)
        assert ((0 <= indices) & (indices < 512)).all()

    @given(st.text(min_size=1, max_size=30), st.integers(2, 1 << 20))
    def test_hash_bounds_property(self, feature, n):
        index, sign = hash_feature(feature, n)
        assert 0 <= index < n


class TestClassificationMetrics:
    def test_perfect(self):
        score = classification_f1(["a", "b"], ["a", "b"])
        assert score.f1 == 1.0

    def test_all_wrong(self):
        score = classification_f1(["a", "b"], ["b", "a"])
        assert score.f1 == 0.0

    def test_micro_pools_counts(self):
        gold = ["a", "a", "a", "b"]
        pred = ["a", "a", "b", "b"]
        score = classification_f1(gold, pred, average="micro")
        assert score.precision == pytest.approx(0.75)
        assert score.recall == pytest.approx(0.75)

    def test_macro_averages_classes(self):
        gold = ["a", "a", "a", "b"]
        pred = ["a", "a", "a", "a"]
        micro = classification_f1(gold, pred, average="micro")
        macro = classification_f1(gold, pred, average="macro")
        assert macro.f1 < micro.f1  # the empty b class drags macro down

    def test_exclude_label(self):
        gold = ["NONE", "a"]
        pred = ["NONE", "a"]
        score = classification_f1(gold, pred, exclude=frozenset({"NONE"}))
        assert score.gold == 1

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            classification_f1(["a"], [])

    def test_unknown_average(self):
        with pytest.raises(ValueError):
            classification_f1(["a"], ["a"], average="harmonic")

    def test_confusion_matrix(self):
        counts = confusion_matrix(["a", "a", "b"], ["a", "b", "b"])
        assert counts[("a", "a")] == 1
        assert counts[("a", "b")] == 1
        assert counts[("b", "b")] == 1

    def test_per_class_report(self):
        report = per_class_f1(["a", "b", "b"], ["a", "b", "a"])
        assert report["a"].precision == pytest.approx(0.5)
        assert report["b"].recall == pytest.approx(0.5)

    def test_prf1_zero_division(self):
        score = PRF1.from_counts(0, 0, 0)
        assert score.f1 == 0.0

    @given(
        st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=50)
    )
    def test_micro_f1_on_identical_is_one(self, labels):
        assert classification_f1(labels, list(labels)).f1 == 1.0


class TestSpanMetrics:
    def test_exact_match_required(self):
        gold = [[(0, 5, "S")]]
        pred = [[(0, 4, "S")]]
        assert span_prf1(gold, pred).f1 == 0.0

    def test_label_must_match(self):
        gold = [[(0, 5, "S")]]
        pred = [[(0, 5, "T")]]
        assert span_prf1(gold, pred).f1 == 0.0

    def test_micro_over_documents(self):
        gold = [[(0, 5, "S")], [(1, 2, "T"), (3, 4, "T")]]
        pred = [[(0, 5, "S")], [(1, 2, "T")]]
        score = span_prf1(gold, pred)
        assert score.precision == 1.0
        assert score.recall == pytest.approx(2 / 3)

    def test_doc_count_mismatch(self):
        with pytest.raises(ValueError):
            span_prf1([[]], [[], []])


class TestRetrievalMetrics:
    def test_precision_at_k(self):
        assert precision_at_k(["a", "b", "c"], {"a", "c"}, 2) == 0.5

    def test_precision_requires_positive_k(self):
        with pytest.raises(ValueError):
            precision_at_k(["a"], {"a"}, 0)

    def test_recall_at_k(self):
        assert recall_at_k(["a", "b"], {"a", "z"}, 2) == 0.5

    def test_average_precision_perfect(self):
        assert average_precision(["a", "b"], {"a", "b"}) == 1.0

    def test_average_precision_late_hit(self):
        assert average_precision(["x", "a"], {"a"}) == 0.5

    def test_reciprocal_rank(self):
        assert reciprocal_rank(["x", "a"], {"a"}) == 0.5
        assert reciprocal_rank(["x"], {"a"}) == 0.0

    def test_ndcg_ideal_ordering(self):
        gains = {"a": 2.0, "b": 1.0}
        assert ndcg_at_k(["a", "b"], gains, 2) == pytest.approx(1.0)

    def test_ndcg_penalizes_inversion(self):
        gains = {"a": 2.0, "b": 1.0}
        assert ndcg_at_k(["b", "a"], gains, 2) < 1.0

    def test_ndcg_empty_gains(self):
        assert ndcg_at_k(["a"], {}, 5) == 0.0

    @given(
        st.lists(st.integers(0, 30), unique=True, min_size=1, max_size=20),
        st.sets(st.integers(0, 30), max_size=10),
    )
    def test_metrics_bounded(self, ranked, relevant):
        for value in (
            precision_at_k(ranked, relevant, 5),
            recall_at_k(ranked, relevant, 5),
            average_precision(ranked, relevant),
            reciprocal_rank(ranked, relevant),
            ndcg_at_k(ranked, {d: 1.0 for d in relevant}, 5),
        ):
            assert 0.0 <= value <= 1.0 + 1e-9
