"""Async front end: admission control, deadlines, retries, shedding."""

import asyncio
import threading
import time

import pytest

from repro.exceptions import (
    DeadlineExceededError,
    LoadShedError,
    ReplicaError,
    ServingError,
)
from repro.serving import ServingFrontend


def _run(coro):
    return asyncio.run(coro)


class TestRouting:
    def test_registered_route_serves(self):
        async def main():
            fe = ServingFrontend(max_concurrency=2, queue_limit=4)
            fe.register("echo", lambda x: x * 2)
            try:
                return await fe.handle("echo", 21)
            finally:
                fe.close()

        assert _run(main()) == 42

    def test_unknown_route_raises(self):
        async def main():
            fe = ServingFrontend()
            try:
                with pytest.raises(ServingError, match="unknown route"):
                    await fe.handle("nope")
            finally:
                fe.close()

        _run(main())

    def test_duplicate_route_raises(self):
        fe = ServingFrontend()
        fe.register("r", lambda: None)
        with pytest.raises(ServingError, match="already registered"):
            fe.register("r", lambda: None)
        fe.close()

    def test_queue_must_cover_concurrency(self):
        with pytest.raises(ServingError, match="queue_limit"):
            ServingFrontend(max_concurrency=4, queue_limit=2)


class TestLoadShedding:
    def test_overload_sheds_fast_instead_of_queueing(self):
        release = threading.Event()

        def slow():
            release.wait(timeout=5.0)
            return "done"

        async def main():
            fe = ServingFrontend(
                max_concurrency=1, queue_limit=2, default_deadline=5.0
            )
            fe.register("slow", slow)
            tasks = [
                asyncio.create_task(fe.handle("slow")) for _ in range(2)
            ]
            await asyncio.sleep(0.05)  # both occupy the queue
            shed_started = time.perf_counter()
            with pytest.raises(LoadShedError, match="shed at admission"):
                await fe.handle("slow")
            shed_latency = time.perf_counter() - shed_started
            release.set()
            results = await asyncio.gather(*tasks)
            fe.close()
            return shed_latency, results, fe.stats()

        shed_latency, results, stats = _run(main())
        assert results == ["done", "done"]
        # Rejection must not wait on the queue: it is the fast path.
        assert shed_latency < 0.5
        assert stats["counters"]["shed"] == 1
        assert stats["counters"]["completed"] == 2

    def test_inflight_drains_after_completion(self):
        async def main():
            fe = ServingFrontend(max_concurrency=1, queue_limit=1)
            fe.register("fast", lambda: 1)
            for _ in range(5):  # sequential requests never shed
                assert await fe.handle("fast") == 1
            stats = fe.stats()
            fe.close()
            return stats

        stats = _run(main())
        assert stats["counters"]["shed"] == 0
        assert stats["counters"]["completed"] == 5
        assert stats["inflight"] == 0


class TestDeadlines:
    def test_slow_handler_times_out(self):
        async def main():
            fe = ServingFrontend(
                max_concurrency=1, queue_limit=2, default_deadline=0.05
            )
            fe.register("slow", lambda: time.sleep(2.0))
            try:
                with pytest.raises(DeadlineExceededError, match="deadline"):
                    await fe.handle("slow")
                return fe.stats()
            finally:
                fe.close()

        stats = _run(main())
        assert stats["counters"]["timeouts"] == 1

    def test_per_call_deadline_overrides_default(self):
        async def main():
            fe = ServingFrontend(default_deadline=10.0)
            fe.register("slow", lambda: time.sleep(2.0))
            try:
                with pytest.raises(DeadlineExceededError):
                    await fe.handle("slow", deadline=0.05)
            finally:
                fe.close()

        _run(main())

    def test_deadline_covers_queueing(self):
        release = threading.Event()

        async def main():
            fe = ServingFrontend(
                max_concurrency=1, queue_limit=3, default_deadline=5.0
            )
            fe.register("slow", lambda: release.wait(timeout=5.0))
            blocker = asyncio.create_task(fe.handle("slow"))
            await asyncio.sleep(0.05)
            # This one queues behind the blocker and must give up
            # while still waiting for a worker slot.
            with pytest.raises(DeadlineExceededError, match="waiting|queued"):
                await fe.handle("slow", deadline=0.1)
            release.set()
            await blocker
            fe.close()

        _run(main())


class TestRetries:
    def test_transient_replica_error_retries_to_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise ReplicaError("primary down; promote first")
            return "served"

        async def main():
            fe = ServingFrontend(max_retries=2, backoff=0.01)
            fe.register("flaky", flaky)
            try:
                result = await fe.handle("flaky")
                return result, fe.stats()
            finally:
                fe.close()

        result, stats = _run(main())
        assert result == "served"
        assert calls["n"] == 2
        assert stats["counters"]["retries"] == 1

    def test_retries_exhaust_then_raise(self):
        def always_down():
            raise ReplicaError("no replica eligible")

        async def main():
            fe = ServingFrontend(max_retries=1, backoff=0.01)
            fe.register("down", always_down)
            try:
                with pytest.raises(ReplicaError):
                    await fe.handle("down")
                return fe.stats()
            finally:
                fe.close()

        stats = _run(main())
        assert stats["counters"]["retries"] == 1
        assert stats["counters"]["errors"] == 1

    def test_non_retryable_route_fails_immediately(self):
        calls = {"n": 0}

        def write():
            calls["n"] += 1
            raise ReplicaError("primary down")

        async def main():
            fe = ServingFrontend(max_retries=3, backoff=0.01)
            fe.register("write", write, retryable=False)
            try:
                with pytest.raises(ReplicaError):
                    await fe.handle("write")
            finally:
                fe.close()

        _run(main())
        assert calls["n"] == 1

    def test_non_transient_errors_do_not_retry(self):
        calls = {"n": 0}

        def bad():
            calls["n"] += 1
            raise ValueError("a real bug")

        async def main():
            fe = ServingFrontend(max_retries=3, backoff=0.01)
            fe.register("bad", bad)
            try:
                with pytest.raises(ValueError):
                    await fe.handle("bad")
            finally:
                fe.close()

        _run(main())
        assert calls["n"] == 1


class TestStats:
    def test_per_route_latency_percentiles(self):
        async def main():
            fe = ServingFrontend()
            fe.register("fast", lambda: 1)
            for _ in range(10):
                await fe.handle("fast")
            stats = fe.stats()
            fe.close()
            return stats

        stats = _run(main())
        route = stats["routes"]["fast"]
        assert route["count"] == 10
        assert route["p50"] <= route["p99"]
