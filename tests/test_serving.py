"""Sharded serving: routing, caching, fan-out merge, durability, wiring."""

from __future__ import annotations

import pytest

from repro.durability import DurabilityManager, MemFS
from repro.exceptions import GraphError, ReproError, SearchError
from repro.search.engine import SearchEngine, create_ir_engine
from repro.serving import (
    QueryCache,
    ShardRouter,
    ShardedIrIndexer,
    ShardedIrSearcher,
    ShardedPropertyGraph,
    ShardedSearchEngine,
)

def _engine(n_shards, **kwargs):
    from repro.search.analysis import (
        CREATE_IR_ANALYZER_CONFIG,
        STANDARD_ANALYZER_CONFIG,
    )

    return ShardedSearchEngine(
        n_shards,
        {
            "body": CREATE_IR_ANALYZER_CONFIG,
            "title": STANDARD_ANALYZER_CONFIG,
        },
        **kwargs,
    )


# -- router ------------------------------------------------------------------


def test_router_routing_is_stable_and_bumps_epochs():
    router = ShardRouter(4)
    assert router.shard_of("pmid-1") == router.shard_of("pmid-1")
    assert all(0 <= router.shard_of(f"d{i}") < 4 for i in range(50))
    shard = router.shard_of("pmid-1")
    before = router.epochs()
    router.bump_for("pmid-1")
    after = router.epochs()
    assert after[shard] == before[shard] + 1
    assert [a for i, a in enumerate(after) if i != shard] == [
        a for i, a in enumerate(before) if i != shard
    ]


def test_router_rejects_bad_shard_count():
    with pytest.raises(ReproError):
        ShardRouter(0)


def test_router_spreads_documents_across_shards():
    router = ShardRouter(4)
    owners = {router.shard_of(f"doc-{i:04d}") for i in range(200)}
    assert owners == {0, 1, 2, 3}


# -- cache -------------------------------------------------------------------


def test_cache_hit_miss_and_epoch_invalidation():
    epochs = [0, 0]
    cache = QueryCache(4, lambda: tuple(epochs))
    assert cache.get("q") is None
    cache.put("q", [1, 2])
    assert cache.get("q") == [1, 2]
    epochs[1] += 1  # any shard mutation invalidates
    assert cache.get("q") is None
    stats = cache.stats()
    assert stats["stale_drops"] == 1
    assert stats["hits"] == 1
    assert stats["misses"] == 2


def test_cache_lru_eviction_order():
    cache = QueryCache(2, lambda: (0,))
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh a; b is now LRU
    cache.put("c", 3)
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.stats()["evictions"] == 1


def test_cache_rejects_bad_capacity():
    with pytest.raises(ReproError):
        QueryCache(0, lambda: (0,))


def test_cache_put_racing_epoch_bump_is_stale_on_arrival():
    # A fan-out captures the epoch vector, computes results, and only
    # then stores them.  If a mutation lands in between, the entry must
    # be stamped with the *captured* vector so it can never be served.
    epochs = [0, 0]
    cache = QueryCache(4, lambda: tuple(epochs))
    stamp = tuple(epochs)  # captured before the (slow) fan-out
    epochs[0] += 1  # a write races the query computation
    cache.put("q", ["stale-results"], stamp=stamp)
    assert cache.get("q") is None
    assert cache.stats()["stale_drops"] == 1
    # A fresh computation under the new vector caches normally.
    cache.put("q", ["fresh-results"], stamp=tuple(epochs))
    assert cache.get("q") == ["fresh-results"]


def test_cache_put_default_stamp_is_current_vector():
    epochs = [0]
    cache = QueryCache(4, lambda: tuple(epochs))
    cache.put("q", [1])
    assert cache.get("q") == [1]


# -- sharded engine: exactness -----------------------------------------------


def test_topk_merge_tie_break_matches_unsharded_doc_id_order():
    """Equal BM25 scores across different shards must still come back
    in the unsharded engine's (-score, doc_id) order."""
    sharded = _engine(4, cache_size=4)
    reference = create_ir_engine()
    # Identical bodies -> identical scores; ids chosen to hash to
    # different shards (verified below).
    doc_ids = [f"tie-{i:02d}" for i in range(12)]
    for doc_id in doc_ids:
        fields = {"title": doc_id, "body": "fever cough fever"}
        sharded.index(doc_id, fields)
        reference.index(doc_id, fields)
    assert len({sharded.router.shard_of(d) for d in doc_ids}) > 1
    got = sharded.search("fever", size=12)
    want = reference.search("fever", size=12)
    scores = {hit.score for hit in want}
    assert len(scores) == 1  # the tie is real
    assert [hit.doc_id for hit in got] == [hit.doc_id for hit in want]
    assert [hit.doc_id for hit in got] == sorted(doc_ids)


def test_sharded_engine_matches_unsharded_on_mixed_ops():
    sharded = _engine(3, cache_size=8)
    reference = create_ir_engine()
    docs = {
        f"d{i}": f"fever cough dyspnea word{i} chest pain"[: 10 + 3 * i]
        for i in range(20)
    }
    for doc_id, body in docs.items():
        sharded.index(doc_id, {"title": doc_id, "body": body})
        reference.index(doc_id, {"title": doc_id, "body": body})
    assert sharded.delete("d3") is reference.delete("d3") is True
    assert sharded.delete("absent") is reference.delete("absent") is False
    for query in ["fever", "chest pain", {"match_phrase": {"body": "fever cough"}}]:
        got = sharded.search(query, size=10)
        want = reference.search(query, size=10)
        assert [(h.doc_id, h.score) for h in got] == [
            (h.doc_id, h.score) for h in want
        ]


def test_cache_invalidation_on_delete_then_reinsert_same_id():
    """A reinserted doc id must be served with its NEW content; the
    pre-delete cached answer may not survive either mutation."""
    sharded = _engine(2, cache_size=8)
    sharded.index("doc-a", {"title": "a", "body": "fever fever fever"})
    sharded.index("doc-b", {"title": "b", "body": "cough"})
    first = sharded.search("fever", size=5)
    assert [h.doc_id for h in first] == ["doc-a"]
    assert sharded.delete("doc-a")
    assert [h.doc_id for h in sharded.search("fever", size=5)] == []
    sharded.index("doc-a", {"title": "a", "body": "cough cough"})
    assert [h.doc_id for h in sharded.search("fever", size=5)] == []
    hits = sharded.search("cough", size=5)
    assert {h.doc_id for h in hits} == {"doc-a", "doc-b"}
    assert sharded.cache.stats()["stale_drops"] >= 1


def test_engine_highlight_routes_to_owning_shard_and_stats_shape():
    sharded = _engine(3, cache_size=4)
    sharded.index("h1", {"title": "t", "body": "acute renal failure"})
    assert sharded.highlight("h1", "body", "renal")
    assert sharded.explain_terms("body", "fever") == sharded.shard(
        1
    ).explain_terms("body", "fever")
    stats = sharded.stats()
    assert stats["n_shards"] == 3
    assert len(stats["epochs"]) == 3
    assert sum(stats["shard_documents"]) == 1
    assert stats["cache"]["capacity"] == 4


def test_engine_rejects_router_shard_mismatch():
    with pytest.raises(SearchError):
        ShardedSearchEngine(3, router=ShardRouter(2))


# -- sharded graph -----------------------------------------------------------


def test_sharded_graph_routes_by_doc_id_and_rejects_cross_shard_edges():
    graph = ShardedPropertyGraph(4)
    router = graph.router
    # Find two doc ids on different shards.
    a, b = "doc-x", next(
        f"doc-{i}"
        for i in range(50)
        if router.shard_of(f"doc-{i}") != router.shard_of("doc-x")
    )
    graph.add_node(f"{a}:T1", doc_id=a, entityType="Sign_symptom")
    graph.add_node(f"{a}:T2", doc_id=a, entityType="Medication")
    graph.add_node(f"{b}:T1", doc_id=b, entityType="Sign_symptom")
    edge = graph.add_edge(f"{a}:T1", f"{a}:T2", "BEFORE")
    assert edge.label == "BEFORE"
    with pytest.raises(GraphError):
        graph.add_edge(f"{a}:T1", f"{b}:T1", "BEFORE")
    assert graph.n_nodes == 3
    assert graph.n_edges == 1
    found = graph.find_nodes(entityType="Sign_symptom")
    assert [node.node_id for node in found] == sorted(
        [f"{a}:T1", f"{b}:T1"]
    )
    graph.remove_node(f"{a}:T1")
    assert not graph.has_node(f"{a}:T1")
    assert graph.n_edges == 0


# -- durability through the facades ------------------------------------------


def test_sharded_durability_recovery_round_trip():
    mem = MemFS()
    manager = DurabilityManager(mem)
    engine = _engine(3)
    graph = ShardedPropertyGraph(3, router=engine.router)
    manager.attach("graph", graph)
    manager.attach("index", engine)
    for i in range(8):
        doc_id = f"doc-{i}"
        engine.index(doc_id, {"title": doc_id, "body": f"fever cough w{i}"})
        graph.add_node(f"{doc_id}:T1", doc_id=doc_id, entityType="Sign_symptom")
        manager.commit()
    engine.delete("doc-3")
    manager.commit()
    manager.flush()
    manager.snapshot()
    engine.index("doc-9", {"title": "d9", "body": "dyspnea"})
    manager.commit()
    manager.flush()

    recovered_engine = _engine(3)
    recovered_graph = ShardedPropertyGraph(3, router=recovered_engine.router)
    recovery = DurabilityManager(mem)
    recovery.attach("graph", recovered_graph)
    recovery.attach("index", recovered_engine)
    report = recovery.recover()
    assert report.snapshot_loaded
    assert recovered_engine.n_documents == engine.n_documents == 8
    assert recovered_graph.n_nodes == graph.n_nodes == 8
    for query in ["fever", "dyspnea"]:
        assert [
            (h.doc_id, h.score) for h in recovered_engine.search(query)
        ] == [(h.doc_id, h.score) for h in engine.search(query)]


def test_restore_rejects_shard_count_mismatch():
    engine = _engine(2)
    engine.index("d1", {"title": "t", "body": "fever"})
    state = engine.durable_snapshot()
    with pytest.raises(SearchError):
        _engine(3).durable_restore(state)
    graph = ShardedPropertyGraph(2)
    graph.add_node("d1:T1", doc_id="d1")
    with pytest.raises(GraphError):
        ShardedPropertyGraph(3).durable_restore(graph.durable_snapshot())


# -- IR facade + pipeline/app wiring -----------------------------------------


def test_sharded_ir_matches_unsharded_searcher(small_corpus):
    from repro.ir.indexer import CreateIrIndexer
    from repro.ir.searcher import CreateIrSearcher

    reference_ix = CreateIrIndexer()
    sharded_ix = ShardedIrIndexer(4)
    for report in small_corpus[:20]:
        reference_ix.index_annotation_document(
            report.report_id, report.title, report.annotations
        )
        sharded_ix.index_annotation_document(
            report.report_id, report.title, report.annotations
        )
    assert sharded_ix.n_reports == reference_ix.n_reports
    assert sharded_ix.graph.n_nodes == reference_ix.graph.n_nodes
    reference = CreateIrSearcher(reference_ix)
    sharded = ShardedIrSearcher(sharded_ix)
    for query in ["fever and chest pain", "patient admitted with dyspnea"]:
        want = reference.search(query, size=8)
        got = sharded.search(query, size=8)
        assert [(r.doc_id, r.score, r.engine) for r in got] == [
            (r.doc_id, r.score, r.engine) for r in want
        ]
        again = sharded.search(query, size=8)  # cache hit
        assert [(r.doc_id, r.score) for r in again] == [
            (r.doc_id, r.score) for r in want
        ]
    assert sharded.cache_stats()["hits"] >= 2
    stats = sharded_ix.stats()
    assert stats["n_reports"] == 20
    assert len(stats["shards"]) == 4


def test_pipeline_serving_shards_wiring(demo_system):
    from repro.pipeline import CreatePipeline

    base_pipeline, reports = demo_system
    sharded = CreatePipeline(
        extractor=base_pipeline.extractor, serving_shards=2,
        query_cache_size=16,
    )
    unsharded = CreatePipeline(extractor=base_pipeline.extractor)
    for report in reports[:8]:
        sharded.app.register_report(report.to_document(), report.annotations)
        unsharded.app.register_report(
            report.to_document(), report.annotations
        )
    assert isinstance(sharded.indexer, ShardedIrIndexer)
    assert isinstance(sharded.searcher, ShardedIrSearcher)
    query = "fever and chest pain"
    got = sharded.app.handle("GET", "/search", params={"q": query})
    want = unsharded.app.handle("GET", "/search", params={"q": query})
    assert got.status == want.status == 200
    assert got.body["results"] == want.body["results"]

    stats = sharded.app.handle("GET", "/stats")
    assert stats.status == 200
    serving = stats.body["serving"]
    assert serving["n_shards"] == 2
    assert "cache" in serving["engine"]
    assert "ir_cache" in serving
    assert stats.body["indexer"]["n_reports"] == 8

    # Delete-then-query through the app: cache must not serve the dead doc.
    victim = got.body["results"][0]["id"] if got.body["results"] else None
    if victim is not None:
        deleted = sharded.app.handle("DELETE", f"/reports/{victim}")
        assert deleted.status == 200
        after = sharded.app.handle("GET", "/search", params={"q": query})
        assert victim not in [row["id"] for row in after.body["results"]]


# -- cache under concurrent epoch bumps & empty shards (robustness) ----------


def test_mutation_during_fanout_never_caches_stale():
    """End-to-end stamp-before-fan-out race: a write that lands while
    shards are computing must make the in-flight entry stale on
    arrival, so the next identical query recomputes and sees the
    write."""
    engine = _engine(2, cache_size=8)
    for i in range(6):
        engine.index(f"d{i}", {"body": f"fever report {i}", "title": ""})

    shard = engine.shards[0]
    original = shard.search
    fired = []

    def racing_search(query, size=10):
        if not fired:
            fired.append(True)
            # A write races the fan-out AFTER the stamp was captured.
            engine.index("d100", {"body": "late fever arrival", "title": ""})
        return original(query, size=size)

    shard.search = racing_search
    engine.search("fever", size=10)
    shard.search = original

    # The raced entry must have been dropped at put time; this search
    # is a cache miss that recomputes under the new epoch vector.
    second = [hit.doc_id for hit in engine.search("fever", size=10)]
    assert "d100" in second
    assert engine.cache.stats()["stale_drops"] >= 1


def test_concurrent_epoch_bumps_from_threads_keep_cache_coherent():
    """Hammer searches and writes from threads; every post-quiescence
    query must reflect every write (no stale entry survives)."""
    import threading

    engine = _engine(2, cache_size=16)
    for i in range(4):
        engine.index(f"d{i}", {"body": "fever cough", "title": ""})

    errors = []

    def writer():
        try:
            for i in range(20):
                engine.index(
                    f"w{i}", {"body": "fever injected", "title": ""}
                )
        except Exception as exc:  # pragma: no cover - fails the test
            errors.append(exc)

    def reader():
        try:
            for _ in range(30):
                engine.search("fever", size=50)
        except Exception as exc:  # pragma: no cover - fails the test
            errors.append(exc)

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader) for _ in range(2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []

    final = {hit.doc_id for hit in engine.search("fever", size=100)}
    assert {f"w{i}" for i in range(20)} <= final


def test_zero_document_shard_fans_out_and_scores_exactly():
    """A shard holding no documents must not perturb routing, global
    BM25 statistics, or the merged ranking."""
    engine = _engine(3, cache_size=4)
    assert engine.search("fever", size=5) == []  # all shards empty

    # Stack every document on one shard; the other two stay empty.
    target = engine.router.shard_of("d0")
    doc_ids = ["d0"]
    for i in range(1, 40):
        if engine.router.shard_of(f"d{i}") == target:
            doc_ids.append(f"d{i}")
        if len(doc_ids) == 5:
            break
    from repro.search.analysis import (
        CREATE_IR_ANALYZER_CONFIG,
        STANDARD_ANALYZER_CONFIG,
    )

    reference = SearchEngine(
        {
            "body": CREATE_IR_ANALYZER_CONFIG,
            "title": STANDARD_ANALYZER_CONFIG,
        }
    )
    for n, doc_id in enumerate(doc_ids):
        fields = {"body": f"fever chest pain {n}", "title": ""}
        engine.index(doc_id, fields)
        reference.index(doc_id, fields)
    empties = [s for i, s in enumerate(engine.shards) if i != target]
    assert all(shard.n_documents == 0 for shard in empties)

    got = engine.search("fever pain", size=10)
    want = reference.search({"match": {"body": "fever pain"}}, size=10)
    assert [(h.doc_id, h.score) for h in got] == [
        (h.doc_id, h.score) for h in want
    ]
