"""Tests for model persistence (save/load round trips)."""

import numpy as np
import pytest

from repro.corpus.datasets import make_temporal_dataset
from repro.corpus.generator import CaseReportGenerator
from repro.exceptions import ModelError
from repro.ml.embeddings import CharNgramEmbedder
from repro.ml.serialization import (
    load_crf,
    load_embedder,
    load_extractor,
    load_ner_tagger,
    load_temporal_classifier,
    save_crf,
    save_embedder,
    save_extractor,
    save_ner_tagger,
    save_temporal_classifier,
)
from repro.ner.tagger import NerTagger
from repro.pipeline import ClinicalExtractor
from repro.temporal.classifier import TemporalClassifier


@pytest.fixture(scope="module")
def train_docs():
    generator = CaseReportGenerator(seed=404)
    return [generator.generate(f"s{i}").annotations for i in range(10)]


@pytest.fixture(scope="module")
def trained_tagger(train_docs):
    return NerTagger(decoder="crf", epochs=2).fit(train_docs)


class TestCrfRoundtrip:
    def test_predictions_identical(self, trained_tagger, train_docs, tmp_path):
        save_crf(trained_tagger._model, tmp_path)
        reloaded = load_crf(tmp_path)
        feats = trained_tagger._featurize(
            trained_tagger._sentences(train_docs[0].text)[1]
        )
        assert reloaded.predict(feats) == trained_tagger._model.predict(feats)

    def test_unfitted_rejected(self, tmp_path):
        from repro.ml.crf import LinearChainCRF

        with pytest.raises(ModelError):
            save_crf(LinearChainCRF(), tmp_path)

    def test_missing_files_rejected(self, tmp_path):
        with pytest.raises(ModelError):
            load_crf(tmp_path / "empty")


class TestEmbedderRoundtrip:
    def test_vectors_and_clusters_identical(self, tmp_path):
        sentences = [["fever", "and", "cough"], ["aspirin", "for", "fever"]] * 5
        embedder = CharNgramEmbedder(dim=12, n_bits=8, seed=2).fit(sentences)
        embedder.fit_clusters(ks=(4,))
        save_embedder(embedder, tmp_path)
        reloaded = load_embedder(tmp_path)
        assert np.allclose(
            reloaded.token_vector("fever"), embedder.token_vector("fever")
        )
        assert reloaded.cluster_ids("fever") == embedder.cluster_ids("fever")
        assert reloaded.sign_features(["cough"]) == embedder.sign_features(
            ["cough"]
        )


class TestTaggerRoundtrip:
    def test_predictions_identical(self, trained_tagger, train_docs, tmp_path):
        save_ner_tagger(trained_tagger, tmp_path)
        reloaded = load_ner_tagger(tmp_path)
        text = train_docs[0].text
        assert reloaded.predict_spans(text) == trained_tagger.predict_spans(text)

    def test_with_embedder(self, train_docs, tmp_path):
        tagger = NerTagger(
            decoder="crf", use_context_embeddings=True, epochs=2
        ).fit(train_docs)
        save_ner_tagger(tagger, tmp_path)
        reloaded = load_ner_tagger(tmp_path)
        text = train_docs[1].text
        assert reloaded.predict_spans(text) == tagger.predict_spans(text)

    def test_perceptron_decoder_rejected(self, train_docs, tmp_path):
        tagger = NerTagger(decoder="perceptron", epochs=1).fit(train_docs)
        with pytest.raises(ModelError):
            save_ner_tagger(tagger, tmp_path)


class TestTemporalRoundtrip:
    def test_probabilities_identical(self, tmp_path):
        ds = make_temporal_dataset("i2b2-2012-like", n_train=8, n_test=3, seed=5)
        classifier = TemporalClassifier(epochs=4).fit(ds.train)
        save_temporal_classifier(classifier, tmp_path)
        reloaded = load_temporal_classifier(tmp_path)
        assert reloaded.labels == classifier.labels
        assert np.allclose(
            reloaded.predict_proba_doc(ds.test[0]),
            classifier.predict_proba_doc(ds.test[0]),
        )


class TestExtractorRoundtrip:
    def test_full_stack(self, tmp_path):
        generator = CaseReportGenerator(seed=505)
        reports = [generator.generate(f"e{i}") for i in range(10)]
        extractor = ClinicalExtractor.train(reports, temporal_epochs=4, ner_epochs=2)
        save_extractor(extractor, tmp_path)
        reloaded = load_extractor(tmp_path)

        new_text = generator.generate("fresh").text
        original = extractor.extract("fresh", new_text)
        recovered = reloaded.extract("fresh", new_text)
        assert {
            (tb.start, tb.end, tb.label)
            for tb in original.textbounds.values()
        } == {
            (tb.start, tb.end, tb.label)
            for tb in recovered.textbounds.values()
        }
        assert len(original.relations) == len(recovered.relations)
