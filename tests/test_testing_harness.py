"""Tests of the fuzz harness itself: determinism, shrinking, CLI."""

import json

import pytest

from repro.testing import (
    SUBSYSTEMS,
    check_case,
    generate_case,
    run,
    shrink,
)
from repro.testing.cli import main
from repro.testing.differential import case_digest
from repro.testing.rng import case_rng, derive_seed


class TestDeterminism:
    def test_same_seed_same_cases(self):
        for subsystem in SUBSYSTEMS:
            a = generate_case(subsystem, seed=7, case_index=3)
            b = generate_case(subsystem, seed=7, case_index=3)
            assert a == b

    def test_different_seeds_differ(self):
        digests = {
            case_digest(generate_case("search", seed, 0))
            for seed in range(8)
        }
        assert len(digests) > 1

    def test_run_digest_is_reproducible(self):
        first = run(seed=5, cases=5)
        second = run(seed=5, cases=5)
        assert first.digest == second.digest
        assert first.counts == second.counts

    def test_derive_seed_is_stable(self):
        assert derive_seed(1, "search", 2) == derive_seed(1, "search", 2)
        assert derive_seed(1, "search", 2) != derive_seed(1, "graph", 2)

    def test_case_rng_isolated_per_case(self):
        assert case_rng(0, "crf", 0).random() != case_rng(0, "crf", 1).random()

    def test_cases_are_json_serializable(self):
        for subsystem in SUBSYSTEMS:
            case = generate_case(subsystem, seed=0, case_index=0)
            assert json.loads(json.dumps(case)) == case


class TestBatchRun:
    def test_small_batch_runs_clean(self):
        report = run(seed=0, cases=25)
        assert report.ok, report.failures[0].message if report.failures else ""
        assert report.counts == {name: 25 for name in SUBSYSTEMS}

    def test_unknown_subsystem_rejected(self):
        with pytest.raises(ValueError):
            run(subsystems=("nope",), seed=0, cases=1)

    def test_differential_has_teeth(self, monkeypatch):
        """A sabotaged idf must be flagged by the search differential."""
        from repro.search.bm25 import BM25Scorer

        original = BM25Scorer.idf
        monkeypatch.setattr(
            BM25Scorer, "idf", lambda self, term: original(self, term) + 0.01
        )
        report = run(subsystems=("search",), seed=0, cases=50)
        assert not report.ok

    def test_invariants_have_teeth(self, monkeypatch):
        """A nondeterministic fusion must be flagged."""
        import repro.ir.ranking as ranking

        original = ranking.fuse_results

        def unsorted_fusion(graph_ranked, keyword_ranked, size):
            # Drop the deterministic tie-break: input order leaks out.
            out = []
            seen = set()
            for doc_id, score in list(graph_ranked) + list(keyword_ranked):
                if doc_id not in seen and len(out) < size:
                    seen.add(doc_id)
                    out.append((doc_id, score, "graph"))
            return out

        monkeypatch.setattr(
            "repro.testing.invariants.fuse_results", unsorted_fusion
        )
        report = run(subsystems=("invariants",), seed=0, cases=50)
        monkeypatch.setattr(
            "repro.testing.invariants.fuse_results", original
        )
        assert not report.ok

    def test_checker_crash_reports_not_raises(self):
        message = check_case("graph", {"nodes": "garbage"})
        assert message is None or "crash" in message


class TestShrink:
    def test_shrinks_list_to_minimal_failing_core(self):
        case = {"items": list(range(20)), "noise": "a b c d e"}

        def fails(candidate):
            return 13 in candidate.get("items", [])

        small = shrink(case, fails)
        assert small["items"] == [13]
        assert small["noise"] == ""

    def test_shrink_preserves_failure(self):
        case = {"values": [5, 3, 13, 8]}
        small = shrink(case, lambda c: 13 in c.get("values", []))
        assert 13 in small["values"]

    def test_budget_respected(self):
        calls = []

        def fails(candidate):
            calls.append(1)
            return True

        shrink({"items": list(range(50))}, fails, max_evaluations=10)
        assert len(calls) <= 11


class TestCli:
    def test_clean_run_exit_zero(self, capsys):
        assert main(["--cases", "5", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "agree with their oracles" in out
        assert "digest" in out

    def test_subsystem_filter(self, capsys):
        assert main(["--cases", "3", "--subsystem", "crf"]) == 0
        out = capsys.readouterr().out
        assert "crf" in out
        assert "graph" not in out

    def test_failure_writes_replayable_seed_file(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.search.bm25 import BM25Scorer

        original = BM25Scorer.idf
        monkeypatch.setattr(
            BM25Scorer, "idf", lambda self, term: original(self, term) + 0.01
        )
        out_file = tmp_path / "failure.json"
        code = main(
            [
                "--cases", "50",
                "--subsystem", "search",
                "--out", str(out_file),
            ]
        )
        assert code == 1
        saved = json.loads(out_file.read_text())
        assert saved["subsystem"] == "search"
        assert saved["message"]
        assert check_case("search", saved["shrunk_case"]) is not None
        # The same file replays to exit 1 while the bug is live ...
        assert main(["--replay", str(out_file)]) == 1
        monkeypatch.undo()
        # ... and to exit 0 once fixed.
        assert main(["--replay", str(out_file)]) == 0
