"""Tests for layout and SVG rendering."""

from xml.etree import ElementTree

import pytest

from repro.graphdb.graph import PropertyGraph
from repro.temporal.graph import TemporalGraph
from repro.viz.force_layout import ForceLayout, count_edge_crossings
from repro.viz.svg import GraphStyle, render_graph_svg
from repro.viz.timeline import render_timeline_svg, timeline_order


def star_edges(center, leaves):
    return [(center, leaf) for leaf in leaves]


class TestForceLayout:
    def test_empty(self):
        result = ForceLayout().layout([], [])
        assert result.positions == {}

    def test_single_node_centered(self):
        result = ForceLayout(width=100, height=100).layout(["a"], [])
        assert result.positions["a"] == (50.0, 50.0)

    def test_all_nodes_placed_in_canvas(self):
        nodes = [f"n{i}" for i in range(12)]
        edges = star_edges("n0", nodes[1:])
        result = ForceLayout(width=400, height=300).layout(nodes, edges)
        assert set(result.positions) == set(nodes)
        for x, y in result.positions.values():
            assert 0 <= x <= 400
            assert 0 <= y <= 300

    def test_deterministic(self):
        nodes = ["a", "b", "c"]
        edges = [("a", "b")]
        r1 = ForceLayout(seed=3).layout(nodes, edges)
        r2 = ForceLayout(seed=3).layout(nodes, edges)
        assert r1.positions == r2.positions

    def test_connected_closer_than_disconnected(self):
        import math

        nodes = ["a", "b", "c"]
        result = ForceLayout(seed=1, iterations=300).layout(
            nodes, [("a", "b")]
        )
        pos = result.positions

        def dist(u, v):
            return math.dist(pos[u], pos[v])

        assert dist("a", "b") < dist("a", "c") or dist("a", "b") < dist(
            "b", "c"
        )

    def test_nodes_repel(self):
        import math

        result = ForceLayout(seed=2).layout(["a", "b", "c", "d"], [])
        positions = list(result.positions.values())
        for i in range(len(positions)):
            for j in range(i + 1, len(positions)):
                assert math.dist(positions[i], positions[j]) > 5.0

    def test_crossings_counter(self):
        positions = {
            "a": (0.0, 0.0),
            "b": (10.0, 10.0),
            "c": (0.0, 10.0),
            "d": (10.0, 0.0),
        }
        assert count_edge_crossings(positions, [("a", "b"), ("c", "d")]) == 1
        assert count_edge_crossings(positions, [("a", "b"), ("a", "c")]) == 0


def clinical_property_graph():
    g = PropertyGraph()
    g.add_node("n1", label="fever", entityType="Sign_symptom", doc_id="d")
    g.add_node("n2", label="cough", entityType="Sign_symptom", doc_id="d")
    g.add_node("n3", label="aspirin", entityType="Medication", doc_id="d")
    g.add_edge("n1", "n2", "OVERLAP")
    g.add_edge("n1", "n3", "BEFORE", inferred=True)
    return g


class TestSvgRenderer:
    def test_valid_xml(self):
        svg = render_graph_svg(clinical_property_graph())
        root = ElementTree.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_node_and_edge_elements_present(self):
        svg = render_graph_svg(clinical_property_graph())
        assert svg.count("<circle") == 3
        assert svg.count("<line") == 2
        assert "fever" in svg
        assert "OVERLAP" in svg

    def test_inferred_edges_dashed(self):
        svg = render_graph_svg(clinical_property_graph())
        assert "stroke-dasharray" in svg

    def test_node_filter(self):
        g = clinical_property_graph()
        g.add_node("other", label="x", entityType="Sign_symptom", doc_id="e")
        svg = render_graph_svg(
            g, node_filter=lambda node: node.get("doc_id") == "d"
        )
        assert svg.count("<circle") == 3

    def test_type_colors_used(self):
        svg = render_graph_svg(clinical_property_graph())
        style = GraphStyle()
        assert style.type_colors["Sign_symptom"] in svg
        assert style.type_colors["Medication"] in svg

    def test_labels_escaped(self):
        g = PropertyGraph()
        g.add_node("n1", label="a<b>&c", entityType="Sign_symptom")
        svg = render_graph_svg(g)
        ElementTree.fromstring(svg)  # must stay parseable

    def test_long_labels_truncated(self):
        g = PropertyGraph()
        g.add_node("n1", label="x" * 100, entityType="Sign_symptom")
        svg = render_graph_svg(g)
        assert "x" * 100 not in svg


class TestTimeline:
    def _graph(self):
        graph = TemporalGraph()
        graph.add("a", "b", "OVERLAP")
        graph.add("a", "c", "BEFORE")
        graph.add("b", "c", "BEFORE")
        graph.add("c", "d", "BEFORE")
        return graph

    def test_order_groups_overlaps(self):
        columns = timeline_order(self._graph())
        assert columns == [["a", "b"], ["c"], ["d"]]

    def test_order_empty(self):
        assert timeline_order(TemporalGraph()) == []

    def test_svg_renders(self):
        svg = render_timeline_svg(
            self._graph(), labels={"a": "fever", "b": "cough"}
        )
        root = ElementTree.fromstring(svg)
        assert root.tag.endswith("svg")
        assert "fever" in svg
        assert svg.count("<rect") == 4

    def test_column_count_in_svg(self):
        svg = render_timeline_svg(self._graph())
        assert "t0" in svg
        assert "t2" in svg
