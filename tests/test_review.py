"""Tests for the evidence-grounded review service (`repro.review`)."""

import json
from xml.etree import ElementTree

import pytest

from repro.annotation.model import AnnotationDocument
from repro.api.app import CreateApplication
from repro.docstore.store import DocumentStore
from repro.durability import DurabilityManager, MemFS
from repro.exceptions import ReviewError
from repro.ir.indexer import CreateIrIndexer
from repro.ir.searcher import CreateIrSearcher
from repro.review import (
    Claim,
    Decision,
    ReviewQueue,
    claim_id_for,
    render_review_html,
)


def _doc(doc_id, text, spans, relations=(), negated=()):
    """Build an annotation document from (label, word) span specs."""
    doc = AnnotationDocument(doc_id=doc_id, text=text)
    ids = []
    for label, word in spans:
        start = text.index(word)
        tb = doc.add_textbound(label, start, start + len(word))
        ids.append(tb.ann_id)
        if word in negated:
            doc.add_attribute("Negated", tb.ann_id)
    for src, dst, label in relations:
        doc.add_relation(label, ids[src], ids[dst])
    return doc


@pytest.fixture()
def queue():
    queue = ReviewQueue()
    doc = _doc(
        "r1",
        "patient denied fever but reported chest pain after admission",
        [("Symptom", "fever"), ("Symptom", "chest pain")],
        relations=[(0, 1, "BEFORE")],
        negated=("fever",),
    )
    queue.enqueue_document("r1", doc)
    return queue


class TestClaimModel:
    def test_claim_id_format(self):
        assert claim_id_for("doc-1", "T3") == "doc-1:T3"

    def test_rejects_unknown_kind(self):
        with pytest.raises(ReviewError):
            Claim("d:T1", "d", "T1", "blob", "Symptom", "x", 0, 1)

    def test_rejects_inverted_span(self):
        with pytest.raises(ReviewError):
            Claim("d:T1", "d", "T1", "mention", "Symptom", "x", 5, 5)

    def test_json_roundtrip(self):
        claim = Claim("d:R1", "d", "R1", "relation", "BEFORE",
                      "a -BEFORE-> b", 0, 9, source="T1", target="T2")
        assert Claim.from_json(claim.to_json()) == claim

    def test_malformed_payload(self):
        with pytest.raises(ReviewError):
            Claim.from_json({"claim_id": "x"})

    def test_decision_verdict_validation(self):
        with pytest.raises(ReviewError):
            Decision("d:T1", "alice", "maybe")

    def test_decision_requires_reviewer(self):
        with pytest.raises(ReviewError):
            Decision("d:T1", "", "accept")

    def test_accept_carries_no_corrections(self):
        with pytest.raises(ReviewError):
            Decision("d:T1", "alice", "accept", label="Symptom")

    def test_edit_requires_a_correction(self):
        with pytest.raises(ReviewError):
            Decision("d:T1", "alice", "edit")

    def test_offsets_come_in_pairs(self):
        with pytest.raises(ReviewError):
            Decision("d:T1", "alice", "edit", start=3)

    def test_decision_json_roundtrip(self):
        decision = Decision("d:T1", "alice", "edit", start=3, end=9)
        assert Decision.from_json(decision.to_json()) == decision


class TestReviewQueue:
    def test_enqueue_produces_claims(self, queue):
        claims = queue.claims_of("r1")
        assert [c.claim_id for c in claims] == ["r1:T1", "r1:T2", "r1:R1"]
        mention = claims[0]
        assert mention.kind == "mention"
        assert mention.value == "fever"
        assert mention.negated
        relation = claims[2]
        assert relation.kind == "relation"
        assert relation.source == "T1" and relation.target == "T2"
        # Envelope of both endpoint spans.
        assert relation.start == claims[0].start
        assert relation.end == claims[1].end

    def test_duplicate_enroll_rejected(self, queue):
        with pytest.raises(ReviewError):
            queue.enqueue_document(
                "r1", AnnotationDocument(doc_id="r1", text="x y")
            )

    def test_decide_moves_claim_out_of_queue(self, queue):
        assert queue.is_queued("r1:T1")
        queue.decide("r1:T1", "alice", "accept")
        assert not queue.is_queued("r1:T1")
        assert [c.claim_id for c in queue.queued()] == ["r1:T2", "r1:R1"]
        assert [c.claim_id for c in queue.decided()] == ["r1:T1"]

    def test_unknown_claim(self, queue):
        with pytest.raises(ReviewError):
            queue.decide("r1:T99", "alice", "accept")

    def test_redecide_replaces_same_reviewer(self, queue):
        queue.decide("r1:T1", "alice", "accept")
        queue.decide("r1:T1", "alice", "reject")
        decisions = queue.decisions_of("r1:T1")
        assert len(decisions) == 1
        assert decisions[0].verdict == "reject"

    def test_second_reviewer_appends(self, queue):
        queue.decide("r1:T1", "alice", "accept")
        queue.decide("r1:T1", "bob", "reject")
        assert len(queue.decisions_of("r1:T1")) == 2
        assert queue.effective_decision("r1:T1").reviewer == "bob"

    def test_edit_offsets_bounded_by_text(self, queue):
        with pytest.raises(ReviewError):
            queue.decide("r1:T1", "alice", "edit", start=0, end=10_000)

    def test_relation_edit_is_label_only(self, queue):
        with pytest.raises(ReviewError):
            queue.decide("r1:R1", "alice", "edit", start=0, end=5)
        decision = queue.decide("r1:R1", "alice", "edit", label="OVERLAP")
        assert decision.label == "OVERLAP"

    def test_drop_removes_claims_and_decisions(self, queue):
        queue.decide("r1:T1", "alice", "accept")
        assert queue.drop_document("r1") == 3
        assert queue.claims_of("r1") == []
        assert queue.decisions_of("r1:T1") == []
        assert queue.drop_document("r1") == 0

    def test_stats(self, queue):
        queue.decide("r1:T1", "alice", "accept")
        queue.decide("r1:T1", "bob", "reject")
        queue.decide("r1:T2", "alice", "edit", label="Disease")
        stats = queue.stats()
        assert stats["documents"] == 1
        assert stats["claims"] == 3
        assert stats["queue_depth"] == 1
        assert stats["decided"] == 2
        assert stats["double_reviewed"] == 1
        assert stats["reviewers"] == {"alice": 2, "bob": 1}
        # Effective (latest) verdicts: T1 reject, T2 edit.
        assert stats["by_verdict"] == {"accept": 0, "edit": 1, "reject": 1}


class TestCorrections:
    def test_corrected_document_semantics(self, queue):
        queue.decide("r1:T1", "alice", "accept")
        queue.decide("r1:T2", "alice", "edit", label="Finding")
        queue.decide("r1:R1", "alice", "accept")
        doc = queue.corrected_document("r1")
        labels = {tb.ann_id: tb.label for tb in doc.spans_sorted()}
        assert labels == {"T1": "Symptom", "T2": "Finding"}
        assert doc.is_negated("T1")  # negation flag survives accept
        assert len(doc.relations) == 1

    def test_rejected_claims_drop_out(self, queue):
        queue.decide("r1:T1", "alice", "reject")
        queue.decide("r1:T2", "alice", "accept")
        queue.decide("r1:R1", "alice", "accept")
        doc = queue.corrected_document("r1")
        assert [tb.ann_id for tb in doc.spans_sorted()] == ["T2"]
        # The relation lost an endpoint, so it drops too.
        assert doc.relations == {}

    def test_queued_claims_are_not_gold(self, queue):
        queue.decide("r1:T1", "alice", "accept")
        doc = queue.corrected_document("r1")
        assert [tb.ann_id for tb in doc.spans_sorted()] == ["T1"]

    def test_unenrolled_document(self, queue):
        with pytest.raises(ReviewError):
            queue.corrected_document("zzz")

    def test_accepted_corrections_bio_output(self, queue):
        queue.decide("r1:T2", "alice", "edit", label="Finding")
        examples = queue.accepted_corrections()
        assert len(examples) == 1
        example = examples[0]
        assert example.doc_id == "r1"
        assert len(example.tokens) == len(example.labels)
        assert "B-Finding" in example.labels
        assert "I-Finding" in example.labels  # "chest pain" spans 2 tokens

    def test_only_verified_documents_export(self, queue):
        assert queue.accepted_corrections() == []
        queue.decide("r1:T1", "alice", "reject")
        assert queue.accepted_corrections() == []


class TestAgreement:
    def test_no_double_reviews(self, queue):
        queue.decide("r1:T1", "alice", "accept")
        assert queue.pair_agreement() is None

    def test_pair_agreement(self, queue):
        for claim_id in ("r1:T1", "r1:T2"):
            queue.decide(claim_id, "alice", "accept")
        queue.decide("r1:T1", "bob", "accept")
        queue.decide("r1:T2", "bob", "reject")
        pair = queue.pair_agreement()
        assert (pair.reviewer_a, pair.reviewer_b) == ("alice", "bob")
        assert pair.n_claims == 2
        assert pair.report.n_documents == 1
        # They agree on T1, disagree on T2.
        assert 0.0 < pair.report.span_f1.f1 < 1.0
        assert pair.verdict_kappa < 1.0

    def test_perfect_agreement(self, queue):
        for reviewer in ("alice", "bob"):
            for claim_id in ("r1:T1", "r1:T2", "r1:R1"):
                queue.decide(claim_id, reviewer, "accept")
        pair = queue.pair_agreement()
        assert pair.verdict_kappa == 1.0
        assert pair.report.span_f1.f1 == 1.0
        assert pair.report.relation_f1.f1 == 1.0


class TestReviewDurability:
    def _enrolled_queue_manager(self, fs):
        queue = ReviewQueue()
        manager = DurabilityManager(fs)
        manager.attach("review", queue)
        doc = _doc(
            "r1",
            "patient denied fever but reported chest pain",
            [("Symptom", "fever"), ("Symptom", "chest pain")],
            negated=("fever",),
        )
        queue.enqueue_document("r1", doc)
        manager.commit()
        return queue, manager

    def test_decision_survives_replay(self):
        fs = MemFS()
        queue, manager = self._enrolled_queue_manager(fs)
        queue.decide("r1:T1", "alice", "edit", label="Finding")
        manager.commit()
        manager.flush()

        recovered = ReviewQueue()
        recovery = DurabilityManager(fs)
        recovery.attach("review", recovered)
        recovery.recover()
        assert recovered.effective_decision("r1:T1").label == "Finding"
        assert [c.claim_id for c in recovered.queued()] == ["r1:T2"]
        assert recovered.document_text("r1") == queue.document_text("r1")

    def test_zero_claim_drop_is_journaled(self):
        # Regression: dropping a report with no claims must still write
        # a WAL op, or replay resurrects the enrollment.
        fs = MemFS()
        queue = ReviewQueue()
        manager = DurabilityManager(fs)
        manager.attach("review", queue)
        queue.enqueue_document(
            "empty", AnnotationDocument(doc_id="empty", text="nothing here")
        )
        manager.commit()
        queue.drop_document("empty")
        manager.commit()
        manager.flush()

        recovered = ReviewQueue()
        recovery = DurabilityManager(fs)
        recovery.attach("review", recovered)
        recovery.recover()
        assert recovered.documents() == []

    def test_double_applied_enqueue_raises(self):
        queue = ReviewQueue()
        op = {
            "op": "enqueue",
            "doc": "r1",
            "text": "fever",
            "claims": [],
        }
        queue.durable_apply(dict(op))
        with pytest.raises(ReviewError):
            queue.durable_apply(dict(op))

    def test_snapshot_roundtrip(self, queue):
        queue.decide("r1:T1", "alice", "accept")
        state = queue.durable_snapshot()
        # Snapshots must be JSON-serializable for the WAL.
        state = json.loads(json.dumps(state))
        restored = ReviewQueue()
        restored.durable_restore(state)
        assert restored.durable_snapshot() == queue.durable_snapshot()

    def test_unknown_journal_op(self):
        with pytest.raises(ReviewError):
            ReviewQueue().durable_apply({"op": "mystery"})


@pytest.fixture()
def review_app():
    indexer = CreateIrIndexer()
    app = CreateApplication(
        store=DocumentStore(),
        indexer=indexer,
        searcher=CreateIrSearcher(indexer),
    )
    doc = _doc(
        "r1",
        "patient denied fever but reported chest pain after admission",
        [("Symptom", "fever"), ("Symptom", "chest pain")],
        relations=[(0, 1, "BEFORE")],
        negated=("fever",),
    )
    app.register_report(
        {"_id": "r1", "title": "case one", "text": doc.text}, doc
    )
    return app


class TestReviewApi:
    def test_register_enrolls_claims(self, review_app):
        response = review_app.handle("GET", "/review/queue")
        assert response.ok
        assert response.body["total"] == 3
        assert [c["claim_id"] for c in response.body["claims"]] == [
            "r1:T1", "r1:T2", "r1:R1",
        ]

    def test_queue_pagination(self, review_app):
        response = review_app.handle(
            "GET", "/review/queue", params={"skip": 1, "limit": 1}
        )
        assert response.ok
        assert response.body["total"] == 3
        assert [c["claim_id"] for c in response.body["claims"]] == ["r1:T2"]

    def test_claim_detail(self, review_app):
        response = review_app.handle("GET", "/review/claims/r1:T1")
        assert response.ok
        assert response.body["status"] == "queued"
        assert response.body["claim"]["value"] == "fever"
        assert review_app.handle("GET", "/review/claims/zzz").status == 404

    def test_decision_flow(self, review_app):
        response = review_app.handle(
            "POST",
            "/review/claims/r1:T1/decision",
            body={"reviewer": "alice", "verdict": "accept"},
        )
        assert response.status == 201
        assert response.body["queue_depth"] == 2
        detail = review_app.handle("GET", "/review/claims/r1:T1")
        assert detail.body["status"] == "decided"
        assert detail.body["decisions"][0]["reviewer"] == "alice"

    def test_decision_validation(self, review_app):
        bad = [
            ({"reviewer": "a", "verdict": "maybe"}, 400),
            ({"reviewer": "", "verdict": "accept"}, 400),
            ({"reviewer": "a", "verdict": "edit"}, 400),
            ({"reviewer": "a", "verdict": "edit", "start": "x", "end": 3}, 400),
            ("not a dict", 400),
        ]
        for body, status in bad:
            response = review_app.handle(
                "POST", "/review/claims/r1:T2/decision", body=body
            )
            assert response.status == status, body
            assert "error" in response.body
        missing = review_app.handle(
            "POST",
            "/review/claims/zzz/decision",
            body={"reviewer": "a", "verdict": "accept"},
        )
        assert missing.status == 404

    def test_evidence_view(self, review_app):
        response = review_app.handle("GET", "/review/reports/r1")
        assert response.ok
        body = response.body.split("?>", 1)[1]
        root = ElementTree.fromstring(body)
        ns = "{http://www.w3.org/1999/xhtml}"
        mark_ids = {
            mark.get("id") for mark in root.iter(f"{ns}mark")
        }
        assert {"claim-T1", "claim-T2"} <= mark_ids
        row_ids = {tr.get("id") for tr in root.iter(f"{ns}tr")}
        assert {"decision-T1", "decision-T2", "decision-R1"} <= row_ids
        assert review_app.handle("GET", "/review/reports/zzz").status == 404

    def test_evidence_view_shows_verdicts(self, review_app):
        review_app.handle(
            "POST",
            "/review/claims/r1:T1/decision",
            body={"reviewer": "alice", "verdict": "reject"},
        )
        html = review_app.handle("GET", "/review/reports/r1").body
        assert "reject · alice" in html

    def test_agreement_endpoint(self, review_app):
        assert review_app.handle("GET", "/review/agreement").body == {
            "doubly_reviewed": 0
        }
        for reviewer in ("alice", "bob"):
            for claim in ("r1:T1", "r1:T2"):
                review_app.handle(
                    "POST",
                    f"/review/claims/{claim}/decision",
                    body={"reviewer": reviewer, "verdict": "accept"},
                )
        response = review_app.handle("GET", "/review/agreement")
        assert response.ok
        assert response.body["doubly_reviewed"] == 2
        assert response.body["verdict_kappa"] == 1.0
        assert response.body["span_f1"] == 1.0

    def test_stats_review_section(self, review_app):
        review_app.handle(
            "POST",
            "/review/claims/r1:T1/decision",
            body={"reviewer": "alice", "verdict": "accept"},
        )
        stats = review_app.handle("GET", "/stats").body["review"]
        assert stats["queue_depth"] == 2
        assert stats["reviewers"] == {"alice": 1}

    def test_put_ann_reenrolls(self, review_app):
        review_app.handle(
            "POST",
            "/review/claims/r1:T1/decision",
            body={"reviewer": "alice", "verdict": "accept"},
        )
        ann = "T1\tDisease_disorder 15 20\tfever\n"
        response = review_app.handle("PUT", "/reports/r1/ann", body=ann)
        assert response.ok
        queue = review_app.handle("GET", "/review/queue").body
        assert [c["claim_id"] for c in queue["claims"]] == ["r1:T1"]
        assert queue["claims"][0]["label"] == "Disease_disorder"
        # Old decisions do not survive re-annotation.
        assert review_app.review.decisions_of("r1:T1") == []

    def test_delete_report_drops_claims(self, review_app):
        response = review_app.handle("DELETE", "/reports/r1")
        assert response.ok
        assert review_app.handle("GET", "/review/queue").body["total"] == 0
        assert review_app.handle("GET", "/review/reports/r1").status == 404


class TestRetrainLoop:
    """The extract -> review -> retrain loop, end to end: accepted
    edits become CRF training data that changes a held-out prediction."""

    def test_accepted_corrections_change_held_out_prediction(self):
        from repro.ner.tagger import NerTagger

        base = [
            _doc("b1", "patient took zyprexa daily for fever",
                 [("Symptom", "zyprexa"), ("Symptom", "fever")]),
            _doc("b2", "zyprexa was given after chest pain",
                 [("Symptom", "zyprexa")]),
        ]
        held_out = AnnotationDocument(
            doc_id="h", text="the doctor prescribed zyprexa today"
        )
        before = (
            NerTagger(decoder="crf", epochs=3, seed=5)
            .fit(base)
            .predict_document(held_out)
        )
        # The base tagger mislabels the drug the way its training data
        # does.
        assert ("Symptom" in {label for _, _, label in before})

        queue = ReviewQueue()
        review_docs = [
            _doc("r1", "nurse administered zyprexa at night",
                 [("Symptom", "zyprexa")]),
            _doc("r2", "zyprexa dose was reduced on admission",
                 [("Symptom", "zyprexa")]),
            _doc("r3", "he continued zyprexa without incident",
                 [("Symptom", "zyprexa")]),
            _doc("r4", "clinicians started zyprexa for agitation",
                 [("Symptom", "zyprexa")]),
        ]
        for doc in review_docs:
            for claim in queue.enqueue_document(doc.doc_id, doc):
                queue.decide(
                    claim.claim_id, "alice", "edit", label="Medication"
                )
        examples = queue.accepted_corrections()
        assert len(examples) == 4
        retrained = NerTagger(decoder="crf", epochs=3, seed=5).fit(
            base + [example.document for example in examples]
        )
        after = retrained.predict_document(held_out)
        assert after != before
        assert ("Medication" in {label for _, _, label in after})


class TestReviewHtmlRendering:
    def test_quotes_in_labels_stay_parseable(self):
        queue = ReviewQueue()
        doc = AnnotationDocument(
            doc_id="q", text='the "quoted" fever persisted'
        )
        doc.add_textbound('Sym"ptom', 13, 18)
        queue.enqueue_document("q", doc)
        html = render_review_html(queue, "q")
        ElementTree.fromstring(html.split("?>", 1)[1])

    def test_unenrolled_report(self):
        with pytest.raises(ReviewError):
            render_review_html(ReviewQueue(), "zzz")


class TestReviewFuzz:
    def test_smoke_batch_passes(self):
        from repro.testing import run

        report = run(subsystems=["review"], cases=40, seed=3)
        assert report.ok, report.failures
        assert report.counts["review"] == 40

    def test_registered_in_harness(self):
        from repro.testing import CHECKERS, GENERATORS, SUBSYSTEMS

        assert "review" in SUBSYSTEMS
        assert "review" in GENERATORS and "review" in CHECKERS

    def test_cases_are_json_serializable_and_valid(self):
        from repro.testing import generate_case
        from repro.testing.review import _valid_case

        for index in range(25):
            case = generate_case("review", 11, index)
            assert case == json.loads(json.dumps(case))
            assert _valid_case(case), case

    def test_generation_is_deterministic(self):
        from repro.testing import generate_case

        assert generate_case("review", 5, 9) == generate_case("review", 5, 9)

    def test_checker_catches_lost_decision(self):
        # A checker that cannot fail checks nothing: feed it a queue
        # implementation whose recovery forgets decisions.
        from repro.testing import generate_case
        from repro.testing.review import check_review_case
        from repro.review import queue as queue_module

        original = queue_module.ReviewQueue.durable_apply

        def lossy(self, op):
            if op.get("op") == "decide":
                return  # drop every replayed decision
            original(self, op)

        queue_module.ReviewQueue.durable_apply = lossy
        try:
            messages = []
            for index in range(60):
                case = generate_case("review", 2, index)
                message = check_review_case(case)
                if message:
                    messages.append(message)
            assert messages, "lossy recovery passed 60 cases undetected"
        finally:
            queue_module.ReviewQueue.durable_apply = original
