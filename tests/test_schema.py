"""Tests for the clinical typing schema and validator."""

import pytest

from repro.annotation.model import AnnotationDocument
from repro.exceptions import SchemaError
from repro.schema import (
    DEFAULT_REGISTRY,
    EntityType,
    EventType,
    RelationType,
    SEMANTIC_RELATIONS,
    SchemaValidator,
    TEMPORAL_RELATIONS,
    is_entity_label,
    is_event_label,
    label_kind,
)


class TestLabelInventories:
    def test_event_and_entity_disjoint(self):
        events = {member.value for member in EventType}
        entities = {member.value for member in EntityType}
        assert not events & entities

    def test_temporal_semantic_partition(self):
        assert TEMPORAL_RELATIONS | SEMANTIC_RELATIONS == frozenset(RelationType)
        assert not TEMPORAL_RELATIONS & SEMANTIC_RELATIONS

    def test_label_kind(self):
        assert label_kind("Sign_symptom") == "event"
        assert label_kind("Age") == "entity"

    def test_label_kind_unknown(self):
        with pytest.raises(SchemaError):
            label_kind("Not_a_label")

    def test_predicates(self):
        assert is_event_label("Medication")
        assert not is_event_label("Dosage")
        assert is_entity_label("Dosage")


class TestSchemaRegistry:
    def test_known_span_label_ok(self):
        DEFAULT_REGISTRY.check_span_label("Disease_disorder")

    def test_unknown_span_label_raises(self):
        with pytest.raises(SchemaError):
            DEFAULT_REGISTRY.check_span_label("Frobnication")

    def test_before_between_events_ok(self):
        DEFAULT_REGISTRY.check_relation(
            "BEFORE", "Sign_symptom", "Medication"
        )

    def test_before_from_history_entity_ok(self):
        # The paper's Figure 5 orders a History entity before events.
        DEFAULT_REGISTRY.check_relation("BEFORE", "History", "Sign_symptom")

    def test_modify_entity_to_event_ok(self):
        DEFAULT_REGISTRY.check_relation("MODIFY", "Severity", "Sign_symptom")

    def test_before_entity_entity_rejected(self):
        with pytest.raises(SchemaError):
            DEFAULT_REGISTRY.check_relation("BEFORE", "Age", "Sex")

    def test_unknown_relation_rejected(self):
        with pytest.raises(SchemaError):
            DEFAULT_REGISTRY.check_relation(
                "FROB", "Sign_symptom", "Medication"
            )


def _doc_with_spans():
    text = "fever then cough"
    doc = AnnotationDocument(doc_id="d", text=text)
    t1 = doc.add_textbound("Sign_symptom", 0, 5)
    t2 = doc.add_textbound("Sign_symptom", 11, 16)
    return doc, t1, t2


class TestSchemaValidator:
    def test_valid_document_passes(self):
        doc, t1, t2 = _doc_with_spans()
        doc.add_relation("BEFORE", t1.ann_id, t2.ann_id)
        assert SchemaValidator().validate(doc) == []

    def test_unknown_span_label_reported(self):
        from repro.annotation.model import TextBound

        doc = AnnotationDocument(doc_id="d", text="xxx")
        doc.textbounds["T1"] = TextBound("T1", "BadLabel", 0, 3, "xxx")
        issues = SchemaValidator().validate(doc)
        assert any(issue.code == "unknown-span-label" for issue in issues)

    def test_bad_relation_reported(self):
        doc = AnnotationDocument(doc_id="d", text="a 45-year-old woman")
        age = doc.add_textbound("Age", 2, 13)
        sex = doc.add_textbound("Sex", 14, 19)
        doc.add_relation("BEFORE", age.ann_id, sex.ann_id)
        issues = SchemaValidator().validate(doc)
        assert any(issue.code == "bad-relation" for issue in issues)

    def test_contradictory_temporal_pair_reported(self):
        doc, t1, t2 = _doc_with_spans()
        doc.add_relation("BEFORE", t1.ann_id, t2.ann_id)
        doc.add_relation("OVERLAP", t2.ann_id, t1.ann_id)
        issues = SchemaValidator().validate(doc)
        assert any(issue.code == "temporal-conflict" for issue in issues)

    def test_consistent_flipped_pair_ok(self):
        doc, t1, t2 = _doc_with_spans()
        doc.add_relation("BEFORE", t1.ann_id, t2.ann_id)
        doc.add_relation("AFTER", t2.ann_id, t1.ann_id)
        assert SchemaValidator().validate(doc) == []

    def test_check_raises_on_first_issue(self):
        doc = AnnotationDocument(doc_id="d", text="a 45-year-old woman")
        age = doc.add_textbound("Age", 2, 13)
        sex = doc.add_textbound("Sex", 14, 19)
        doc.add_relation("BEFORE", age.ann_id, sex.ann_id)
        with pytest.raises(SchemaError):
            SchemaValidator().check(doc)

    def test_generated_reports_validate(self, cvd_reports):
        validator = SchemaValidator()
        for report in cvd_reports:
            assert validator.validate(report.annotations) == []
