"""Tests for linear-chain exact inference (Viterbi, forward-backward)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import infer


def brute_force_best(emissions, transitions, start, end):
    n_steps, n_labels = emissions.shape
    best_score = -np.inf
    best_path = None
    for path in itertools.product(range(n_labels), repeat=n_steps):
        score = infer.sequence_score(
            np.asarray(path), emissions, transitions, start, end
        )
        if score > best_score:
            best_score = score
            best_path = path
    return np.asarray(best_path), best_score


def brute_force_log_z(emissions, transitions, start, end):
    n_steps, n_labels = emissions.shape
    scores = []
    for path in itertools.product(range(n_labels), repeat=n_steps):
        scores.append(
            infer.sequence_score(
                np.asarray(path), emissions, transitions, start, end
            )
        )
    return float(np.logaddexp.reduce(scores))


def random_instance(rng, n_steps, n_labels):
    return (
        rng.normal(size=(n_steps, n_labels)),
        rng.normal(size=(n_labels, n_labels)),
        rng.normal(size=n_labels),
        rng.normal(size=n_labels),
    )


class TestViterbi:
    def test_empty_sequence(self):
        labels, score = infer.viterbi(
            np.empty((0, 3)), np.zeros((3, 3)), np.zeros(3), np.zeros(3)
        )
        assert len(labels) == 0
        assert score == 0.0

    def test_single_step_picks_argmax(self):
        emissions = np.array([[0.0, 5.0, 1.0]])
        labels, score = infer.viterbi(
            emissions, np.zeros((3, 3)), np.zeros(3), np.zeros(3)
        )
        assert labels.tolist() == [1]
        assert score == 5.0

    def test_transitions_can_override_emissions(self):
        # Emission prefers label 1 at step 2, but the transition from
        # label 0 to label 1 is catastrophic.
        emissions = np.array([[5.0, 0.0], [0.0, 1.0]])
        transitions = np.array([[0.0, -100.0], [0.0, 0.0]])
        labels, _ = infer.viterbi(
            emissions, transitions, np.zeros(2), np.zeros(2)
        )
        assert labels.tolist() == [0, 0]

    @pytest.mark.parametrize("n_steps,n_labels", [(1, 2), (3, 2), (4, 3)])
    def test_matches_brute_force(self, n_steps, n_labels):
        rng = np.random.default_rng(7 + n_steps)
        emissions, transitions, start, end = random_instance(
            rng, n_steps, n_labels
        )
        labels, score = infer.viterbi(emissions, transitions, start, end)
        bf_labels, bf_score = brute_force_best(
            emissions, transitions, start, end
        )
        assert score == pytest.approx(bf_score)
        assert labels.tolist() == bf_labels.tolist()


class TestForwardBackward:
    @pytest.mark.parametrize("n_steps,n_labels", [(1, 2), (3, 3), (5, 2)])
    def test_log_z_matches_brute_force(self, n_steps, n_labels):
        rng = np.random.default_rng(11 + n_steps)
        emissions, transitions, start, end = random_instance(
            rng, n_steps, n_labels
        )
        _alpha, log_z = infer.forward_log(emissions, transitions, start, end)
        assert log_z == pytest.approx(
            brute_force_log_z(emissions, transitions, start, end)
        )

    def test_unary_marginals_sum_to_one(self):
        rng = np.random.default_rng(3)
        emissions, transitions, start, end = random_instance(rng, 4, 3)
        unary, pairwise, _log_z = infer.marginals(
            emissions, transitions, start, end
        )
        assert np.allclose(unary.sum(axis=1), 1.0)
        assert np.allclose(pairwise.sum(axis=(1, 2)), 1.0)

    def test_pairwise_consistent_with_unary(self):
        rng = np.random.default_rng(5)
        emissions, transitions, start, end = random_instance(rng, 4, 3)
        unary, pairwise, _ = infer.marginals(
            emissions, transitions, start, end
        )
        # Marginalizing the pairwise over the second label recovers the
        # first unary, and vice versa.
        assert np.allclose(pairwise[0].sum(axis=1), unary[0], atol=1e-9)
        assert np.allclose(pairwise[0].sum(axis=0), unary[1], atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 5), st.integers(2, 3), st.integers(0, 10_000))
    def test_viterbi_score_never_exceeds_log_z(self, n_steps, n_labels, seed):
        rng = np.random.default_rng(seed)
        emissions, transitions, start, end = random_instance(
            rng, n_steps, n_labels
        )
        _labels, best = infer.viterbi(emissions, transitions, start, end)
        _alpha, log_z = infer.forward_log(emissions, transitions, start, end)
        assert best <= log_z + 1e-9
