"""Tests for the synthetic corpus layer: generator, datasets, queries."""

import numpy as np
import pytest

from repro.corpus.datasets import (
    NER_DATASET_NAMES,
    make_ner_dataset,
    make_temporal_dataset,
)
from repro.corpus.generator import CaseReportGenerator, GeneratorConfig
from repro.corpus.lexicon import LEXICON
from repro.corpus.pubmed import (
    CATEGORY_DISTRIBUTION,
    build_corpus,
    cvd_reports,
    observed_distribution,
    sample_categories,
)
from repro.corpus.queries import make_query_workload
from repro.corpus.timeline import (
    ClinicalEvent,
    Timeline,
    dense_relation,
    interval_relation,
)
from repro.schema.validation import SchemaValidator


class TestTimeline:
    def _event(self, eid, start, end):
        return ClinicalEvent(eid, eid, "Sign_symptom", start, end)

    def test_midpoint_relations(self):
        a = self._event("a", 0, 1)
        b = self._event("b", 2, 3)
        assert interval_relation(a, b) == "BEFORE"
        assert interval_relation(b, a) == "AFTER"

    def test_same_midpoint_overlap(self):
        a = self._event("a", 0, 2)
        b = self._event("b", 0.5, 1.5)
        assert interval_relation(a, b) == "OVERLAP"

    def test_dense_relations(self):
        outer = self._event("o", 0, 4)
        inner = self._event("i", 1, 3)
        assert dense_relation(outer, inner) == "INCLUDES"
        assert dense_relation(inner, outer) == "IS_INCLUDED"
        same = self._event("s", 0, 4)
        assert dense_relation(outer, same) == "SIMULTANEOUS"
        later = self._event("l", 5, 6)
        assert dense_relation(outer, later) == "BEFORE"
        partial = self._event("p", 3, 5)
        assert dense_relation(outer, partial) == "VAGUE"

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            ClinicalEvent("x", "x", "S", 2.0, 1.0)

    def test_timeline_queries(self):
        timeline = Timeline()
        timeline.add(self._event("a", 0, 1))
        timeline.add(self._event("b", 2, 3))
        assert timeline.relation("a", "b") == "BEFORE"
        assert timeline.all_pairs() == [("a", "b", "BEFORE")]
        assert timeline.adjacent_pairs() == [("a", "b", "BEFORE")]
        assert len(timeline) == 2
        with pytest.raises(KeyError):
            timeline.by_id("zz")


class TestGenerator:
    def test_deterministic(self):
        a = CaseReportGenerator(seed=5).generate("r1")
        b = CaseReportGenerator(seed=5).generate("r1")
        assert a.text == b.text
        assert a.title == b.title

    def test_annotations_verified_and_schema_valid(self):
        generator = CaseReportGenerator(seed=6)
        validator = SchemaValidator()
        for i in range(10):
            report = generator.generate(f"r{i}")
            report.annotations.verify()
            assert validator.validate(report.annotations) == []

    def test_annotated_relations_match_timeline(self):
        from repro.schema.types import RelationType, TEMPORAL_RELATIONS

        generator = CaseReportGenerator(seed=7)
        for i in range(20):
            report = generator.generate(f"r{i}")
            ids = {event.event_id for event in report.timeline.events}
            for rel in report.annotations.relations.values():
                try:
                    rel_type = RelationType(rel.label)
                except ValueError:
                    continue
                if rel_type not in TEMPORAL_RELATIONS:
                    continue
                if rel.source in ids and rel.target in ids:
                    assert (
                        report.timeline.relation(rel.source, rel.target)
                        == rel.label
                    )

    def test_sections_cover_text(self):
        report = CaseReportGenerator(seed=8).generate("r1")
        for _name, start, end in report.sections:
            assert 0 <= start < end <= len(report.text)

    def test_category_controls_disease(self):
        report = CaseReportGenerator(seed=9).generate("r1", "cancer")
        assert report.category == "cancer"
        assert report.area is None
        cvd = CaseReportGenerator(seed=9).generate("r2", "cardiovascular")
        assert cvd.area in LEXICON.diseases_by_area

    def test_to_document_shape(self):
        doc = CaseReportGenerator(seed=10).generate("r1").to_document()
        assert doc["_id"] == "r1"
        assert "text" in doc
        assert isinstance(doc["sections"], list)

    def test_generate_many_cycles_categories(self):
        reports = CaseReportGenerator(seed=11).generate_many(
            4, categories=["cancer", "neurology"]
        )
        assert [r.category for r in reports] == [
            "cancer",
            "neurology",
            "cancer",
            "neurology",
        ]

    def test_gold_globally_consistent(self):
        from repro.temporal import TemporalGraph, THREE_WAY_ALGEBRA

        generator = CaseReportGenerator(
            seed=12,
            config=GeneratorConfig(
                extra_symptom_prob=0.9,
                complication_prob=0.9,
                therapeutic_procedure_prob=0.9,
                second_course_event_prob=0.9,
            ),
        )
        for i in range(15):
            report = generator.generate(f"r{i}")
            graph = TemporalGraph(algebra=THREE_WAY_ALGEBRA)
            for a, b, label in report.timeline.all_pairs():
                graph.add(a, b, label)
            graph.close()  # raises on inconsistency


class TestLexicon:
    def test_restricted_shrinks_lists(self):
        small = LEXICON.restricted(0.5)
        assert len(small.sign_symptoms) < len(LEXICON.sign_symptoms)
        assert len(small.sign_symptoms) >= 1

    def test_restricted_bounds_checked(self):
        with pytest.raises(ValueError):
            LEXICON.restricted(0.0)
        with pytest.raises(ValueError):
            LEXICON.restricted(1.5)

    def test_category_diseases(self):
        assert LEXICON.diseases_for_category("cancer")
        pooled = LEXICON.diseases_for_category("cardiovascular")
        assert "atrial fibrillation" in pooled

    def test_all_diseases_nonempty(self):
        assert len(LEXICON.all_diseases()) > 30


class TestPubmed:
    def test_distribution_sums_to_one(self):
        assert sum(CATEGORY_DISTRIBUTION.values()) == pytest.approx(1.0)

    def test_figure1_shape(self):
        categories = sample_categories(8000, seed=1)
        dist = observed_distribution(categories)
        # CVD around 20%, cancer the largest.
        assert 0.17 <= dist["cardiovascular"] <= 0.23
        assert dist["cancer"] == max(dist.values())
        assert dist["cancer"] > dist["cardiovascular"]

    def test_sample_negative_rejected(self):
        with pytest.raises(ValueError):
            sample_categories(-1)

    def test_build_corpus(self, small_corpus):
        assert len(small_corpus) == 40
        assert len({r.report_id for r in small_corpus}) == 40

    def test_cvd_slice(self, small_corpus):
        slice_ = cvd_reports(small_corpus)
        assert all(r.category == "cardiovascular" for r in slice_)


class TestNerDatasets:
    @pytest.mark.parametrize("name", NER_DATASET_NAMES)
    def test_builds_with_splits(self, name):
        ds = make_ner_dataset(name, n_train=4, n_test=2, seed=0, n_unlabeled=3)
        assert len(ds.train) == 4
        assert len(ds.test) == 2
        assert len(ds.unlabeled) == 3
        assert ds.label_set

    def test_i2b2_projection(self):
        ds = make_ner_dataset("i2b2-like", n_train=3, n_test=1, seed=0, n_unlabeled=0)
        labels = {
            tb.label for doc in ds.train for tb in doc.textbounds.values()
        }
        assert labels <= {"PROBLEM", "TREATMENT", "TEST"}

    def test_lexical_holdout_creates_unseen_surfaces(self):
        ds = make_ner_dataset(
            "cardio-cases", n_train=30, n_test=15, seed=0, n_unlabeled=0
        )
        train_surfaces = {
            tb.text.lower()
            for doc in ds.train
            for tb in doc.textbounds.values()
        }
        test_surfaces = {
            tb.text.lower()
            for doc in ds.test
            for tb in doc.textbounds.values()
        }
        assert test_surfaces - train_surfaces

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_ner_dataset("nope")


class TestTemporalDatasets:
    def test_i2b2_like(self):
        ds = make_temporal_dataset("i2b2-2012-like", n_train=4, n_test=2, seed=0)
        assert set(ds.label_set) <= {"BEFORE", "AFTER", "OVERLAP"}
        assert all(doc.pairs for doc in ds.train)
        instance = ds.train[0].pairs[0]
        assert instance.src_id in ds.train[0].annotations.textbounds

    def test_tbdense_like(self):
        ds = make_temporal_dataset("tbdense-like", n_train=4, n_test=2, seed=0)
        assert set(ds.label_set) <= {
            "BEFORE", "AFTER", "INCLUDES", "IS_INCLUDED",
            "SIMULTANEOUS", "VAGUE",
        }

    def test_distance_bounded(self):
        ds = make_temporal_dataset("i2b2-2012-like", n_train=4, n_test=1, seed=0)
        assert all(
            pair.narrative_distance <= 3
            for doc in ds.train
            for pair in doc.pairs
        )

    def test_all_instances_flattens(self):
        ds = make_temporal_dataset("i2b2-2012-like", n_train=3, n_test=2, seed=0)
        assert len(ds.all_instances("train")) == sum(
            len(doc.pairs) for doc in ds.train
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_temporal_dataset("nope")


class TestQueryWorkload:
    def test_queries_have_judgements(self, small_corpus):
        queries = make_query_workload(small_corpus, n_queries=8, seed=3)
        assert queries
        for query in queries:
            assert query.judgements
            assert query.concepts
            assert query.text

    def test_grades_ordered(self, small_corpus):
        queries = make_query_workload(small_corpus, n_queries=8, seed=3)
        for query in queries:
            assert query.relevant_ids(2) <= query.relevant_ids(1)

    def test_judgements_reference_corpus(self, small_corpus):
        ids = {report.report_id for report in small_corpus}
        queries = make_query_workload(small_corpus, n_queries=5, seed=4)
        for query in queries:
            assert set(query.judgements) <= ids

    def test_deterministic(self, small_corpus):
        a = make_query_workload(small_corpus, n_queries=5, seed=5)
        b = make_query_workload(small_corpus, n_queries=5, seed=5)
        assert [q.text for q in a] == [q.text for q in b]
