"""Tests for the trainable models: CRF, perceptron, logistic regression."""

import numpy as np
import pytest

from repro.exceptions import ModelError, NotFittedError
from repro.ml.crf import LinearChainCRF
from repro.ml.features import FeatureHasher
from repro.ml.logistic import LogisticRegression, softmax
from repro.ml.perceptron import StructuredPerceptron

HASHER = FeatureHasher(n_features=1 << 12)


def feats(words):
    return [
        HASHER.indices_of([f"w={w}", f"suf={w[-2:]}", f"pre={w[:2]}"])
        for w in words
    ]


def toy_sequences(n_copies=15):
    xs = [
        feats(["fever", "and", "cough"]),
        feats(["no", "fever", "today"]),
        feats(["cough", "resolved", "fully"]),
    ] * n_copies
    ys = [
        ["B-S", "O", "B-S"],
        ["O", "B-S", "O"],
        ["B-S", "O", "O"],
    ] * n_copies
    return xs, ys


class TestLinearChainCRF:
    def test_learns_toy_task(self):
        xs, ys = toy_sequences()
        crf = LinearChainCRF(n_features=1 << 12, epochs=4).fit(xs, ys)
        assert crf.predict(feats(["fever", "and", "cough"])) == [
            "B-S",
            "O",
            "B-S",
        ]

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LinearChainCRF().predict([np.array([1])])

    def test_empty_sequence_predicts_empty(self):
        xs, ys = toy_sequences(3)
        crf = LinearChainCRF(n_features=1 << 12, epochs=2).fit(xs, ys)
        assert crf.predict([]) == []

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ModelError):
            LinearChainCRF().fit([[np.array([1])]], [])

    def test_no_labels_rejected(self):
        with pytest.raises(ModelError):
            LinearChainCRF().fit([], [])

    def test_log_likelihood_nonpositive(self):
        xs, ys = toy_sequences(5)
        crf = LinearChainCRF(n_features=1 << 12, epochs=2).fit(xs, ys)
        ll = crf.sequence_log_likelihood(xs[0], ys[0])
        assert ll <= 1e-9

    def test_gold_likelihood_beats_wrong(self):
        xs, ys = toy_sequences()
        crf = LinearChainCRF(n_features=1 << 12, epochs=4).fit(xs, ys)
        good = crf.sequence_log_likelihood(xs[0], ys[0])
        bad = crf.sequence_log_likelihood(xs[0], ["O", "B-S", "O"])
        assert good > bad

    def test_predict_batch(self):
        xs, ys = toy_sequences(5)
        crf = LinearChainCRF(n_features=1 << 12, epochs=2).fit(xs, ys)
        out = crf.predict_batch(xs[:3])
        assert len(out) == 3

    def test_deterministic_given_seed(self):
        xs, ys = toy_sequences(5)
        a = LinearChainCRF(n_features=1 << 12, epochs=2, seed=5).fit(xs, ys)
        b = LinearChainCRF(n_features=1 << 12, epochs=2, seed=5).fit(xs, ys)
        assert a.predict(xs[0]) == b.predict(xs[0])


class TestStructuredPerceptron:
    def test_learns_toy_task(self):
        xs, ys = toy_sequences()
        model = StructuredPerceptron(n_features=1 << 12, epochs=5).fit(xs, ys)
        assert model.predict(feats(["no", "fever", "today"])) == [
            "O",
            "B-S",
            "O",
        ]

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StructuredPerceptron().predict([np.array([0])])

    def test_empty_sequence(self):
        xs, ys = toy_sequences(3)
        model = StructuredPerceptron(n_features=1 << 12, epochs=2).fit(xs, ys)
        assert model.predict([]) == []

    def test_mismatch_rejected(self):
        with pytest.raises(ModelError):
            StructuredPerceptron().fit([], [["A"]])


class TestLogisticRegression:
    def _separable(self, n=120, d=64, seed=3):
        rng = np.random.default_rng(seed)
        from scipy import sparse

        x = sparse.csr_matrix(rng.normal(size=(n, d)))
        w = rng.normal(size=(d, 3))
        y = np.argmax(x @ w, axis=1)
        return x, np.asarray(y).ravel()

    def test_fits_separable_data(self):
        x, y = self._separable()
        model = LogisticRegression(3, x.shape[1]).fit(x, y, epochs=40)
        assert (model.predict(x) == y).mean() > 0.95

    def test_proba_rows_sum_to_one(self):
        x, y = self._separable()
        model = LogisticRegression(3, x.shape[1]).fit(x, y, epochs=5)
        probs = model.predict_proba(x)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()

    def test_rejects_single_class(self):
        with pytest.raises(ModelError):
            LogisticRegression(1, 8)

    def test_rejects_label_out_of_range(self):
        x, _y = self._separable(n=10)
        with pytest.raises(ModelError):
            LogisticRegression(2, x.shape[1]).fit(x, np.full(10, 5))

    def test_rejects_row_mismatch(self):
        x, y = self._separable(n=10)
        with pytest.raises(ModelError):
            LogisticRegression(3, x.shape[1]).fit(x, y[:5])

    def test_require_fitted(self):
        model = LogisticRegression(2, 8)
        with pytest.raises(NotFittedError):
            model.require_fitted()

    def test_ce_gradient_decreases_loss(self):
        x, y = self._separable(n=60)
        model = LogisticRegression(3, x.shape[1], learning_rate=0.1)
        loss_before, grad_w, grad_b = model.ce_gradient(x, y)
        for _ in range(20):
            _loss, grad_w, grad_b = model.ce_gradient(x, y)
            model.step(grad_w, grad_b)
        loss_after, _gw, _gb = model.ce_gradient(x, y)
        assert loss_after < loss_before

    def test_grad_from_dlogits_shape(self):
        x, y = self._separable(n=10)
        model = LogisticRegression(3, x.shape[1])
        dlogits = np.ones((10, 3))
        grad_w, grad_b = model.grad_from_dlogits(x, dlogits)
        assert grad_w.shape == model.weights.shape
        assert grad_b.shape == model.bias.shape

    def test_softmax_stability(self):
        logits = np.array([[1000.0, 1000.0], [-1000.0, 0.0]])
        probs = softmax(logits)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert not np.isnan(probs).any()
