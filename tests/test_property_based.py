"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import copy

from hypothesis import given, settings, strategies as st

from repro.docstore.query import matches
from repro.docstore.store import Collection
from repro.ir.ranking import fuse_results, label_similarity
from repro.temporal.graph import TemporalGraph
from repro.temporal.relations import THREE_WAY_ALGEBRA

# -- docstore: model-based testing against a naive reference ----------------

_FIELD = st.sampled_from(["a", "b", "c"])
_VALUE = st.one_of(st.integers(-3, 3), st.sampled_from(["x", "y"]), st.none())
_DOC = st.dictionaries(_FIELD, _VALUE, max_size=3)


@st.composite
def _simple_query(draw):
    field = draw(_FIELD)
    kind = draw(st.sampled_from(["eq", "gt", "in", "exists"]))
    if kind == "eq":
        return {field: draw(_VALUE)}
    if kind == "gt":
        return {field: {"$gt": draw(st.integers(-3, 3))}}
    if kind == "in":
        return {field: {"$in": draw(st.lists(_VALUE, max_size=3))}}
    return {field: {"$exists": draw(st.booleans())}}


class TestDocstoreModel:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_DOC, max_size=10), _simple_query())
    def test_find_agrees_with_reference_filter(self, docs, query):
        collection = Collection("prop")
        ids = [collection.insert_one(doc) for doc in docs]
        found = {doc["_id"] for doc in collection.find(query)}
        expected = {
            doc_id
            for doc_id, doc in zip(ids, docs)
            if matches({**doc, "_id": doc_id}, query)
        }
        assert found == expected

    @settings(max_examples=40, deadline=None)
    @given(st.lists(_DOC, max_size=10), _simple_query())
    def test_index_never_changes_results(self, docs, query):
        plain = Collection("plain")
        indexed = Collection("indexed")
        for doc in docs:
            shared = copy.deepcopy(doc)
            plain.insert_one(copy.deepcopy(shared))
            indexed.insert_one(copy.deepcopy(shared))
        for field in ("a", "b", "c"):
            indexed.create_index(field)
        strip = lambda rows: sorted(
            tuple(sorted((k, str(v)) for k, v in row.items() if k != "_id"))
            for row in rows
        )
        assert strip(plain.find(query)) == strip(indexed.find(query))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(_DOC, min_size=1, max_size=8))
    def test_delete_many_then_count_zero(self, docs):
        collection = Collection("del")
        collection.insert_many(docs)
        collection.delete_many({})
        assert collection.count() == 0


# -- temporal graph: closure properties -------------------------------------


@st.composite
def _consistent_order(draw):
    """Events with integer time buckets -> consistent relation set."""
    n = draw(st.integers(2, 6))
    buckets = draw(
        st.lists(st.integers(0, 3), min_size=n, max_size=n)
    )
    return [(f"e{i}", bucket) for i, bucket in enumerate(buckets)]


def _relation(bucket_a, bucket_b):
    if bucket_a < bucket_b:
        return "BEFORE"
    if bucket_a > bucket_b:
        return "AFTER"
    return "OVERLAP"


class TestTemporalGraphProperties:
    @settings(max_examples=60, deadline=None)
    @given(_consistent_order())
    def test_closure_of_consistent_input_never_contradicts(self, events):
        graph = TemporalGraph(algebra=THREE_WAY_ALGEBRA)
        for (id_a, bucket_a), (id_b, bucket_b) in zip(events, events[1:]):
            graph.add(id_a, id_b, _relation(bucket_a, bucket_b))
        graph.close()  # must not raise
        # Every derived relation agrees with the bucket order.
        by_id = dict(events)
        for id_a, id_b, label in graph.edges():
            assert label == _relation(by_id[id_a], by_id[id_b])

    @settings(max_examples=40, deadline=None)
    @given(_consistent_order())
    def test_closure_idempotent(self, events):
        graph = TemporalGraph(algebra=THREE_WAY_ALGEBRA)
        for (id_a, bucket_a), (id_b, bucket_b) in zip(events, events[1:]):
            graph.add(id_a, id_b, _relation(bucket_a, bucket_b))
        graph.close()
        assert graph.close() == 0  # fixpoint: second pass infers nothing


# -- ranking ----------------------------------------------------------------

_ID = st.text(alphabet="abcdef", min_size=1, max_size=3)
_RANKED = st.lists(
    st.tuples(_ID, st.floats(0, 10, allow_nan=False)), max_size=8
)


class TestRankingProperties:
    @settings(max_examples=60, deadline=None)
    @given(_RANKED, _RANKED, st.integers(1, 10))
    def test_fusion_invariants(self, graph_ranked, keyword_ranked, size):
        fused = fuse_results(graph_ranked, keyword_ranked, size)
        ids = [item[0] for item in fused]
        assert len(ids) == len(set(ids))  # no duplicates
        assert len(fused) <= size
        engines = [item[2] for item in fused]
        if "graph" in engines and "keyword" in engines:
            # All graph results precede all keyword results.
            assert engines.index("keyword") > max(
                i for i, e in enumerate(engines) if e == "graph"
            )

    @settings(max_examples=60, deadline=None)
    @given(
        st.text(alphabet="abcdef ", max_size=20),
        st.text(alphabet="abcdef ", max_size=20),
    )
    def test_label_similarity_bounded_and_symmetric(self, a, b):
        score = label_similarity(a, b)
        assert 0.0 <= score <= 1.0
        assert score == label_similarity(b, a)
