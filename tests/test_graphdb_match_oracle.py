"""`match_pattern`/`iter_edge_bindings`/`EdgePattern.admits` against the
brute-force oracle on multi-edge and self-loop graphs (ISSUE 2 satellite)."""

import pytest

from repro.graphdb.graph import Edge, PropertyGraph
from repro.graphdb.match import (
    EdgePattern,
    GraphPattern,
    NodePattern,
    iter_edge_bindings,
    match_pattern,
)
from repro.testing.oracles import brute_force_bindings


def _binding_ids(bindings):
    return {
        frozenset((var, node.node_id) for var, node in binding.items())
        for binding in bindings
    }


def _oracle_ids(graph, pattern):
    return {
        frozenset(binding.items())
        for binding in brute_force_bindings(graph, pattern)
    }


@pytest.fixture
def multigraph():
    g = PropertyGraph()
    g.add_node("n1", entityType="A")
    g.add_node("n2", entityType="A")
    g.add_node("n3", entityType="B")
    g.add_edge("n1", "n2", "R")
    g.add_edge("n1", "n2", "S")  # parallel edge, different label
    g.add_edge("n2", "n1", "R")  # reverse direction
    g.add_edge("n1", "n1", "LOOP")
    g.add_edge("n3", "n3", "LOOP")
    g.add_edge("n3", "n3", "LOOP")  # parallel self-loop
    return g


class TestEdgePatternAdmits:
    def test_wildcard_label(self):
        assert EdgePattern("a", "b").admits(Edge(0, "x", "y", "R"))

    def test_label_match_and_mismatch(self):
        pattern = EdgePattern("a", "b", label="R")
        assert pattern.admits(Edge(0, "x", "y", "R"))
        assert not pattern.admits(Edge(0, "x", "y", "S"))

    def test_self_loop_edge_admitted_by_label(self):
        pattern = EdgePattern("a", "a", label="LOOP")
        assert pattern.admits(Edge(0, "x", "x", "LOOP"))
        assert not pattern.admits(Edge(0, "x", "x", "R"))


class TestMatchAgainstOracle:
    def test_self_loop_pattern_only_binds_looped_nodes(self, multigraph):
        pattern = GraphPattern(
            [NodePattern("a")], [EdgePattern("a", "a", label="LOOP")]
        )
        got = _binding_ids(match_pattern(multigraph, pattern))
        assert got == _oracle_ids(multigraph, pattern)
        assert got == {
            frozenset({("a", "n1")}),
            frozenset({("a", "n3")}),
        }

    def test_self_loop_any_label(self, multigraph):
        pattern = GraphPattern(
            [NodePattern("a")], [EdgePattern("a", "a")]
        )
        got = _binding_ids(match_pattern(multigraph, pattern))
        assert got == _oracle_ids(multigraph, pattern)

    def test_self_loop_combined_with_binary_edge(self, multigraph):
        pattern = GraphPattern(
            [NodePattern("a"), NodePattern("b")],
            [
                EdgePattern("a", "a", label="LOOP"),
                EdgePattern("a", "b", label="R"),
            ],
        )
        got = _binding_ids(match_pattern(multigraph, pattern))
        assert got == _oracle_ids(multigraph, pattern)
        assert got == {frozenset({("a", "n1"), ("b", "n2")})}

    def test_parallel_edges_count_once(self, multigraph):
        pattern = GraphPattern(
            [NodePattern("a"), NodePattern("b")],
            [EdgePattern("a", "b")],
        )
        got = match_pattern(multigraph, pattern)
        assert len(got) == len(_binding_ids(got))  # no duplicate bindings
        assert _binding_ids(got) == _oracle_ids(multigraph, pattern)

    def test_undirected_self_loop(self, multigraph):
        pattern = GraphPattern(
            [NodePattern("a")],
            [EdgePattern("a", "a", label="LOOP", directed=False)],
        )
        got = _binding_ids(match_pattern(multigraph, pattern))
        assert got == _oracle_ids(multigraph, pattern)

    def test_property_constrained_with_self_loop(self, multigraph):
        pattern = GraphPattern(
            [NodePattern("a", properties=(("entityType", "B"),))],
            [EdgePattern("a", "a", label="LOOP")],
        )
        got = _binding_ids(match_pattern(multigraph, pattern))
        assert got == {frozenset({("a", "n3")})}
        assert got == _oracle_ids(multigraph, pattern)


class TestIterEdgeBindings:
    def test_realizes_every_pattern_edge(self, multigraph):
        pattern = GraphPattern(
            [NodePattern("a"), NodePattern("b")],
            [
                EdgePattern("a", "a", label="LOOP"),
                EdgePattern("a", "b", label="S"),
            ],
        )
        (binding,) = match_pattern(multigraph, pattern)
        realized = list(iter_edge_bindings(multigraph, binding, pattern))
        assert len(realized) == 2
        for edge_pattern, edge in realized:
            assert edge_pattern.admits(edge)
        loop_edge = realized[0][1]
        assert loop_edge.source == loop_edge.target == "n1"

    def test_undirected_edge_realized_in_reverse(self, multigraph):
        pattern = GraphPattern(
            [NodePattern("a"), NodePattern("b")],
            [EdgePattern("a", "b", label="S", directed=False)],
        )
        for binding in match_pattern(multigraph, pattern):
            realized = list(
                iter_edge_bindings(multigraph, binding, pattern)
            )
            assert len(realized) == 1
            edge = realized[0][1]
            assert {edge.source, edge.target} == {
                binding["a"].node_id,
                binding["b"].node_id,
            }
