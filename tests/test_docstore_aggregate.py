"""Tests for the aggregation pipeline."""

import pytest

from repro.docstore.aggregate import run_pipeline
from repro.docstore.store import Collection
from repro.exceptions import QueryError

DOCS = [
    {"_id": "a", "category": "cvd", "year": 2018, "cites": 4, "tags": ["x", "y"]},
    {"_id": "b", "category": "cvd", "year": 2019, "cites": 2, "tags": ["x"]},
    {"_id": "c", "category": "cancer", "year": 2018, "cites": 10, "tags": []},
    {"_id": "d", "category": "cancer", "year": 2020, "cites": 6, "tags": ["z"]},
    {"_id": "e", "category": "neuro", "year": 2020, "cites": 1, "tags": ["x"]},
]


def coll():
    collection = Collection("agg")
    collection.insert_many(DOCS)
    return collection


class TestStages:
    def test_match_group_count(self):
        rows = coll().aggregate(
            [
                {"$match": {"year": {"$gte": 2019}}},
                {"$group": {"_id": "$category", "n": {"$count": 1}}},
            ]
        )
        assert {row["_id"]: row["n"] for row in rows} == {
            "cvd": 1,
            "cancer": 1,
            "neuro": 1,
        }

    def test_group_sum_avg(self):
        rows = coll().aggregate(
            [
                {
                    "$group": {
                        "_id": "$category",
                        "total": {"$sum": "$cites"},
                        "mean": {"$avg": "$cites"},
                    }
                }
            ]
        )
        by_cat = {row["_id"]: row for row in rows}
        assert by_cat["cvd"]["total"] == 6
        assert by_cat["cvd"]["mean"] == pytest.approx(3.0)
        assert by_cat["cancer"]["total"] == 16

    def test_group_min_max_push(self):
        rows = coll().aggregate(
            [
                {
                    "$group": {
                        "_id": "$category",
                        "first": {"$min": "$year"},
                        "last": {"$max": "$year"},
                        "ids": {"$push": "$_id"},
                    }
                }
            ]
        )
        by_cat = {row["_id"]: row for row in rows}
        assert by_cat["cancer"]["first"] == 2018
        assert by_cat["cancer"]["last"] == 2020
        assert by_cat["cvd"]["ids"] == ["a", "b"]

    def test_group_literal_sum_counts(self):
        rows = coll().aggregate(
            [{"$group": {"_id": "$year", "n": {"$sum": 1}}}]
        )
        assert {row["_id"]: row["n"] for row in rows} == {
            2018: 2,
            2019: 1,
            2020: 2,
        }

    def test_sort_limit_skip(self):
        rows = coll().aggregate(
            [{"$sort": {"cites": -1}}, {"$skip": 1}, {"$limit": 2}]
        )
        assert [row["_id"] for row in rows] == ["d", "a"]

    def test_project_includes_and_expressions(self):
        rows = coll().aggregate(
            [
                {"$match": {"_id": "a"}},
                {
                    "$project": {
                        "category": 1,
                        "label": {"$concat": ["$category", "-", "$_id"]},
                    }
                },
            ]
        )
        assert rows == [
            {"_id": "a", "category": "cvd", "label": "cvd-a"}
        ]

    def test_unwind(self):
        rows = coll().aggregate(
            [
                {"$unwind": "$tags"},
                {"$group": {"_id": "$tags", "n": {"$count": 1}}},
                {"$sort": {"n": -1}},
            ]
        )
        assert rows[0] == {"_id": "x", "n": 3}

    def test_compound_group_id(self):
        rows = coll().aggregate(
            [
                {
                    "$group": {
                        "_id": {"cat": "$category", "year": "$year"},
                        "n": {"$count": 1},
                    }
                }
            ]
        )
        assert {"cat": "cvd", "year": 2018} in [row["_id"] for row in rows]

    def test_pipeline_does_not_mutate_source(self):
        collection = coll()
        collection.aggregate([{"$project": {"category": 1}}])
        assert collection.get("a")["cites"] == 4


class TestErrors:
    def test_unknown_stage(self):
        with pytest.raises(QueryError):
            run_pipeline(DOCS, [{"$frobnicate": {}}])

    def test_group_without_id(self):
        with pytest.raises(QueryError):
            run_pipeline(DOCS, [{"$group": {"n": {"$count": 1}}}])

    def test_unknown_accumulator(self):
        with pytest.raises(QueryError):
            run_pipeline(
                DOCS, [{"$group": {"_id": "$category", "n": {"$median": "$cites"}}}]
            )

    def test_bad_unwind_path(self):
        with pytest.raises(QueryError):
            run_pipeline(DOCS, [{"$unwind": "tags"}])

    def test_multi_key_stage_rejected(self):
        with pytest.raises(QueryError):
            run_pipeline(DOCS, [{"$match": {}, "$limit": 1}])
