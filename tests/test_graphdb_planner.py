"""Planner regression tests: edge cases, EXPLAIN, statistics freshness.

Guards the cost-based join-order planner against the failure modes a
differential fuzzer finds last: zero-cardinality inputs, disconnected
pattern components, repeated/parallel pattern edges, self-loops (the
PR 2 injectivity fix), and — most subtly — cardinality statistics
drifting out of sync with the graph across deletes, re-adds, WAL
replay, and snapshot restore.
"""

from random import Random

from repro.durability import DurabilityManager, MemFS
from repro.graphdb import (
    CypherEngine,
    EdgePattern,
    GraphPattern,
    NodePattern,
    PropertyGraph,
    explain_pattern,
    match_pattern,
    match_pattern_unplanned,
    plan_pattern,
)
from repro.serving.graph import ShardedPropertyGraph
from repro.testing.oracles import brute_force_bindings


def _ids(bindings) -> set:
    return {
        frozenset((var, node.node_id) for var, node in binding.items())
        for binding in bindings
    }


def _oracle(graph, pattern) -> set:
    return {
        frozenset(binding.items())
        for binding in brute_force_bindings(graph, pattern)
    }


def _assert_agrees(graph, pattern) -> set:
    """Planned == unplanned == exhaustive; returns the binding set."""
    expected = _oracle(graph, pattern)
    assert _ids(match_pattern(graph, pattern)) == expected
    assert _ids(match_pattern_unplanned(graph, pattern)) == expected
    return expected


def _dense_graph() -> PropertyGraph:
    graph = PropertyGraph()
    for i in range(8):
        graph.add_node(
            f"n{i}",
            entityType="Sign_symptom" if i % 3 else "Medication",
        )
    graph.create_property_index("entityType")
    rng = Random(7)
    for _ in range(20):
        src = f"n{rng.randrange(8)}"
        dst = f"n{rng.randrange(8)}"
        graph.add_edge(src, dst, rng.choice(["BEFORE", "CAUSES"]))
    return graph


class TestPlannerEdgeCases:
    def test_zero_instance_edge_label(self):
        graph = _dense_graph()
        pattern = GraphPattern(
            nodes=[NodePattern("a"), NodePattern("b")],
            edges=[EdgePattern("a", "b", "NO_SUCH_LABEL")],
        )
        assert _assert_agrees(graph, pattern) == set()
        # The estimate is literally zero: the label histogram has no
        # entry, so fanout — and the expand estimate — collapse to 0.
        plan = plan_pattern(graph, pattern)
        expand = [s for s in plan.steps if s.op == "expand"]
        assert len(expand) == 1
        assert expand[0].estimated == 0.0

    def test_zero_instance_property_value(self):
        graph = _dense_graph()
        pattern = GraphPattern(
            nodes=[
                NodePattern("a", (("entityType", "Lab_value"),)),
                NodePattern("b"),
            ],
            edges=[EdgePattern("a", "b", "BEFORE")],
        )
        assert _assert_agrees(graph, pattern) == set()
        plan = plan_pattern(graph, pattern)
        # Zero-bucket scan is chosen first (most selective possible).
        assert plan.steps[0].op == "scan"
        assert plan.steps[0].var == "a"
        assert plan.steps[0].estimated == 0.0

    def test_disconnected_pattern_components(self):
        graph = _dense_graph()
        pattern = GraphPattern(
            nodes=[NodePattern("a"), NodePattern("b"), NodePattern("c")],
            edges=[EdgePattern("a", "b", "BEFORE")],
        )
        expected = _assert_agrees(graph, pattern)
        assert expected  # cartesian with the free variable is non-empty
        plan = plan_pattern(graph, pattern)
        # The isolated component starts its own scan: 2 scans, 1 expand.
        ops = sorted(step.op for step in plan.steps)
        assert ops == ["expand", "scan", "scan"]

    def test_repeated_edge_types_between_same_vars(self):
        graph = PropertyGraph()
        for i in range(4):
            graph.add_node(f"n{i}")
        graph.add_edge("n0", "n1", "R")
        graph.add_edge("n0", "n1", "R")  # parallel duplicate
        graph.add_edge("n0", "n1", "S")
        graph.add_edge("n2", "n3", "R")
        pattern = GraphPattern(
            nodes=[NodePattern("a"), NodePattern("b")],
            edges=[
                EdgePattern("a", "b", "R"),
                EdgePattern("a", "b", "R"),  # repeated pattern edge
                EdgePattern("a", "b", "S"),
            ],
        )
        expected = _assert_agrees(graph, pattern)
        assert expected == {frozenset({("a", "n0"), ("b", "n1")})}

    def test_self_loop_pattern_never_expands(self):
        graph = PropertyGraph()
        for i in range(3):
            graph.add_node(f"n{i}")
        graph.add_edge("n0", "n0", "LOOP")
        graph.add_edge("n1", "n2", "LOOP")
        pattern = GraphPattern(
            nodes=[NodePattern("a")],
            edges=[EdgePattern("a", "a", "LOOP")],
        )
        expected = _assert_agrees(graph, pattern)
        assert expected == {frozenset({("a", "n0")})}
        plan = plan_pattern(graph, pattern)
        assert [step.op for step in plan.steps] == ["scan"]

    def test_self_loop_combined_with_expansion(self):
        graph = PropertyGraph()
        for i in range(4):
            graph.add_node(f"n{i}")
        graph.add_edge("n0", "n0", "LOOP")
        graph.add_edge("n0", "n1", "R")
        graph.add_edge("n2", "n3", "R")  # n2 has no self-loop
        pattern = GraphPattern(
            nodes=[NodePattern("a"), NodePattern("b")],
            edges=[
                EdgePattern("a", "a", "LOOP"),
                EdgePattern("a", "b", "R"),
            ],
        )
        expected = _assert_agrees(graph, pattern)
        assert expected == {frozenset({("a", "n0"), ("b", "n1")})}

    def test_empty_graph_and_empty_pattern(self):
        graph = PropertyGraph()
        pattern = GraphPattern(
            nodes=[NodePattern("a")],
            edges=[],
        )
        assert match_pattern(graph, pattern) == []
        assert match_pattern(graph, GraphPattern()) == []

    def test_undirected_edge_agrees(self):
        graph = _dense_graph()
        pattern = GraphPattern(
            nodes=[NodePattern("a"), NodePattern("b"), NodePattern("c")],
            edges=[
                EdgePattern("a", "b", "BEFORE", directed=False),
                EdgePattern("b", "c", None, directed=False),
            ],
        )
        _assert_agrees(graph, pattern)


class TestExplain:
    def _engine(self) -> CypherEngine:
        engine = CypherEngine()
        engine.run(
            "CREATE (a:Event {label: 'fever'})-[:BEFORE]->"
            "(b:Event {label: 'cough'})"
        )
        engine.run(
            "CREATE (c:Event {label: 'rash'})-[:BEFORE]->"
            "(d:Event {label: 'fever'})"
        )
        return engine

    def test_cypher_explain_returns_plan_rows(self):
        engine = self._engine()
        rows = engine.run("EXPLAIN MATCH (a)-[:BEFORE]->(b) RETURN a")
        assert [row["op"] for row in rows[:-1]] != []
        assert rows[-1]["op"] == "result"
        assert rows[-1]["actual"] == 2
        for row in rows:
            assert set(row) >= {"step", "op", "var", "estimated", "actual"}

    def test_cypher_explain_deterministic(self):
        engine = self._engine()
        first = engine.run("EXPLAIN MATCH (a)-[:BEFORE]->(b) RETURN a")
        second = engine.run("EXPLAIN MATCH (a)-[:BEFORE]->(b) RETURN a")
        assert first == second

    def test_plan_starts_from_most_selective_scan(self):
        graph = PropertyGraph()
        graph.add_node("m0", entityType="Medication")
        for i in range(30):
            graph.add_node(f"s{i}", entityType="Sign_symptom")
        graph.create_property_index("entityType")
        graph.add_edge("m0", "s0", "CAUSES")
        pattern = GraphPattern(
            nodes=[
                NodePattern("s", (("entityType", "Sign_symptom"),)),
                NodePattern("m", (("entityType", "Medication"),)),
            ],
            edges=[EdgePattern("m", "s", "CAUSES")],
        )
        plan = plan_pattern(graph, pattern)
        # 1 Medication vs 30 Sign_symptoms: start at the medication
        # even though it is declared second.
        assert plan.steps[0].op == "scan"
        assert plan.steps[0].var == "m"
        assert plan.steps[0].estimated == 1.0
        assert plan.steps[1].op == "expand"
        assert plan.steps[1].from_var == "m"
        _assert_agrees(graph, pattern)

    def test_explain_actuals_match_execution(self):
        graph = _dense_graph()
        pattern = GraphPattern(
            nodes=[NodePattern("a"), NodePattern("b")],
            edges=[EdgePattern("a", "b", "BEFORE")],
        )
        bindings, rows = explain_pattern(graph, pattern)
        assert rows[-1]["actual"] == len(bindings)
        assert all(row["actual"] >= 0 for row in rows)

    def test_planner_counters_accumulate(self):
        graph = _dense_graph()
        pattern = GraphPattern(
            nodes=[NodePattern("a"), NodePattern("b")],
            edges=[EdgePattern("a", "b", "BEFORE")],
        )
        match_pattern(graph, pattern)
        match_pattern(graph, pattern)
        stats = graph.planner_stats()
        assert stats["counters"]["plans_executed"] == 2
        assert stats["counters"]["expand_steps"] == 2
        assert stats["counters"]["scan_steps"] == 2
        assert stats["statistics"]["n_nodes"] == 8


def _stats_fingerprint(graph) -> tuple:
    """Everything the planner reads, in comparable form.

    Edge ids differ between a mutated graph and a cold rebuild, so the
    fingerprint compares cardinalities and per-node/label degrees, not
    raw index contents.
    """
    nodes = sorted(node.node_id for node in graph.nodes())
    labels = sorted(
        {edge.label for edge in graph.edges()} | set(graph.edge_label_counts())
    )
    degrees = tuple(
        (
            node_id,
            label,
            graph.out_degree(node_id, label),
            graph.in_degree(node_id, label),
        )
        for node_id in nodes
        for label in labels
    )
    return (
        graph.statistics(),
        dict(graph.edge_label_counts()),
        degrees,
    )


def _rebuild(graph) -> PropertyGraph:
    """Cold rebuild from the surviving nodes/edges (fresh statistics)."""
    fresh = PropertyGraph()
    for node in graph.nodes():
        fresh.add_node(node.node_id, **node.properties)
    for key in graph.statistics()["indexed_properties"]:
        fresh.create_property_index(key)
    for edge in graph.edges():
        fresh.add_edge(edge.source, edge.target, edge.label, **edge.properties)
    return fresh


class TestStatisticsFreshness:
    def test_delete_and_readd_is_exact(self):
        graph = _dense_graph()
        edges = list(graph.edges())
        # Remove a third of the edges, then re-add half of those.
        removed = edges[::3]
        for edge in removed:
            graph.remove_edge(edge.edge_id)
        for edge in removed[::2]:
            graph.add_edge(edge.source, edge.target, edge.label)
        graph.remove_node("n3")  # cascades incident-edge unindexing
        graph.add_node("n3", entityType="Medication")
        assert _stats_fingerprint(graph) == _stats_fingerprint(
            _rebuild(graph)
        )

    def test_removing_all_edges_of_a_label_drops_the_entry(self):
        graph = PropertyGraph()
        graph.add_node("a")
        graph.add_node("b")
        edge = graph.add_edge("a", "b", "R")
        graph.add_edge("a", "b", "S")
        graph.remove_edge(edge.edge_id)
        assert graph.edge_label_counts() == {"S": 1}
        assert graph.edge_label_count("R") == 0

    def test_property_index_exact_after_delete_readd(self):
        graph = PropertyGraph()
        graph.create_property_index("entityType")
        graph.add_node("a", entityType="X")
        graph.add_node("b", entityType="X")
        graph.remove_node("a")
        graph.remove_node("b")
        stats = graph.statistics()["indexed_properties"]["entityType"]
        # No stale empty bucket: the value count returns to zero.
        assert stats == {"n_values": 0, "n_indexed_nodes": 0}
        assert graph.property_value_count("entityType", "X") == 0

    def test_wal_replay_restores_statistics(self):
        fs = MemFS()
        manager = DurabilityManager(fs)
        graph = PropertyGraph()
        manager.attach("graph", graph)
        graph.create_property_index("entityType")
        graph.add_node("a", entityType="X")
        graph.add_node("b", entityType="Y")
        graph.add_edge("a", "b", "R")
        manager.commit()
        graph.add_edge("b", "a", "S")
        graph.remove_node("b")  # also unindexes both edges
        manager.commit()
        manager.flush()

        recovered_graph = PropertyGraph()
        recovered = DurabilityManager(fs)
        recovered.attach("graph", recovered_graph)
        report = recovered.recover()
        assert report.records_replayed > 0
        assert _stats_fingerprint(recovered_graph) == _stats_fingerprint(
            graph
        )
        assert _stats_fingerprint(recovered_graph) == _stats_fingerprint(
            _rebuild(recovered_graph)
        )

    def test_snapshot_restore_rebuilds_statistics(self):
        fs = MemFS()
        manager = DurabilityManager(fs, snapshot_every=1)
        graph = PropertyGraph()
        manager.attach("graph", graph)
        graph.create_property_index("entityType")
        for i in range(5):
            graph.add_node(f"n{i}", entityType="X" if i % 2 else "Y")
        graph.add_edge("n0", "n1", "R")
        graph.add_edge("n1", "n2", "R")
        graph.add_edge("n2", "n2", "LOOP")
        manager.commit()  # snapshot_every=1 -> snapshot taken
        manager.flush()

        recovered_graph = PropertyGraph()
        recovered = DurabilityManager(fs)
        recovered.attach("graph", recovered_graph)
        report = recovered.recover()
        assert report.snapshot_loaded
        assert _stats_fingerprint(recovered_graph) == _stats_fingerprint(
            graph
        )
        # And matching after restore is planner-correct.
        pattern = GraphPattern(
            nodes=[NodePattern("a"), NodePattern("b")],
            edges=[EdgePattern("a", "b", "R")],
        )
        assert _ids(match_pattern(recovered_graph, pattern)) == _oracle(
            recovered_graph, pattern
        )


class TestShardedStatistics:
    def _sharded(self) -> ShardedPropertyGraph:
        sharded = ShardedPropertyGraph(3)
        sharded.create_property_index("entityType")
        for doc in range(4):
            a, b = f"d{doc}:a", f"d{doc}:b"
            sharded.add_node(a, doc_id=f"d{doc}", entityType="Medication")
            sharded.add_node(b, doc_id=f"d{doc}", entityType="Sign_symptom")
            sharded.add_edge(a, b, "CAUSES")
        return sharded

    def test_merged_statistics(self):
        sharded = self._sharded()
        stats = sharded.statistics()
        assert stats["n_nodes"] == 8
        assert stats["n_edges"] == 4
        assert stats["edge_labels"] == {"CAUSES": 4}
        merged = stats["indexed_properties"]["entityType"]
        assert merged["n_indexed_nodes"] == 8
        assert sharded.edge_label_count("CAUSES") == 4
        assert sharded.property_value_count("entityType", "Medication") == 4

    def test_facade_match_uses_planner_and_counts(self):
        sharded = self._sharded()
        pattern = GraphPattern(
            nodes=[
                NodePattern("m", (("entityType", "Medication"),)),
                NodePattern("s", (("entityType", "Sign_symptom"),)),
            ],
            edges=[EdgePattern("m", "s", "CAUSES")],
        )
        expected = _oracle(sharded, pattern)
        assert len(expected) == 4
        assert _ids(match_pattern(sharded, pattern)) == expected
        counters = sharded.planner_stats()["counters"]
        assert counters["plans_executed"] >= 1
