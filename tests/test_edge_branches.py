"""Edge-branch coverage: fallback paths not exercised elsewhere."""

import numpy as np
import pytest

from repro.corpus.generator import CaseReportGenerator
from repro.temporal.graph import TemporalGraph
from repro.viz.timeline import timeline_order


class TestTimelineCycleFallback:
    def test_unorderable_groups_still_render(self):
        # A BEFORE cycle cannot be topologically ordered; timeline_order
        # must still return every event exactly once.
        graph = TemporalGraph()
        graph.add("a", "b", "BEFORE")
        graph.add("b", "c", "BEFORE")
        graph.add("c", "a", "BEFORE")  # stored, contradiction surfaces
        columns = timeline_order(graph)
        flattened = [event for column in columns for event in column]
        assert sorted(flattened) == ["a", "b", "c"]


class TestQueryParserWithoutTemporal:
    def test_relations_skipped(self, demo_system):
        from repro.ir.query_parser import QueryParser

        pipeline, _ = demo_system
        parser = QueryParser(pipeline.extractor.ner, None)
        parsed = parser.parse(
            "The patient had chest pain accompanied by dyspnea."
        )
        assert parsed.relations == []


class TestExtractorLocalOnly:
    def test_global_inference_off(self, demo_system):
        from repro.pipeline import ClinicalExtractor

        pipeline, _ = demo_system
        trained = pipeline.extractor
        local_only = ClinicalExtractor(
            trained.ner, trained.temporal, use_global_inference=False
        )
        text = CaseReportGenerator(seed=777).generate("loc").text
        extracted = local_only.extract("loc", text)
        assert extracted.relations  # still produces relations

    def test_without_temporal_model(self, demo_system):
        from repro.pipeline import ClinicalExtractor

        pipeline, _ = demo_system
        ner_only = ClinicalExtractor(pipeline.extractor.ner, None)
        text = CaseReportGenerator(seed=778).generate("ner").text
        extracted = ner_only.extract("ner", text)
        assert extracted.textbounds
        assert not extracted.relations


class TestSearchEngineEdgeCases:
    def test_term_query(self):
        from repro.search.engine import SearchEngine

        engine = SearchEngine(
            {"tag": {"tokenizer": {"type": "keyword"}}}
        )
        engine.index("a", {"tag": "cvd"})
        engine.index("b", {"tag": "cancer"})
        hits = engine.search({"term": {"tag": "cvd"}})
        assert [h.doc_id for h in hits] == ["a"]

    def test_bool_only_must_not(self):
        from repro.search.engine import create_ir_engine

        engine = create_ir_engine()
        engine.index("a", {"body": "fever"})
        engine.index("b", {"body": "cough"})
        hits = engine.search(
            {"bool": {"must_not": [{"match": {"body": "fever"}}]}}
        )
        assert [h.doc_id for h in hits] == ["b"]

    def test_unknown_field_match_is_empty(self):
        from repro.search.engine import create_ir_engine

        engine = create_ir_engine()
        engine.index("a", {"body": "fever"})
        assert engine.search({"match": {"nonfield": "fever"}}) == []


class TestLayoutDegenerateInputs:
    def test_two_coincident_seeded_nodes(self):
        from repro.viz.force_layout import ForceLayout

        result = ForceLayout(seed=1, iterations=50).layout(
            ["a", "b"], [("a", "b")]
        )
        (ax, ay), (bx, by) = result.positions["a"], result.positions["b"]
        assert (ax, ay) != (bx, by)

    def test_self_loop_edges_ignored(self):
        from repro.viz.force_layout import ForceLayout

        result = ForceLayout(seed=2, iterations=10).layout(
            ["a", "b"], [("a", "a"), ("a", "b")]
        )
        assert len(result.positions) == 2


class TestEmbedderDegenerateTokens:
    def test_single_char_token(self):
        from repro.ml.embeddings import CharNgramEmbedder

        embedder = CharNgramEmbedder(dim=8).fit(
            [["a", "bb", "fever"]] * 3
        )
        vector = embedder.token_vector("a")
        assert vector.shape == (8,)

    def test_contextual_empty_sentence(self):
        from repro.ml.embeddings import CharNgramEmbedder

        embedder = CharNgramEmbedder(dim=8).fit([["fever"]])
        assert embedder.contextual_vectors([]).shape == (0, 24)
