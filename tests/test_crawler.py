"""Tests for the crawler substrate (Nutch analog)."""

import pytest

from repro.crawler.crawler import Crawler
from repro.crawler.frontier import Frontier, host_of
from repro.crawler.repository import SyntheticPubMed
from repro.exceptions import CrawlError


@pytest.fixture(scope="module")
def site(cvd_reports):
    return SyntheticPubMed(cvd_reports, pdf_fraction=0.5, seed=3)


class TestFrontier:
    def test_dedup(self):
        frontier = Frontier()
        assert frontier.add("u1")
        assert not frontier.add("u1")
        assert frontier.seen == 1

    def test_fifo_order(self):
        frontier = Frontier()
        frontier.add_many(["a", "b", "c"])
        assert frontier.next_url() == "a"
        assert frontier.next_url() == "b"

    def test_empty_returns_none(self):
        assert Frontier().next_url() is None

    def test_politeness_wait(self):
        frontier = Frontier(politeness_delay=1.0)
        frontier.record_fetch("pubmed://a/x", now=5.0)
        assert frontier.wait_time("pubmed://a/y", now=5.2) == pytest.approx(0.8)
        assert frontier.wait_time("pubmed://a/y", now=7.0) == 0.0

    def test_requeue(self):
        frontier = Frontier()
        frontier.add("a")
        url = frontier.next_url()
        frontier.requeue(url)
        assert frontier.next_url() == "a"

    def test_host_of(self):
        assert host_of("pubmed://article/123") == "article"
        assert host_of("no-scheme/path") == "no-scheme"


class TestSyntheticPubMed:
    def test_site_has_articles_and_listings(self, site, cvd_reports):
        assert site.n_pages > len(cvd_reports)
        assert site.seed_urls()

    def test_fetch_article(self, site, cvd_reports):
        page = site.fetch(f"pubmed://article/{cvd_reports[0].pmid}")
        assert page.content_type in ("pdf", "xml")
        assert page.body

    def test_fetch_unknown_url(self, site):
        with pytest.raises(CrawlError):
            site.fetch("pubmed://article/00000")

    def test_fetch_advances_clock(self, site):
        before = site.clock
        try:
            site.fetch("pubmed://article/00000")
        except CrawlError:
            pass
        assert site.clock > before

    def test_robots(self, site):
        assert not site.robots_allowed("pubmed://admin/secret")
        assert site.robots_allowed("pubmed://article/1")

    def test_listing_links_resolve(self, site):
        for seed in site.seed_urls():
            listing = site.fetch(seed)
            for link in listing.links:
                assert site.fetch(link) is not None or True


class TestCrawler:
    def test_crawl_captures_every_article(self, cvd_reports):
        site = SyntheticPubMed(cvd_reports, seed=4)
        crawler = Crawler(site)
        results = crawler.crawl()
        assert len(results) == len(cvd_reports)
        assert crawler.stats.captured == len(cvd_reports)
        assert crawler.stats.listings > 0

    def test_crawl_respects_max_pages(self, cvd_reports):
        site = SyntheticPubMed(cvd_reports, seed=4)
        crawler = Crawler(site)
        crawler.crawl(max_pages=3)
        assert crawler.stats.fetched == 3

    def test_transient_errors_retried(self, cvd_reports):
        site = SyntheticPubMed(cvd_reports, error_rate=0.3, seed=5)
        crawler = Crawler(site, max_retries=5)
        results = crawler.crawl()
        assert len(results) == len(cvd_reports)
        assert crawler.stats.retries > 0

    def test_retry_budget_exhausted_counts_error(self, cvd_reports):
        site = SyntheticPubMed(cvd_reports, error_rate=0.95, seed=6)
        crawler = Crawler(site, max_retries=1)
        crawler.crawl(max_pages=40)
        assert crawler.stats.errors > 0

    def test_robots_skip(self, cvd_reports):
        site = SyntheticPubMed(cvd_reports, seed=7)
        crawler = Crawler(site)
        crawler.crawl(seeds=["pubmed://admin/panel"])
        assert crawler.stats.robots_skipped == 1
        assert crawler.stats.fetched == 0

    def test_politeness_advances_clock(self, cvd_reports):
        site = SyntheticPubMed(cvd_reports, fetch_latency=0.01, seed=8)
        crawler = Crawler(site, politeness_delay=0.5)
        crawler.crawl()
        assert crawler.stats.politeness_waits > 0

    def test_captured_bodies_parse(self, cvd_reports):
        from repro.grobid.service import GrobidService

        site = SyntheticPubMed(cvd_reports, seed=9)
        results = Crawler(site).crawl()
        service = GrobidService()
        for result in results[:5]:
            pub = service.process(result.body)
            assert pub.metadata.title
