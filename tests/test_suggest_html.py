"""Tests for query suggestion and the HTML report view."""

from xml.etree import ElementTree

import pytest

from repro.ontology.concepts import build_default_ontology
from repro.search.suggest import QuerySuggester
from repro.viz.report_html import render_report_html


class TestQuerySuggester:
    def _suggester(self):
        suggester = QuerySuggester()
        suggester.add_term("chest pain", weight=5)
        suggester.add_term("chest tightness", weight=2)
        suggester.add_term("cough", weight=3)
        suggester.add_term("amiodarone", weight=1)
        return suggester

    def test_prefix_completion(self):
        hits = self._suggester().suggest("ches")
        assert [h.text for h in hits] == ["chest pain", "chest tightness"]

    def test_weight_ordering(self):
        hits = self._suggester().suggest("c")
        assert hits[0].text == "chest pain"

    def test_word_internal_prefix(self):
        hits = self._suggester().suggest("pain")
        assert [h.text for h in hits] == ["chest pain"]

    def test_limit(self):
        assert len(self._suggester().suggest("c", limit=1)) == 1

    def test_empty_prefix(self):
        assert self._suggester().suggest("") == []

    def test_case_insensitive(self):
        assert self._suggester().suggest("CHEST")

    def test_reinforcement_accumulates(self):
        suggester = QuerySuggester()
        suggester.add_term("fever", weight=1)
        suggester.add_term("Fever", weight=2)
        assert suggester.suggest("fev")[0].weight == 3
        assert len(suggester) == 1

    def test_ontology_source(self):
        suggester = QuerySuggester()
        suggester.add_from_ontology(build_default_ontology())
        hits = suggester.suggest("dysp")
        assert any(h.text == "dyspnea" for h in hits)
        assert all(h.source == "ontology" for h in hits)

    def test_graph_source(self, cvd_reports):
        from repro.ir.indexer import CreateIrIndexer

        indexer = CreateIrIndexer()
        report = cvd_reports[0]
        indexer.index_annotation_document(
            report.report_id, report.title, report.annotations
        )
        suggester = QuerySuggester()
        assert suggester.add_from_graph(indexer.graph) > 0


class TestReportHtml:
    def test_valid_xhtml(self, one_report):
        html = render_report_html(
            one_report.annotations, title=one_report.title
        )
        body = html.split("?>", 1)[1]
        root = ElementTree.fromstring(body)
        assert root.tag.endswith("html")

    def test_entities_marked(self, one_report):
        html = render_report_html(one_report.annotations)
        assert html.count("<mark") == len(
            one_report.annotations.textbounds
        )
        first = one_report.annotations.spans_sorted()[0]
        assert first.text in html

    def test_metadata_rendered(self, one_report):
        html = render_report_html(
            one_report.annotations,
            title=one_report.title,
            metadata={"authors": one_report.authors},
        )
        assert one_report.authors[0] in html

    def test_relations_table(self, one_report):
        html = render_report_html(one_report.annotations)
        assert "<table>" in html
        assert html.count("<tr>") >= len(one_report.annotations.relations)

    def test_negated_mention_styled(self):
        from repro.corpus.generator import CaseReportGenerator, GeneratorConfig

        generator = CaseReportGenerator(
            seed=7, config=GeneratorConfig(negated_finding_prob=1.0)
        )
        report = generator.generate("neg")
        html = render_report_html(report.annotations)
        assert 'class="negated"' in html

    def test_escaping(self):
        from repro.annotation.model import AnnotationDocument

        doc = AnnotationDocument(doc_id="d", text="a <b> & c fever end")
        doc.add_textbound("Sign_symptom", 10, 15)
        html = render_report_html(doc, title="T<script>")
        body = html.split("?>", 1)[1]
        ElementTree.fromstring(body)  # must stay well-formed

    def test_quote_in_label_stays_parseable(self):
        # Regression: escape() does not touch '"', so a label with a
        # double quote inside the title="..." attribute used to produce
        # invalid XHTML.  Attribute values now go through quoteattr().
        from repro.annotation.model import AnnotationDocument

        doc = AnnotationDocument(
            doc_id="d", text='the "quoted" fever & <tag> end'
        )
        doc.add_textbound('Sym"pt&om<x>', 13, 18)
        html = render_report_html(doc, title='A "quoted" <title> & more')
        body = html.split("?>", 1)[1]
        root = ElementTree.fromstring(body)
        ns = "{http://www.w3.org/1999/xhtml}"
        mark = next(root.iter(f"{ns}mark"))
        assert mark.get("title") == 'Sym"pt&om<x>'

    def test_no_empty_class_attribute(self, one_report):
        html = render_report_html(one_report.annotations)
        assert 'class=""' not in html

    def test_anchor_ids(self):
        from repro.annotation.model import AnnotationDocument
        from repro.viz.report_html import marked_narrative

        doc = AnnotationDocument(doc_id="d", text="fever then chills")
        doc.add_textbound("Sign_symptom", 0, 5)
        doc.add_textbound("Sign_symptom", 11, 17)
        narrative = marked_narrative(doc, {"T2": "claim-T2"})
        fragment = ElementTree.fromstring(f"<p>{narrative}</p>")
        ids = [mark.get("id") for mark in fragment.iter("mark")]
        assert ids == [None, "claim-T2"]


class TestApiEndpoints:
    def test_html_endpoint(self, demo_system):
        pipeline, _ = demo_system
        doc_id = pipeline.store.collection("reports").find({}, limit=1)[0][
            "_id"
        ]
        response = pipeline.app.handle("GET", f"/reports/{doc_id}/html")
        assert response.ok
        assert "<mark" in response.body

    def test_suggest_endpoint(self, demo_system):
        pipeline, reports = demo_system
        symptom = reports[0].annotations.spans_with_label("Sign_symptom")[0]
        prefix = symptom.text[:4]
        response = pipeline.app.handle(
            "GET", "/suggest", params={"q": prefix}
        )
        assert response.ok
        suggestions = response.body["suggestions"]
        assert suggestions
        assert any(
            s["text"].startswith(prefix.lower())
            or any(w.startswith(prefix.lower()) for w in s["text"].split())
            for s in suggestions
        )

    def test_suggest_requires_prefix(self, demo_system):
        pipeline, _ = demo_system
        assert pipeline.app.handle("GET", "/suggest").status == 400


class TestSuggesterPrefixIndexEquivalence:
    """The sorted-entry bisect index must return exactly what a linear
    scan over the vocabulary returns, for every prefix."""

    @staticmethod
    def _reference_suggest(suggester, prefix, limit=8):
        needle = prefix.strip().lower()
        if not needle:
            return []
        hits = [
            (term, weight)
            for term, weight in suggester._weights.items()
            if term.startswith(needle)
            or any(word.startswith(needle) for word in term.split())
        ]
        hits.sort(key=lambda item: (-item[1], item[0]))
        return [term for term, _ in hits[:limit]]

    def test_equivalent_on_random_vocabulary(self):
        import random

        rng = random.Random(42)
        words = [
            "fever", "fevers", "chest", "cheast", "pain", "painful",
            "amiodarone", "amio", "renal", "rena", "cough", "c",
        ]
        suggester = QuerySuggester()
        for _ in range(120):
            term = " ".join(
                rng.choice(words) for _ in range(rng.randint(1, 3))
            )
            suggester.add_term(term, weight=rng.randint(0, 5))
        prefixes = [w[:k] for w in words for k in range(1, len(w) + 1)]
        for prefix in prefixes:
            got = [s.text for s in suggester.suggest(prefix, limit=50)]
            want = self._reference_suggest(suggester, prefix, limit=50)
            assert got == want, f"prefix {prefix!r}"

    def test_no_false_positives_for_mid_word_infix(self):
        suggester = QuerySuggester()
        suggester.add_term("amiodarone")
        # "oda" appears inside the word but no word starts with it.
        assert suggester.suggest("oda") == []

    def test_entry_list_stays_sorted_under_interleaved_adds(self):
        suggester = QuerySuggester()
        for term in ["zzz", "aaa", "mmm case", "bbb", "aaa zzz"]:
            suggester.add_term(term)
        assert suggester._entries == sorted(suggester._entries)
        assert [s.text for s in suggester.suggest("zz")] == [
            "aaa zzz", "zzz",
        ]
