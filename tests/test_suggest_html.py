"""Tests for query suggestion and the HTML report view."""

from xml.etree import ElementTree

import pytest

from repro.ontology.concepts import build_default_ontology
from repro.search.suggest import QuerySuggester
from repro.viz.report_html import render_report_html


class TestQuerySuggester:
    def _suggester(self):
        suggester = QuerySuggester()
        suggester.add_term("chest pain", weight=5)
        suggester.add_term("chest tightness", weight=2)
        suggester.add_term("cough", weight=3)
        suggester.add_term("amiodarone", weight=1)
        return suggester

    def test_prefix_completion(self):
        hits = self._suggester().suggest("ches")
        assert [h.text for h in hits] == ["chest pain", "chest tightness"]

    def test_weight_ordering(self):
        hits = self._suggester().suggest("c")
        assert hits[0].text == "chest pain"

    def test_word_internal_prefix(self):
        hits = self._suggester().suggest("pain")
        assert [h.text for h in hits] == ["chest pain"]

    def test_limit(self):
        assert len(self._suggester().suggest("c", limit=1)) == 1

    def test_empty_prefix(self):
        assert self._suggester().suggest("") == []

    def test_case_insensitive(self):
        assert self._suggester().suggest("CHEST")

    def test_reinforcement_accumulates(self):
        suggester = QuerySuggester()
        suggester.add_term("fever", weight=1)
        suggester.add_term("Fever", weight=2)
        assert suggester.suggest("fev")[0].weight == 3
        assert len(suggester) == 1

    def test_ontology_source(self):
        suggester = QuerySuggester()
        suggester.add_from_ontology(build_default_ontology())
        hits = suggester.suggest("dysp")
        assert any(h.text == "dyspnea" for h in hits)
        assert all(h.source == "ontology" for h in hits)

    def test_graph_source(self, cvd_reports):
        from repro.ir.indexer import CreateIrIndexer

        indexer = CreateIrIndexer()
        report = cvd_reports[0]
        indexer.index_annotation_document(
            report.report_id, report.title, report.annotations
        )
        suggester = QuerySuggester()
        assert suggester.add_from_graph(indexer.graph) > 0


class TestReportHtml:
    def test_valid_xhtml(self, one_report):
        html = render_report_html(
            one_report.annotations, title=one_report.title
        )
        body = html.split("?>", 1)[1]
        root = ElementTree.fromstring(body)
        assert root.tag.endswith("html")

    def test_entities_marked(self, one_report):
        html = render_report_html(one_report.annotations)
        assert html.count("<mark") == len(
            one_report.annotations.textbounds
        )
        first = one_report.annotations.spans_sorted()[0]
        assert first.text in html

    def test_metadata_rendered(self, one_report):
        html = render_report_html(
            one_report.annotations,
            title=one_report.title,
            metadata={"authors": one_report.authors},
        )
        assert one_report.authors[0] in html

    def test_relations_table(self, one_report):
        html = render_report_html(one_report.annotations)
        assert "<table>" in html
        assert html.count("<tr>") >= len(one_report.annotations.relations)

    def test_negated_mention_styled(self):
        from repro.corpus.generator import CaseReportGenerator, GeneratorConfig

        generator = CaseReportGenerator(
            seed=7, config=GeneratorConfig(negated_finding_prob=1.0)
        )
        report = generator.generate("neg")
        html = render_report_html(report.annotations)
        assert 'class="negated"' in html

    def test_escaping(self):
        from repro.annotation.model import AnnotationDocument

        doc = AnnotationDocument(doc_id="d", text="a <b> & c fever end")
        doc.add_textbound("Sign_symptom", 10, 15)
        html = render_report_html(doc, title="T<script>")
        body = html.split("?>", 1)[1]
        ElementTree.fromstring(body)  # must stay well-formed


class TestApiEndpoints:
    def test_html_endpoint(self, demo_system):
        pipeline, _ = demo_system
        doc_id = pipeline.store.collection("reports").find({}, limit=1)[0][
            "_id"
        ]
        response = pipeline.app.handle("GET", f"/reports/{doc_id}/html")
        assert response.ok
        assert "<mark" in response.body

    def test_suggest_endpoint(self, demo_system):
        pipeline, reports = demo_system
        symptom = reports[0].annotations.spans_with_label("Sign_symptom")[0]
        prefix = symptom.text[:4]
        response = pipeline.app.handle(
            "GET", "/suggest", params={"q": prefix}
        )
        assert response.ok
        suggestions = response.body["suggestions"]
        assert suggestions
        assert any(
            s["text"].startswith(prefix.lower())
            or any(w.startswith(prefix.lower()) for w in s["text"].split())
            for s in suggestions
        )

    def test_suggest_requires_prefix(self, demo_system):
        pipeline, _ = demo_system
        assert pipeline.app.handle("GET", "/suggest").status == 400
