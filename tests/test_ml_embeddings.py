"""Tests for the char-n-gram contextual embedder (C-FLAIR substitute)."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.ml.embeddings import CharNgramEmbedder, _kmeans

SENTENCES = [
    ["the", "patient", "had", "fever", "and", "cough"],
    ["fever", "resolved", "after", "treatment"],
    ["cough", "worsened", "during", "treatment"],
    ["aspirin", "was", "given", "for", "fever"],
    ["the", "patient", "received", "aspirin", "daily"],
] * 4


@pytest.fixture(scope="module")
def embedder():
    return CharNgramEmbedder(dim=16, n_bits=8, seed=5).fit(SENTENCES)


class TestFit:
    def test_learns_grams(self, embedder):
        assert embedder.n_grams_learned > 0

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            CharNgramEmbedder().token_vector("fever")

    def test_empty_corpus_degrades_gracefully(self):
        embedder = CharNgramEmbedder(dim=8).fit([])
        assert np.allclose(embedder.token_vector("fever"), 0.0)


class TestVectors:
    def test_token_vector_shape_and_norm(self, embedder):
        vec = embedder.token_vector("fever")
        assert vec.shape == (16,)
        assert np.linalg.norm(vec) == pytest.approx(1.0, abs=1e-6)

    def test_unseen_token_composed_from_grams(self, embedder):
        # "fevers" shares char n-grams with "fever".
        a = embedder.token_vector("fever")
        b = embedder.token_vector("fevers")
        cosine = float(a @ b)
        assert cosine > 0.5

    def test_totally_unknown_token_zero(self, embedder):
        assert np.allclose(embedder.token_vector("zzqqxx"), 0.0)

    def test_contextual_shape(self, embedder):
        matrix = embedder.contextual_vectors(["fever", "and", "cough"])
        assert matrix.shape == (3, 48)

    def test_context_states_shifted(self, embedder):
        matrix = embedder.contextual_vectors(["fever", "cough"])
        # Forward state of the first token is the zero initial state.
        assert np.allclose(matrix[0, 16:32], 0.0)
        # Backward state of the last token is the zero initial state.
        assert np.allclose(matrix[-1, 32:], 0.0)

    def test_contextualization_differs_by_context(self, embedder):
        a = embedder.contextual_vectors(["aspirin", "fever"])[1]
        b = embedder.contextual_vectors(["cough", "fever"])[1]
        assert not np.allclose(a, b)

    def test_sign_features_shape(self, embedder):
        feats = embedder.sign_features(["fever", "cough"])
        assert len(feats) == 2
        assert len(feats[0]) == 8
        assert all(f.startswith("cemb") for f in feats[0])


class TestClusters:
    def test_cluster_ids_after_fit_clusters(self, embedder):
        embedder.fit_clusters(ks=(4, 8))
        ids = embedder.cluster_ids("fever")
        assert len(ids) == 2
        assert all(0 <= cid < k for k, cid in ids)

    def test_similar_tokens_share_fine_cluster(self, embedder):
        embedder.fit_clusters(ks=(4,))
        assert embedder.cluster_ids("fever") == embedder.cluster_ids("fevers")

    def test_no_clusters_before_fit_clusters(self):
        fresh = CharNgramEmbedder(dim=8).fit(SENTENCES)
        assert fresh.cluster_ids("fever") == ()


class TestKmeans:
    def test_centroid_count(self):
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(50, 4))
        centers = _kmeans(vectors, 5, seed=1)
        assert centers.shape == (5, 4)

    def test_k_clipped_to_n(self):
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(3, 4))
        centers = _kmeans(vectors, 10, seed=1)
        assert centers.shape == (3, 4)

    def test_empty_input(self):
        centers = _kmeans(np.zeros((0, 4)), 3, seed=1)
        assert len(centers) == 0

    def test_separated_clusters_found(self):
        rng = np.random.default_rng(2)
        a = rng.normal(loc=0.0, scale=0.1, size=(20, 2))
        b = rng.normal(loc=10.0, scale=0.1, size=(20, 2))
        centers = _kmeans(np.vstack([a, b]), 2, seed=3)
        norms = sorted(np.linalg.norm(centers, axis=1))
        assert norms[0] < 1.0
        assert norms[1] > 10.0
