"""Edge cases for ``InvertedIndex.phrase_positions`` (ISSUE 2 satellite).

Covers: empty phrase, single term, repeated adjacent terms, phrases
against removed documents, and the position-gap ``offsets`` parameter
that backs stopword-aware ``match_phrase``.
"""

import pytest

from repro.search.analysis import AnalyzedToken
from repro.search.engine import SearchEngine
from repro.search.inverted_index import InvertedIndex


def _tokens(*terms, positions=None):
    positions = positions or range(len(terms))
    return [
        AnalyzedToken(term, position, position, position + 1)
        for term, position in zip(terms, positions)
    ]


@pytest.fixture
def index():
    ix = InvertedIndex()
    ix.add_document(0, _tokens("chest", "pain", "pain", "relief"))
    ix.add_document(1, _tokens("pain", "chest"))
    return ix


class TestPhrasePositionsEdges:
    def test_empty_phrase(self, index):
        assert index.phrase_positions(0, []) == []

    def test_single_term(self, index):
        assert index.phrase_positions(0, ["pain"]) == [1, 2]

    def test_single_term_absent(self, index):
        assert index.phrase_positions(0, ["fever"]) == []

    def test_repeated_adjacent_terms(self, index):
        assert index.phrase_positions(0, ["pain", "pain"]) == [1]

    def test_repeated_terms_no_adjacency(self, index):
        assert index.phrase_positions(1, ["pain", "pain"]) == []

    def test_unknown_doc_ord(self, index):
        assert index.phrase_positions(99, ["chest", "pain"]) == []

    def test_phrase_spanning_removed_document(self, index):
        assert index.phrase_positions(0, ["chest", "pain"]) == [0]
        index.remove_document(0)
        assert index.phrase_positions(0, ["chest", "pain"]) == []
        # The surviving document is untouched.
        assert index.phrase_positions(1, ["pain", "chest"]) == [0]

    def test_removed_then_readded_document(self, index):
        index.remove_document(0)
        index.add_document(0, _tokens("chest", "pain"))
        assert index.phrase_positions(0, ["chest", "pain"]) == [0]
        assert index.phrase_positions(0, ["pain", "relief"]) == []


class TestPhraseOffsets:
    def test_gap_offsets(self):
        ix = InvertedIndex()
        # "fever <stop> cough": positions 0 and 2.
        ix.add_document(0, _tokens("fever", "cough", positions=[0, 2]))
        assert ix.phrase_positions(0, ["fever", "cough"]) == []
        assert ix.phrase_positions(0, ["fever", "cough"], [0, 2]) == [0]

    def test_offsets_are_normalized_to_first(self):
        ix = InvertedIndex()
        ix.add_document(0, _tokens("a", "b", positions=[3, 5]))
        assert ix.phrase_positions(0, ["a", "b"], [10, 12]) == [3]

    def test_offsets_length_mismatch(self):
        ix = InvertedIndex()
        ix.add_document(0, _tokens("a"))
        with pytest.raises(ValueError):
            ix.phrase_positions(0, ["a"], [0, 1])


class TestEnginePhraseGaps:
    def test_document_phrase_matches_its_own_text(self):
        engine = SearchEngine()
        engine.index("d1", {"body": "fever and cough"})
        engine.index("d2", {"body": "cough and fever"})
        hits = engine.search({"match_phrase": {"body": "fever and cough"}})
        assert [hit.doc_id for hit in hits] == ["d1"]

    def test_adjacent_text_does_not_match_gapped_phrase(self):
        engine = SearchEngine()
        engine.index("d1", {"body": "fever cough"})  # no stopword gap
        hits = engine.search({"match_phrase": {"body": "fever and cough"}})
        assert hits == []


class TestOffsetsAtDocumentBoundaries:
    """Explicit ``offsets`` where the match touches a document edge."""

    def test_gap_phrase_starting_at_position_zero(self):
        ix = InvertedIndex()
        ix.add_document(0, _tokens("chest", "pain", positions=[0, 2]))
        assert ix.phrase_positions(0, ["chest", "pain"], [0, 2]) == [0]

    def test_gap_phrase_ending_at_final_position(self):
        ix = InvertedIndex()
        ix.add_document(
            0, _tokens("mild", "chest", "pain", positions=[0, 3, 5])
        )
        assert ix.phrase_positions(0, ["chest", "pain"], [3, 5]) == [3]

    def test_gap_phrase_overhanging_document_end(self):
        ix = InvertedIndex()
        # Pattern demands a term 3 past the start; the document ends at
        # position 1, so nothing can match.
        ix.add_document(0, _tokens("chest", "pain", positions=[0, 1]))
        assert ix.phrase_positions(0, ["chest", "pain"], [0, 3]) == []

    def test_single_term_phrase_with_offset(self):
        ix = InvertedIndex()
        ix.add_document(0, _tokens("pain", positions=[4]))
        # A one-term pattern normalizes any offset away: every
        # occurrence is a match, wherever it sits.
        assert ix.phrase_positions(0, ["pain"], [9]) == [4]

    def test_single_term_phrase_at_position_zero(self):
        ix = InvertedIndex()
        ix.add_document(0, _tokens("pain", "relief"))
        assert ix.phrase_positions(0, ["pain"], [0]) == [0]
