"""The AST lint: rule detection, scoping, and clean-tree invariant."""

from pathlib import Path

from repro.testing.lint import lint_file, lint_paths


def _lint_source(tmp_path, source, relative="src/repro/mod.py"):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return lint_file(path, tmp_path)


class TestExistingRules:
    def test_bare_except_flagged(self, tmp_path):
        findings = _lint_source(
            tmp_path, "try:\n    pass\nexcept:\n    pass\n"
        )
        assert any("REPRO001" in f for f in findings)

    def test_mutable_default_flagged(self, tmp_path):
        findings = _lint_source(tmp_path, "def f(x=[]):\n    return x\n")
        assert any("REPRO002" in f for f in findings)

    def test_time_time_only_in_deterministic_scope(self, tmp_path):
        source = "import time\n\nt = time.time()\n"
        assert any(
            "REPRO003" in f
            for f in _lint_source(
                tmp_path, source, "src/repro/testing/gen.py"
            )
        )
        assert not any(
            "REPRO003" in f
            for f in _lint_source(tmp_path, source, "src/repro/bench.py")
        )


class TestUnboundedQueues:
    def test_unbounded_queue_flagged(self, tmp_path):
        for source in (
            "import queue\nq = queue.Queue()\n",
            "import asyncio\nq = asyncio.Queue()\n",
            "from queue import Queue\nq = Queue()\n",
            "import queue\nq = queue.Queue(maxsize=0)\n",
            "import queue\nq = queue.Queue(0)\n",
            "import queue\nq = queue.LifoQueue()\n",
            "import queue\nq = queue.SimpleQueue()\n",
        ):
            findings = _lint_source(tmp_path, source)
            assert any("REPRO004" in f for f in findings), source

    def test_bounded_queue_clean(self, tmp_path):
        for source in (
            "import queue\nq = queue.Queue(maxsize=32)\n",
            "import queue\nq = queue.Queue(8)\n",
            "import asyncio\nq = asyncio.Queue(maxsize=16)\n",
            # A computed bound is trusted: the rule targets the
            # silent unbounded default, not dynamic configuration.
            "import queue\nq = queue.Queue(maxsize=limit)\n",
        ):
            findings = _lint_source(tmp_path, source)
            assert not findings, (source, findings)

    def test_tests_tree_is_exempt(self, tmp_path):
        source = "import queue\nq = queue.Queue()\n"
        findings = _lint_source(tmp_path, source, "tests/test_x.py")
        assert not any("REPRO004" in f for f in findings)

    def test_unrelated_calls_not_flagged(self, tmp_path):
        source = "class Queue:\n    pass\n\nq = make.Queue()\nr = deque()\n"
        findings = _lint_source(tmp_path, source)
        assert not any("REPRO004" in f for f in findings)


def test_repository_is_lint_clean():
    root = Path(__file__).resolve().parent.parent
    findings = lint_paths(["src", "tests", "benchmarks"], root)
    assert findings == []
