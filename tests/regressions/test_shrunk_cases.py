"""Shrunk fuzz cases checked in as regressions (ISSUE 2 satellite).

Each case below is the minimal reproducer the harness shrank a real
optimized-vs-oracle discrepancy down to.  They are replayed through
``repro.testing.check_case`` — which must now report agreement — plus
a direct assertion of the fixed behaviour, so the bug class stays dead
even if the harness itself changes.
"""

from repro.graphdb.graph import PropertyGraph
from repro.graphdb.match import (
    EdgePattern,
    GraphPattern,
    NodePattern,
    match_pattern,
)
from repro.search.engine import SearchEngine
from repro.testing import check_case

# Found by: python -m repro.testing --subsystem graph --seed 0 (case #2).
# match_pattern never enforced self-loop pattern edges (source var ==
# target var): every candidate node matched, looped or not.
SELF_LOOP_CASE = {
    "nodes": [["n0", {"entityType": "Sign_symptom"}]],
    "edges": [],
    "pattern_nodes": [["v0", {}]],
    "pattern_edges": [["v0", "v0", None, True]],
    "limit": None,
    "index_property": False,
}

# Found by: python -m repro.testing --subsystem invariants --seed 0
# (case #1, check_phrase_self_match).  match_phrase collapsed analyzed
# query positions to strict adjacency, so documents whose text contains
# a stopword gap ("pain was patient") never matched their own phrase.
PHRASE_GAP_CASE = {
    "search": {
        "analyzer": "standard",
        "ops": [
            {
                "op": "index",
                "id": "d1",
                "fields": {"body": "pain was patient", "title": ""},
            }
        ],
        "queries": [{"match_phrase": {"body": "pain was patient"}}],
    },
    "fusion": {"graph_ranked": [], "keyword_ranked": [], "size": 3},
    "shuffle_seed": 2086105126,
}


class TestSelfLoopPatternRegression:
    def test_harness_agrees(self):
        assert check_case("graph", SELF_LOOP_CASE) is None

    def test_direct_behaviour(self):
        graph = PropertyGraph()
        graph.add_node("n1")
        graph.add_node("n2")
        graph.add_edge("n1", "n1", "SELF")
        pattern = GraphPattern(
            [NodePattern("a")], [EdgePattern("a", "a", label="SELF")]
        )
        assert [
            binding["a"].node_id
            for binding in match_pattern(graph, pattern)
        ] == ["n1"]

    def test_no_loops_no_matches(self):
        graph = PropertyGraph()
        graph.add_node("n1")
        pattern = GraphPattern(
            [NodePattern("a")], [EdgePattern("a", "a")]
        )
        assert match_pattern(graph, pattern) == []


class TestPhraseGapRegression:
    def test_harness_agrees(self):
        assert check_case("invariants", PHRASE_GAP_CASE) is None
        assert check_case("search", PHRASE_GAP_CASE["search"]) is None

    def test_direct_behaviour(self):
        engine = SearchEngine()
        engine.index("d1", {"body": "pain was patient"})
        hits = engine.search({"match_phrase": {"body": "pain was patient"}})
        assert [hit.doc_id for hit in hits] == ["d1"]


# Found by: the mutate-vs-rebuild postings-order invariant (ISSUE 6).
# ``InvertedIndex.add_document`` appended postings at the tail, so
# adding a document with an ordinal below an existing one (the
# delete-then-reinsert path segment sealing relies on) left postings
# out of doc-ord order — breaking delta-encoded packing and making
# score accumulation order diverge from a cold rebuild.
POSTINGS_REINSERT_CASE = {
    "analyzer": "whitespace",
    "ops": [
        {
            "op": "index",
            "id": "d0",
            "fields": {"body": "renal fever", "title": ""},
        },
        {
            "op": "index",
            "id": "d1",
            "fields": {"body": "renal cough", "title": ""},
        },
        {"op": "delete", "id": "d0"},
        {
            "op": "index",
            "id": "d0",
            "fields": {"body": "renal fever", "title": ""},
        },
    ],
    "queries": [{"match": {"body": "renal"}}],
}


class TestPostingsOrderRegression:
    def test_harness_agrees(self):
        assert check_case("search", POSTINGS_REINSERT_CASE) is None

    def test_direct_behaviour(self):
        from repro.search.analysis import AnalyzedToken
        from repro.search.inverted_index import InvertedIndex

        def tokens(*terms):
            return [
                AnalyzedToken(term, i, i, i + 1)
                for i, term in enumerate(terms)
            ]

        index = InvertedIndex()
        index.add_document(1, tokens("renal"))
        index.add_document(2, tokens("renal"))
        # Re-adding a lower ordinal must insert at its sorted slot, not
        # the tail.
        index.add_document(1, tokens("renal", "fever"))
        assert [p.doc_ord for p in index.postings("renal")] == [1, 2]
        index.add_document(0, tokens("renal"))
        assert [p.doc_ord for p in index.postings("renal")] == [0, 1, 2]
