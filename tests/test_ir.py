"""Tests for CREATe-IR: ranking utilities, indexer, searcher, parser."""

import pytest

from repro.ir.indexer import CreateIrIndexer
from repro.ir.query_parser import ParsedQuery, QueryConceptMention
from repro.ir.ranking import fuse_results, label_similarity, labels_match
from repro.ir.searcher import CreateIrSearcher


class TestLabelSimilarity:
    def test_identical(self):
        assert label_similarity("fever", "fever") == 1.0

    def test_morphological_variants(self):
        assert label_similarity("fevers", "fever") == 1.0  # stemming

    def test_partial_overlap(self):
        sim = label_similarity("chest pain", "acute chest pain")
        assert 0.0 < sim < 1.0

    def test_disjoint(self):
        assert label_similarity("fever", "stroke") == 0.0

    def test_empty(self):
        assert label_similarity("", "fever") == 0.0

    def test_labels_match_threshold(self):
        assert labels_match("fever", "fever")
        assert labels_match("cough", "a mild cough")
        assert not labels_match("was", "was discharged home")
        assert not labels_match("fever", "stroke")


class TestFusion:
    def test_graph_results_first(self):
        fused = fuse_results([("g1", 1.0)], [("k1", 99.0)], size=10)
        assert [item[0] for item in fused] == ["g1", "k1"]
        assert fused[0][2] == "graph"
        assert fused[1][2] == "keyword"

    def test_dedup(self):
        fused = fuse_results([("d1", 1.0)], [("d1", 5.0), ("d2", 4.0)], 10)
        assert [item[0] for item in fused] == ["d1", "d2"]

    def test_size_cap(self):
        graph = [(f"g{i}", float(10 - i)) for i in range(5)]
        assert len(fuse_results(graph, [], size=3)) == 3

    def test_within_block_ordering(self):
        fused = fuse_results([("a", 1.0), ("b", 2.0)], [], 10)
        assert [item[0] for item in fused] == ["b", "a"]

    def test_deterministic_ties(self):
        fused = fuse_results([("b", 1.0), ("a", 1.0)], [], 10)
        assert [item[0] for item in fused] == ["a", "b"]


def build_index(reports):
    indexer = CreateIrIndexer()
    for report in reports:
        indexer.index_annotation_document(
            report.report_id, report.title, report.annotations
        )
    return indexer


class TestIndexer:
    def test_nodes_per_span(self, cvd_reports):
        indexer = build_index(cvd_reports[:3])
        report = cvd_reports[0]
        record = indexer.report_stats(report.report_id)
        assert record.n_nodes == len(report.annotations.textbounds)

    def test_node_properties_match_paper_schema(self, cvd_reports):
        indexer = build_index(cvd_reports[:1])
        nodes = indexer.graph.find_nodes(doc_id=cvd_reports[0].report_id)
        for node in nodes:
            assert "label" in node.properties
            assert "entityType" in node.properties
            assert node.node_id.startswith(cvd_reports[0].report_id)

    def test_temporal_closure_adds_inferred_edges(self, cvd_reports):
        indexer = build_index(cvd_reports[:3])
        record = indexer.report_stats(cvd_reports[0].report_id)
        assert record.n_inferred_edges > 0
        inferred = [
            edge
            for edge in indexer.graph.edges()
            if edge.get("inferred")
        ]
        assert inferred

    def test_closure_ablation_off(self, cvd_reports):
        indexer = CreateIrIndexer(close_temporal=False)
        report = cvd_reports[0]
        record = indexer.index_annotation_document(
            report.report_id, report.title, report.annotations
        )
        assert record.n_inferred_edges == 0

    def test_temporal_edges_normalized_to_before_overlap(self, cvd_reports):
        indexer = build_index(cvd_reports[:3])
        labels = {edge.label for edge in indexer.graph.edges()}
        assert "AFTER" not in labels

    def test_keyword_index_populated(self, cvd_reports):
        indexer = build_index(cvd_reports[:3])
        assert indexer.engine.n_documents == 3

    def test_n_reports(self, cvd_reports):
        indexer = build_index(cvd_reports[:4])
        assert indexer.n_reports == 4


def query_for(report):
    """A gold-derived relational query matching ``report``."""
    symptoms = report.annotations.spans_with_label("Sign_symptom")
    meds = report.annotations.spans_with_label("Medication")
    assert symptoms and meds
    concepts = [
        QueryConceptMention(symptoms[0].text, "Sign_symptom", 0, 0),
        QueryConceptMention(meds[0].text, "Medication", 0, 0),
    ]
    return ParsedQuery(
        text=f"{symptoms[0].text} then {meds[0].text}",
        concepts=concepts,
        relations=[(0, 1, "BEFORE")],
    )


class TestSearcher:
    def test_graph_search_finds_source_doc(self, cvd_reports):
        indexer = build_index(cvd_reports)
        searcher = CreateIrSearcher(indexer, parser=None)
        report = cvd_reports[0]
        details = searcher.graph_search(query_for(report))
        assert any(d.doc_id == report.report_id for d in details)

    def test_relation_match_scores_higher(self, cvd_reports):
        indexer = build_index(cvd_reports)
        searcher = CreateIrSearcher(indexer, parser=None)
        report = cvd_reports[0]
        details = searcher.graph_search(query_for(report))
        source = next(d for d in details if d.doc_id == report.report_id)
        assert source.matched_relations >= 1

    def test_after_query_flipped(self, cvd_reports):
        indexer = build_index(cvd_reports)
        searcher = CreateIrSearcher(indexer, parser=None)
        report = cvd_reports[0]
        base = query_for(report)
        flipped = ParsedQuery(
            text=base.text,
            concepts=[base.concepts[1], base.concepts[0]],
            relations=[(0, 1, "AFTER")],
        )
        details = searcher.graph_search(flipped)
        assert any(d.doc_id == report.report_id for d in details)

    def test_hybrid_fusion_graph_on_top(self, cvd_reports):
        indexer = build_index(cvd_reports)
        searcher = CreateIrSearcher(indexer, parser=None)
        results = searcher.search(query_for(cvd_reports[0]), size=8)
        engines = [result.engine for result in results]
        if "graph" in engines and "keyword" in engines:
            assert engines.index("graph") < engines.index("keyword")

    def test_string_query_without_parser_uses_keyword(self, cvd_reports):
        indexer = build_index(cvd_reports)
        searcher = CreateIrSearcher(indexer, parser=None)
        results = searcher.search("fever", size=5)
        assert all(result.engine == "keyword" for result in results)

    def test_keyword_only_mode(self, cvd_reports):
        indexer = build_index(cvd_reports)
        searcher = CreateIrSearcher(indexer, parser=None)
        results = searcher.keyword_only("fever", size=5)
        assert all(result.engine == "keyword" for result in results)

    def test_empty_query(self, cvd_reports):
        indexer = build_index(cvd_reports[:2])
        searcher = CreateIrSearcher(indexer, parser=None)
        assert searcher.graph_search(ParsedQuery(text="")) == []

    def test_no_matching_concept_returns_empty_graph_results(self, cvd_reports):
        indexer = build_index(cvd_reports[:2])
        searcher = CreateIrSearcher(indexer, parser=None)
        parsed = ParsedQuery(
            text="x",
            concepts=[
                QueryConceptMention("nonexistent thing", "Sign_symptom", 0, 0)
            ],
        )
        assert searcher.graph_search(parsed) == []


class TestQueryParser:
    @pytest.fixture(scope="class")
    def parser(self):
        from repro.corpus.generator import CaseReportGenerator
        from repro.ir.query_parser import QueryParser
        from repro.ner.tagger import NerTagger
        from repro.pipeline import _temporal_doc_from_report
        from repro.temporal.classifier import TemporalClassifier

        generator = CaseReportGenerator(seed=77)
        reports = [generator.generate(f"p{i}") for i in range(16)]
        ner = NerTagger(decoder="crf", epochs=3).fit(
            [r.annotations for r in reports]
        )
        temporal_docs = [
            _temporal_doc_from_report(r, max_distance=3) for r in reports
        ]
        temporal = TemporalClassifier(epochs=8).fit(temporal_docs)
        return QueryParser(ner, temporal)

    def test_extracts_concepts(self, parser):
        parsed = parser.parse(
            "A patient was admitted to the hospital because of chest pain and dyspnea."
        )
        surfaces = {c.surface.lower() for c in parsed.concepts}
        assert "chest pain" in surfaces
        assert "dyspnea" in surfaces

    def test_extracts_relations_between_events(self, parser):
        parsed = parser.parse(
            "The patient developed chest pain accompanied by dyspnea."
        )
        event_concepts = [
            i
            for i, c in enumerate(parsed.concepts)
            if c.entity_type == "Sign_symptom"
        ]
        if len(event_concepts) >= 2:
            assert parsed.relations

    def test_no_relations_single_event(self, parser):
        parsed = parser.parse("The patient had dyspnea.")
        assert parsed.relations == [] or len(parsed.concepts) > 1

    def test_keyword_text_falls_back(self, parser):
        parsed = ParsedQuery(text="raw query")
        assert parsed.keyword_text() == "raw query"
