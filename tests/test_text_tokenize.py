"""Tests for repro.text.tokenize."""

from hypothesis import given, strategies as st

from repro.text.tokenize import (
    SentenceSplitter,
    Token,
    WordTokenizer,
    split_sentences,
    tokenize,
)


class TestWordTokenizer:
    def test_simple_words(self):
        tokens = tokenize("the patient had fever")
        assert [t.text for t in tokens] == ["the", "patient", "had", "fever"]

    def test_offsets_reconstruct_source(self):
        text = "BP was 120/80, HR 72."
        for token in tokenize(text):
            assert text[token.start : token.end] == token.text

    def test_numbers_with_units(self):
        tokens = tokenize("gave 50mg aspirin")
        assert "50mg" in [t.text for t in tokens]

    def test_decimal_and_thousands(self):
        tokens = [t.text for t in tokenize("troponin 3.5 and WBC 12,000")]
        assert "3.5" in tokens
        assert "12,000" in tokens

    def test_hyphenated_compound_kept_whole(self):
        tokens = [t.text for t in tokenize("a beta-blocker was started")]
        assert "beta-blocker" in tokens

    def test_punctuation_as_single_tokens(self):
        tokens = [t.text for t in tokenize("fever, cough!")]
        assert "," in tokens
        assert "!" in tokens

    def test_empty_string(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("   \n\t ") == []

    def test_token_length(self):
        token = Token("abc", 5, 8)
        assert len(token) == 3

    def test_token_overlaps(self):
        token = Token("abc", 5, 8)
        assert token.overlaps(7, 10)
        assert token.overlaps(0, 6)
        assert not token.overlaps(8, 10)
        assert not token.overlaps(0, 5)

    @given(st.text(max_size=200))
    def test_offsets_always_consistent(self, text):
        for token in WordTokenizer().tokenize(text):
            assert text[token.start : token.end] == token.text
            assert token.start < token.end

    @given(st.text(max_size=200))
    def test_tokens_never_overlap_each_other(self, text):
        tokens = WordTokenizer().tokenize(text)
        for a, b in zip(tokens, tokens[1:]):
            assert a.end <= b.start


class TestSentenceSplitter:
    def test_two_sentences(self):
        spans = split_sentences("He was admitted. He recovered.")
        assert len(spans) == 2

    def test_abbreviation_not_split(self):
        spans = split_sentences("Dr. Smith saw the patient. All was well.")
        assert len(spans) == 2

    def test_initials_not_split(self):
        spans = split_sentences("J. Smith and K. Jones wrote this. Done.")
        assert len(spans) == 2

    def test_question_and_exclamation(self):
        spans = split_sentences("Was it severe? Yes! Truly.")
        assert len(spans) == 3

    def test_spans_trimmed(self):
        text = "First sentence.   Second one."
        spans = SentenceSplitter().split(text)
        for start, end in spans:
            assert not text[start].isspace()
            assert not text[end - 1].isspace()

    def test_split_texts(self):
        texts = SentenceSplitter().split_texts("A b. C d.")
        assert texts == ["A b.", "C d."]

    def test_empty(self):
        assert split_sentences("") == []

    def test_no_terminal_punctuation(self):
        spans = split_sentences("no punctuation here")
        assert len(spans) == 1

    def test_clinical_dosing_abbreviations(self):
        spans = split_sentences("Aspirin 81 mg p.o. daily was given. Fine.")
        assert len(spans) == 2

    @given(st.text(max_size=300))
    def test_spans_are_ordered_and_disjoint(self, text):
        spans = SentenceSplitter().split(text)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2
        for start, end in spans:
            assert 0 <= start < end <= len(text)
