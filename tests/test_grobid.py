"""Tests for the Grobid analog: SimPDF, TEI XML, metadata, sections."""

import pytest

from repro.exceptions import ParseError
from repro.grobid.metadata import extract_metadata, _looks_like_author_list
from repro.grobid.sections import canonical_heading, segment_sections
from repro.grobid.service import GrobidService
from repro.grobid.simpdf import parse_simpdf, render_simpdf
from repro.grobid.tei import TeiDocument, parse_tei_xml, to_tei_xml

TITLE = "A case of atrial fibrillation presenting with syncope"
AUTHORS = ["Wei Chen", "Maria Garcia"]
AFFILS = ["Department of Cardiology, University Hospital"]
ABSTRACT = "We report a case of atrial fibrillation."
SECTIONS = [
    ("Presentation", "The patient presented with syncope."),
    ("Treatment", "Amiodarone was started."),
]


def sample_simpdf():
    return render_simpdf(TITLE, AUTHORS, AFFILS, ABSTRACT, SECTIONS)


class TestSimPdf:
    def test_roundtrip_blocks(self):
        pdf = parse_simpdf(sample_simpdf())
        assert pdf.n_pages >= 1
        texts = [b.text for b in pdf.page_blocks(1)]
        assert TITLE in texts

    def test_reading_order(self):
        pdf = parse_simpdf(sample_simpdf())
        blocks = pdf.page_blocks(1)
        ys = [b.y for b in blocks]
        assert ys == sorted(ys)

    def test_full_text_contains_everything(self):
        text = parse_simpdf(sample_simpdf()).full_text()
        assert TITLE in text
        assert "Amiodarone was started." in text

    def test_missing_header_rejected(self):
        with pytest.raises(ParseError):
            parse_simpdf("PAGE 1\n")

    def test_block_before_page_rejected(self):
        with pytest.raises(ParseError):
            parse_simpdf("%SimPDF 1.0\nBLOCK x=0 y=0\nhello\nENDBLOCK\n")

    def test_unterminated_block_rejected(self):
        with pytest.raises(ParseError):
            parse_simpdf("%SimPDF 1.0\nPAGE 1\nBLOCK x=0 y=0\nhello\n")

    def test_bad_attribute_rejected(self):
        with pytest.raises(ParseError):
            parse_simpdf("%SimPDF 1.0\nPAGE 1\nBLOCK x=abc y=0\nh\nENDBLOCK\n")

    def test_long_documents_paginate(self):
        sections = [(f"Section {i}", "text " * 10) for i in range(20)]
        pdf = parse_simpdf(
            render_simpdf(TITLE, AUTHORS, AFFILS, ABSTRACT, sections)
        )
        assert pdf.n_pages > 1


class TestTei:
    def test_roundtrip(self):
        doc = TeiDocument(
            title=TITLE,
            authors=list(AUTHORS),
            affiliations=list(AFFILS),
            abstract=ABSTRACT,
            sections=list(SECTIONS),
        )
        parsed = parse_tei_xml(to_tei_xml(doc))
        assert parsed.title == TITLE
        assert parsed.authors == AUTHORS
        assert parsed.affiliations == AFFILS
        assert parsed.abstract == ABSTRACT
        assert parsed.sections == SECTIONS

    def test_body_text(self):
        doc = TeiDocument(sections=list(SECTIONS))
        assert "syncope" in doc.body_text()

    def test_malformed_xml_rejected(self):
        with pytest.raises(ParseError):
            parse_tei_xml("<TEI><unclosed>")

    def test_wrong_root_rejected(self):
        with pytest.raises(ParseError):
            parse_tei_xml("<html></html>")


class TestMetadata:
    def test_title_is_largest_font(self):
        meta = extract_metadata(parse_simpdf(sample_simpdf()))
        assert meta.title == TITLE

    def test_authors_extracted(self):
        meta = extract_metadata(parse_simpdf(sample_simpdf()))
        assert meta.authors == AUTHORS

    def test_affiliations_extracted(self):
        meta = extract_metadata(parse_simpdf(sample_simpdf()))
        assert meta.affiliations == AFFILS

    def test_abstract_extracted(self):
        meta = extract_metadata(parse_simpdf(sample_simpdf()))
        assert meta.abstract == ABSTRACT

    def test_empty_pdf(self):
        from repro.grobid.simpdf import SimPdfDocument

        meta = extract_metadata(SimPdfDocument())
        assert meta.title == ""

    def test_author_list_heuristic(self):
        assert _looks_like_author_list("Wei Chen, Maria Garcia")
        assert not _looks_like_author_list("the patient was admitted here")
        assert not _looks_like_author_list("")


class TestSections:
    def test_canonical_headings(self):
        assert canonical_heading("Case Presentation") == "presentation"
        assert canonical_heading("MANAGEMENT") == "treatment"
        assert canonical_heading("Weird Heading") == "other"

    def test_segment_pairs_headings_with_paragraphs(self):
        sections = segment_sections(parse_simpdf(sample_simpdf()))
        names = [s.name for s in sections]
        assert names == ["presentation", "treatment"]
        assert sections[0].sentences

    def test_title_block_not_a_section(self):
        sections = segment_sections(parse_simpdf(sample_simpdf()))
        assert all(TITLE not in s.text for s in sections)


class TestGrobidService:
    def test_pdf_pipeline(self):
        pub = GrobidService().process(sample_simpdf())
        assert pub.metadata.title == TITLE
        assert "syncope" in pub.body_text()
        assert pub.tei_xml.startswith("<TEI>")

    def test_xml_pipeline(self):
        tei = to_tei_xml(
            TeiDocument(
                title=TITLE,
                authors=list(AUTHORS),
                abstract=ABSTRACT,
                sections=list(SECTIONS),
            )
        )
        pub = GrobidService().process(tei)
        assert pub.metadata.title == TITLE
        assert len(pub.sections) == 2

    def test_xml_declaration_tolerated(self):
        tei = '<?xml version="1.0"?>' + to_tei_xml(
            TeiDocument(title=TITLE)
        )
        assert GrobidService().process(tei).metadata.title == TITLE

    def test_unknown_format_rejected(self):
        with pytest.raises(ParseError):
            GrobidService().process("just some text")

    def test_tei_roundtrip_through_service(self):
        pub = GrobidService().process(sample_simpdf())
        again = GrobidService().process(pub.tei_xml)
        assert again.metadata.title == TITLE
        assert [s.heading for s in again.sections] == [
            s.heading for s in pub.sections
        ]
