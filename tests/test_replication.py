"""Replicated serving tier: WAL shipping, promotion, failover reads."""

import pytest

from repro.durability import FaultInjector, MemFS
from repro.exceptions import DurabilityError, ReplicaError
from repro.graphdb.graph import PropertyGraph
from repro.search.engine import SearchEngine
from repro.serving import ReplicatedShardedSearchEngine, ShardReplicaSet
from repro.testing.crash import _engine_state
from repro.testing.replication import check_replication_case


def _engine_set(n_replicas=1, fs=None, **kwargs):
    return ShardReplicaSet(
        0, SearchEngine, n_replicas=n_replicas, fs=fs, **kwargs
    )


def _index_op(doc_id, text="fever and cough"):
    return lambda store: store.index(doc_id, {"body": text})


class TestShardReplicaSet:
    def test_mutations_ship_to_replicas(self):
        replica_set = _engine_set(n_replicas=2)
        for i in range(4):
            replica_set.mutate(_index_op(f"d{i}"))
        assert replica_set.durable_lsn == 4
        assert replica_set.lag_lsns() == [0, 0]
        want = _engine_state(replica_set.primary)
        for replica in replica_set.replicas:
            assert _engine_state(replica.store) == want

    def test_ship_every_creates_real_lag(self):
        replica_set = _engine_set(ship_every=3)
        replica_set.mutate(_index_op("d0"))
        replica_set.mutate(_index_op("d1"))
        assert replica_set.lag_lsns() == [2]
        # A lagging replica must not serve; the primary does.
        assert replica_set.read_store() is replica_set.primary
        replica_set.mutate(_index_op("d2"))  # third commit ships
        assert replica_set.lag_lsns() == [0]
        assert replica_set.read_store() is not replica_set.primary

    def test_snapshot_bounds_wal_and_bootstraps_replicas(self):
        fs = MemFS()
        replica_set = _engine_set(fs=fs, ship_every=100, snapshot_every=2)
        for i in range(5):
            replica_set.mutate(_index_op(f"d{i}"))
        assert replica_set.snapshot_lsn == 4
        # The replica never saw a shipped record; catching up must
        # bootstrap from the snapshot then apply the WAL suffix.
        replica_set.ship()
        assert replica_set.lag_lsns() == [0]
        assert _engine_state(replica_set.replicas[0].store) == _engine_state(
            replica_set.primary
        )

    def test_promote_recovers_acked_writes_despite_lag(self):
        replica_set = _engine_set(ship_every=100)  # replica never catches up
        for i in range(3):
            replica_set.mutate(_index_op(f"d{i}"))
        before = _engine_state(replica_set.primary)
        replica_set.crash_primary()
        with pytest.raises(ReplicaError):
            replica_set.read_store()
        lsn = replica_set.promote()
        assert lsn == 3
        assert _engine_state(replica_set.primary) == before
        assert replica_set.promotions == 1
        # The replication factor is restored by a fresh bootstrap.
        assert len(replica_set.replicas) == 1
        assert replica_set.lag_lsns() == [0]

    def test_promote_after_failed_flush_discards_dirty_buffer(self):
        fs = FaultInjector(MemFS(), kind="io_fsync", at_op=3, seed=0)
        replica_set = _engine_set(fs=fs)
        replica_set.mutate(_index_op("d0"))  # ops 0,1: append+fsync
        with pytest.raises(DurabilityError):
            replica_set.mutate(_index_op("d1"))  # fsync fails at op 3
        assert replica_set.down
        with pytest.raises(ReplicaError):
            replica_set.mutate(_index_op("d2"))
        replica_set.promote()
        # The unacked d1 record died with the old primary's buffer; it
        # must not resurface in the promoted WAL stream.
        assert replica_set.durable_lsn == 1
        replica_set.mutate(_index_op("d2"))
        fresh = ShardReplicaSet(0, SearchEngine, n_replicas=0, fs=fs.fs)
        replayed = fresh.wal.replay()
        lsns = [record["lsn"] for record in replayed.records]
        assert lsns == [1, 2]

    def test_mutate_on_down_primary_raises(self):
        replica_set = _engine_set()
        replica_set.crash_primary()
        with pytest.raises(ReplicaError, match="down"):
            replica_set.mutate(_index_op("d0"))

    def test_promote_without_replicas_raises(self):
        replica_set = _engine_set(n_replicas=0)
        replica_set.crash_primary()
        with pytest.raises(ReplicaError, match="no replica"):
            replica_set.promote()

    def test_generic_over_property_graph(self):
        """The set is store-agnostic: any Durable store replicates."""
        replica_set = ShardReplicaSet(0, PropertyGraph, n_replicas=1)
        replica_set.mutate(lambda g: g.add_node("n0", entityType="Report"))
        replica_set.mutate(lambda g: g.add_node("n1", entityType="Report"))
        replica_set.mutate(lambda g: g.add_edge("n0", "n1", "BEFORE"))
        replica_set.crash_primary()
        replica_set.promote()
        assert replica_set.primary.n_nodes == 2
        assert replica_set.primary.n_edges == 1
        assert replica_set.replicas[0].store.n_nodes == 2


class TestReplicatedShardedSearchEngine:
    def _tier(self, **kwargs):
        kwargs.setdefault("executor_mode", "serial")
        return ReplicatedShardedSearchEngine(2, **kwargs)

    def _fill(self, tier, n=8):
        docs = {
            f"d{i}": {"body": f"clinical report {i} fever cough"}
            for i in range(n)
        }
        reference = SearchEngine()
        for doc_id, fields in docs.items():
            tier.index(doc_id, fields)
            reference.index(doc_id, fields)
        return reference

    def test_rank_equivalence_with_unsharded_engine(self):
        tier = self._tier()
        reference = self._fill(tier)
        got = tier.search("fever report", size=5)
        want = reference.search({"match": {"body": "fever report"}}, size=5)
        assert [(h.doc_id, h.score) for h in got] == [
            (h.doc_id, h.score) for h in want
        ]

    def test_read_failover_promotes_and_bumps_epoch(self):
        tier = self._tier()
        reference = self._fill(tier)
        tier.search("fever", size=3)  # populate the cache
        epochs_before = tier.router.epochs()
        tier.crash_primary(0)
        got = tier.search("report cough", size=5)
        want = reference.search({"match": {"body": "report cough"}}, size=5)
        assert [h.doc_id for h in got] == [h.doc_id for h in want]
        assert tier.failovers == 1
        assert tier.router.epochs() != epochs_before

    def test_write_failover_retries_on_promoted_primary(self):
        tier = self._tier()
        self._fill(tier)
        before = tier.n_documents
        tier.crash_primary(0)
        tier.crash_primary(1)
        # One new doc per shard, so both downed primaries must fail
        # over during the writes.
        hit_shards = set()
        n_new = 0
        for i in range(100, 120):
            doc_id = f"d{i}"
            shard = tier.router.shard_of(doc_id)
            if shard in hit_shards:
                continue
            hit_shards.add(shard)
            tier.index(doc_id, {"body": "new fever document"})
            n_new += 1
            if len(hit_shards) == 2:
                break
        assert len(hit_shards) == 2
        assert tier.n_documents == before + n_new
        assert tier.failovers == 2

    def test_stats_surface_lag_and_promotions(self):
        tier = self._tier(ship_every=5)
        self._fill(tier, n=6)
        tier.crash_primary(0)
        tier.promote(0)
        stats = tier.stats()
        assert stats["failovers"] == 1
        shard0 = stats["replication"][0]
        assert shard0["promotions"] == 1
        assert shard0["durable_lsn"] >= 1
        assert all(lag >= 0 for s in stats["replication"] for lag in s["lag_lsns"])

    def test_zero_document_shard_serves_empty(self):
        """A shard that owns no documents still fans out and merges
        cleanly (the all-shards-empty and some-shards-empty cases)."""
        tier = self._tier()
        assert tier.search("fever", size=5) == []
        # Route everything to whichever shard owns d0: index one doc.
        tier.index("d0", {"body": "lone fever document"})
        hits = tier.search("fever", size=5)
        assert [h.doc_id for h in hits] == ["d0"]
        empty_shard = 1 - tier.router.shard_of("d0")
        assert tier.sets[empty_shard].primary.n_documents == 0

    def test_highlight_served_after_promotion(self):
        tier = self._tier()
        self._fill(tier)
        shard = tier.router.shard_of("d1")
        tier.crash_primary(shard)
        snippets = tier.highlight("d1", "body", "fever")
        assert any("fever" in s for s in snippets)


class TestReplicationChecker:
    def test_clean_case_passes(self):
        case = {
            "n_shards": 2,
            "n_replicas": 1,
            "cache_size": 4,
            "analyzer": "standard",
            "ship_every": 1,
            "snapshot_every": None,
            "actions": [
                {"op": "index", "id": "d0", "fields": {"body": "fever"}},
                {"op": "index", "id": "d1", "fields": {"body": "cough"}},
                {"op": "delete", "id": "d0"},
            ],
            "queries": [{"match": {"body": "fever cough"}}],
            "crash": None,
        }
        assert check_replication_case(case) is None

    @pytest.mark.parametrize(
        "kind", ["kill", "crash", "torn", "io_append", "io_fsync"]
    )
    def test_crash_kinds_converge(self, kind):
        case = {
            "n_shards": 2,
            "n_replicas": 2,
            "cache_size": 4,
            "analyzer": "standard",
            "ship_every": 2,
            "snapshot_every": 2,
            "actions": [
                {
                    "op": "index",
                    "id": f"d{i}",
                    "fields": {"body": f"report {i} fever"},
                }
                for i in range(6)
            ],
            "queries": [{"match": {"body": "fever report"}}],
            "crash": {
                "kind": kind,
                "at_action": 2,
                "at_op": 5,
                "seed": 7,
                "shard": 0,
            },
        }
        assert check_replication_case(case) is None

    def test_malformed_case_is_vacuous(self):
        assert check_replication_case({"n_shards": "x"}) is None
        assert check_replication_case(None) is None
