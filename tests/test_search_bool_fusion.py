"""Regression tests: _bool edge cases, fusion dedup, fast deletion."""

from repro.ir.ranking import fuse_results
from repro.search.analysis import create_analyzer, STANDARD_ANALYZER_CONFIG
from repro.search.engine import SearchEngine
from repro.search.inverted_index import InvertedIndex


def _engine():
    engine = SearchEngine()
    engine.index("d1", {"body": "fever and cough in the clinic"})
    engine.index("d2", {"body": "fever without cough"})
    engine.index("d3", {"body": "headache only"})
    return engine


class TestBoolEdgeCases:
    def test_must_not_only(self):
        engine = _engine()
        hits = engine.search(
            {"bool": {"must_not": [{"match": {"body": "cough"}}]}}, size=10
        )
        assert [h.doc_id for h in hits] == ["d3"]
        assert all(h.score == 1.0 for h in hits)

    def test_must_not_everything_matches_nothing(self):
        engine = _engine()
        hits = engine.search(
            {"bool": {"must_not": [{"match_all": {}}]}}, size=10
        )
        assert hits == []

    def test_empty_should_list_matches_all(self):
        engine = _engine()
        hits = engine.search({"bool": {"should": []}}, size=10)
        assert {h.doc_id for h in hits} == {"d1", "d2", "d3"}

    def test_empty_bool_matches_all(self):
        engine = _engine()
        hits = engine.search({"bool": {}}, size=10)
        assert {h.doc_id for h in hits} == {"d1", "d2", "d3"}

    def test_should_only_unions(self):
        engine = _engine()
        hits = engine.search(
            {
                "bool": {
                    "should": [
                        {"match": {"body": "cough"}},
                        {"match": {"body": "headache"}},
                    ]
                }
            },
            size=10,
        )
        assert {h.doc_id for h in hits} == {"d1", "d2", "d3"}

    def test_must_with_must_not(self):
        engine = _engine()
        hits = engine.search(
            {
                "bool": {
                    "must": [{"match": {"body": "fever"}}],
                    "must_not": [{"match": {"body": "clinic"}}],
                }
            },
            size=10,
        )
        assert [h.doc_id for h in hits] == ["d2"]


class TestFuseResults:
    def test_graph_block_precedes_keyword_block(self):
        fused = fuse_results(
            [("g1", 0.2)], [("k1", 99.0), ("g1", 50.0)], size=10
        )
        assert fused == [("g1", 0.2, "graph"), ("k1", 99.0, "keyword")]

    def test_dedup_prefers_graph_engine(self):
        fused = fuse_results(
            [("a", 1.0), ("b", 2.0)], [("a", 9.0), ("c", 1.0)], size=10
        )
        engines = {doc: engine for doc, _, engine in fused}
        assert engines["a"] == "graph"
        assert engines["c"] == "keyword"
        assert len(fused) == 3

    def test_ordering_score_then_doc_id(self):
        fused = fuse_results(
            [("b", 1.0), ("a", 1.0), ("c", 2.0)], [], size=10
        )
        assert [doc for doc, _, _ in fused] == ["c", "a", "b"]

    def test_size_truncates_graph_block_first(self):
        fused = fuse_results(
            [("a", 3.0), ("b", 2.0), ("c", 1.0)],
            [("d", 9.0)],
            size=2,
        )
        assert [doc for doc, _, _ in fused] == ["a", "b"]

    def test_duplicate_within_keyword_block(self):
        fused = fuse_results(
            [], [("a", 2.0), ("a", 1.0), ("b", 1.5)], size=10
        )
        assert [doc for doc, _, _ in fused] == ["a", "b"]


class TestInvertedIndexDeletion:
    def _analyzed(self, text):
        return create_analyzer(STANDARD_ANALYZER_CONFIG).analyze(text)

    def test_remove_only_touches_own_terms(self):
        index = InvertedIndex()
        index.add_document(0, self._analyzed("alpha beta gamma"))
        index.add_document(1, self._analyzed("beta delta"))
        index.remove_document(0)
        assert index.n_documents == 1
        assert index.document_frequency("beta") == 1
        assert index.document_frequency("alpha") == 0
        assert index.document_frequency("delta") == 1
        assert "alpha" not in index.terms()
        assert index.doc_length(0) == 0

    def test_remove_absent_is_noop(self):
        index = InvertedIndex()
        index.add_document(0, self._analyzed("alpha"))
        index.remove_document(42)
        assert index.n_documents == 1
        assert index.document_frequency("alpha") == 1

    def test_readd_replaces_previous_content(self):
        index = InvertedIndex()
        index.add_document(0, self._analyzed("alpha beta"))
        index.add_document(0, self._analyzed("gamma"))
        assert index.document_frequency("alpha") == 0
        assert index.document_frequency("gamma") == 1
        assert index.n_documents == 1

    def test_reverse_map_cleaned_up(self):
        index = InvertedIndex()
        index.add_document(0, self._analyzed("alpha beta"))
        index.remove_document(0)
        assert index._doc_terms == {}
        assert index._postings == {}

    def test_engine_delete_then_search(self):
        engine = _engine()
        assert engine.delete("d1")
        assert not engine.delete("d1")
        hits = engine.search("fever", size=10)
        assert [h.doc_id for h in hits] == ["d2"]
        assert engine.n_documents == 2
