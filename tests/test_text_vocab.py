"""Tests for the Vocabulary mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.text.vocab import Vocabulary


class TestVocabulary:
    def test_ids_dense_in_insertion_order(self):
        vocab = Vocabulary()
        assert vocab.add("a") == 0
        assert vocab.add("b") == 1
        assert vocab.add("a") == 0

    def test_unk_fallback(self):
        vocab = Vocabulary(unk="<unk>")
        vocab.add("fever")
        assert vocab["unseen"] == vocab["<unk>"]

    def test_keyerror_without_unk(self):
        vocab = Vocabulary()
        with pytest.raises(KeyError):
            vocab["missing"]

    def test_inverse_lookup(self):
        vocab = Vocabulary()
        idx = vocab.add("cough")
        assert vocab.token(idx) == "cough"

    def test_contains_and_len(self):
        vocab = Vocabulary()
        vocab.update(["a", "b", "a"])
        assert "a" in vocab
        assert len(vocab) == 2

    def test_freeze_lookup_does_not_mutate(self):
        vocab = Vocabulary()
        assert vocab.freeze_lookup("new") is None
        assert len(vocab) == 0

    def test_roundtrip_serialization(self):
        vocab = Vocabulary(unk="<unk>")
        vocab.update(["x", "y", "z"])
        rebuilt = Vocabulary.from_dict(vocab.to_dict(), unk="<unk>")
        assert rebuilt.to_dict() == vocab.to_dict()
        assert rebuilt["nope"] == vocab["<unk>"]

    def test_from_dict_rejects_gaps(self):
        with pytest.raises(ValueError):
            Vocabulary.from_dict({"a": 0, "b": 2})

    def test_from_dict_rejects_missing_unk(self):
        with pytest.raises(ValueError):
            Vocabulary.from_dict({"a": 0}, unk="<unk>")

    @given(st.lists(st.text(max_size=8), max_size=40))
    def test_roundtrip_property(self, tokens):
        vocab = Vocabulary()
        vocab.update(tokens)
        rebuilt = Vocabulary.from_dict(vocab.to_dict())
        for token in tokens:
            assert rebuilt[token] == vocab[token]
