"""Integration tests: the full crawl->parse->extract->index->serve flow."""

import pytest

from repro.corpus.generator import CaseReportGenerator
from repro.crawler.repository import SyntheticPubMed
from repro.exceptions import PipelineError
from repro.ner.encoding import spans_of_document
from repro.pipeline import ClinicalExtractor, CreatePipeline


class TestClinicalExtractor:
    def test_train_requires_data(self):
        with pytest.raises(PipelineError):
            ClinicalExtractor.train([])

    def test_extraction_quality_on_held_out(self, demo_system):
        pipeline, _ = demo_system
        generator = CaseReportGenerator(seed=909)
        report = generator.generate("held-out")
        extracted = pipeline.extractor.extract("held-out", report.text)
        extracted.verify()
        gold = set(spans_of_document(report.annotations))
        predicted = set(spans_of_document(extracted))
        recall = len(gold & predicted) / len(gold)
        assert recall > 0.5

    def test_extraction_produces_relations(self, demo_system):
        pipeline, _ = demo_system
        report = CaseReportGenerator(seed=910).generate("x")
        extracted = pipeline.extractor.extract("x", report.text)
        assert extracted.relations

    def test_extracted_relations_globally_consistent(self, demo_system):
        from repro.temporal.graph import TemporalGraph
        from repro.temporal.relations import THREE_WAY_ALGEBRA

        pipeline, _ = demo_system
        report = CaseReportGenerator(seed=911).generate("y")
        extracted = pipeline.extractor.extract("y", report.text)
        graph = TemporalGraph(algebra=THREE_WAY_ALGEBRA)
        for rel in extracted.relations.values():
            if rel.label in ("BEFORE", "AFTER", "OVERLAP"):
                graph.add(rel.source, rel.target, rel.label)
        assert graph.is_consistent()


class TestPipelineRun:
    def test_stats_consistent(self, demo_system):
        pipeline, reports = demo_system
        assert pipeline.stats.crawled == len(reports)
        assert pipeline.stats.parsed == pipeline.stats.crawled
        assert pipeline.stats.indexed == pipeline.stats.extracted
        assert pipeline.stats.graph_nodes > 0

    def test_every_report_stored_and_searchable(self, demo_system):
        pipeline, reports = demo_system
        assert pipeline.store.collection("reports").count() >= len(reports)
        assert pipeline.indexer.engine.n_documents >= len(reports)

    def test_search_finds_relevant_report(self, demo_system):
        pipeline, reports = demo_system
        report = reports[0]
        symptom = report.annotations.spans_with_label("Sign_symptom")[0]
        results = pipeline.searcher.search(symptom.text, size=16)
        assert any(r.doc_id == report.pmid for r in results)

    def test_parse_failures_counted(self, demo_system):
        pipeline, _ = demo_system
        assert pipeline.stats.parse_failures == 0

    def test_fresh_pipeline_small_site(self, demo_system):
        # Re-ingesting a tiny site with the already-trained extractor.
        trained, _ = demo_system
        pipeline = CreatePipeline(extractor=trained.extractor)
        generator = CaseReportGenerator(seed=955)
        reports = [generator.generate(f"mini-{i}") for i in range(3)]
        site = SyntheticPubMed(reports, seed=1)
        stats = pipeline.ingest_from_site(site)
        assert stats.indexed == 3
        assert pipeline.app.handle("GET", "/stats").body["n_reports"] == 3


class TestSegmentBackedPipeline:
    def test_segment_dir_wires_segment_engine(self, demo_system, tmp_path):
        from repro.search.segment_engine import SegmentSearchEngine

        trained, _ = demo_system
        pipeline = CreatePipeline(
            extractor=trained.extractor,
            segment_dir=str(tmp_path / "segments"),
        )
        assert isinstance(pipeline.indexer.engine, SegmentSearchEngine)
        generator = CaseReportGenerator(seed=956)
        reports = [generator.generate(f"segp-{i}") for i in range(3)]
        site = SyntheticPubMed(reports, seed=1)
        stats = pipeline.ingest_from_site(site)
        assert stats.indexed == 3
        # Sealed + buffered docs both serve through the searcher.
        pipeline.indexer.engine.flush()
        report = reports[0]
        symptom = report.annotations.spans_with_label("Sign_symptom")[0]
        results = pipeline.searcher.search(symptom.text, size=8)
        assert any(r.doc_id == report.pmid for r in results)

    def test_sharded_config_ignores_segment_dir(self, demo_system, tmp_path):
        from repro.serving import ShardedIrIndexer

        trained, _ = demo_system
        pipeline = CreatePipeline(
            extractor=trained.extractor,
            serving_shards=2,
            segment_dir=str(tmp_path / "unused"),
        )
        assert isinstance(pipeline.indexer, ShardedIrIndexer)
