"""Tests for inter-annotator agreement measurement."""

import pytest

from repro.annotation.agreement import AgreementReport, agreement, cohens_kappa
from repro.annotation.model import AnnotationDocument

TEXT = "The patient developed fever and a mild cough after admission."


def annotator_doc(spans, relations=()):
    doc = AnnotationDocument(doc_id="d", text=TEXT)
    ids = []
    for label, start, end in spans:
        ids.append(doc.add_textbound(label, start, end).ann_id)
    for label, src, tgt in relations:
        doc.add_relation(label, ids[src], ids[tgt])
    return doc


class TestCohensKappa:
    def test_perfect_agreement(self):
        assert cohens_kappa(["a", "b", "a"], ["a", "b", "a"]) == 1.0

    def test_empty_sequences(self):
        assert cohens_kappa([], []) == 1.0

    def test_chance_level(self):
        # Annotator B ignores A: agreement equals chance.
        a = ["x", "x", "y", "y"]
        b = ["x", "y", "x", "y"]
        assert cohens_kappa(a, b) == pytest.approx(0.0)

    def test_below_chance_negative(self):
        a = ["x", "y", "x", "y"]
        b = ["y", "x", "y", "x"]
        assert cohens_kappa(a, b) < 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            cohens_kappa(["a"], [])

    def test_single_constant_label(self):
        assert cohens_kappa(["a", "a"], ["a", "a"]) == 1.0


class TestAgreement:
    def test_identical_annotators(self):
        spans = [("Sign_symptom", 22, 27), ("Sign_symptom", 39, 44)]
        relations = [("OVERLAP", 0, 1)]
        report = agreement(
            [annotator_doc(spans, relations)],
            [annotator_doc(spans, relations)],
        )
        assert report.span_f1.f1 == 1.0
        assert report.token_kappa == 1.0
        assert report.relation_f1.f1 == 1.0
        assert report.n_documents == 1

    def test_partial_span_overlap(self):
        a = annotator_doc([("Sign_symptom", 22, 27), ("Sign_symptom", 39, 44)])
        b = annotator_doc([("Sign_symptom", 22, 27)])
        report = agreement([a], [b])
        assert 0.0 < report.span_f1.f1 < 1.0
        assert report.token_kappa < 1.0

    def test_label_disagreement_counts(self):
        a = annotator_doc([("Sign_symptom", 22, 27)])
        b = annotator_doc([("Disease_disorder", 22, 27)])
        report = agreement([a], [b])
        assert report.span_f1.f1 == 0.0

    def test_relation_agreement_by_offsets_not_ids(self):
        spans = [("Sign_symptom", 22, 27), ("Sign_symptom", 39, 44)]
        a = annotator_doc(spans, [("OVERLAP", 0, 1)])
        # Same spans added in reverse order -> different T ids.
        b = AnnotationDocument(doc_id="d", text=TEXT)
        cough = b.add_textbound("Sign_symptom", 39, 44)
        fever = b.add_textbound("Sign_symptom", 22, 27)
        b.add_relation("OVERLAP", fever.ann_id, cough.ann_id)
        report = agreement([a], [b])
        assert report.relation_f1.f1 == 1.0

    def test_document_count_mismatch(self):
        with pytest.raises(ValueError):
            agreement([annotator_doc([])], [])

    def test_text_mismatch(self):
        a = annotator_doc([])
        b = AnnotationDocument(doc_id="d", text="different text")
        with pytest.raises(ValueError):
            agreement([a], [b])

    def test_simulated_annotator_noise(self, cvd_reports):
        # Annotator B drops one span per document: agreement high but
        # below perfect, recall asymmetric.
        originals = [r.annotations for r in cvd_reports[:5]]
        noisy = []
        for doc in originals:
            clone = AnnotationDocument(doc_id=doc.doc_id, text=doc.text)
            spans = doc.spans_sorted()
            for tb in spans[:-1]:
                clone.add_textbound(tb.label, tb.start, tb.end)
            noisy.append(clone)
        report = agreement(originals, noisy)
        assert 0.8 < report.span_f1.f1 < 1.0
        assert report.span_f1.precision == 1.0  # B's spans all in A
        assert report.token_kappa > 0.8
