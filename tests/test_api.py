"""Tests for the application facade (the REST-like backend)."""

import pytest

from repro.annotation.brat import serialize_ann
from repro.crawler.repository import publication_fields
from repro.grobid.simpdf import render_simpdf


@pytest.fixture(scope="module")
def app(demo_system):
    pipeline, _reports = demo_system
    return pipeline.app


@pytest.fixture(scope="module")
def some_id(app):
    return app.store.collection("reports").find({}, limit=1)[0]["_id"]


class TestRouting:
    def test_unknown_route_404(self, app):
        assert app.handle("GET", "/nothing/here").status == 404

    def test_wrong_method_404(self, app):
        assert app.handle("DELETE", "/reports").status == 404


class TestReports:
    def test_list_reports(self, app):
        response = app.handle("GET", "/reports", params={"limit": 5})
        assert response.ok
        assert len(response.body["reports"]) == 5

    def test_list_projection_shape(self, app):
        response = app.handle("GET", "/reports", params={"limit": 1})
        report = response.body["reports"][0]
        assert "_id" in report
        assert "text" not in report  # projected out

    def test_get_report(self, app, some_id):
        response = app.handle("GET", f"/reports/{some_id}")
        assert response.ok
        assert response.body["_id"] == some_id
        assert response.body["text"]

    def test_get_unknown_report_404(self, app):
        assert app.handle("GET", "/reports/zzz").status == 404


class TestGraphEndpoints:
    def test_graph_json(self, app, some_id):
        response = app.handle("GET", f"/reports/{some_id}/graph")
        assert response.ok
        assert response.body["nodes"]
        node = response.body["nodes"][0]
        assert {"nodeId", "label", "entityType"} <= set(node)

    def test_svg(self, app, some_id):
        response = app.handle("GET", f"/reports/{some_id}/svg")
        assert response.ok
        assert response.body.startswith("<svg")

    def test_timeline(self, app, some_id):
        response = app.handle("GET", f"/reports/{some_id}/timeline")
        assert response.ok
        assert response.body.startswith("<svg")


class TestAnnotations:
    def test_get_ann(self, app, some_id):
        response = app.handle("GET", f"/reports/{some_id}/ann")
        assert response.ok
        assert response.body.splitlines()[0].startswith("T")

    def test_put_ann_roundtrip(self, app, some_id):
        current = app.handle("GET", f"/reports/{some_id}/ann").body
        response = app.handle("PUT", f"/reports/{some_id}/ann", body=current)
        assert response.ok

    def test_put_ann_rejects_bad_offsets(self, app, some_id):
        bad = "T1\tSign_symptom 0 999999\twhatever\n"
        response = app.handle("PUT", f"/reports/{some_id}/ann", body=bad)
        assert response.status == 422

    def test_put_ann_rejects_schema_violation(self, app, some_id):
        text = app.handle("GET", f"/reports/{some_id}").body["text"]
        bad = f"T1\tMartianLabel 0 3\t{text[0:3]}\n"
        response = app.handle("PUT", f"/reports/{some_id}/ann", body=bad)
        assert response.status == 422
        assert response.body["issues"]

    def test_put_ann_requires_string_body(self, app, some_id):
        response = app.handle("PUT", f"/reports/{some_id}/ann", body={"x": 1})
        assert response.status == 400


class TestSearchEndpoint:
    def test_search_returns_ranked_results(self, app):
        response = app.handle(
            "GET", "/search", params={"q": "chest pain", "size": 5}
        )
        assert response.ok
        results = response.body["results"]
        assert results
        assert all({"id", "score", "engine"} <= set(r) for r in results)

    def test_search_requires_query(self, app):
        assert app.handle("GET", "/search").status == 400


class TestSubmission:
    def test_pdf_submission(self, app, demo_system):
        _pipeline, reports = demo_system
        fields = publication_fields(reports[0])
        response = app.handle(
            "POST", "/submissions", body=render_simpdf(*fields)
        )
        assert response.status == 201
        assert response.body["title"] == reports[0].title
        assert response.body["extracted"]
        # The submitted report is now retrievable.
        stored = app.handle("GET", f"/reports/{response.body['id']}")
        assert stored.ok

    def test_submission_rejects_garbage(self, app):
        assert app.handle("POST", "/submissions", body="garbage").status == 422

    def test_submission_requires_body(self, app):
        assert app.handle("POST", "/submissions", body=None).status == 400


class TestStats:
    def test_stats_shape(self, app):
        response = app.handle("GET", "/stats")
        assert response.ok
        assert response.body["n_reports"] > 0
        assert response.body["graph_nodes"] > 0


class TestIntParamValidation:
    """Every paginated route must 400 (with a JSON error body) on
    non-integer or negative skip/limit/size — never 500, never accept.

    Regression for the bare ``int(params.get(...))`` calls that used to
    raise an uncaught ValueError on ``GET /reports?skip=abc``.
    """

    @pytest.fixture(scope="class")
    def cohort_app(self, app):
        app.handle(
            "POST",
            "/cohorts",
            body={"name": "pv-check", "inclusion": [], "exclusion": []},
        )
        yield app
        app.handle("DELETE", "/cohorts/pv-check")

    # (method, path, param names subject to integer validation)
    PAGINATED_ROUTES = [
        ("GET", "/reports", {}, ["skip", "limit"]),
        ("GET", "/search", {"q": "fever"}, ["size"]),
        ("GET", "/suggest", {"q": "fe"}, ["size"]),
        ("POST", "/cohorts/pv-check/evaluate", {}, ["skip", "limit"]),
        ("GET", "/review/queue", {}, ["skip", "limit"]),
    ]

    @pytest.mark.parametrize("bad", ["abc", "-1", "1.5", ""])
    def test_bad_values_return_400(self, cohort_app, bad):
        for method, path, base_params, names in self.PAGINATED_ROUTES:
            for name in names:
                response = cohort_app.handle(
                    method, path, params={**base_params, name: bad}
                )
                assert response.status == 400, (path, name, bad)
                assert isinstance(response.body, dict), (path, name, bad)
                assert name in response.body["error"], (path, name, bad)

    def test_good_values_still_work(self, cohort_app):
        for method, path, base_params, names in self.PAGINATED_ROUTES:
            params = {**base_params, **{name: "1" for name in names}}
            response = cohort_app.handle(method, path, params=params)
            assert response.ok, (path, response.body)

    def test_defaults_unaffected(self, cohort_app):
        for method, path, base_params, _names in self.PAGINATED_ROUTES:
            response = cohort_app.handle(method, path, params=base_params)
            assert response.ok, (path, response.body)
