"""Tests for the full-text search substrate (ElasticSearch analog + Solr)."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import AnalyzerError, SearchError
from repro.search.analysis import (
    CREATE_IR_ANALYZER_CONFIG,
    NGramTokenizer,
    STANDARD_ANALYZER_CONFIG,
    StandardTokenizer,
    KeywordTokenizer,
    WhitespaceTokenizer,
    asciifolding_filter,
    create_analyzer,
    html_strip,
    lowercase_filter,
    stop_filter,
    stemmer_filter,
    unique_filter,
)
from repro.search.bm25 import BM25Scorer
from repro.search.engine import SearchEngine, create_ir_engine
from repro.search.inverted_index import InvertedIndex
from repro.search.solr import SolrBaseline


class TestTokenizers:
    def test_standard_drops_punctuation(self):
        terms = [t.term for t in StandardTokenizer().tokenize("fever, cough!")]
        assert terms == ["fever", "cough"]

    def test_whitespace(self):
        terms = [t.term for t in WhitespaceTokenizer().tokenize("a  b\nc")]
        assert terms == ["a", "b", "c"]

    def test_keyword_single_token(self):
        tokens = KeywordTokenizer().tokenize("atrial fibrillation")
        assert len(tokens) == 1
        assert tokens[0].term == "atrial fibrillation"

    def test_keyword_empty(self):
        assert KeywordTokenizer().tokenize("") == []

    def test_ngram_paper_config(self):
        tokens = NGramTokenizer(3, 25).tokenize("amiodarone")
        terms = {t.term for t in tokens}
        assert "ami" in terms
        assert "amiodarone" in terms
        assert all(3 <= len(t) <= 25 for t in terms)

    def test_ngram_splits_on_nonalnum(self):
        terms = {t.term for t in NGramTokenizer(3, 25).tokenize("atrial-fib")}
        assert "atrial" in terms
        assert not any("-" in t for t in terms)

    def test_ngram_positions_per_word(self):
        tokens = NGramTokenizer(3, 25).tokenize("abc def")
        positions = {t.term: t.position for t in tokens}
        assert positions["abc"] == 0
        assert positions["def"] == 1

    def test_ngram_short_word_kept(self):
        terms = [t.term for t in NGramTokenizer(3, 25).tokenize("BP")]
        assert terms == ["BP"]

    def test_ngram_bad_bounds(self):
        with pytest.raises(AnalyzerError):
            NGramTokenizer(5, 3)


class TestTokenFilters:
    def _tokens(self, text):
        return StandardTokenizer().tokenize(text)

    def test_lowercase(self):
        out = lowercase_filter(self._tokens("FEVER Cough"))
        assert [t.term for t in out] == ["fever", "cough"]

    def test_asciifolding(self):
        out = asciifolding_filter(self._tokens("café naïve"))
        assert [t.term for t in out] == ["cafe", "naive"]

    def test_stop(self):
        out = stop_filter(lowercase_filter(self._tokens("the fever and cough")))
        assert [t.term for t in out] == ["fever", "cough"]

    def test_stemmer(self):
        out = stemmer_filter(lowercase_filter(self._tokens("palpitations")))
        assert out[0].term == stemmer_filter(
            lowercase_filter(self._tokens("palpitation"))
        )[0].term

    def test_unique(self):
        tokens = self._tokens("abc")
        out = unique_filter(tokens + tokens)
        assert len(out) == 1

    def test_html_strip(self):
        assert html_strip("<b>fever</b>").strip() == "fever"


class TestAnalyzerFactory:
    def test_paper_config_builds(self):
        analyzer = create_analyzer(CREATE_IR_ANALYZER_CONFIG)
        terms = analyzer.terms("Amiodarone")
        assert "amiodaron" in terms or "amiodarone" in terms

    def test_standard_config(self):
        analyzer = create_analyzer(STANDARD_ANALYZER_CONFIG)
        assert analyzer.terms("The Fevers") == [stemmer_filter(
            lowercase_filter(StandardTokenizer().tokenize("Fevers"))
        )[0].term]

    def test_unknown_tokenizer(self):
        with pytest.raises(AnalyzerError):
            create_analyzer({"tokenizer": {"type": "magic"}})

    def test_unknown_filter(self):
        with pytest.raises(AnalyzerError):
            create_analyzer({"filter": ["nope"]})

    def test_string_tokenizer_shorthand(self):
        analyzer = create_analyzer({"tokenizer": "whitespace"})
        assert analyzer.terms("a b") == ["a", "b"]


class TestInvertedIndex:
    def _index(self):
        index = InvertedIndex()
        analyzer = create_analyzer({"tokenizer": {"type": "standard"}, "filter": ["lowercase"]})
        index.add_document(0, analyzer.analyze("fever and cough"))
        index.add_document(1, analyzer.analyze("fever only here today"))
        return index

    def test_document_frequency(self):
        index = self._index()
        assert index.document_frequency("fever") == 2
        assert index.document_frequency("cough") == 1
        assert index.document_frequency("absent") == 0

    def test_lengths(self):
        index = self._index()
        assert index.doc_length(0) == 3
        assert index.average_length == pytest.approx(3.5)

    def test_remove_document(self):
        index = self._index()
        index.remove_document(0)
        assert index.document_frequency("cough") == 0
        assert index.n_documents == 1

    def test_readd_replaces(self):
        index = self._index()
        analyzer = create_analyzer({"tokenizer": {"type": "standard"}})
        index.add_document(0, analyzer.analyze("entirely new words"))
        assert index.document_frequency("fever") == 1

    def test_phrase_positions(self):
        index = InvertedIndex()
        analyzer = create_analyzer({"tokenizer": {"type": "standard"}, "filter": ["lowercase"]})
        index.add_document(0, analyzer.analyze("acute chest pain at rest"))
        assert index.phrase_positions(0, ["chest", "pain"]) == [1]
        assert index.phrase_positions(0, ["pain", "chest"]) == []

    def test_vocabulary(self):
        index = self._index()
        assert "fever" in index.terms()


class TestBM25:
    def test_idf_decreases_with_df(self):
        index = InvertedIndex()
        analyzer = create_analyzer({"tokenizer": {"type": "standard"}, "filter": ["lowercase"]})
        index.add_document(0, analyzer.analyze("common rare"))
        index.add_document(1, analyzer.analyze("common"))
        scorer = BM25Scorer(index)
        assert scorer.idf("rare") > scorer.idf("common")

    def test_scores_rank_relevant_higher(self):
        index = InvertedIndex()
        analyzer = create_analyzer({"tokenizer": {"type": "standard"}, "filter": ["lowercase"]})
        index.add_document(0, analyzer.analyze("fever fever fever"))
        index.add_document(1, analyzer.analyze("fever cough dyspnea"))
        scores = BM25Scorer(index).score_terms(["fever"])
        assert scores[0] > scores[1]


class TestSearchEngine:
    def _engine(self):
        engine = create_ir_engine()
        engine.index("d1", {"title": "Fever case", "body": "The patient presented with fever and persistent cough"})
        engine.index("d2", {"title": "Arrhythmia", "body": "Atrial fibrillation treated with amiodarone"})
        engine.index("d3", {"title": "Stroke", "body": "Ischemic stroke with slurred speech"})
        return engine

    def test_match(self):
        hits = self._engine().search("fever cough")
        assert hits[0].doc_id == "d1"

    def test_ngram_partial_match(self):
        hits = self._engine().search("amiodaron")
        assert hits[0].doc_id == "d2"

    def test_typo_tolerance_via_ngrams(self):
        hits = self._engine().search("fibrilation")  # missing 'l'
        assert hits and hits[0].doc_id == "d2"

    def test_title_field_query(self):
        hits = self._engine().search({"match": {"title": "stroke"}})
        assert hits[0].doc_id == "d3"

    def test_bool_must_not(self):
        engine = self._engine()
        hits = engine.search(
            {
                "bool": {
                    "must": [{"match": {"body": "fever"}}],
                    "must_not": [{"match": {"body": "amiodarone"}}],
                }
            }
        )
        assert {h.doc_id for h in hits} == {"d1"}

    def test_bool_should_unions(self):
        hits = self._engine().search(
            {
                "bool": {
                    "should": [
                        {"match": {"body": "fever"}},
                        {"match": {"body": "stroke"}},
                    ]
                }
            }
        )
        assert {h.doc_id for h in hits} >= {"d1", "d3"}

    def test_match_all(self):
        assert len(self._engine().search({"match_all": {}})) == 3

    def test_match_phrase(self):
        engine = SearchEngine({"body": {"tokenizer": {"type": "standard"}, "filter": ["lowercase"]}})
        engine.index("a", {"body": "acute chest pain"})
        engine.index("b", {"body": "pain in the chest"})
        hits = engine.search({"match_phrase": {"body": "chest pain"}})
        assert [h.doc_id for h in hits] == ["a"]

    def test_delete(self):
        engine = self._engine()
        assert engine.delete("d1")
        assert not engine.delete("d1")
        assert engine.search("fever") == [] or all(
            h.doc_id != "d1" for h in engine.search("fever")
        )

    def test_reindex_replaces(self):
        engine = self._engine()
        engine.index("d1", {"body": "entirely different content"})
        assert all(h.doc_id != "d1" for h in engine.search("fever cough"))

    def test_size_limits_results(self):
        assert len(self._engine().search({"match_all": {}}, size=2)) == 2

    def test_malformed_query_rejected(self):
        with pytest.raises(SearchError):
            self._engine().search({"match": {"a": 1}, "term": {"b": 2}})
        with pytest.raises(SearchError):
            self._engine().search({"frobnicate": {}})

    def test_empty_query_no_results(self):
        assert self._engine().search("") == []

    def test_deterministic_tie_order(self):
        engine = SearchEngine()
        engine.index("b", {"body": "same text"})
        engine.index("a", {"body": "same text"})
        hits = engine.search("same text")
        assert [h.doc_id for h in hits] == ["a", "b"]


class TestSolrBaseline:
    def _solr(self):
        solr = SolrBaseline()
        solr.index("d1", "fever and cough in a young patient")
        solr.index("d2", "atrial fibrillation and amiodarone")
        solr.index("d3", "fever fever fever everywhere")
        return solr

    def test_keyword_match(self):
        hits = self._solr().search("amiodarone")
        assert hits[0].doc_id == "d2"

    def test_no_partial_match(self):
        # Unlike the n-gram engine, Solr-style keyword match misses
        # truncated terms (beyond what stemming conflates).
        assert self._solr().search("amiodar") == []

    def test_cosine_normalization_prefers_focused_doc(self):
        hits = self._solr().search("fever")
        assert hits[0].doc_id == "d3"

    def test_delete(self):
        solr = self._solr()
        assert solr.delete("d3")
        assert all(h.doc_id != "d3" for h in solr.search("fever"))

    def test_reindex(self):
        solr = self._solr()
        solr.index("d1", "new content entirely")
        assert all(h.doc_id != "d1" for h in solr.search("fever"))
        assert solr.n_documents == 3

    def test_empty_query(self):
        assert self._solr().search("") == []

    @given(st.text(max_size=60))
    def test_search_never_crashes(self, query):
        self._solr().search(query)
