"""Tests for the durability subsystem: WAL, snapshots, recovery, faults."""

import json

import pytest

from repro.api.app import CreateApplication
from repro.docstore.store import DocumentStore
from repro.durability import (
    DurabilityManager,
    FaultInjector,
    InjectedCrash,
    MemFS,
    OsFileSystem,
    WriteAheadLog,
    atomic_write,
    encode_record,
    load_snapshot,
    scan_records,
)
from repro.exceptions import DurabilityError, PipelineError
from repro.graphdb.graph import PropertyGraph
from repro.ir.indexer import CreateIrIndexer
from repro.ir.searcher import CreateIrSearcher
from repro.search.engine import SearchEngine
from repro.testing.crash import canonical_state, visible_doc_ids


def _attached_manager(fs, **kwargs):
    store, graph, engine = DocumentStore(), PropertyGraph(), SearchEngine()
    manager = DurabilityManager(fs, **kwargs)
    manager.attach("docstore", store)
    manager.attach("graph", graph)
    manager.attach("index", engine)
    return manager, store, graph, engine


def _ingest(store, graph, engine, doc_id, text="fever and cough"):
    store.collection("reports").insert_one({"_id": doc_id, "text": text})
    graph.add_node(doc_id, entityType="Report")
    engine.index(doc_id, {"body": text})


class TestWriteAheadLog:
    def test_empty_log_replays_to_nothing(self):
        fs = MemFS()
        wal = WriteAheadLog(fs)
        result = wal.replay()
        assert result.records == []
        assert not result.torn

    def test_round_trip(self):
        fs = MemFS()
        wal = WriteAheadLog(fs)
        records = [{"lsn": i, "ops": {"docstore": [{"op": "x"}]}} for i in (1, 2, 3)]
        for record in records:
            wal.append(record)
        wal.flush()
        assert WriteAheadLog(fs).replay().records == records

    def test_truncated_final_record_is_dropped(self):
        fs = MemFS()
        wal = WriteAheadLog(fs)
        wal.append({"lsn": 1})
        wal.append({"lsn": 2})
        wal.flush()
        data = fs.read_bytes("wal.log")
        fs.remove("wal.log")
        fs.append("wal.log", data[:-3])  # tear the tail
        fs.fsync("wal.log")
        result = WriteAheadLog(fs).replay(truncate_torn=True)
        assert [r["lsn"] for r in result.records] == [1]
        assert result.torn
        # The torn bytes were physically truncated away.
        again = WriteAheadLog(fs).replay()
        assert not again.torn
        assert [r["lsn"] for r in again.records] == [1]

    def test_corrupted_checksum_mid_log_stops_replay(self):
        fs = MemFS()
        wal = WriteAheadLog(fs)
        for lsn in (1, 2, 3):
            wal.append({"lsn": lsn})
        wal.flush()
        data = bytearray(fs.read_bytes("wal.log"))
        frame = len(encode_record({"lsn": 1}))  # full frame, header included
        # Flip a payload byte inside the second record.
        data[frame + 12] ^= 0xFF
        fs.remove("wal.log")
        fs.append("wal.log", bytes(data))
        fs.fsync("wal.log")
        result = WriteAheadLog(fs).replay()
        assert [r["lsn"] for r in result.records] == [1]
        assert result.torn
        assert "checksum" in result.torn_reason

    def test_scan_rejects_bad_magic(self):
        result = scan_records(b"XXXX" + b"\x00" * 20)
        assert result.records == []
        assert result.torn


class TestAtomicWrite:
    def test_writes_and_returns_path(self, tmp_path):
        target = tmp_path / "out.txt"
        assert atomic_write(target, "hello") == target
        assert target.read_text() == "hello"

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_files_left_behind(self, tmp_path):
        atomic_write(tmp_path / "a.txt", b"bytes too")
        assert [p.name for p in tmp_path.iterdir()] == ["a.txt"]


class TestCommitProtocol:
    def test_ack_after_fsync_with_group_commit(self):
        manager, store, graph, engine = _attached_manager(
            MemFS(), group_commit=3
        )
        lsns = []
        for i in range(2):
            _ingest(store, graph, engine, f"d{i}")
            lsns.append(manager.commit())
        # Two commits buffered, group of three not reached: unacked.
        assert all(lsn > manager.durable_lsn for lsn in lsns)
        _ingest(store, graph, engine, "d2")
        manager.commit()
        assert manager.durable_lsn == 3  # group filled -> one fsync
        assert manager.stats()["counters"]["fsyncs"] == 1

    def test_commit_without_changes_is_none(self):
        manager, *_ = _attached_manager(MemFS())
        assert manager.commit() is None

    def test_failed_flush_poisons_manager(self):
        fs = FaultInjector(MemFS(), kind="io_fsync", at_op=1, seed=0)
        manager, store, graph, engine = _attached_manager(fs)
        _ingest(store, graph, engine, "d0")
        with pytest.raises(DurabilityError):
            manager.commit()
        assert manager.durable_lsn == 0
        with pytest.raises(DurabilityError, match="poisoned"):
            manager.commit()


class TestRecovery:
    def test_snapshot_plus_wal_equals_memory(self):
        fs = MemFS()
        manager, store, graph, engine = _attached_manager(
            fs, snapshot_every=2
        )
        for i in range(5):  # snapshots at 2 and 4, WAL tail holds 5
            _ingest(store, graph, engine, f"d{i}")
            manager.commit()
        manager.flush()
        live = canonical_state(store, graph, engine)

        recovered, r_store, r_graph, r_engine = _attached_manager(fs)
        report = recovered.recover()
        assert report.snapshot_loaded
        assert report.snapshot_lsn == 4
        assert report.records_replayed == 1
        assert canonical_state(r_store, r_graph, r_engine) == live
        assert recovered.durable_lsn == manager.durable_lsn

    def test_recovery_without_any_files(self):
        manager, store, graph, engine = _attached_manager(MemFS())
        report = manager.recover()
        assert not report.snapshot_loaded
        assert report.records_replayed == 0
        assert len(store.collection("reports")) == 0

    def test_crash_loses_no_acknowledged_documents(self):
        mem = MemFS()
        fs = FaultInjector(mem, kind="crash", at_op=4, seed=3)
        manager, store, graph, engine = _attached_manager(fs)
        acked = []
        with pytest.raises(InjectedCrash):
            for i in range(10):
                _ingest(store, graph, engine, f"d{i}")
                lsn = manager.commit()
                if lsn is not None and lsn <= manager.durable_lsn:
                    acked.append(f"d{i}")
        assert acked  # the schedule acknowledges some docs before dying
        recovered, r_store, r_graph, r_engine = _attached_manager(mem)
        recovered.recover()
        doc_ids, graph_ids, engine_ids = visible_doc_ids(
            r_store, r_graph, r_engine
        )
        assert doc_ids == graph_ids == engine_ids
        assert set(acked) <= doc_ids

    def test_search_works_after_recovery(self):
        fs = MemFS()
        manager, store, graph, engine = _attached_manager(fs)
        _ingest(store, graph, engine, "d0", text="acute renal failure")
        manager.commit()
        recovered, _, _, r_engine = _attached_manager(fs)
        recovered.recover()
        assert [h.doc_id for h in r_engine.search("renal")] == ["d0"]

    def test_snapshot_checksum_mismatch_raises(self):
        fs = MemFS()
        manager, store, graph, engine = _attached_manager(fs)
        _ingest(store, graph, engine, "d0")
        manager.commit()
        manager.snapshot()
        payload = json.loads(fs.read_bytes("snapshot.json"))
        payload["stores"]["docstore"]["collections"] = {}
        fs.remove("snapshot.json")
        fs.append("snapshot.json", json.dumps(payload).encode())
        fs.fsync("snapshot.json")
        with pytest.raises(DurabilityError, match="checksum"):
            load_snapshot(fs, "snapshot.json")


class TestFaultInjector:
    def test_same_seed_same_torn_prefix(self):
        def run(seed):
            mem = MemFS()
            fs = FaultInjector(mem, kind="torn", at_op=2, seed=seed)
            manager, store, graph, engine = _attached_manager(fs)
            with pytest.raises(InjectedCrash):
                for i in range(5):
                    _ingest(store, graph, engine, f"d{i}")
                    manager.commit()
            return mem.read_bytes("wal.log") if mem.exists("wal.log") else b""

        assert run(7) == run(7)

    def test_fault_fires_once(self):
        fs = FaultInjector(MemFS(), kind="io_append", at_op=0, seed=0)
        with pytest.raises(OSError):
            fs.append("f", b"abc")
        fs.append("f", b"xyz")  # second call passes through
        assert fs.fired


class TestOsFileSystem:
    def test_wal_on_real_files(self, tmp_path):
        fs = OsFileSystem(tmp_path)
        manager, store, graph, engine = _attached_manager(fs)
        _ingest(store, graph, engine, "d0")
        manager.commit()
        manager.snapshot()
        _ingest(store, graph, engine, "d1")
        manager.commit()
        fs.close()

        fs2 = OsFileSystem(tmp_path)
        recovered, r_store, r_graph, r_engine = _attached_manager(fs2)
        report = recovered.recover()
        assert report.snapshot_loaded
        assert canonical_state(r_store, r_graph, r_engine) == canonical_state(
            store, graph, engine
        )
        fs2.close()


class TestApiIntegration:
    def _app(self, manager=None):
        store = DocumentStore()
        indexer = CreateIrIndexer()
        searcher = CreateIrSearcher(indexer)
        if manager is not None:
            manager.attach("docstore", store)
            manager.attach("graph", indexer.graph)
            manager.attach("index", indexer.engine)
        return CreateApplication(
            store=store,
            indexer=indexer,
            searcher=searcher,
            durability=manager,
        )

    def test_stats_without_durability_has_no_section(self):
        response = self._app().handle("GET", "/stats")
        assert "durability" not in response.body

    def test_stats_reports_wal_health(self):
        manager = DurabilityManager(MemFS())
        app = self._app(manager)
        app.register_report({"_id": "r1", "title": "t", "text": "fever"})
        response = app.handle("GET", "/stats")
        section = response.body["durability"]
        assert section["durable_lsn"] == 1
        assert section["counters"]["commits"] == 1
        assert section["counters"]["fsyncs"] == 1
        assert "p99" in section.get("commit_latency", {"p99": None})

    def test_register_report_is_one_commit(self):
        manager = DurabilityManager(MemFS())
        app = self._app(manager)
        app.register_report({"_id": "r1", "title": "t", "text": "fever"})
        app.handle("DELETE", "/reports/r1")
        stats = manager.stats()
        assert stats["counters"]["commits"] == 2  # ingest + delete
        assert stats["durable_lsn"] == 2


class TestPipelineIntegration:
    def test_recover_without_manager_raises(self, demo_system):
        pipeline, _ = demo_system
        assert pipeline.durability is None
        with pytest.raises(PipelineError):
            pipeline.recover()


class TestPoisonDiagnostics:
    def test_poison_message_names_path_and_durable_lsn(self):
        """Operators need the failing WAL location and the last
        durable LSN to act; the message must carry both."""
        fs = FaultInjector(MemFS(), kind="io_fsync", at_op=3, seed=0)
        manager, store, graph, engine = _attached_manager(fs)
        _ingest(store, graph, engine, "d0")
        manager.commit()  # lsn 1 fsyncs fine (ops 0,1)
        _ingest(store, graph, engine, "d1")
        with pytest.raises(DurabilityError):
            manager.commit()  # fsync fails at op 3
        with pytest.raises(
            DurabilityError,
            match=r"wal\.log.*last durable LSN 1",
        ):
            manager.commit()

    def test_poison_message_includes_fs_root_when_real(self, tmp_path):
        fs = OsFileSystem(tmp_path)
        manager, store, graph, engine = _attached_manager(fs)
        manager._failed = True  # poison directly; no real disk fault
        with pytest.raises(DurabilityError) as excinfo:
            manager.commit()
        message = str(excinfo.value)
        assert str(tmp_path) in message
        assert "wal.log" in message
        assert "last durable LSN 0" in message
        fs.close()
