"""Tests for the document store (MongoDB analog)."""

import pytest
from hypothesis import given, strategies as st

from repro.docstore.index import SecondaryIndex
from repro.docstore.query import compile_query, matches
from repro.docstore.store import Collection, DocumentStore
from repro.exceptions import DocumentStoreError, DuplicateKeyError, QueryError


class TestQueryOperators:
    DOC = {
        "title": "case 1",
        "year": 2018,
        "tags": ["cvd", "rare"],
        "meta": {"journal": {"name": "JCCR"}},
        "authors": [{"name": "Chen"}, {"name": "Garcia"}],
    }

    def test_implicit_equality(self):
        assert matches(self.DOC, {"title": "case 1"})
        assert not matches(self.DOC, {"title": "case 2"})

    def test_dotted_path(self):
        assert matches(self.DOC, {"meta.journal.name": "JCCR"})

    def test_array_element_equality(self):
        assert matches(self.DOC, {"tags": "cvd"})

    def test_array_of_documents_field(self):
        assert matches(self.DOC, {"authors.name": "Garcia"})

    def test_array_numeric_index(self):
        assert matches(self.DOC, {"authors.0.name": "Chen"})
        assert not matches(self.DOC, {"authors.9.name": "Chen"})

    def test_comparisons(self):
        assert matches(self.DOC, {"year": {"$gt": 2017}})
        assert matches(self.DOC, {"year": {"$gte": 2018}})
        assert matches(self.DOC, {"year": {"$lt": 2019}})
        assert not matches(self.DOC, {"year": {"$lte": 2017}})

    def test_comparison_type_guard(self):
        assert not matches(self.DOC, {"title": {"$gt": 5}})

    def test_ne(self):
        assert matches(self.DOC, {"year": {"$ne": 1999}})

    def test_in_nin(self):
        assert matches(self.DOC, {"year": {"$in": [2017, 2018]}})
        assert matches(self.DOC, {"year": {"$nin": [1999]}})
        assert matches(self.DOC, {"tags": {"$in": ["rare"]}})

    def test_in_requires_list(self):
        with pytest.raises(QueryError):
            matches(self.DOC, {"year": {"$in": 2018}})

    def test_exists(self):
        assert matches(self.DOC, {"title": {"$exists": True}})
        assert matches(self.DOC, {"missing": {"$exists": False}})

    def test_regex(self):
        assert matches(self.DOC, {"title": {"$regex": r"^case \d"}})

    def test_size(self):
        assert matches(self.DOC, {"tags": {"$size": 2}})
        with pytest.raises(QueryError):
            matches(self.DOC, {"tags": {"$size": "2"}})

    def test_all(self):
        assert matches(self.DOC, {"tags": {"$all": ["cvd", "rare"]}})
        assert not matches(self.DOC, {"tags": {"$all": ["cvd", "x"]}})

    def test_elem_match(self):
        assert matches(
            self.DOC, {"authors": {"$elemMatch": {"name": "Chen"}}}
        )

    def test_not(self):
        assert matches(self.DOC, {"year": {"$not": {"$gt": 2020}}})

    def test_logical_combinators(self):
        assert matches(
            self.DOC,
            {"$and": [{"year": 2018}, {"title": "case 1"}]},
        )
        assert matches(
            self.DOC, {"$or": [{"year": 1999}, {"title": "case 1"}]}
        )
        assert matches(self.DOC, {"$nor": [{"year": 1999}]})

    def test_multiple_operators_on_field(self):
        assert matches(self.DOC, {"year": {"$gte": 2018, "$lte": 2018}})

    def test_unknown_operator(self):
        with pytest.raises(QueryError):
            matches(self.DOC, {"year": {"$frob": 1}})

    def test_unknown_top_level_operator(self):
        with pytest.raises(QueryError):
            matches(self.DOC, {"$xor": []})

    def test_query_must_be_dict(self):
        with pytest.raises(QueryError):
            compile_query("not a dict")

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.integers(-5, 5),
            max_size=3,
        )
    )
    def test_empty_query_matches_everything(self, doc):
        assert matches(doc, {})


class TestCollection:
    def make(self):
        coll = Collection("reports")
        coll.insert_many(
            [
                {"_id": f"r{i}", "n": i, "cat": "cvd" if i % 2 == 0 else "other"}
                for i in range(10)
            ]
        )
        return coll

    def test_insert_assigns_id(self):
        coll = Collection("c")
        doc_id = coll.insert_one({"a": 1})
        assert coll.get(doc_id)["a"] == 1

    def test_duplicate_id_rejected(self):
        coll = self.make()
        with pytest.raises(DuplicateKeyError):
            coll.insert_one({"_id": "r0"})

    def test_non_dict_rejected(self):
        with pytest.raises(DocumentStoreError):
            Collection("c").insert_one([1, 2])

    def test_insert_copies_document(self):
        coll = Collection("c")
        original = {"a": [1]}
        doc_id = coll.insert_one(original)
        original["a"].append(2)
        assert coll.get(doc_id)["a"] == [1]

    def test_find_returns_copies(self):
        coll = self.make()
        hit = coll.find({"_id": "r0"})[0]
        hit["n"] = 999
        assert coll.get("r0")["n"] == 0

    def test_find_with_sort_skip_limit(self):
        coll = self.make()
        hits = coll.find({}, sort=[("n", -1)], skip=2, limit=3)
        assert [h["n"] for h in hits] == [7, 6, 5]

    def test_sort_direction_validated(self):
        coll = self.make()
        with pytest.raises(QueryError):
            coll.find({}, sort=[("n", 2)])

    def test_projection(self):
        coll = self.make()
        hit = coll.find({"_id": "r1"}, projection=["cat"])[0]
        assert set(hit) == {"_id", "cat"}

    def test_count_and_len(self):
        coll = self.make()
        assert len(coll) == 10
        assert coll.count({"cat": "cvd"}) == 5

    def test_distinct(self):
        coll = self.make()
        assert coll.distinct("cat") == ["cvd", "other"]

    def test_find_one_none(self):
        assert self.make().find_one({"n": 99}) is None

    def test_update_set_inc(self):
        coll = self.make()
        n = coll.update_many({"cat": "cvd"}, {"$set": {"flag": True}, "$inc": {"n": 100}})
        assert n == 5
        assert coll.get("r0")["n"] == 100
        assert coll.get("r1").get("flag") is None

    def test_update_one_only_first(self):
        coll = self.make()
        assert coll.update_one({"cat": "cvd"}, {"$set": {"x": 1}}) == 1
        assert coll.count({"x": 1}) == 1

    def test_update_push_pull_addtoset(self):
        coll = Collection("c")
        coll.insert_one({"_id": "a", "tags": ["x"]})
        coll.update_one({"_id": "a"}, {"$push": {"tags": "y"}})
        coll.update_one({"_id": "a"}, {"$addToSet": {"tags": "y"}})
        assert coll.get("a")["tags"] == ["x", "y"]
        coll.update_one({"_id": "a"}, {"$pull": {"tags": "x"}})
        assert coll.get("a")["tags"] == ["y"]

    def test_update_unset_rename(self):
        coll = Collection("c")
        coll.insert_one({"_id": "a", "old": 1, "tmp": 2})
        coll.update_one({"_id": "a"}, {"$unset": {"tmp": ""}})
        coll.update_one({"_id": "a"}, {"$rename": {"old": "new"}})
        doc = coll.get("a")
        assert "tmp" not in doc
        assert doc["new"] == 1

    def test_update_nested_set(self):
        coll = Collection("c")
        coll.insert_one({"_id": "a"})
        coll.update_one({"_id": "a"}, {"$set": {"meta.deep.x": 5}})
        assert coll.get("a")["meta"]["deep"]["x"] == 5

    def test_unknown_update_operator(self):
        coll = self.make()
        with pytest.raises(QueryError):
            coll.update_one({}, {"$frob": {}})

    def test_replace_one_keeps_id(self):
        coll = self.make()
        assert coll.replace_one({"_id": "r0"}, {"fresh": True}) == 1
        doc = coll.get("r0")
        assert doc == {"_id": "r0", "fresh": True}

    def test_delete(self):
        coll = self.make()
        assert coll.delete_one({"cat": "cvd"}) == 1
        assert coll.delete_many({"cat": "cvd"}) == 4
        assert coll.count({"cat": "cvd"}) == 0

    def test_index_accelerated_find_matches_scan(self):
        coll = self.make()
        without = {d["_id"] for d in coll.find({"cat": "cvd"})}
        coll.create_index("cat")
        with_index = {d["_id"] for d in coll.find({"cat": "cvd"})}
        assert without == with_index

    def test_index_stays_correct_after_updates(self):
        coll = self.make()
        coll.create_index("cat")
        coll.update_one({"_id": "r0"}, {"$set": {"cat": "moved"}})
        assert coll.count({"cat": "moved"}) == 1
        coll.delete_one({"_id": "r2"})
        assert coll.count({"cat": "cvd"}) == 3

    def test_in_query_uses_index(self):
        coll = self.make()
        coll.create_index("cat")
        hits = coll.find({"cat": {"$in": ["cvd", "other"]}})
        assert len(hits) == 10

    def test_jsonl_roundtrip(self, tmp_path):
        coll = self.make()
        path = tmp_path / "dump.jsonl"
        assert coll.dump_jsonl(path) == 10
        fresh = Collection("reports")
        assert fresh.load_jsonl(path) == 10
        assert fresh.get("r3") == coll.get("r3")


class TestSecondaryIndex:
    def test_multikey_arrays(self):
        index = SecondaryIndex("tags")
        index.add("d1", {"tags": ["a", "b"]})
        assert index.lookup("a") == {"d1"}
        assert index.lookup("b") == {"d1"}

    def test_remove(self):
        index = SecondaryIndex("x")
        index.add("d1", {"x": 1})
        index.remove("d1", {"x": 1})
        assert index.lookup(1) == set()

    def test_missing_field_not_indexed(self):
        index = SecondaryIndex("x")
        index.add("d1", {"y": 1})
        assert len(index) == 0


class TestDocumentStore:
    def test_collections_created_on_demand(self):
        store = DocumentStore()
        store.collection("a").insert_one({"x": 1})
        assert store.collection_names() == ["a"]

    def test_drop_collection(self):
        store = DocumentStore()
        store.collection("a")
        store.drop_collection("a")
        assert store.collection_names() == []

    def test_save_load_roundtrip(self, tmp_path):
        store = DocumentStore()
        store.collection("reports").insert_many([{"_id": "a"}, {"_id": "b"}])
        store.collection("users").insert_one({"_id": "u1"})
        counts = store.save(tmp_path)
        assert counts == {"reports": 2, "users": 1}
        loaded = DocumentStore.load(tmp_path)
        assert loaded.collection("reports").count() == 2
        assert loaded.collection("users").get("u1") == {"_id": "u1"}

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(DocumentStoreError):
            DocumentStore.load(tmp_path / "nope")
