"""Tests for n-gram utilities."""

import pytest
from hypothesis import given, strategies as st

from repro.text.ngrams import character_ngrams, shingle, word_ngrams


class TestCharacterNgrams:
    def test_basic_trigram(self):
        grams = [g for g, _s, _e in character_ngrams("abcd", 3, 3)]
        assert grams == ["abc", "bcd"]

    def test_growing_grams(self):
        grams = [g for g, _s, _e in character_ngrams("abcd", 2, 3)]
        assert grams == ["ab", "abc", "bc", "bcd", "cd"]

    def test_offsets_index_source(self):
        text = "amiodarone"
        for gram, start, end in character_ngrams(text, 3, 6):
            assert text[start:end] == gram

    def test_short_text_yields_nothing(self):
        assert list(character_ngrams("ab", 3, 5)) == []

    def test_exact_length(self):
        grams = [g for g, _s, _e in character_ngrams("abc", 3, 5)]
        assert grams == ["abc"]

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            list(character_ngrams("abc", 0, 2))
        with pytest.raises(ValueError):
            list(character_ngrams("abc", 3, 2))

    @given(st.text(min_size=0, max_size=40), st.integers(1, 5), st.integers(0, 5))
    def test_gram_lengths_within_bounds(self, text, min_gram, extra):
        max_gram = min_gram + extra
        for gram, start, end in character_ngrams(text, min_gram, max_gram):
            assert min_gram <= len(gram) <= max_gram
            assert end - start == len(gram)

    @given(st.text(min_size=3, max_size=30))
    def test_count_formula_for_fixed_n(self, text):
        grams = list(character_ngrams(text, 3, 3))
        assert len(grams) == max(len(text) - 2, 0)


class TestWordNgrams:
    def test_bigrams(self):
        assert word_ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_n_equal_len(self):
        assert word_ngrams(["a", "b"], 2) == [("a", "b")]

    def test_n_too_large(self):
        assert word_ngrams(["a"], 2) == []

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            word_ngrams(["a"], 0)


class TestShingle:
    def test_shingles_multiword_terms(self):
        result = shingle(["atrial", "fibrillation"], 1, 2)
        assert "atrial fibrillation" in result
        assert "atrial" in result

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            shingle(["a"], 2, 1)
