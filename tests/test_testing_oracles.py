"""Unit tests of the reference oracles on hand-checked examples.

The oracles are only useful if they are obviously right; these tests
pin their behaviour on inputs small enough to verify by hand.
"""

import math

import numpy as np
import pytest

from repro.graphdb.graph import PropertyGraph
from repro.graphdb.match import EdgePattern, GraphPattern, NodePattern
from repro.ml import infer
from repro.temporal.relations import DENSE_ALGEBRA, THREE_WAY_ALGEBRA
from repro.testing.oracles import (
    ReferenceSearchEngine,
    brute_force_bindings,
    exhaustive_decode,
    reference_closure,
    reference_fuse,
)


class TestReferenceSearchEngine:
    def test_hand_computed_bm25(self):
        engine = ReferenceSearchEngine(
            {"body": {"tokenizer": {"type": "whitespace"},
                      "filter": ["lowercase"], "char_filter": []}}
        )
        engine.index("d1", {"body": "fever fever cough"})
        engine.index("d2", {"body": "cough"})
        ranked = dict(engine.search({"match": {"body": "fever"}}))
        # N=2, df=1, idf=log(1 + 1.5/1.5)=log 2; tf=2, dl=3, avgdl=2.
        idf = math.log(2.0)
        denom = 2 + 1.2 * (1 - 0.75 + 0.75 * 3 / 2)
        expected = idf * 2 * 2.2 / denom
        assert ranked == {"d1": pytest.approx(expected)}

    def test_delete_refreshes_statistics(self):
        engine = ReferenceSearchEngine()
        engine.index("d1", {"body": "fever"})
        engine.index("d2", {"body": "cough"})
        assert engine.delete("d2") is True
        assert engine.delete("d2") is False
        assert engine.n_documents == 1
        # df/N now reflect only the surviving document.
        (doc_id, _score), = engine.search({"match": {"body": "fever"}})
        assert doc_id == "d1"

    def test_phrase_respects_position_gaps(self):
        engine = ReferenceSearchEngine()
        engine.index("d1", {"body": "fever and cough"})
        engine.index("d2", {"body": "cough fever"})
        ranked = engine.search({"match_phrase": {"body": "fever and cough"}})
        assert [doc_id for doc_id, _ in ranked] == ["d1"]

    def test_bool_must_not_only(self):
        engine = ReferenceSearchEngine()
        engine.index("d1", {"body": "fever"})
        engine.index("d2", {"body": "cough"})
        ranked = engine.search(
            {"bool": {"must_not": [{"match": {"body": "fever"}}]}}
        )
        assert ranked == [("d2", 1.0)]


class TestBruteForceBindings:
    def _graph(self):
        g = PropertyGraph()
        g.add_node("n1", entityType="A")
        g.add_node("n2", entityType="A")
        g.add_node("n3", entityType="B")
        g.add_edge("n1", "n2", "R")
        g.add_edge("n1", "n2", "S")  # parallel edge
        g.add_edge("n3", "n3", "LOOP")  # self-loop
        return g

    def test_edge_label_filter(self):
        bindings = brute_force_bindings(
            self._graph(),
            GraphPattern(
                [NodePattern("a"), NodePattern("b")],
                [EdgePattern("a", "b", label="S")],
            ),
        )
        assert bindings == [{"a": "n1", "b": "n2"}]

    def test_self_loop_pattern(self):
        bindings = brute_force_bindings(
            self._graph(),
            GraphPattern(
                [NodePattern("a")], [EdgePattern("a", "a", label="LOOP")]
            ),
        )
        assert bindings == [{"a": "n3"}]

    def test_undirected_matches_both_orientations(self):
        bindings = brute_force_bindings(
            self._graph(),
            GraphPattern(
                [NodePattern("a"), NodePattern("b")],
                [EdgePattern("a", "b", label="R", directed=False)],
            ),
        )
        assert {frozenset(b.items()) for b in bindings} == {
            frozenset({("a", "n1"), ("b", "n2")}),
            frozenset({("a", "n2"), ("b", "n1")}),
        }

    def test_injective(self):
        g = PropertyGraph()
        g.add_node("n1")
        bindings = brute_force_bindings(
            g, GraphPattern([NodePattern("a"), NodePattern("b")])
        )
        assert bindings == []


class TestExhaustiveDecode:
    def test_agrees_with_viterbi_on_tiny_instance(self):
        emissions = [[1.0, 0.0], [0.0, 2.0]]
        transitions = [[0.5, -1.0], [0.0, 0.0]]
        start = [0.0, 0.0]
        end = [0.0, 1.0]
        best, path, log_z = exhaustive_decode(
            emissions, transitions, start, end
        )
        # Paths: (0,0)=1.5 (0,1)=3+1=... enumerate by hand:
        # (0,0): 1+0.5+0+0 = 1.5;  (0,1): 1-1+2+1 = 3.0
        # (1,0): 0+0+0+0 = 0.0;    (1,1): 0+0+2+1 = 3.0
        assert best == pytest.approx(3.0)
        assert path in ((0, 1), (1, 1))
        assert log_z == pytest.approx(
            math.log(sum(math.exp(s) for s in (1.5, 3.0, 0.0, 3.0)))
        )
        v_path, v_score = infer.viterbi(
            np.array(emissions),
            np.array(transitions),
            np.array(start),
            np.array(end),
        )
        assert v_score == pytest.approx(best)
        assert tuple(v_path) in ((0, 1), (1, 1))

    def test_empty_sequence(self):
        assert exhaustive_decode([], [[0.0]], [0.0], [0.0]) == (0.0, (), 0.0)


class TestReferenceClosure:
    def test_paper_figure5_chain(self):
        # "b before d, e after d, e simultaneous with f => b before f"
        status, relations = reference_closure(
            [["b", "d", "BEFORE"], ["e", "d", "AFTER"], ["e", "f", "OVERLAP"]],
            THREE_WAY_ALGEBRA,
        )
        assert status == "ok"
        assert relations[("b", "f")] == "BEFORE"

    def test_detects_contradiction(self):
        status, _reason = reference_closure(
            [["a", "b", "BEFORE"], ["b", "c", "BEFORE"], ["a", "c", "AFTER"]],
            THREE_WAY_ALGEBRA,
        )
        assert status == "inconsistent"

    def test_dense_includes_chain(self):
        status, relations = reference_closure(
            [["a", "b", "INCLUDES"], ["b", "c", "INCLUDES"]],
            DENSE_ALGEBRA,
        )
        assert status == "ok"
        assert relations[("a", "c")] == "INCLUDES"


class TestReferenceFuse:
    def test_graph_block_first_then_keyword(self):
        fused = reference_fuse(
            [["d1", 1.0]], [["d2", 9.0], ["d1", 5.0]], size=3
        )
        assert fused == [("d1", 1.0, "graph"), ("d2", 9.0, "keyword")]

    def test_size_cap_and_tie_break(self):
        fused = reference_fuse(
            [["b", 1.0], ["a", 1.0], ["c", 2.0]], [], size=2
        )
        assert fused == [("c", 2.0, "graph"), ("a", 1.0, "graph")]
