"""Tests for the Porter stemmer."""

from hypothesis import given, strategies as st

from repro.text.stem import PorterStemmer, stem


class TestPorterStemmer:
    def test_classic_examples(self):
        cases = {
            "caresses": "caress",
            "ponies": "poni",
            "caress": "caress",
            "cats": "cat",
            "feed": "feed",
            "agreed": "agre",  # step1b yields "agree", step5a drops the e
            "plastered": "plaster",
            "motoring": "motor",
            "sing": "sing",
            "conflated": "conflat",
            "troubled": "troubl",
            "sized": "size",
            "hopping": "hop",
            "falling": "fall",
            "hissing": "hiss",
            "happy": "happi",
            "relational": "relat",
            "conditional": "condit",
            "valenci": "valenc",
            "digitizer": "digit",
            "operator": "oper",
            "feudalism": "feudal",
            "decisiveness": "decis",
            "hopefulness": "hope",
            "formaliti": "formal",
            "triplicate": "triplic",
            "formative": "form",
            "formalize": "formal",
            "electriciti": "electr",
            "electrical": "electr",
            "hopeful": "hope",
            "goodness": "good",
            "revival": "reviv",
            "allowance": "allow",
            "inference": "infer",
            "airliner": "airlin",
            "adjustable": "adjust",
            "defensible": "defens",
            "irritant": "irrit",
            "replacement": "replac",
            "adjustment": "adjust",
            "dependent": "depend",
            "adoption": "adopt",
            "communism": "commun",
            "activate": "activ",
            "homologous": "homolog",
            "effective": "effect",
            "bowdlerize": "bowdler",
            "probate": "probat",
            "rate": "rate",
            "cease": "ceas",
            "controll": "control",
            "roll": "roll",
        }
        stemmer = PorterStemmer()
        for word, expected in cases.items():
            assert stemmer.stem(word) == expected, word

    def test_clinical_conflation(self):
        # Morphological variants of clinical terms share a stem.
        assert stem("palpitations") == stem("palpitation")
        assert stem("fevers") == stem("fever")
        assert stem("infections") == stem("infection")

    def test_short_words_untouched(self):
        assert stem("be") == "be"
        assert stem("at") == "at"

    def test_module_function_lowercases(self):
        assert stem("Running") == "run"

    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122), max_size=25))
    def test_stem_never_longer_than_word(self, word):
        assert len(PorterStemmer().stem(word)) <= max(len(word), 2)

    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=3, max_size=25))
    def test_stem_idempotent_on_plural_s(self, word):
        # Stemming the plural equals stemming the singular for regular
        # non-s-final nouns.
        if not word.endswith("s") and not word.endswith("e"):
            assert PorterStemmer().stem(word + "s") == PorterStemmer().stem(word)
