"""Degraded temporal indexing is counted, not silently dropped."""

from repro.exceptions import TemporalInconsistencyError
from repro.ir.indexer import CreateIrIndexer
from repro.temporal.graph import TemporalGraph

_SPANS = [
    ("T1", "fever", "Sign_symptom", "event"),
    ("T2", "aspirin", "Medication", "event"),
    ("T3", "discharge", "Clinical_event", "event"),
]


class TestContradictionSkips:
    def test_contradictory_edges_counted(self):
        indexer = CreateIrIndexer()
        # BEFORE(T1,T2) then AFTER(T1,T2): normalized to BEFORE(T2,T1),
        # contradicting the stored pair label.
        record = indexer.index_report(
            "doc-1",
            "t",
            "fever treated with aspirin",
            _SPANS,
            [("T1", "T2", "BEFORE"), ("T1", "T2", "AFTER")],
        )
        assert record.contradiction_skips == 1
        assert indexer.contradiction_skips == 1
        assert indexer.stats()["contradiction_skips"] == 1

    def test_clean_report_counts_nothing(self):
        indexer = CreateIrIndexer()
        record = indexer.index_report(
            "doc-1",
            "t",
            "fever treated with aspirin",
            _SPANS,
            [("T1", "T2", "BEFORE"), ("T2", "T3", "BEFORE")],
        )
        assert record.contradiction_skips == 0
        assert not record.closure_failed
        assert indexer.stats() == {
            "n_reports": 1,
            "contradiction_skips": 0,
            "closure_failures": 0,
        }


class TestClosureFailures:
    def test_closure_failure_counted(self, monkeypatch):
        indexer = CreateIrIndexer()

        def exploding_close(self, max_rounds=50):
            raise TemporalInconsistencyError("synthetic closure failure")

        monkeypatch.setattr(TemporalGraph, "close", exploding_close)
        record = indexer.index_report(
            "doc-1",
            "t",
            "fever treated with aspirin",
            _SPANS,
            [("T1", "T2", "BEFORE")],
        )
        assert record.closure_failed
        assert record.n_inferred_edges == 0
        assert indexer.closure_failures == 1
        # the explicit edge is still indexed: partial is useful, visible
        assert record.n_explicit_edges == 1

    def test_accumulates_across_reports(self, monkeypatch):
        indexer = CreateIrIndexer()
        monkeypatch.setattr(
            TemporalGraph,
            "close",
            lambda self, max_rounds=50: (_ for _ in ()).throw(
                TemporalInconsistencyError("boom")
            ),
        )
        for i in range(3):
            indexer.index_report(
                f"doc-{i}",
                "t",
                "fever treated with aspirin",
                _SPANS,
                [("T1", "T2", "BEFORE")],
            )
        assert indexer.closure_failures == 3
        assert indexer.stats()["closure_failures"] == 3
