"""Tests for the BRAT annotation substrate: model, .ann format, spans."""

import pytest
from hypothesis import given, strategies as st

from repro.annotation.brat import (
    parse_ann,
    read_document,
    serialize_ann,
    write_document,
)
from repro.annotation.model import AnnotationDocument, TextBound
from repro.annotation.spans import (
    align_to_tokens,
    merge_overlapping,
    span_contains,
    spans_overlap,
)
from repro.exceptions import AnnotationError, SpanError
from repro.text.tokenize import tokenize

TEXT = "The patient developed fever and a mild cough after admission."


def make_doc():
    doc = AnnotationDocument(doc_id="doc1", text=TEXT)
    fever = doc.add_textbound("Sign_symptom", 22, 27)
    cough = doc.add_textbound("Sign_symptom", 39, 44)
    severity = doc.add_textbound("Severity", 34, 38)
    doc.add_relation("OVERLAP", fever.ann_id, cough.ann_id)
    doc.add_relation("MODIFY", severity.ann_id, cough.ann_id)
    return doc


class TestModel:
    def test_add_textbound_records_surface(self):
        doc = make_doc()
        assert doc.textbounds["T1"].text == "fever"

    def test_span_verify_rejects_mismatch(self):
        tb = TextBound("T1", "Sign_symptom", 0, 3, "xyz")
        with pytest.raises(SpanError):
            tb.verify_against(TEXT)

    def test_span_rejects_inverted_offsets(self):
        with pytest.raises(SpanError):
            TextBound("T1", "Sign_symptom", 5, 5, "")

    def test_relation_requires_known_endpoints(self):
        doc = make_doc()
        with pytest.raises(AnnotationError):
            doc.add_relation("BEFORE", "T1", "T99")

    def test_relation_rejects_self_loop(self):
        doc = make_doc()
        with pytest.raises(AnnotationError):
            doc.add_relation("BEFORE", "T1", "T1")

    def test_auto_ids_unique(self):
        doc = make_doc()
        ids = list(doc.textbounds)
        assert len(ids) == len(set(ids))

    def test_spans_sorted(self):
        doc = make_doc()
        starts = [tb.start for tb in doc.spans_sorted()]
        assert starts == sorted(starts)

    def test_relations_of(self):
        doc = make_doc()
        assert len(doc.relations_of("T2")) == 2  # cough in both relations

    def test_spans_with_label(self):
        doc = make_doc()
        assert len(doc.spans_with_label("Sign_symptom")) == 2

    def test_event_requires_trigger(self):
        doc = make_doc()
        with pytest.raises(AnnotationError):
            doc.add_event("Clinical_event", "T42")

    def test_note_attachment(self):
        doc = make_doc()
        note = doc.add_note("T1", "checked by reviewer")
        assert note.target == "T1"
        doc.verify()

    def test_verify_catches_dangling_relation(self):
        doc = make_doc()
        rel = doc.relations["R1"]
        del doc.textbounds[rel.source]
        with pytest.raises(AnnotationError):
            doc.verify()


class TestBratFormat:
    def test_roundtrip(self):
        doc = make_doc()
        doc.add_event("Sign_symptom", "T1", {"Theme": "T2"})
        doc.add_note("T1", "a note")
        content = serialize_ann(doc)
        parsed = parse_ann("doc1", TEXT, content)
        assert set(parsed.textbounds) == set(doc.textbounds)
        assert set(parsed.relations) == set(doc.relations)
        assert set(parsed.events) == set(doc.events)
        assert parsed.textbounds["T1"].text == "fever"
        assert serialize_ann(parsed) == content

    def test_parse_textbound_line(self):
        parsed = parse_ann("d", "fever", "T1\tSign_symptom 0 5\tfever\n")
        assert parsed.textbounds["T1"].label == "Sign_symptom"

    def test_parse_rejects_surface_mismatch(self):
        with pytest.raises(AnnotationError):
            parse_ann("d", "fever", "T1\tSign_symptom 0 5\tcough\n")

    def test_parse_rejects_bad_line(self):
        with pytest.raises(AnnotationError):
            parse_ann("d", "fever", "Z1\twhatever\n")

    def test_parse_rejects_dangling_relation(self):
        content = "T1\tSign_symptom 0 5\tfever\nR1\tBEFORE Arg1:T1 Arg2:T9\n"
        with pytest.raises(AnnotationError):
            parse_ann("d", "fever", content)

    def test_parse_discontinuous_span_envelope(self):
        text = "left and right atrium"
        content = "T1\tBiological_structure 0 4;15 21\tleft atrium\n"
        parsed = parse_ann("d", text, content)
        assert (parsed.textbounds["T1"].start, parsed.textbounds["T1"].end) == (0, 21)

    def test_parse_attribute_line(self):
        content = "T1\tSign_symptom 0 5\tfever\nA1\tNegated T1\n"
        parsed = parse_ann("d", "fever", content)
        assert parsed.attributes["A1"].label == "Negated"

    def test_blank_lines_ignored(self):
        parsed = parse_ann("d", "fever", "\nT1\tSign_symptom 0 5\tfever\n\n")
        assert len(parsed.textbounds) == 1

    def test_duplicate_ids_rejected(self):
        content = (
            "T1\tSign_symptom 0 5\tfever\nT1\tSign_symptom 0 5\tfever\n"
        )
        with pytest.raises(AnnotationError):
            parse_ann("d", "fever", content)

    def test_file_roundtrip(self, tmp_path):
        doc = make_doc()
        txt_path = write_document(doc, tmp_path)
        loaded = read_document(txt_path)
        assert loaded.text == doc.text
        assert set(loaded.textbounds) == set(doc.textbounds)

    def test_read_document_missing_ann(self, tmp_path):
        path = tmp_path / "alone.txt"
        path.write_text("text")
        with pytest.raises(AnnotationError):
            read_document(path)

    def test_generated_reports_roundtrip(self, cvd_reports):
        for report in cvd_reports[:5]:
            content = serialize_ann(report.annotations)
            parsed = parse_ann(report.report_id, report.text, content)
            assert len(parsed.textbounds) == len(report.annotations.textbounds)
            assert len(parsed.relations) == len(report.annotations.relations)


class TestSpanAlgebra:
    def test_overlap(self):
        assert spans_overlap((0, 5), (4, 9))
        assert not spans_overlap((0, 5), (5, 9))

    def test_contains(self):
        assert span_contains((0, 10), (2, 5))
        assert not span_contains((2, 5), (0, 10))

    def test_merge(self):
        assert merge_overlapping([(0, 5), (4, 9), (20, 25)]) == [
            (0, 9),
            (20, 25),
        ]

    def test_merge_touching(self):
        assert merge_overlapping([(0, 5), (5, 9)]) == [(0, 9)]

    def test_merge_empty(self):
        assert merge_overlapping([]) == []

    def test_align_to_tokens(self):
        tokens = tokenize(TEXT)
        bounds = align_to_tokens((22, 27), tokens)  # "fever"
        assert bounds is not None
        first, last = bounds
        assert tokens[first].text == "fever"
        assert first == last

    def test_align_partial_token(self):
        tokens = tokenize("hyperkalemia")
        assert align_to_tokens((0, 5), tokens) == (0, 0)

    def test_align_no_overlap(self):
        tokens = tokenize("abc def")
        assert align_to_tokens((100, 104), tokens) is None

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(1, 20)).map(
                lambda t: (t[0], t[0] + t[1])
            ),
            max_size=20,
        )
    )
    def test_merge_output_disjoint_and_sorted(self, spans):
        merged = merge_overlapping(spans)
        for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
            assert e1 < s2
        # Every original span is covered by some merged span.
        for span in spans:
            assert any(
                outer[0] <= span[0] and span[1] <= outer[1]
                for outer in merged
            )
