"""Tests for the extended API endpoints: categories, delete, highlight,
and mini-Cypher ORDER BY."""

import pytest

from repro.graphdb.cypher import CypherEngine


class TestCategoriesEndpoint:
    def test_fig1_data_from_aggregation(self, demo_system):
        pipeline, _reports = demo_system
        # The crawled ingest path has no category metadata; register a
        # couple of categorized documents directly.
        for i, category in enumerate(["cancer", "cancer", "cardiovascular"]):
            pipeline.store.collection("reports").insert_one(
                {"_id": f"cat-{i}", "category": category, "title": "t"}
            )
        response = pipeline.app.handle("GET", "/categories")
        assert response.ok
        rows = response.body["categories"]
        assert rows[0]["category"] == "cancer"
        assert rows[0]["count"] == 2
        assert sum(row["share"] for row in rows) == pytest.approx(1.0)
        for i in range(3):
            pipeline.store.collection("reports").delete_one(
                {"_id": f"cat-{i}"}
            )


class TestDeleteEndpoint:
    def test_delete_removes_everywhere(self, demo_system):
        pipeline, _ = demo_system
        doc = pipeline.store.collection("reports").find({}, limit=1)[0]
        doc_id = doc["_id"]
        n_nodes_before = pipeline.indexer.graph.n_nodes
        response = pipeline.app.handle("DELETE", f"/reports/{doc_id}")
        assert response.ok
        assert pipeline.app.handle("GET", f"/reports/{doc_id}").status == 404
        assert pipeline.indexer.graph.n_nodes < n_nodes_before
        assert pipeline.indexer.graph.find_nodes(doc_id=doc_id) == []
        # Restore for other tests sharing the session fixture.
        pipeline.app.register_report(doc)

    def test_delete_unknown_404(self, demo_system):
        pipeline, _ = demo_system
        assert pipeline.app.handle("DELETE", "/reports/nope").status == 404


class TestSearchHighlightParam:
    def test_highlights_included_on_request(self, demo_system):
        pipeline, reports = demo_system
        symptom = reports[0].annotations.spans_with_label("Sign_symptom")[0]
        response = pipeline.app.handle(
            "GET",
            "/search",
            params={"q": symptom.text, "size": 3, "highlight": "true"},
        )
        assert response.ok
        assert all("highlights" in row for row in response.body["results"])
        assert any(
            "<em>" in snippet
            for row in response.body["results"]
            for snippet in row["highlights"]
        )

    def test_highlights_absent_by_default(self, demo_system):
        pipeline, _ = demo_system
        response = pipeline.app.handle(
            "GET", "/search", params={"q": "fever", "size": 3}
        )
        assert all(
            "highlights" not in row for row in response.body["results"]
        )


class TestCypherOrderBy:
    def _engine(self):
        engine = CypherEngine()
        engine.run("CREATE (a:N {name: 'x', rank: 3})")
        engine.run("CREATE (a:N {name: 'y', rank: 1})")
        engine.run("CREATE (a:N {name: 'z', rank: 2})")
        return engine

    def test_ascending(self):
        rows = self._engine().run(
            "MATCH (a:N) RETURN a.name ORDER BY a.rank"
        )
        assert [row["a.name"] for row in rows] == ["y", "z", "x"]

    def test_descending(self):
        rows = self._engine().run(
            "MATCH (a:N) RETURN a.name ORDER BY a.rank DESC"
        )
        assert [row["a.name"] for row in rows] == ["x", "z", "y"]

    def test_order_by_with_limit(self):
        rows = self._engine().run(
            "MATCH (a:N) RETURN a.name ORDER BY a.rank LIMIT 1"
        )
        assert rows == [{"a.name": "y"}]

    def test_explicit_asc_keyword(self):
        rows = self._engine().run(
            "MATCH (a:N) RETURN a.name ORDER BY a.rank ASC LIMIT 1"
        )
        assert rows == [{"a.name": "y"}]
