"""Tests for the cohort subsystem: model, engine, oracle, API, FHIR."""

import json

import pytest

import repro.durability
from repro.api.app import CreateApplication
from repro.cohort import (
    BruteForceCohortEvaluator,
    CohortDefinition,
    CohortEngine,
    EntityCriterion,
    GraphCriterion,
    MentionSpec,
    TemporalCriterion,
    TextCriterion,
    ValueCriterion,
    bundle_provenance,
    criterion_from_json,
    export_fhir_bundle,
    parse_bundle,
)
from repro.corpus.generator import CaseReportGenerator
from repro.docstore.store import DocumentStore
from repro.exceptions import CohortError
from repro.ir.indexer import CreateIrIndexer
from repro.ir.searcher import CreateIrSearcher
from repro.testing.cohort import check_cohort_case, gen_cohort_case
from repro.testing.rng import case_rng


def _build_app(n_docs=10, seed=5):
    indexer = CreateIrIndexer()
    app = CreateApplication(
        store=DocumentStore(),
        indexer=indexer,
        searcher=CreateIrSearcher(indexer),
    )
    generator = CaseReportGenerator(seed=seed)
    reports = [generator.generate(f"r{i:03d}") for i in range(n_docs)]
    for report in reports:
        app.register_report(report.to_document(), annotations=report.annotations)
    return app, reports


def _engine_of(app):
    return CohortEngine(
        app.store,
        app.indexer.graph,
        app.indexer.engine,
        app._annotations.get,
    )


class TestModel:
    def test_round_trip_through_json(self):
        definition = CohortDefinition(
            name="c",
            description="demo",
            inclusion=[
                EntityCriterion(MentionSpec(entity_type="Medication")),
                TemporalCriterion(
                    "BEFORE",
                    MentionSpec(entity_type="Sign_symptom", value="fever"),
                    MentionSpec(entity_type="Medication", negated=None),
                ),
                GraphCriterion(
                    nodes=(("x", (("entityType", "Medication"),)),),
                ),
                TextCriterion("chest pain"),
            ],
            exclusion=[ValueCriterion("year", "between", [1990, 2000])],
        )
        reparsed = CohortDefinition.from_json(
            json.loads(json.dumps(definition.to_json()))
        )
        assert reparsed.to_json() == definition.to_json()

    def test_mention_spec_matching(self):
        spec = MentionSpec(entity_type="Medication", value="Aspirin")
        assert spec.matches("Medication", "aspirin", False)
        assert not spec.matches("Medication", "aspirin", True)
        assert not spec.matches("Sign_symptom", "aspirin", False)
        either = MentionSpec(entity_type="Medication", negated=None)
        assert either.matches("Medication", "x", True)
        assert either.matches("Medication", "x", False)

    @pytest.mark.parametrize(
        "body",
        [
            {"kind": "nope"},
            {"kind": "temporal", "relation": "DURING", "a": {}, "b": {}},
            {"kind": "value", "field": "year", "op": "like", "value": 1},
            {"kind": "value", "field": "year", "op": "between", "value": [1]},
            {"kind": "text", "query": "  "},
            {"kind": "graph", "nodes": []},
            {"kind": "graph", "nodes": [["x", {}]], "edges": [["x", "y", None, True]]},
            {"kind": "entity", "negated": "yes"},
        ],
    )
    def test_malformed_criteria_rejected(self, body):
        with pytest.raises(CohortError):
            criterion_from_json(body)

    def test_definition_requires_name(self):
        with pytest.raises(CohortError):
            CohortDefinition.from_json({"inclusion": []})


class TestEngine:
    def test_matches_oracle_on_mixed_criteria(self):
        app, reports = _build_app(n_docs=12)
        engine = _engine_of(app)
        oracle = BruteForceCohortEvaluator()
        for report in reports:
            oracle.add_report(
                report.report_id,
                report.title,
                report.to_document(),
                report.annotations,
            )
        definition = CohortDefinition(
            name="mixed",
            inclusion=[
                EntityCriterion(MentionSpec(entity_type="Sign_symptom")),
                TemporalCriterion(
                    "BEFORE",
                    MentionSpec(entity_type="Sign_symptom"),
                    MentionSpec(entity_type="Medication"),
                ),
                ValueCriterion("year", "gte", 1990),
            ],
            exclusion=[
                EntityCriterion(
                    MentionSpec(entity_type="Sign_symptom", negated=True)
                )
            ],
        )
        result = engine.evaluate(definition)
        assert result.members == oracle.evaluate(definition)
        for criterion in definition.inclusion + definition.exclusion:
            candidates, _backend = engine.candidates(criterion)
            assert candidates == oracle.candidates(criterion)

    def test_empty_inclusion_selects_population(self):
        app, reports = _build_app(n_docs=4)
        engine = _engine_of(app)
        result = engine.evaluate(CohortDefinition(name="all"))
        assert result.members == sorted(r.report_id for r in reports)
        assert result.population == 4

    def test_cardinality_ordering_and_short_circuit(self):
        app, _reports = _build_app(n_docs=6)
        engine = _engine_of(app)
        definition = CohortDefinition(
            name="sc",
            inclusion=[
                # Broad: every report mentions some entity.
                EntityCriterion(MentionSpec()),
                # Impossible: no such surface exists.
                EntityCriterion(
                    MentionSpec(entity_type="Medication", value="no-such-drug")
                ),
                TextCriterion("fever"),
            ],
        )
        result = engine.evaluate(definition)
        assert result.members == []
        reports = {
            report.criterion.get("value"): report
            for report in result.reports
        }
        # The impossible criterion has the smallest estimate, so it ran
        # first and emptied the intersection; at least one later
        # criterion must have been short-circuited.
        impossible = reports["no-such-drug"]
        assert not impossible.skipped and impossible.candidates == 0
        skipped = [r for r in result.reports if r.skipped]
        assert skipped
        assert all(r.seconds == 0.0 and r.backend == "" for r in skipped)
        # Evaluation order in the report list is ascending by estimate.
        evaluated = [r for r in result.reports if r.role == "inclusion"]
        estimates = [r.estimated for r in evaluated]
        assert estimates == sorted(estimates)

    def test_backend_selection(self):
        app, _reports = _build_app(n_docs=4)
        engine = _engine_of(app)
        cases = [
            (EntityCriterion(MentionSpec(entity_type="Medication")), "graph"),
            (
                TemporalCriterion(
                    "OVERLAP",
                    MentionSpec(entity_type="Disease_disorder"),
                    MentionSpec(entity_type="Medication"),
                ),
                "planner",
            ),
            (TextCriterion("patient"), "search"),
            (ValueCriterion("category", "eq", "cardiovascular"), "docstore"),
        ]
        for criterion, expected_backend in cases:
            _candidates, backend = engine.candidates(criterion)
            assert backend == expected_backend
        result = engine.evaluate(
            CohortDefinition(
                name="backends", inclusion=[c for c, _b in cases]
            )
        )
        kind_backend = {
            "entity": "graph",
            "temporal": "planner",
            "text": "search",
            "value": "docstore",
        }
        evaluated = [r for r in result.reports if not r.skipped]
        assert evaluated
        for row in evaluated:
            assert row.backend == kind_backend[row.criterion["kind"]]
        assert engine.counters["criteria_evaluated"] == len(evaluated)

    def test_stats_expose_last_evaluation(self):
        app, _reports = _build_app(n_docs=3)
        engine = _engine_of(app)
        engine.evaluate(
            CohortDefinition(
                name="s",
                inclusion=[EntityCriterion(MentionSpec(entity_type="Age"))],
            )
        )
        stats = engine.stats()
        assert stats["counters"]["cohorts_evaluated"] == 1
        last = stats["last_evaluations"]["s"]
        assert last["criteria"][0]["backend"] == "graph"
        assert last["criteria"][0]["candidates"] >= 0


class TestCohortApi:
    def test_define_evaluate_paginate(self):
        app, reports = _build_app(n_docs=8)
        created = app.handle(
            "POST",
            "/cohorts",
            body={
                "name": "everyone",
                "inclusion": [],
                "exclusion": [],
            },
        )
        assert created.status == 201
        listing = app.handle("GET", "/cohorts")
        assert [c["name"] for c in listing.body["cohorts"]] == ["everyone"]

        page = app.handle(
            "POST",
            "/cohorts/everyone/evaluate",
            params={"skip": "2", "limit": "3"},
        )
        assert page.status == 200
        assert page.body["size"] == len(reports)
        all_ids = sorted(r.report_id for r in reports)
        assert page.body["members"] == all_ids[2:5]
        assert page.body["skip"] == 2 and page.body["limit"] == 3

    def test_evaluate_reports_criterion_timings(self):
        app, _reports = _build_app(n_docs=5)
        app.handle(
            "POST",
            "/cohorts",
            body={
                "name": "meds",
                "inclusion": [
                    {"kind": "entity", "entity_type": "Medication"}
                ],
            },
        )
        evaluated = app.handle("POST", "/cohorts/meds/evaluate")
        rows = evaluated.body["criteria"]
        assert len(rows) == 1
        assert rows[0]["backend"] == "graph"
        assert rows[0]["candidates"] >= 0
        assert rows[0]["seconds"] >= 0.0
        stats = app.handle("GET", "/stats")
        assert stats.body["cohort"]["counters"]["cohorts_evaluated"] == 1
        assert "meds" in stats.body["cohort"]["last_evaluations"]

    def test_validation_and_missing_cohorts(self):
        app, _reports = _build_app(n_docs=2)
        bad = app.handle(
            "POST",
            "/cohorts",
            body={"name": "x", "inclusion": [{"kind": "bogus"}]},
        )
        assert bad.status == 400
        assert app.handle("GET", "/cohorts/none").status == 404
        assert app.handle("POST", "/cohorts/none/evaluate").status == 404
        assert app.handle("DELETE", "/cohorts/none").status == 404

    def test_redefine_replaces_and_delete_removes(self):
        app, _reports = _build_app(n_docs=2)
        for description in ("first", "second"):
            app.handle(
                "POST",
                "/cohorts",
                body={"name": "c", "description": description},
            )
        fetched = app.handle("GET", "/cohorts/c")
        assert fetched.body["description"] == "second"
        assert app.handle("DELETE", "/cohorts/c").status == 200
        assert app.handle("GET", "/cohorts/c").status == 404


class TestFhirExport:
    def test_bundle_round_trip_provenance_resolves(self, tmp_path):
        app, reports = _build_app(n_docs=6)
        app.handle(
            "POST",
            "/cohorts",
            body={
                "name": "f",
                "inclusion": [
                    {"kind": "entity", "entity_type": "Disease_disorder"}
                ],
            },
        )
        response = app.handle("GET", "/cohorts/f/fhir")
        assert response.status == 200

        path = tmp_path / "bundle.json"
        export_fhir_bundle(
            "f",
            [entry["resource"]["id"]
             for entry in response.body["entry"]
             if entry["resource"]["resourceType"] == "Patient"],
            app._annotations.get,
            path,
        )
        bundle = parse_bundle(path.read_text(encoding="utf-8"))
        assert bundle == response.body

        texts = {r.report_id: r.annotations.text for r in reports}
        spans = bundle_provenance(bundle)
        assert spans
        for provenance in spans:
            text = texts[provenance["reportId"]]
            start, end = provenance["start"], provenance["end"]
            assert text[start:end] == provenance["text"]

    def test_negated_mentions_export_as_refuted(self):
        app, reports = _build_app(n_docs=10)
        response = app.handle(
            "POST",
            "/cohorts",
            body={
                "name": "neg",
                "inclusion": [
                    {
                        "kind": "entity",
                        "entity_type": "Sign_symptom",
                        "negated": True,
                    }
                ],
            },
        )
        assert response.ok
        bundle = app.handle("GET", "/cohorts/neg/fhir").body
        observations = [
            entry["resource"]
            for entry in bundle["entry"]
            if entry["resource"]["resourceType"] == "Observation"
        ]
        assert any(not obs["valueBoolean"] for obs in observations)

    def test_export_uses_atomic_write(self, tmp_path, monkeypatch):
        calls = []
        real = repro.durability.atomic_write

        def spy(path, data, encoding="utf-8"):
            calls.append(str(path))
            return real(path, data, encoding)

        monkeypatch.setattr(repro.durability, "atomic_write", spy)
        path = tmp_path / "cohort.fhir.json"
        export_fhir_bundle("c", [], lambda _doc_id: None, path)
        assert calls == [str(path)]
        assert not list(tmp_path.glob("*.tmp")), "temp file leaked"
        assert json.loads(path.read_text())["resourceType"] == "Bundle"

    def test_parse_bundle_rejects_malformed(self):
        with pytest.raises(CohortError):
            parse_bundle({"resourceType": "Patient"})
        with pytest.raises(CohortError):
            parse_bundle(
                {"resourceType": "Bundle", "entry": [{}], "total": 1}
            )
        with pytest.raises(CohortError):
            parse_bundle(
                {"resourceType": "Bundle", "entry": [], "total": 3}
            )


class TestCohortFuzz:
    def test_first_cases_agree(self):
        for index in range(5):
            case = gen_cohort_case(case_rng(0, "cohort", index))
            assert check_cohort_case(case) is None

    def test_malformed_case_is_vacuous(self):
        assert check_cohort_case({"categories": []}) is None
        assert (
            check_cohort_case(
                {
                    "corpus_seed": 1,
                    "categories": ["not-a-category"],
                    "inclusion": [],
                    "exclusion": [],
                    "deletes": [],
                    "permutation_seed": 0,
                }
            )
            is None
        )
