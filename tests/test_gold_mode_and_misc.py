"""Tests for remaining paths: gold-annotation mode, misc utilities."""

import pytest

from repro.pipeline import build_demo_system


class TestGoldAnnotationMode:
    @pytest.fixture(scope="class")
    def gold_system(self):
        return build_demo_system(
            n_reports=10, n_train=10, seed=3, use_gold_annotations=True
        )

    def test_indexes_without_crawling(self, gold_system):
        pipeline, reports = gold_system
        assert pipeline.stats.indexed == len(reports)
        assert pipeline.stats.crawled == 0

    def test_gold_graph_matches_annotations(self, gold_system):
        pipeline, reports = gold_system
        report = reports[0]
        nodes = pipeline.indexer.graph.find_nodes(doc_id=report.report_id)
        assert len(nodes) == len(report.annotations.textbounds)

    def test_category_metadata_preserved(self, gold_system):
        pipeline, reports = gold_system
        stored = pipeline.store.collection("reports").get(
            reports[0].report_id
        )
        assert stored["category"] == reports[0].category

    def test_categories_endpoint_with_gold_corpus(self, gold_system):
        pipeline, reports = gold_system
        response = pipeline.app.handle("GET", "/categories")
        assert response.ok
        total = sum(row["count"] for row in response.body["categories"])
        assert total == len(reports)

    def test_gold_search_quality_upper_bound(self, gold_system):
        pipeline, reports = gold_system
        report = reports[0]
        symptoms = report.annotations.spans_with_label("Sign_symptom")
        results = pipeline.searcher.search(symptoms[0].text, size=10)
        assert any(r.doc_id == report.report_id for r in results)


class TestMiscellaneous:
    def test_version_exported(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_public_api_importable(self):
        from repro import (
            ClinicalExtractor,
            CreatePipeline,
            build_demo_system,
        )

        assert callable(build_demo_system)
        assert ClinicalExtractor is not None
        assert CreatePipeline is not None

    def test_exceptions_hierarchy(self):
        from repro import exceptions

        for name in (
            "SchemaError", "AnnotationError", "DocumentStoreError",
            "SearchError", "GraphError", "CypherError", "ParseError",
            "CrawlError", "ModelError", "TemporalInconsistencyError",
            "PipelineError", "ApiError",
        ):
            klass = getattr(exceptions, name)
            assert issubclass(klass, exceptions.ReproError)

    def test_api_error_carries_status(self):
        from repro.exceptions import ApiError

        error = ApiError(404, "nope")
        assert error.status == 404
        assert error.message == "nope"
