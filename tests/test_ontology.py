"""Tests for the ontology substrate and concept normalization."""

import pytest

from repro.ontology.concepts import MiniOntology, build_default_ontology
from repro.ontology.normalize import ConceptNormalizer


@pytest.fixture(scope="module")
def ontology():
    return build_default_ontology()


@pytest.fixture(scope="module")
def normalizer(ontology):
    return ConceptNormalizer(ontology)


class TestMiniOntology:
    def test_lexicon_terms_registered(self, ontology):
        assert ontology.by_name("amiodarone") is not None
        assert ontology.by_name("atrial fibrillation") is not None

    def test_synonyms_share_concept(self, ontology):
        a = ontology.by_name("dyspnea")
        b = ontology.by_name("shortness of breath")
        assert a is not None and b is not None
        assert a.concept_id == b.concept_id

    def test_case_insensitive_lookup(self, ontology):
        assert ontology.by_name("Dyspnea") is not None

    def test_cui_like_ids(self, ontology):
        concept = ontology.by_name("fever")
        assert concept.concept_id.startswith("C")
        assert len(concept.concept_id) == 8

    def test_semantic_types_assigned(self, ontology):
        assert (
            ontology.by_name("warfarin").semantic_type
            == "Pharmacologic Substance"
        )

    def test_merge_on_shared_name(self):
        ontology = MiniOntology()
        first = ontology.add_concept("fever", "Sign", ("pyrexia",))
        second = ontology.add_concept("pyrexia", "Sign", ("febrile",))
        assert first.concept_id == second.concept_id
        assert "febrile" in ontology.get(first.concept_id).synonyms

    def test_unknown_name(self, ontology):
        assert ontology.by_name("florbglorb") is None

    def test_len_counts_concepts(self, ontology):
        assert len(ontology) > 100


class TestNormalizer:
    def test_exact(self, normalizer):
        result = normalizer.normalize("dyspnea")
        assert result.method == "exact"
        assert result.score == 1.0

    def test_synonym_maps_to_preferred(self, normalizer):
        result = normalizer.normalize("shortness of breath")
        assert result.preferred_name == "dyspnea"

    def test_stemmed_inflection(self, normalizer):
        result = normalizer.normalize("fevers")
        assert result is not None
        assert result.method in ("stemmed", "fuzzy")
        assert result.concept_id == normalizer.normalize("fever").concept_id

    def test_word_order_insensitive(self, normalizer):
        result = normalizer.normalize("fibrillation atrial")
        assert result is not None
        assert (
            result.concept_id
            == normalizer.normalize("atrial fibrillation").concept_id
        )

    def test_fuzzy_partial(self, normalizer):
        result = normalizer.normalize("severe atrial fibrillation")
        assert result is not None
        assert (
            result.concept_id
            == normalizer.normalize("atrial fibrillation").concept_id
        )

    def test_below_threshold_none(self, normalizer):
        assert normalizer.normalize("quantum flux capacitor") is None

    def test_empty_surface(self, normalizer):
        assert normalizer.normalize("") is None

    def test_cached_identical(self, normalizer):
        assert normalizer.normalize("fever") == normalizer.normalize("fever")


class TestOntologyInRetrieval:
    def test_nodes_stamped_with_concept_ids(self, cvd_reports):
        from repro.ir.indexer import CreateIrIndexer

        indexer = CreateIrIndexer()
        report = cvd_reports[0]
        indexer.index_annotation_document(
            report.report_id, report.title, report.annotations
        )
        stamped = [
            node
            for node in indexer.graph.find_nodes(doc_id=report.report_id)
            if node.get("conceptId")
        ]
        assert len(stamped) > len(
            list(indexer.graph.find_nodes(doc_id=report.report_id))
        ) // 2

    def test_synonym_query_retrieves_synonym_mention(self, cvd_reports):
        from repro.ir.indexer import CreateIrIndexer
        from repro.ir.query_parser import ParsedQuery, QueryConceptMention
        from repro.ir.searcher import CreateIrSearcher

        indexer = CreateIrIndexer()
        # Find a report whose gold annotations mention dyspnea.
        target = None
        for report in cvd_reports:
            if any(
                tb.text.lower() == "dyspnea"
                for tb in report.annotations.textbounds.values()
            ):
                target = report
            indexer.index_annotation_document(
                report.report_id, report.title, report.annotations
            )
        if target is None:
            pytest.skip("no dyspnea mention in fixture corpus")
        searcher = CreateIrSearcher(indexer, parser=None)
        parsed = ParsedQuery(
            text="shortness of breath",
            concepts=[
                QueryConceptMention(
                    "shortness of breath", "Sign_symptom", 0, 0
                )
            ],
        )
        details = searcher.graph_search(parsed)
        assert any(d.doc_id == target.report_id for d in details)
