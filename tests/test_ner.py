"""Tests for the NER module: BIO encoding, baselines, the tagger."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus.generator import CaseReportGenerator
from repro.exceptions import ModelError, NotFittedError
from repro.ner.baseline import LexiconTagger
from repro.ner.encoding import bio_decode, bio_encode, spans_of_document
from repro.ner.tagger import NerTagger, _shape, token_features
from repro.text.tokenize import tokenize

TEXT = "The patient developed fever and a mild cough."


class TestBioEncoding:
    def test_encode_simple(self):
        tokens = tokenize(TEXT)
        labels = bio_encode(tokens, [(22, 27, "S")])
        fever_index = [t.text for t in tokens].index("fever")
        assert labels[fever_index] == "B-S"
        assert labels.count("O") == len(tokens) - 1

    def test_encode_multiword(self):
        text = "acute chest pain here"
        tokens = tokenize(text)
        labels = bio_encode(tokens, [(6, 16, "S")])
        assert labels == ["O", "B-S", "I-S", "O"]

    def test_overlapping_spans_longest_wins(self):
        text = "severe chest pain"
        tokens = tokenize(text)
        labels = bio_encode(
            tokens, [(7, 17, "S"), (7, 12, "T")]
        )
        assert labels == ["O", "B-S", "I-S"]

    def test_decode_roundtrip(self):
        text = "acute chest pain and fever today"
        tokens = tokenize(text)
        spans = [(6, 16, "S"), (21, 26, "S")]
        decoded = bio_decode(tokens, bio_encode(tokens, spans))
        assert decoded == spans

    def test_decode_tolerates_orphan_inside(self):
        tokens = tokenize("a b c")
        spans = bio_decode(tokens, ["O", "I-S", "I-S"])
        assert spans == [(2, 5, "S")]

    def test_decode_label_change_closes_span(self):
        tokens = tokenize("a b c")
        spans = bio_decode(tokens, ["B-S", "I-T", "O"])
        assert spans == [(0, 1, "S"), (2, 3, "T")]

    def test_decode_length_mismatch(self):
        with pytest.raises(ValueError):
            bio_decode(tokenize("a b"), ["O"])

    def test_spans_of_document(self, one_report):
        spans = spans_of_document(one_report.annotations)
        assert spans
        assert all(
            one_report.text[start:end] for start, end, _label in spans
        )

    @given(
        st.lists(
            st.tuples(st.integers(0, 8), st.integers(1, 3)),
            max_size=4,
        )
    )
    @settings(deadline=None)
    def test_encode_decode_stability(self, raw_spans):
        # Encoding then decoding then re-encoding is a fixpoint.
        text = "alpha beta gamma delta epsilon zeta eta theta iota kappa"
        tokens = tokenize(text)
        spans = []
        for token_index, width in raw_spans:
            last = min(token_index + width - 1, len(tokens) - 1)
            spans.append((tokens[token_index].start, tokens[last].end, "S"))
        labels = bio_encode(tokens, spans)
        decoded = bio_decode(tokens, labels)
        assert bio_encode(tokens, decoded) == labels


class TestShapeAndFeatures:
    def test_shape(self):
        assert _shape("Chest") == "Xx"
        assert _shape("120/80") == "d/d"
        assert _shape("COVID-19") == "X-d"

    def test_token_features_context(self):
        tokens = tokenize("no fever today")
        feats = token_features(tokens, 1)
        assert "w=fever" in feats
        assert "prev_w=no" in feats
        assert "next_w=today" in feats

    def test_boundary_features(self):
        tokens = tokenize("fever")
        feats = token_features(tokens, 0)
        assert "BOS" in feats
        assert "EOS" in feats


@pytest.fixture(scope="module")
def tiny_ner_data():
    generator = CaseReportGenerator(seed=31)
    train = [generator.generate(f"tr{i}").annotations for i in range(14)]
    test = [generator.generate(f"te{i}").annotations for i in range(4)]
    return train, test


class TestLexiconTagger:
    def test_memorizes_training_surfaces(self, tiny_ner_data):
        train, _test = tiny_ner_data
        tagger = LexiconTagger().fit(train)
        assert tagger.n_entries > 0
        predicted = set(tagger.predict_document(train[0]))
        gold = set(spans_of_document(train[0]))
        assert len(predicted & gold) / len(gold) > 0.7

    def test_longest_match_preferred(self):
        from repro.annotation.model import AnnotationDocument

        doc = AnnotationDocument(doc_id="d", text="acute chest pain")
        doc.add_textbound("Sign_symptom", 6, 16)   # chest pain
        doc.add_textbound("Severity", 0, 5)        # acute
        tagger = LexiconTagger().fit([doc])
        spans = tagger.predict_spans("she had acute chest pain")
        assert (14, 24, "Sign_symptom") in spans

    def test_unseen_text_yields_nothing(self, tiny_ner_data):
        train, _ = tiny_ner_data
        tagger = LexiconTagger().fit(train)
        assert tagger.predict_spans("zzz qqq www") == []


class TestNerTagger:
    def test_crf_learns_and_evaluates(self, tiny_ner_data):
        train, test = tiny_ner_data
        tagger = NerTagger(decoder="crf", epochs=3).fit(train)
        score = tagger.evaluate(test)
        assert score.f1 > 0.6

    def test_perceptron_decoder(self, tiny_ner_data):
        train, test = tiny_ner_data
        tagger = NerTagger(decoder="perceptron", epochs=3).fit(train)
        assert tagger.evaluate(test).f1 > 0.4

    def test_embeddings_autofit_when_enabled(self, tiny_ner_data):
        train, test = tiny_ner_data
        tagger = NerTagger(
            decoder="crf", use_context_embeddings=True, epochs=2
        ).fit(train)
        assert tagger.embedder is not None
        assert tagger.evaluate(test).f1 > 0.4

    def test_predict_spans_offsets_valid(self, tiny_ner_data):
        train, _ = tiny_ner_data
        tagger = NerTagger(decoder="crf", epochs=2).fit(train)
        text = train[0].text
        for span in tagger.predict_spans(text):
            assert text[span.start : span.end] == span.text

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            NerTagger().predict_spans("text")

    def test_unknown_decoder_rejected(self):
        with pytest.raises(ModelError):
            NerTagger(decoder="transformer")

    def test_unknown_embedding_mode_rejected(self):
        with pytest.raises(ModelError):
            NerTagger(embedding_feature_mode="magic")
