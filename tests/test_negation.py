"""Tests for assertion/negation detection and its retrieval effect."""

import pytest

from repro.corpus.generator import CaseReportGenerator, GeneratorConfig
from repro.ir.indexer import CreateIrIndexer
from repro.ir.query_parser import ParsedQuery, QueryConceptMention
from repro.ir.searcher import CreateIrSearcher
from repro.ner.negation import NegationDetector


@pytest.fixture(scope="module")
def detector():
    return NegationDetector()


def span_of(text, phrase):
    start = text.index(phrase)
    return (start, start + len(phrase))


class TestNegationDetector:
    def test_denied_forward_scope(self, detector):
        text = "The patient denied chest pain on admission."
        assert detector.is_negated(text, *span_of(text, "chest pain"))

    def test_no_forward_scope(self, detector):
        text = "There was no fever during the stay."
        assert detector.is_negated(text, *span_of(text, "fever"))

    def test_negative_for(self, detector):
        text = "Blood cultures were negative for bacterial growth."
        assert detector.is_negated(text, *span_of(text, "bacterial growth"))

    def test_unnegated_mention(self, detector):
        text = "The patient reported severe chest pain."
        assert not detector.is_negated(text, *span_of(text, "chest pain"))

    def test_scope_does_not_cross_sentence(self, detector):
        text = "He denied dyspnea. Fever was documented overnight."
        assert detector.is_negated(text, *span_of(text, "dyspnea"))
        assert not detector.is_negated(text, *span_of(text, "Fever"))

    def test_scope_breaker_but(self, detector):
        text = "She denied cough but reported fever this week."
        assert detector.is_negated(text, *span_of(text, "cough"))
        assert not detector.is_negated(text, *span_of(text, "fever"))

    def test_backward_trigger(self, detector):
        text = "Pulmonary embolism was ruled out by CT angiography."
        assert detector.is_negated(text, *span_of(text, "Pulmonary embolism"))

    def test_scope_window_bounded(self, detector):
        text = (
            "No acute distress was noted at any point whatsoever and the "
            "syncope continued."
        )
        assert not detector.is_negated(text, *span_of(text, "syncope"))

    def test_detect_returns_triggers(self, detector):
        scopes = detector.detect("The patient denied chest pain.")
        assert any(scope.trigger == "denied" for scope in scopes)

    def test_empty_text(self, detector):
        assert detector.detect("") == []


class TestNegationInPipeline:
    @pytest.fixture(scope="class")
    def negated_corpus(self):
        config = GeneratorConfig(negated_finding_prob=1.0)
        generator = CaseReportGenerator(seed=31, config=config)
        return [generator.generate(f"neg-{i}") for i in range(10)]

    def test_generator_marks_negated(self, negated_corpus):
        for report in negated_corpus:
            assert any(
                attribute.label == "Negated"
                for attribute in report.annotations.attributes.values()
            )

    def test_negated_nodes_flagged_in_graph(self, negated_corpus):
        indexer = CreateIrIndexer()
        report = negated_corpus[0]
        indexer.index_annotation_document(
            report.report_id, report.title, report.annotations
        )
        flagged = [
            node
            for node in indexer.graph.find_nodes(doc_id=report.report_id)
            if node.get("negated")
        ]
        assert flagged

    def test_graph_search_skips_negated_mentions(self, negated_corpus):
        indexer = CreateIrIndexer()
        for report in negated_corpus:
            indexer.index_annotation_document(
                report.report_id, report.title, report.annotations
            )
        searcher = CreateIrSearcher(indexer, parser=None)
        # Pick a denied surface that appears ONLY negated in its report.
        report = negated_corpus[0]
        negated_ids = {
            attribute.target
            for attribute in report.annotations.attributes.values()
            if attribute.label == "Negated"
        }
        denied_tb = report.annotations.textbounds[next(iter(negated_ids))]
        positive_ids = {
            tb.ann_id
            for tb in report.annotations.textbounds.values()
            if tb.text == denied_tb.text and tb.ann_id not in negated_ids
        }
        if positive_ids:
            pytest.skip("surface also appears positively in this report")
        parsed = ParsedQuery(
            text=denied_tb.text,
            concepts=[
                QueryConceptMention(denied_tb.text, denied_tb.label, 0, 0)
            ],
        )
        details = searcher.graph_search(parsed)
        assert all(d.doc_id != report.report_id for d in details)

    def test_extractor_excludes_negated_from_timeline(self, demo_system):
        pipeline, _ = demo_system
        text = (
            "The patient is a 60-year-old man. He presented to the "
            "hospital with severe chest pain. He denied fever. "
            "Electrocardiogram on admission revealed ST-segment elevation. "
            "The patient was discharged home."
        )
        extracted = pipeline.extractor.extract("neg-check", text)
        negated = [
            extracted.textbounds[attribute.target].text
            for attribute in extracted.attributes.values()
            if attribute.label == "Negated"
        ]
        if not negated:
            pytest.skip("tagger did not produce a span inside the scope")
        # No temporal relation touches a negated span.
        negated_ids = {
            attribute.target
            for attribute in extracted.attributes.values()
            if attribute.label == "Negated"
        }
        for rel in extracted.relations.values():
            assert rel.source not in negated_ids
            assert rel.target not in negated_ids
