"""Tests for highlighting and multi_match."""

import pytest

from repro.exceptions import SearchError
from repro.search.analysis import STANDARD_ANALYZER_CONFIG, create_analyzer
from repro.search.engine import SearchEngine, create_ir_engine
from repro.search.highlight import highlight

ANALYZER = create_analyzer(STANDARD_ANALYZER_CONFIG)
TEXT = (
    "The patient presented with fever and persistent cough. "
    "After three days the fever resolved but the cough continued "
    "for another two weeks before full recovery."
)


class TestHighlight:
    def test_terms_wrapped(self):
        snippets = highlight(ANALYZER, TEXT, "fever")
        assert snippets
        assert "<em>fever</em>" in snippets[0]

    def test_stemmed_variants_matched(self):
        snippets = highlight(ANALYZER, TEXT, "fevers")
        assert any("<em>fever</em>" in s for s in snippets)

    def test_multiple_terms(self):
        snippets = highlight(ANALYZER, TEXT, "fever cough")
        joined = " ".join(snippets)
        assert "<em>fever</em>" in joined
        assert "<em>cough</em>" in joined

    def test_no_match_no_snippets(self):
        assert highlight(ANALYZER, TEXT, "zygomatic") == []

    def test_empty_inputs(self):
        assert highlight(ANALYZER, "", "fever") == []
        assert highlight(ANALYZER, TEXT, "") == []

    def test_ellipses_on_clipped_snippets(self):
        long_text = ("filler " * 50) + "fever " + ("filler " * 50)
        snippets = highlight(ANALYZER, long_text, "fever", window=20)
        assert snippets[0].startswith("…")
        assert snippets[0].endswith("…")

    def test_max_snippets(self):
        text = ("fever " + "spacer " * 40) * 5
        snippets = highlight(ANALYZER, text, "fever", window=10, max_snippets=2)
        assert len(snippets) == 2

    def test_custom_tags(self):
        snippets = highlight(
            ANALYZER, TEXT, "fever", pre_tag="[", post_tag="]"
        )
        assert "[fever]" in snippets[0]


class TestMultiMatch:
    def _engine(self):
        engine = SearchEngine(
            {
                "title": STANDARD_ANALYZER_CONFIG,
                "body": STANDARD_ANALYZER_CONFIG,
            }
        )
        engine.index("t", {"title": "fever case", "body": "unrelated text"})
        engine.index("b", {"title": "something else", "body": "fever fever"})
        return engine

    def test_searches_all_fields(self):
        hits = self._engine().search(
            {"multi_match": {"query": "fever", "fields": ["title", "body"]}}
        )
        assert {h.doc_id for h in hits} == {"t", "b"}

    def test_boost_changes_ranking(self):
        engine = self._engine()
        boosted = engine.search(
            {"multi_match": {"query": "fever", "fields": ["title^10", "body"]}}
        )
        assert boosted[0].doc_id == "t"
        unboosted = engine.search(
            {"multi_match": {"query": "fever", "fields": ["title", "body^10"]}}
        )
        assert unboosted[0].doc_id == "b"

    def test_defaults_to_default_field(self):
        engine = self._engine()
        hits = engine.search({"multi_match": {"query": "fever"}})
        assert {h.doc_id for h in hits} == {"b"}

    def test_requires_query(self):
        with pytest.raises(SearchError):
            self._engine().search({"multi_match": {"fields": ["body"]}})

    def test_bad_boost_rejected(self):
        with pytest.raises(SearchError):
            self._engine().search(
                {"multi_match": {"query": "x", "fields": ["title^big"]}}
            )


class TestEngineHighlight:
    def test_highlight_via_engine(self):
        engine = create_ir_engine()
        engine.index("d", {"body": TEXT, "title": "Fever case"})
        snippets = engine.highlight("d", "body", "persistent cough")
        assert snippets
        assert "<em>" in snippets[0]

    def test_unknown_doc_empty(self):
        engine = create_ir_engine()
        assert engine.highlight("missing", "body", "fever") == []


class TestHighlightBoundarySnapping:
    def test_window_snaps_left_to_word_start(self):
        snippets = highlight(ANALYZER, "xx abcdef fever", "fever", window=3)
        assert snippets == ["…abcdef <em>fever</em>"]

    def test_window_snaps_right_to_word_end_at_eof(self):
        snippets = highlight(ANALYZER, "fever abcdefgh", "fever", window=3)
        assert snippets == ["<em>fever</em> abcdefgh"]

    def test_match_at_offset_zero_has_no_leading_ellipsis(self):
        text = "fever then a very long tail of unrelated narrative text"
        snippets = highlight(ANALYZER, text, "fever", window=5)
        assert snippets[0].startswith("<em>fever</em>")
        assert not snippets[0].startswith("…")

    def test_match_at_eof_has_no_trailing_ellipsis(self):
        text = "a very long prefix of unrelated narrative then fever"
        snippets = highlight(ANALYZER, text, "fever", window=5)
        assert snippets[0].endswith("<em>fever</em>")

    def test_whole_text_window_has_no_ellipses(self):
        snippets = highlight(ANALYZER, "mild fever today", "fever", window=60)
        assert snippets == ["mild <em>fever</em> today"]
