"""The runtime substrate: batch executor, metrics, span tracer."""

import threading
import time

import pytest

from repro.exceptions import ReproError, StageFailure, TransientParseError
from repro.runtime import BatchExecutor, MetricsRegistry, SpanTracer


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


_FLAKY_CALLS = {}


def _flaky(x):
    """Fails the first two calls for each item, then succeeds."""
    count = _FLAKY_CALLS.get(x, 0) + 1
    _FLAKY_CALLS[x] = count
    if count <= 2:
        raise TransientParseError(f"transient #{count} for {x}")
    return x * 10


class TestBatchExecutor:
    @pytest.mark.parametrize(
        "workers,mode",
        [(1, "serial"), (4, "thread"), (2, "process")],
    )
    def test_results_ordered_by_input(self, workers, mode):
        executor = BatchExecutor(workers=workers, mode=mode)
        outcomes = executor.map(_square, range(20))
        assert [o.index for o in outcomes] == list(range(20))
        assert [o.value for o in outcomes] == [i * i for i in range(20)]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_fault_isolation(self):
        executor = BatchExecutor(workers=4, mode="thread")
        outcomes = executor.map(_fail_on_three, [1, 2, 3, 4])
        assert [o.ok for o in outcomes] == [True, True, False, True]
        failed = outcomes[2]
        assert isinstance(failed.error, ValueError)
        assert failed.value is None
        assert [o.value for o in outcomes if o.ok] == [1, 2, 4]

    def test_retry_bounded_success(self):
        _FLAKY_CALLS.clear()
        executor = BatchExecutor(
            workers=1, retries=2, retry_on=(TransientParseError,)
        )
        outcomes = executor.map(_flaky, [7])
        assert outcomes[0].ok
        assert outcomes[0].value == 70
        assert outcomes[0].attempts == 3

    def test_retry_exhausted(self):
        _FLAKY_CALLS.clear()
        executor = BatchExecutor(
            workers=1, retries=1, retry_on=(TransientParseError,)
        )
        outcomes = executor.map(_flaky, [7])
        assert not outcomes[0].ok
        assert isinstance(outcomes[0].error, TransientParseError)
        assert outcomes[0].attempts == 2

    def test_no_retry_for_unlisted_exception(self):
        executor = BatchExecutor(
            workers=1, retries=5, retry_on=(TransientParseError,)
        )
        outcomes = executor.map(_fail_on_three, [3])
        assert outcomes[0].attempts == 1

    def test_initializer_runs_for_serial_and_thread(self):
        seen = []
        executor = BatchExecutor(
            workers=1, initializer=seen.append, initargs=("ready",)
        )
        executor.map(_square, [1])
        executor = BatchExecutor(
            workers=2, mode="thread", initializer=seen.append, initargs=("go",)
        )
        executor.map(_square, [1])
        assert seen == ["ready", "go"]

    def test_empty_batch(self):
        assert BatchExecutor(workers=4).map(_square, []) == []

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError):
            BatchExecutor(workers=2, mode="quantum")


class TestMetricsRegistry:
    def test_counters(self):
        metrics = MetricsRegistry()
        assert metrics.counter("a") == 0
        metrics.increment("a")
        metrics.increment("a", 4)
        assert metrics.counter("a") == 5

    def test_timer_percentiles(self):
        metrics = MetricsRegistry()
        for ms in range(1, 101):  # 1..100
            metrics.record("lat", ms / 1000.0)
        stats = metrics.timer_stats("lat")
        assert stats.count == 100
        assert stats.minimum == pytest.approx(0.001)
        assert stats.maximum == pytest.approx(0.100)
        assert stats.percentiles[50.0] == pytest.approx(0.0505, abs=1e-4)
        assert stats.percentiles[99.0] == pytest.approx(0.09901, abs=1e-4)

    def test_time_context_manager(self):
        metrics = MetricsRegistry()
        with metrics.time("block"):
            time.sleep(0.01)
        stats = metrics.timer_stats("block")
        assert stats.count == 1
        assert stats.total >= 0.01

    def test_snapshot_shape(self):
        metrics = MetricsRegistry()
        metrics.increment("requests", 3)
        metrics.record("latency", 0.25)
        snap = metrics.snapshot()
        assert snap["counters"] == {"requests": 3}
        timer = snap["timers"]["latency"]
        assert timer["count"] == 1
        assert {"p50", "p90", "p99", "mean", "max"} <= set(timer)

    def test_thread_safety(self):
        metrics = MetricsRegistry()

        def hammer():
            for _ in range(1000):
                metrics.increment("hits")
                metrics.record("t", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.counter("hits") == 4000
        assert metrics.timer_stats("t").count == 4000

    def test_reset(self):
        metrics = MetricsRegistry()
        metrics.increment("x")
        metrics.record("y", 1.0)
        metrics.reset()
        assert metrics.snapshot() == {"counters": {}, "timers": {}}


class TestSpanTracer:
    def test_nesting_parent_ids(self):
        tracer = SpanTracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner", doc="d1") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.attributes == {"doc": "d1"}
        names = [s.name for s in tracer.finished()]
        assert names == ["inner", "outer"]  # finished in close order

    def test_durations_and_export(self):
        tracer = SpanTracer()
        with tracer.span("work"):
            time.sleep(0.005)
        span = tracer.finished("work")[0]
        assert span.duration >= 0.005
        exported = tracer.export()
        assert exported[0]["name"] == "work"
        assert exported[0]["duration"] >= 0.005

    def test_bounded_retention(self):
        tracer = SpanTracer(max_spans=5)
        for i in range(12):
            with tracer.span(f"s{i}"):
                pass
        finished = tracer.finished()
        assert len(finished) == 5
        assert finished[-1].name == "s11"

    def test_clear(self):
        tracer = SpanTracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.finished() == []


class TestStageFailure:
    def test_pickle_round_trip(self):
        import pickle

        failure = StageFailure("parse", "ParseError", "bad content", 3)
        clone = pickle.loads(pickle.dumps(failure))
        assert isinstance(clone, StageFailure)
        assert (clone.stage, clone.error_type, clone.message, clone.attempts) == (
            "parse",
            "ParseError",
            "bad content",
            3,
        )


class TestExecutorStartMethod:
    def test_fork_avoided_while_threads_are_live(self):
        stop = threading.Event()
        worker = threading.Thread(target=stop.wait)
        worker.start()
        try:
            ctx = BatchExecutor._mp_context()
            # Forking with a live thread risks deadlocking the child on
            # locks the thread holds; a thread-safe method must win.
            assert ctx.get_start_method() in ("forkserver", "spawn")
        finally:
            stop.set()
            worker.join()

    def test_context_method_is_always_available(self):
        import multiprocessing

        ctx = BatchExecutor._mp_context()
        assert ctx.get_start_method() in (
            multiprocessing.get_all_start_methods()
        )

    def test_process_map_works_with_live_threads(self):
        stop = threading.Event()
        worker = threading.Thread(target=stop.wait)
        worker.start()
        try:
            executor = BatchExecutor(workers=2, mode="process")
            outcomes = executor.map(_square, [2, 3])
            assert [o.value for o in outcomes] == [4, 9]
        finally:
            stop.set()
            worker.join()


class TestPersistentPool:
    def test_pool_object_reused_across_batches(self):
        executor = BatchExecutor(workers=2, mode="thread", persistent=True)
        try:
            assert [o.value for o in executor.map(_square, [1, 2])] == [1, 4]
            pool = executor._live_pool
            assert pool is not None
            assert [o.value for o in executor.map(_square, [3])] == [9]
            assert executor._live_pool is pool
        finally:
            executor.close()
        assert executor._live_pool is None

    def test_close_is_idempotent_and_pool_reopens(self):
        executor = BatchExecutor(workers=2, mode="thread", persistent=True)
        executor.close()
        executor.close()
        with executor:
            assert [o.value for o in executor.map(_square, [5])] == [25]
        assert executor._live_pool is None

    def test_persistent_process_pool(self):
        with BatchExecutor(
            workers=2, mode="process", persistent=True
        ) as executor:
            assert [o.value for o in executor.map(_square, [4])] == [16]
            assert [o.value for o in executor.map(_square, [5])] == [25]


class TestBatchDeadline:
    def test_hung_item_times_out_without_blocking_batch(self):
        executor = BatchExecutor(workers=2, mode="thread")
        event = threading.Event()

        def maybe_hang(x):
            if x == 1:
                event.wait(timeout=10.0)
            return x

        started = time.perf_counter()
        outcomes = executor.map(maybe_hang, [0, 1, 2], timeout=0.2)
        elapsed = time.perf_counter() - started
        event.set()
        assert elapsed < 5.0  # did not wait out the hang
        assert outcomes[0].ok and outcomes[0].value == 0
        assert not outcomes[1].ok
        assert isinstance(outcomes[1].error, TimeoutError)
        assert "deadline" in str(outcomes[1].error)

    def test_fast_batch_unaffected_by_deadline(self):
        executor = BatchExecutor(workers=2, mode="thread")
        outcomes = executor.map(_square, [1, 2, 3], timeout=5.0)
        assert [o.value for o in outcomes] == [1, 4, 9]
        assert all(o.ok for o in outcomes)

    def test_serial_mode_ignores_deadline(self):
        executor = BatchExecutor(workers=1)
        outcomes = executor.map(_square, [2], timeout=0.000001)
        assert outcomes[0].ok and outcomes[0].value == 4

    def test_recycle_replaces_persistent_pool(self):
        executor = BatchExecutor(workers=2, mode="thread", persistent=True)
        assert executor.map(_square, [3])[0].value == 9
        first_pool = executor._live_pool
        assert first_pool is not None
        executor.recycle()
        assert executor._live_pool is None
        # The next map opens a fresh pool and still works.
        assert executor.map(_square, [4])[0].value == 16
        assert executor._live_pool is not first_pool
        executor.close()

    def test_recycle_without_pool_is_noop(self):
        executor = BatchExecutor(workers=2, mode="thread", persistent=True)
        executor.recycle()  # nothing live yet
        assert executor._live_pool is None

    def test_process_deadline_and_recycle_recovers(self):
        # workers must be >= 2: a single worker forces serial mode,
        # which runs inline and cannot honor a deadline.
        executor = BatchExecutor(
            workers=2, mode="process", persistent=True
        )
        try:
            outcomes = executor.map(_sleep_forever, [0], timeout=0.5)
            assert not outcomes[0].ok
            assert isinstance(outcomes[0].error, TimeoutError)
            executor.recycle()
            # Fresh workers serve the next batch.
            outcomes = executor.map(_square, [5], timeout=10.0)
            assert outcomes[0].ok and outcomes[0].value == 25
        finally:
            executor.recycle()


def _sleep_forever(_x):
    time.sleep(60.0)
    return None
