"""Tests for temporal relation extraction: algebra, graph, models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus.datasets import make_temporal_dataset
from repro.corpus.timeline import ClinicalEvent, dense_relation, interval_relation
from repro.exceptions import TemporalInconsistencyError
from repro.temporal.classifier import TemporalClassifier
from repro.temporal.global_inference import global_inference
from repro.temporal.graph import TemporalGraph
from repro.temporal.psl import PslConfig, find_triples, fit_with_psl, psl_loss_and_grad
from repro.temporal.relations import (
    DENSE_ALGEBRA,
    THREE_WAY_ALGEBRA,
    algebra_for_labels,
)


class TestAlgebra:
    def test_inverses(self):
        assert THREE_WAY_ALGEBRA.inverse("BEFORE") == "AFTER"
        assert THREE_WAY_ALGEBRA.inverse("OVERLAP") == "OVERLAP"
        assert DENSE_ALGEBRA.inverse("INCLUDES") == "IS_INCLUDED"

    def test_paper_figure5_chain(self):
        # b BEFORE d, d BEFORE e, e OVERLAP f  =>  b BEFORE f.
        alg = THREE_WAY_ALGEBRA
        bd_de = alg.compose("BEFORE", "BEFORE")
        assert bd_de == "BEFORE"
        assert alg.compose(bd_de, "OVERLAP") == "BEFORE"

    def test_symmetric_closure(self):
        assert THREE_WAY_ALGEBRA.compose("OVERLAP", "AFTER") == "AFTER"
        assert THREE_WAY_ALGEBRA.compose("AFTER", "OVERLAP") == "AFTER"

    def test_undefined_composition(self):
        assert THREE_WAY_ALGEBRA.compose("BEFORE", "AFTER") is None

    def test_consistent(self):
        assert THREE_WAY_ALGEBRA.consistent("BEFORE", "BEFORE", "BEFORE")
        assert not THREE_WAY_ALGEBRA.consistent("BEFORE", "BEFORE", "AFTER")
        assert THREE_WAY_ALGEBRA.consistent("BEFORE", "AFTER", "OVERLAP")

    def test_algebra_for_labels(self):
        assert algebra_for_labels(("BEFORE", "AFTER")) is THREE_WAY_ALGEBRA
        assert algebra_for_labels(("SIMULTANEOUS", "VAGUE")) is DENSE_ALGEBRA
        with pytest.raises(ValueError):
            algebra_for_labels(("WEIRD",))

    @settings(max_examples=50, deadline=None)
    @given(
        st.tuples(
            st.floats(0, 10), st.floats(0.1, 3),
            st.floats(0, 10), st.floats(0.1, 3),
            st.floats(0, 10), st.floats(0.1, 3),
        )
    )
    def test_three_way_rules_sound_for_midpoint_semantics(self, params):
        sa, da, sb, db, sc, dc = params
        a = ClinicalEvent("a", "a", "S", sa, sa + da)
        b = ClinicalEvent("b", "b", "S", sb, sb + db)
        c = ClinicalEvent("c", "c", "S", sc, sc + dc)
        r_ab = interval_relation(a, b)
        r_bc = interval_relation(b, c)
        entailed = THREE_WAY_ALGEBRA.compose(r_ab, r_bc)
        if entailed is not None:
            assert interval_relation(a, c) == entailed

    @settings(max_examples=50, deadline=None)
    @given(
        st.tuples(
            st.floats(0, 10), st.floats(0.1, 3),
            st.floats(0, 10), st.floats(0.1, 3),
            st.floats(0, 10), st.floats(0.1, 3),
        )
    )
    def test_dense_rules_sound_for_interval_semantics(self, params):
        sa, da, sb, db, sc, dc = params
        a = ClinicalEvent("a", "a", "S", sa, sa + da)
        b = ClinicalEvent("b", "b", "S", sb, sb + db)
        c = ClinicalEvent("c", "c", "S", sc, sc + dc)
        r_ab = dense_relation(a, b)
        r_bc = dense_relation(b, c)
        entailed = DENSE_ALGEBRA.compose(r_ab, r_bc)
        if entailed is not None and entailed != "VAGUE":
            assert dense_relation(a, c) == entailed


class TestTemporalGraph:
    def test_direction_normalization(self):
        graph = TemporalGraph()
        graph.add("b", "a", "AFTER")
        assert graph.relation("a", "b") == "BEFORE"
        assert graph.relation("b", "a") == "AFTER"

    def test_contradiction_rejected(self):
        graph = TemporalGraph()
        graph.add("a", "b", "BEFORE")
        with pytest.raises(TemporalInconsistencyError):
            graph.add("a", "b", "OVERLAP")

    def test_duplicate_consistent_ok(self):
        graph = TemporalGraph()
        graph.add("a", "b", "BEFORE")
        graph.add("b", "a", "AFTER")
        assert graph.n_relations == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            TemporalGraph().add("a", "a", "BEFORE")

    def test_unknown_label_rejected(self):
        with pytest.raises(ValueError):
            TemporalGraph().add("a", "b", "WEIRD")

    def test_closure_infers_figure5(self):
        graph = TemporalGraph()
        graph.add("b", "d", "BEFORE")
        graph.add("e", "d", "AFTER")
        graph.add("e", "f", "OVERLAP")
        inferred = graph.close()
        assert inferred >= 1
        assert graph.relation("b", "f") == "BEFORE"
        assert graph.n_inferred == inferred
        assert graph.n_explicit == 3

    def test_closure_detects_global_contradiction(self):
        graph = TemporalGraph()
        graph.add("a", "b", "BEFORE")
        graph.add("b", "c", "BEFORE")
        graph.add("c", "a", "BEFORE")
        with pytest.raises(TemporalInconsistencyError):
            graph.close()

    def test_is_consistent_non_destructive(self):
        graph = TemporalGraph()
        graph.add("a", "b", "BEFORE")
        graph.add("b", "c", "BEFORE")
        n_before = graph.n_relations
        assert graph.is_consistent()
        assert graph.n_relations == n_before

    def test_events_and_edges(self):
        graph = TemporalGraph()
        graph.add("a", "b", "OVERLAP")
        assert graph.events() == ["a", "b"]
        assert graph.edges() == [("a", "b", "OVERLAP")]


@pytest.fixture(scope="module")
def tiny_temporal():
    return make_temporal_dataset("i2b2-2012-like", n_train=25, n_test=10, seed=1)


class TestClassifier:
    def test_learns_above_majority(self, tiny_temporal):
        ds = tiny_temporal
        model = TemporalClassifier(epochs=10).fit(ds.train)
        score = model.evaluate(ds.test)
        gold = [p.label for d in ds.test for p in d.pairs]
        majority = max(set(gold), key=gold.count)
        baseline = gold.count(majority) / len(gold)
        assert score.f1 > baseline

    def test_proba_shape(self, tiny_temporal):
        ds = tiny_temporal
        model = TemporalClassifier(epochs=5).fit(ds.train)
        probs = model.predict_proba_doc(ds.test[0])
        assert probs.shape == (len(ds.test[0].pairs), len(model.labels))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_evaluate_with_external_predictions(self, tiny_temporal):
        ds = tiny_temporal
        model = TemporalClassifier(epochs=5).fit(ds.train)
        gold_predictions = [[p.label for p in d.pairs] for d in ds.test]
        assert model.evaluate(ds.test, predictions=gold_predictions).f1 == 1.0

    def test_unfitted_raises(self, tiny_temporal):
        from repro.exceptions import NotFittedError

        with pytest.raises(NotFittedError):
            TemporalClassifier().predict_proba_doc(tiny_temporal.test[0])

    def test_single_label_rejected(self):
        from repro.exceptions import ModelError

        with pytest.raises(ModelError):
            TemporalClassifier().init_labels([])


class TestPsl:
    def test_find_triples(self, tiny_temporal):
        doc = tiny_temporal.train[0]
        triples = find_triples(doc)
        index = {(p.src_id, p.tgt_id): i for i, p in enumerate(doc.pairs)}
        for i_ab, i_bc, i_ac in triples:
            ab = doc.pairs[i_ab]
            bc = doc.pairs[i_bc]
            ac = doc.pairs[i_ac]
            assert ab.tgt_id == bc.src_id
            assert ac.src_id == ab.src_id
            assert ac.tgt_id == bc.tgt_id
        assert triples  # dense pair sets always ground some rules

    def test_loss_zero_when_consistent(self):
        labels = ["BEFORE", "AFTER", "OVERLAP"]
        index = {label: i for i, label in enumerate(labels)}
        probs = np.zeros((3, 3))
        probs[0, index["BEFORE"]] = 1.0
        probs[1, index["BEFORE"]] = 1.0
        probs[2, index["BEFORE"]] = 1.0
        loss, grad = psl_loss_and_grad(
            probs, [(0, 1, 2)], THREE_WAY_ALGEBRA, index
        )
        assert loss == pytest.approx(0.0)
        assert np.allclose(grad, 0.0)

    def test_loss_positive_when_violated(self):
        labels = ["BEFORE", "AFTER", "OVERLAP"]
        index = {label: i for i, label in enumerate(labels)}
        probs = np.zeros((3, 3))
        probs[0, index["BEFORE"]] = 1.0
        probs[1, index["BEFORE"]] = 1.0
        probs[2, index["AFTER"]] = 1.0  # violates BEFORE°BEFORE->BEFORE
        loss, grad = psl_loss_and_grad(
            probs, [(0, 1, 2)], THREE_WAY_ALGEBRA, index
        )
        assert loss > 0
        # Gradient pushes the violated conclusion's probability up.
        assert grad[2, index["BEFORE"]] < 0

    def test_fit_with_psl_trains(self, tiny_temporal):
        ds = tiny_temporal
        model = fit_with_psl(
            TemporalClassifier(epochs=8),
            ds.train,
            THREE_WAY_ALGEBRA,
            PslConfig(weight=1.0, epochs=8),
        )
        assert model.evaluate(ds.test).f1 > 0.5


class TestGlobalInference:
    def test_enforces_transitivity(self, tiny_temporal):
        ds = tiny_temporal
        model = TemporalClassifier(epochs=8).fit(ds.train)
        labels = model.labels
        index = {label: i for i, label in enumerate(labels)}
        for doc in ds.test[:4]:
            probs = model.predict_proba_doc(doc)
            assignment = global_inference(doc, probs, labels, THREE_WAY_ALGEBRA)
            for i_ab, i_bc, i_ac in find_triples(doc):
                entailed = THREE_WAY_ALGEBRA.compose(
                    assignment[i_ab], assignment[i_bc]
                )
                if entailed is not None and entailed in index:
                    assert assignment[i_ac] == entailed

    def test_empty_doc(self):
        from repro.annotation.model import AnnotationDocument
        from repro.corpus.datasets import TemporalDocument

        doc = TemporalDocument(
            "d", AnnotationDocument(doc_id="d", text=""), [], []
        )
        assert global_inference(
            doc, np.zeros((0, 3)), ["A", "B", "C"], THREE_WAY_ALGEBRA
        ) == []

    def test_no_triples_returns_local(self, tiny_temporal):
        from repro.annotation.model import AnnotationDocument
        from repro.corpus.datasets import TemporalDocument, TemporalInstance

        ann = AnnotationDocument(doc_id="d", text="a b")
        t1 = ann.add_textbound("Sign_symptom", 0, 1)
        t2 = ann.add_textbound("Sign_symptom", 2, 3)
        doc = TemporalDocument(
            "d",
            ann,
            [t1.ann_id, t2.ann_id],
            [TemporalInstance("d", t1.ann_id, t2.ann_id, "BEFORE", 1)],
        )
        probs = np.array([[0.1, 0.2, 0.7]])
        out = global_inference(doc, probs, ["A", "B", "C"], THREE_WAY_ALGEBRA)
        assert out == ["C"]
