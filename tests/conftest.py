"""Shared fixtures: small cached corpora so test runtime stays sane."""

from __future__ import annotations

import pytest

from repro.corpus.generator import CaseReportGenerator
from repro.corpus.pubmed import build_corpus


@pytest.fixture(scope="session")
def small_corpus():
    """40 mixed-category gold reports (session-cached)."""
    return build_corpus(40, seed=101)


@pytest.fixture(scope="session")
def cvd_reports():
    """12 cardiovascular gold reports (session-cached)."""
    generator = CaseReportGenerator(seed=202)
    return [
        generator.generate(f"cvd-{i:03d}", "cardiovascular")
        for i in range(12)
    ]


@pytest.fixture(scope="session")
def one_report(cvd_reports):
    return cvd_reports[0]


@pytest.fixture(scope="session")
def demo_system():
    """A small trained end-to-end system (session-cached: ~10 s)."""
    from repro.pipeline import build_demo_system

    return build_demo_system(n_reports=16, n_train=16, seed=0)
