"""Tests for graph traversal utilities and corpus export formats."""

import pytest

from repro.corpus.export import (
    export_brat_directory,
    export_conll,
    parse_conll,
    to_conll,
)
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.traverse import (
    connected_components,
    degree_stats,
    shortest_path,
)


def chain_graph():
    g = PropertyGraph()
    for node in "abcdef":
        g.add_node(node)
    g.add_edge("a", "b", "R")
    g.add_edge("b", "c", "R")
    g.add_edge("c", "d", "S")
    g.add_edge("e", "f", "R")  # separate component
    return g


class TestShortestPath:
    def test_direct_path(self):
        assert shortest_path(chain_graph(), "a", "c") == ["a", "b", "c"]

    def test_undirected_by_default(self):
        assert shortest_path(chain_graph(), "d", "a") == ["d", "c", "b", "a"]

    def test_directed_respects_orientation(self):
        assert shortest_path(chain_graph(), "d", "a", directed=True) is None
        assert shortest_path(chain_graph(), "a", "d", directed=True) == [
            "a", "b", "c", "d",
        ]

    def test_label_filter(self):
        # Without the S edge, d is unreachable.
        assert shortest_path(chain_graph(), "a", "d", label="R") is None
        assert shortest_path(chain_graph(), "a", "c", label="R") is not None

    def test_same_node(self):
        assert shortest_path(chain_graph(), "a", "a") == ["a"]

    def test_disconnected(self):
        assert shortest_path(chain_graph(), "a", "f") is None

    def test_unknown_nodes(self):
        assert shortest_path(chain_graph(), "a", "zz") is None


class TestComponents:
    def test_component_partition(self):
        components = connected_components(chain_graph())
        assert components == [["a", "b", "c", "d"], ["e", "f"]]

    def test_empty_graph(self):
        assert connected_components(PropertyGraph()) == []

    def test_degree_stats(self):
        stats = degree_stats(chain_graph())
        assert stats["n_nodes"] == 6
        assert stats["n_edges"] == 4
        assert stats["max_degree"] == 2

    def test_degree_stats_empty(self):
        assert degree_stats(PropertyGraph())["n_nodes"] == 0


class TestBratExport:
    def test_directory_roundtrip(self, cvd_reports, tmp_path):
        from repro.annotation.brat import read_document

        docs = [r.annotations for r in cvd_reports[:3]]
        assert export_brat_directory(docs, tmp_path) == 3
        for doc in docs:
            loaded = read_document(tmp_path / f"{doc.doc_id}.txt")
            assert len(loaded.textbounds) == len(doc.textbounds)


class TestConll:
    def test_to_conll_shape(self, one_report):
        content = to_conll(one_report.annotations)
        lines = [l for l in content.splitlines() if l]
        assert all("\t" in line for line in lines)
        tags = {line.split("\t")[1] for line in lines}
        assert "O" in tags
        assert any(tag.startswith("B-") for tag in tags)

    def test_export_and_parse_roundtrip(self, cvd_reports, tmp_path):
        docs = [r.annotations for r in cvd_reports[:2]]
        path = tmp_path / "corpus.conll"
        assert export_conll(docs, path) == 2
        sentences = parse_conll(path.read_text())
        assert sentences
        # Token streams match the originals.
        from repro.text.tokenize import split_sentences, tokenize

        expected = []
        for doc in docs:
            for start, end in split_sentences(doc.text):
                expected.append(
                    [t.text for t in tokenize(doc.text[start:end])]
                )
        assert [
            [token for token, _tag in sentence] for sentence in sentences
        ] == expected

    def test_tags_consistent_with_gold(self, one_report):
        content = to_conll(one_report.annotations)
        sentences = parse_conll(content)
        gold_surfaces = {
            tb.text
            for tb in one_report.annotations.textbounds.values()
            if " " not in tb.text
        }
        tagged = {
            token
            for sentence in sentences
            for token, tag in sentence
            if tag.startswith("B-")
        }
        # Every single-token gold surface appears B-tagged somewhere.
        assert gold_surfaces & tagged
