"""On-disk segment format, segment-backed engine, and scale corpus."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.corpus import ScaleDoc, build_scale_corpus, scale_queries
from repro.exceptions import SearchError
from repro.search.analysis import STANDARD_ANALYZER_CONFIG, create_analyzer
from repro.search.engine import SearchEngine
from repro.search.inverted_index import InvertedIndex
from repro.search.segment_engine import SegmentSearchEngine
from repro.search.segments import (
    Segment,
    SegmentFormatError,
    merge_segments,
    write_segment,
)
from repro.serving.segment_shards import ProcessShardedSegmentEngine

FIELD_ANALYZERS = {
    "body": STANDARD_ANALYZER_CONFIG,
    "title": STANDARD_ANALYZER_CONFIG,
}


WHITESPACE_CONFIG = {
    "tokenizer": {"type": "whitespace"},
    "filter": ["lowercase"],
    "char_filter": [],
}


def _index_of(texts: dict[int, str]) -> InvertedIndex:
    analyzer = create_analyzer(WHITESPACE_CONFIG)
    index = InvertedIndex()
    for doc_ord, text in texts.items():
        index.add_document(doc_ord, analyzer.analyze(text))
    return index


def _write(path, texts: dict[int, str]) -> None:
    docs = [
        (doc_ord, f"doc-{doc_ord}", {"body": text})
        for doc_ord, text in sorted(texts.items())
    ]
    write_segment(path, docs, {"body": _index_of(texts)})


# -- binary format -----------------------------------------------------------


class TestSegmentFormat:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "a.seg")
        _write(path, {3: "fever cough fever", 7: "cough", 10: "renal"})
        seg = Segment.open(path)
        try:
            assert list(seg.ords) == [3, 7, 10]
            assert seg.doc_ids == ["doc-3", "doc-7", "doc-10"]
            assert seg.base_ord == 3 and seg.max_ord == 10
            assert len(seg) == 3
            reader = seg.fields["body"]
            assert reader.terms == ["cough", "fever", "renal"]
            rows, tfs, first = reader.postings_arrays("fever")
            assert list(rows) == [0] and list(tfs) == [2]
            assert list(reader.posting_positions(first)) == [0, 2]
            rows, tfs, _ = reader.postings_arrays("cough")
            assert list(rows) == [0, 1] and list(tfs) == [1, 1]
            assert reader.postings_arrays("absent") is None
            assert seg.stored(2) == {"body": "renal"}
            assert seg.row_of(7) == 1
            assert seg.row_of(8) == -1
            seg.verify()
        finally:
            seg.close()

    def test_field_stats_and_lengths(self, tmp_path):
        path = str(tmp_path / "a.seg")
        _write(path, {0: "a b c", 1: "d"})
        seg = Segment.open(path)
        try:
            reader = seg.fields["body"]
            assert reader.n_documents == 2
            assert reader.total_length == 4
            assert list(reader.doc_lens) == [3, 1]
            assert list(reader.has_field) == [1, 1]
        finally:
            seg.close()

    def test_empty_docs_rejected(self, tmp_path):
        with pytest.raises(SegmentFormatError):
            write_segment(str(tmp_path / "x.seg"), [], {})

    def test_unsorted_docs_rejected(self, tmp_path):
        docs = [(5, "a", {}), (2, "b", {})]
        with pytest.raises(SegmentFormatError):
            write_segment(str(tmp_path / "x.seg"), docs, {})

    def test_corruption_detected(self, tmp_path):
        path = str(tmp_path / "a.seg")
        _write(path, {0: "fever cough", 1: "renal failure"})
        data = bytearray(open(path, "rb").read())
        data[-3] ^= 0xFF  # flip a byte inside the last section
        with open(path, "wb") as handle:
            handle.write(data)
        with pytest.raises(SegmentFormatError):
            seg = Segment.open(path)
            try:
                seg.verify()
            finally:
                seg.close()

    def test_truncated_header_detected(self, tmp_path):
        path = str(tmp_path / "a.seg")
        with open(path, "wb") as handle:
            handle.write(b"BOGUS")
        with pytest.raises(SegmentFormatError):
            Segment.open(path)

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = str(tmp_path / "a.seg")
        _write(path, {0: "fever"})
        assert not os.path.exists(path + ".tmp")


class TestMerge:
    def test_merge_preserves_ords_and_drops_deleted(self, tmp_path):
        a = str(tmp_path / "a.seg")
        b = str(tmp_path / "b.seg")
        out = str(tmp_path / "m.seg")
        _write(a, {0: "fever renal", 1: "cough"})
        _write(b, {5: "fever"})
        seg_a, seg_b = Segment.open(a), Segment.open(b)
        deleted = np.zeros(2, dtype=bool)
        deleted[0] = True  # drop ord 0, the only "renal" doc
        try:
            kept = merge_segments(out, [(seg_a, deleted), (seg_b, None)])
        finally:
            seg_a.close()
            seg_b.close()
        assert kept == 2
        merged = Segment.open(out)
        try:
            assert list(merged.ords) == [1, 5]
            reader = merged.fields["body"]
            # Dead terms drop out of the dictionary like a cold rebuild.
            assert reader.terms == ["cough", "fever"]
            rows, _, _ = reader.postings_arrays("fever")
            assert list(rows) == [1]
            merged.verify()
        finally:
            merged.close()

    def test_merge_all_deleted_rejected(self, tmp_path):
        a = str(tmp_path / "a.seg")
        _write(a, {0: "fever"})
        seg = Segment.open(a)
        try:
            with pytest.raises(SegmentFormatError):
                merge_segments(
                    str(tmp_path / "m.seg"),
                    [(seg, np.ones(1, dtype=bool))],
                )
        finally:
            seg.close()


# -- segment-backed engine ---------------------------------------------------


def _seg_engine(tmp_path, **kwargs):
    kwargs.setdefault("flush_threshold", 3)
    kwargs.setdefault("merge_factor", 4)
    return SegmentSearchEngine(
        FIELD_ANALYZERS, segment_dir=str(tmp_path / "segs"), **kwargs
    )


DOCS = {
    "d0": {"body": "acute renal failure", "title": "renal case"},
    "d1": {"body": "fever and cough", "title": "fever"},
    "d2": {"body": "renal fever", "title": "mixed"},
    "d3": {"body": "chest pain dyspnea", "title": "cardiac"},
    "d4": {"body": "cough cough cough", "title": "resp"},
}

QUERIES = [
    {"match": {"body": "renal fever"}},
    {"match_phrase": {"body": "renal failure"}},
    {"term": {"title": "fever"}},
    {"multi_match": {"query": "renal cough", "fields": ["body^2", "title"]}},
    {"match_all": {}},
    {
        "bool": {
            "must": [{"match": {"body": "cough"}}],
            "must_not": [{"term": {"body": "fever"}}],
        }
    },
]


def _hits(engine, query):
    return [
        (hit.doc_id, hit.score, hit.source)
        for hit in engine.search(query, size=10)
    ]


class TestSegmentSearchEngine:
    def test_bit_identical_across_flush_and_merge(self, tmp_path):
        engine = _seg_engine(tmp_path, flush_threshold=2, merge_factor=2)
        reference = SearchEngine(FIELD_ANALYZERS)
        try:
            for doc_id, fields in DOCS.items():
                engine.index(doc_id, fields)
                reference.index(doc_id, fields)
            engine.flush()
            engine.merge()
            assert engine.delete("d3") and reference.delete("d3")
            for query in QUERIES:
                assert _hits(engine, query) == _hits(reference, query)
        finally:
            engine.close()

    def test_auto_flush_at_threshold(self, tmp_path):
        engine = _seg_engine(tmp_path, flush_threshold=2)
        try:
            engine.index("d0", DOCS["d0"])
            assert engine.n_segments == 0
            engine.index("d1", DOCS["d1"])
            assert engine.n_segments == 1  # buffer sealed automatically
            assert engine.n_documents == 2
        finally:
            engine.close()

    def test_merge_compacts_segments(self, tmp_path):
        engine = _seg_engine(tmp_path, flush_threshold=1, merge_factor=100)
        try:
            for doc_id, fields in DOCS.items():
                engine.index(doc_id, fields)
            assert engine.n_segments == len(DOCS)
            engine.merge()
            assert engine.n_segments == 1
            assert engine.n_documents == len(DOCS)
        finally:
            engine.close()

    def test_sealed_delete_uses_bitmap_and_survives_reopen(self, tmp_path):
        engine = _seg_engine(tmp_path, flush_threshold=1)
        try:
            engine.index("d0", DOCS["d0"])
            engine.index("d1", DOCS["d1"])
            generation = engine.generation
            assert engine.delete("d0")
            assert engine.generation > generation
            assert not engine.delete("d0")
            assert engine.n_documents == 1
        finally:
            engine.close()
        reopened = _seg_engine(tmp_path, flush_threshold=1)
        try:
            assert reopened.n_documents == 1
            assert [h[0] for h in _hits(reopened, {"match_all": {}})] == [
                "d1"
            ]
        finally:
            reopened.close()

    def test_reopen_restores_ordinal_clock(self, tmp_path):
        engine = _seg_engine(tmp_path, flush_threshold=1)
        try:
            engine.index("d0", DOCS["d0"])
            engine.index("d1", DOCS["d1"])
            clock = engine._next_ordinal
        finally:
            engine.close()
        reopened = _seg_engine(tmp_path, flush_threshold=1)
        try:
            assert reopened._next_ordinal == clock
            reopened.index("d9", {"body": "fresh", "title": ""})
            assert reopened.n_documents == 3
        finally:
            reopened.close()

    def test_flush_empty_buffer_noop(self, tmp_path):
        engine = _seg_engine(tmp_path)
        try:
            assert engine.flush() is None
            assert engine.n_segments == 0
        finally:
            engine.close()

    def test_highlight_reads_sealed_source(self, tmp_path):
        engine = _seg_engine(tmp_path, flush_threshold=1)
        try:
            engine.index("d1", DOCS["d1"])
            snippets = engine.highlight("d1", "body", "cough")
            assert any("<em>" in s for s in snippets)
        finally:
            engine.close()

    def test_unknown_ordinal_rejected(self, tmp_path):
        engine = _seg_engine(tmp_path)
        try:
            with pytest.raises(SearchError):
                engine._locate_state(999)
        finally:
            engine.close()

    def test_durable_snapshot_round_trip(self, tmp_path):
        engine = _seg_engine(tmp_path, flush_threshold=2)
        try:
            engine.index("d0", DOCS["d0"])
            engine.index("d1", DOCS["d1"])  # sealed by auto-flush
            engine.index("d2", DOCS["d2"])  # still buffered
            state = engine.durable_snapshot()
            restored = SegmentSearchEngine(
                FIELD_ANALYZERS,
                segment_dir=engine.segment_dir,
                flush_threshold=100,
            )
            try:
                restored.durable_restore(state)
                assert restored.n_documents == 3
                for query in QUERIES:
                    assert _hits(restored, query) == _hits(engine, query)
            finally:
                restored.close()
        finally:
            engine.close()


# -- sharded serving over segments -------------------------------------------


def _sharded(tmp_path, **kwargs):
    kwargs.setdefault("mode", "serial")
    kwargs.setdefault("flush_threshold", 2)
    return ProcessShardedSegmentEngine(
        3,
        segment_root=str(tmp_path / "shards"),
        field_analyzers=FIELD_ANALYZERS,
        **kwargs,
    )


class TestProcessShardedSegmentEngine:
    def test_matches_unsharded_engine(self, tmp_path):
        sharded = _sharded(tmp_path)
        reference = SearchEngine(FIELD_ANALYZERS)
        try:
            for doc_id, fields in DOCS.items():
                sharded.index(doc_id, fields)
                reference.index(doc_id, fields)
            for query in QUERIES:
                got = [
                    (h.doc_id, h.score, h.source)
                    for h in sharded.search(query, size=10)
                ]
                assert got == _hits(reference, query)
        finally:
            sharded.close()

    def test_cache_hits_and_epoch_invalidation(self, tmp_path):
        sharded = _sharded(tmp_path)
        try:
            for doc_id, fields in DOCS.items():
                sharded.index(doc_id, fields)
            query = {"match": {"body": "renal"}}
            first = sharded.search(query)
            before = sharded.cache.stats()["hits"]
            again = sharded.search(query)
            assert sharded.cache.stats()["hits"] == before + 1
            assert [h.doc_id for h in first] == [h.doc_id for h in again]
            sharded.delete("d0")
            after_delete = sharded.search(query)
            assert "d0" not in [h.doc_id for h in after_delete]
        finally:
            sharded.close()

    def test_error_parity_with_unsharded(self, tmp_path):
        sharded = _sharded(tmp_path)
        reference = SearchEngine(FIELD_ANALYZERS)
        try:
            sharded.index("d0", DOCS["d0"])
            reference.index("d0", DOCS["d0"])
            bad = {"multi_match": {"query": "x", "fields": ["body^bad"]}}
            with pytest.raises(SearchError):
                reference.search(bad)
            with pytest.raises(SearchError):
                sharded.search(bad)
        finally:
            sharded.close()

    def test_process_mode_matches_serial(self, tmp_path):
        serial = _sharded(tmp_path)
        process = ProcessShardedSegmentEngine(
            3,
            segment_root=str(tmp_path / "pshards"),
            field_analyzers=FIELD_ANALYZERS,
            mode="process",
            flush_threshold=2,
        )
        try:
            for doc_id, fields in DOCS.items():
                serial.index(doc_id, fields)
                process.index(doc_id, fields)
            for query in QUERIES[:3]:
                got = [
                    (h.doc_id, h.score) for h in process.search(query)
                ]
                want = [
                    (h.doc_id, h.score) for h in serial.search(query)
                ]
                assert got == want
        finally:
            serial.close()
            process.close()


# -- scale corpus ------------------------------------------------------------


class TestScaleCorpus:
    def test_deterministic(self):
        a = build_scale_corpus(50, seed=3)
        b = build_scale_corpus(50, seed=3)
        assert a == b
        assert a != build_scale_corpus(50, seed=4)

    def test_shapes(self):
        docs = build_scale_corpus(10, seed=0, prefix="p")
        assert [d.doc_id for d in docs][:2] == ["p-000000", "p-000001"]
        for doc in docs:
            assert isinstance(doc, ScaleDoc)
            assert len(doc.body.split()) >= 30  # phrases add extra words
            assert doc.fields().keys() == {"title", "body"}

    def test_queries_deterministic_and_match_shaped(self):
        queries = scale_queries(5, seed=1)
        assert queries == scale_queries(5, seed=1)
        for query in queries:
            assert set(query) == {"match"}
            assert set(query["match"]) == {"body"}

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            build_scale_corpus(-1)
        with pytest.raises(ValueError):
            scale_queries(-1)

    def test_query_deadline_times_out_and_recycles_pool(
        self, tmp_path, monkeypatch
    ):
        import threading

        from repro.serving import segment_shards

        engine = ProcessShardedSegmentEngine(
            2,
            segment_root=str(tmp_path / "dshards"),
            field_analyzers=FIELD_ANALYZERS,
            mode="thread",
            flush_threshold=2,
            query_deadline=0.3,
        )
        reference = SearchEngine(FIELD_ANALYZERS)
        try:
            for doc_id, fields in DOCS.items():
                engine.index(doc_id, fields)
                reference.index(doc_id, fields)

            release = threading.Event()
            real_worker = segment_shards._worker_search

            def hung_worker(task):
                release.wait(timeout=10.0)  # a wedged worker
                return real_worker(task)

            monkeypatch.setattr(
                segment_shards, "_worker_search", hung_worker
            )
            with pytest.raises(SearchError, match="deadline"):
                engine.search({"match": {"body": "fever"}})
            release.set()
            assert engine.worker_timeouts == 1
            assert engine.stats()["worker_timeouts"] == 1

            # The failed query was never cached; re-asking it proves
            # the recycled pool serves fan-outs with fresh workers.
            monkeypatch.setattr(
                segment_shards, "_worker_search", real_worker
            )
            got = [
                (h.doc_id, h.score)
                for h in engine.search({"match": {"body": "fever"}})
            ]
            want = [
                (h.doc_id, h.score)
                for h in reference.search({"match": {"body": "fever"}})
            ]
            assert got == want
        finally:
            engine.close()
