"""Fault-isolated staged ingestion: determinism, dead letters, retries."""

import pytest

from repro.corpus.generator import CaseReportGenerator
from repro.crawler.repository import Page, SyntheticPubMed
from repro.exceptions import ModelError
from repro.grobid.service import GrobidService
from repro.pipeline import CreatePipeline


def _make_site(n=6, seed=5):
    generator = CaseReportGenerator(seed=seed)
    reports = [generator.generate(f"par-{i:03d}") for i in range(n)]
    return SyntheticPubMed(reports, seed=seed), reports


def _fresh_pipeline(extractor, **kwargs):
    return CreatePipeline(extractor=extractor, **kwargs)


def _index_fingerprint(pipeline):
    graph = pipeline.indexer.graph
    return {
        "nodes": graph.n_nodes,
        "edges": graph.n_edges,
        "docs": pipeline.indexer.engine.n_documents,
        "stored": pipeline.store.collection("reports").count(),
    }


class _SelectiveFailExtractor:
    """Delegates to a trained extractor, exploding for chosen doc ids."""

    def __init__(self, inner, fail_ids):
        self.inner = inner
        self.fail_ids = set(fail_ids)
        self.ner = inner.ner
        self.temporal = inner.temporal

    def extract(self, doc_id, text):
        if doc_id in self.fail_ids:
            raise ModelError(f"synthetic extraction failure for {doc_id}")
        return self.inner.extract(doc_id, text)


class TestDeterminism:
    def test_parallel_matches_serial(self, demo_system):
        trained, _ = demo_system
        site_a, reports = _make_site()
        site_b, _ = _make_site()

        serial = _fresh_pipeline(trained.extractor)
        serial_stats = serial.ingest_from_site(site_a, workers=1)
        parallel = _fresh_pipeline(trained.extractor)
        parallel_stats = parallel.ingest_from_site(site_b, workers=4)

        assert serial_stats.as_dict() == parallel_stats.as_dict()
        assert _index_fingerprint(serial) == _index_fingerprint(parallel)

        for report in reports:
            symptom = report.annotations.spans_with_label("Sign_symptom")
            if not symptom:
                continue
            query = symptom[0].text
            serial_hits = [
                (r.doc_id, r.engine)
                for r in serial.searcher.search(query, size=8)
            ]
            parallel_hits = [
                (r.doc_id, r.engine)
                for r in parallel.searcher.search(query, size=8)
            ]
            assert serial_hits == parallel_hits


class TestFaultIsolation:
    def test_extraction_failure_dead_letters_without_abort(self, demo_system):
        trained, _ = demo_system
        site, reports = _make_site()
        victim = reports[2].pmid
        extractor = _SelectiveFailExtractor(trained.extractor, {victim})
        pipeline = _fresh_pipeline(extractor)

        stats = pipeline.ingest_from_site(site, workers=3)

        assert stats.extract_failures == 1
        assert stats.indexed == len(reports) - 1
        assert stats.parsed == len(reports)  # parse had succeeded
        letters = [d for d in stats.dead_letters if d.stage == "extract"]
        assert len(letters) == 1
        assert letters[0].doc_id == victim
        assert letters[0].error_type == "ModelError"
        # every other document is searchable
        assert pipeline.indexer.engine.n_documents == len(reports) - 1
        assert pipeline.store.collection("reports").get(victim) is None

    def test_parse_failure_records_doc_id(self, demo_system):
        trained, _ = demo_system
        site, reports = _make_site()
        victim = reports[1].pmid
        url = f"pubmed://article/{victim}"
        site._pages[url] = Page(url, "pdf", "not a publication at all")
        pipeline = _fresh_pipeline(trained.extractor)

        stats = pipeline.ingest_from_site(site, workers=2)

        assert stats.parse_failures == 1
        assert stats.parse_failed_ids == [victim]
        letters = [d for d in stats.dead_letters if d.stage == "parse"]
        assert len(letters) == 1
        assert letters[0].doc_id == victim
        assert letters[0].error_type == "ParseError"
        assert stats.indexed == len(reports) - 1

    def test_unexpected_parse_exception_propagates(self, demo_system):
        trained, _ = demo_system
        site, _ = _make_site(n=3)

        class ExplodingGrobid(GrobidService):
            def process(self, content):
                raise RuntimeError("unexpected infrastructure failure")

        pipeline = _fresh_pipeline(trained.extractor, grobid=ExplodingGrobid())
        with pytest.raises(RuntimeError):
            pipeline.ingest_from_site(site)


class TestTransientRetry:
    def test_transient_grobid_errors_are_retried(self, demo_system):
        trained, _ = demo_system
        site, reports = _make_site()
        grobid = GrobidService(transient_error_rate=1.0, seed=3)
        pipeline = _fresh_pipeline(
            trained.extractor, grobid=grobid, parse_retries=2
        )

        stats = pipeline.ingest_from_site(site, workers=2)

        assert stats.parse_failures == 0
        assert stats.parsed == len(reports)
        assert stats.parse_retries == len(reports)
        assert stats.indexed == len(reports)

    def test_exhausted_retries_dead_letter(self, demo_system):
        trained, _ = demo_system
        site, reports = _make_site()

        class AlwaysDownGrobid(GrobidService):
            def process(self, content):
                from repro.exceptions import TransientParseError

                raise TransientParseError("service down")

        pipeline = _fresh_pipeline(
            trained.extractor, grobid=AlwaysDownGrobid(), parse_retries=1
        )
        stats = pipeline.ingest_from_site(site)

        assert stats.parse_failures == len(reports)
        assert stats.indexed == 0
        assert all(d.stage == "parse" for d in stats.dead_letters)
        assert all(d.attempts == 2 for d in stats.dead_letters)
        assert all(
            d.error_type == "TransientParseError" for d in stats.dead_letters
        )


class TestDocIdCollisions:
    def test_colliding_url_segments_disambiguated(self, demo_system):
        trained, _ = demo_system
        site, reports = _make_site(n=4)
        # A mirror URL whose final segment collides with an existing pmid.
        victim = reports[0].pmid
        original = site._pages[f"pubmed://article/{victim}"]
        mirror_url = f"pubmed://mirror/{victim}"
        site._pages[mirror_url] = Page(
            mirror_url, original.content_type, original.body
        )
        listing_url = site.seed_urls()[0]
        listing = site._pages[listing_url]
        site._pages[listing_url] = Page(
            listing.url,
            "listing",
            listing.body,
            listing.links + (mirror_url,),
        )
        pipeline = _fresh_pipeline(trained.extractor)

        stats = pipeline.ingest_from_site(site, workers=2)

        assert stats.id_collisions == 1
        assert stats.indexed == len(reports) + 1
        reports_coll = pipeline.store.collection("reports")
        assert reports_coll.get(victim) is not None
        assert reports_coll.get(f"{victim}~2") is not None


class TestStatsEndpoint:
    def test_stats_surfaces_runtime_metrics(self, demo_system):
        pipeline, _ = demo_system
        pipeline.searcher.search("fever", size=3)
        body = pipeline.app.handle("GET", "/stats").body

        assert body["pipeline"]["crawled"] == pipeline.stats.crawled
        assert body["pipeline"]["dead_letters"] == []
        assert body["indexer"]["n_reports"] == pipeline.indexer.n_reports
        counters = body["metrics"]["counters"]
        assert counters["pipeline.crawled"] == pipeline.stats.crawled
        assert counters["ir.searches"] >= 1
        assert counters["engine.searches"] >= 1
        timers = body["metrics"]["timers"]
        assert "pipeline.extract_seconds" in timers
        assert "ir.search_seconds" in timers
        assert timers["pipeline.extract_seconds"]["count"] >= 1

    def test_ingest_emits_spans(self, demo_system):
        pipeline, _ = demo_system
        names = {s.name for s in pipeline.tracer.finished()}
        assert {
            "pipeline.ingest",
            "pipeline.crawl",
            "pipeline.parse_extract",
            "pipeline.index",
        } <= names
        parse_span = pipeline.tracer.finished("pipeline.parse_extract")[0]
        ingest_span = pipeline.tracer.finished("pipeline.ingest")[0]
        assert parse_span.parent_id == ingest_span.span_id
