"""Deterministic randomness for the correctness harness.

Every fuzz case is generated from a :class:`random.Random` seeded by a
stable SHA-256 derivation of ``(master seed, subsystem, case index)``,
so a single integer seed reproduces the entire case sequence on any
platform and any case can be regenerated in isolation (which is what
makes shrunk failures replayable from a tiny JSON file).
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(*parts: object) -> int:
    """A stable 64-bit seed from arbitrary stringifiable parts."""
    text = ":".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def case_rng(seed: int, subsystem: str, case_index: int) -> random.Random:
    """The RNG for one fuzz case (independent of all other cases)."""
    return random.Random(derive_seed(seed, subsystem, case_index))
