"""Structural shrinking of failing fuzz cases (delta-debugging lite).

Cases are plain JSON trees, so shrinking is generic: greedily try
removing list spans and elements, dropping words from strings, and
halving numbers — recursively at every depth — keeping any candidate
on which the failure still reproduces, until a fixpoint (or an
evaluation budget) is reached.

Checkers treat structurally malformed cases as vacuous (they return
``None``), so the shrinker can propose aggressive candidates without
any schema knowledge: invalid ones simply stop reproducing.
"""

from __future__ import annotations

from typing import Callable, Iterator


def _candidates(obj) -> Iterator:
    """Structurally smaller variants of a JSON-like value, biggest
    reductions first."""
    if isinstance(obj, dict):
        for key in obj:
            for sub in _candidates(obj[key]):
                yield {**obj, key: sub}
    elif isinstance(obj, list):
        n = len(obj)
        if n == 0:
            return
        # Remove spans (half, then quarters), then single elements.
        for step in {max(n // 2, 1), max(n // 4, 1), 1}:
            for i in range(0, n, step):
                smaller = obj[:i] + obj[i + step:]
                if len(smaller) < n:
                    yield smaller
        for i, element in enumerate(obj):
            for sub in _candidates(element):
                yield obj[:i] + [sub] + obj[i + 1:]
    elif isinstance(obj, str):
        words = obj.split()
        if len(words) > 1:
            for i in range(len(words)):
                yield " ".join(words[:i] + words[i + 1:])
        elif obj:
            yield ""
    elif isinstance(obj, bool):
        if obj:
            yield False
    elif isinstance(obj, int):
        if obj > 0:
            yield obj // 2
    elif isinstance(obj, float):
        if obj:
            yield 0.0


def _size(obj) -> int:
    if isinstance(obj, dict):
        return 1 + sum(_size(v) for v in obj.values())
    if isinstance(obj, list):
        return 1 + sum(_size(v) for v in obj)
    if isinstance(obj, str):
        return 1 + len(obj.split())
    return 1


def shrink(
    case: dict,
    still_fails: Callable[[dict], bool],
    max_evaluations: int = 3000,
) -> dict:
    """Greedy fixpoint shrink of ``case`` under ``still_fails``.

    Args:
        case: the failing case (JSON-like dict).
        still_fails: predicate; True when the candidate reproduces
            the original failure.
        max_evaluations: budget of predicate calls.

    Returns:
        A (weakly) smaller case that still fails.
    """
    best = case
    evaluations = 0
    progress = True
    while progress and evaluations < max_evaluations:
        progress = False
        for candidate in _candidates(best):
            if _size(candidate) >= _size(best):
                continue
            evaluations += 1
            if evaluations > max_evaluations:
                break
            if still_fails(candidate):
                best = candidate
                progress = True
                break
    return best
