"""Replication oracles: crash-and-promote schedules under steady reads.

One generated case drives an interleaved write/read workload through a
:class:`~repro.serving.replica.ReplicatedShardedSearchEngine` whose
victim shard's WAL filesystem carries a seed-driven
:class:`~repro.durability.fs.FaultInjector`, while a plain
:class:`~repro.search.engine.SearchEngine` applies the same ops in
lockstep as the **no-crash oracle**.  The invariants:

* **No stale-epoch reads.**  After *every* action — including the one
  that crashed a primary mid-commit and forced a promotion — every
  query answers exactly like the oracle.  A cache entry surviving a
  promotion epoch bump, or a read served by a lagging replica, shows
  up as a ranking divergence here.
* **No torn reads.**  Replicas apply only whole acknowledged WAL
  records, and promotion replays with torn-tail truncation; a partial
  record leaking into any serving copy diverges from the oracle.
* **Post-promotion convergence.**  Failed ops are retried against the
  promoted primary (they are idempotent), so the final tier state must
  equal the no-crash oracle's — checked by query equivalence, document
  counts, and (after a forced ship) canonical per-shard state equality
  between every replica and its primary.
"""

from __future__ import annotations

from repro.durability.fs import FaultInjector, InjectedCrash, MemFS
from repro.exceptions import DurabilityError, ReplicaError
from repro.search.analysis import STANDARD_ANALYZER_CONFIG
from repro.search.engine import SearchEngine
from repro.serving.replica import ReplicatedShardedSearchEngine
from repro.testing.crash import _engine_state
from repro.testing.generators import _REPLICATION_FAULTS
from repro.testing.oracles import ANALYZER_CONFIGS
from repro.testing.serving import _compare, _search_once


def _valid_case(case: dict) -> bool:
    """Structural validation; shrunk cases may violate any of this."""
    if not isinstance(case, dict):
        return False
    n_shards = case.get("n_shards")
    if not isinstance(n_shards, int) or not 1 <= n_shards <= 8:
        return False
    n_replicas = case.get("n_replicas")
    if not isinstance(n_replicas, int) or not 1 <= n_replicas <= 4:
        return False
    cache_size = case.get("cache_size")
    if not isinstance(cache_size, int) or cache_size < 1:
        return False
    if case.get("analyzer") not in ANALYZER_CONFIGS:
        return False
    ship_every = case.get("ship_every")
    if not isinstance(ship_every, int) or ship_every < 1:
        return False
    snapshot_every = case.get("snapshot_every")
    if snapshot_every is not None and (
        not isinstance(snapshot_every, int) or snapshot_every < 1
    ):
        return False
    actions = case.get("actions")
    if not isinstance(actions, list) or not actions:
        return False
    for op in actions:
        if not isinstance(op, dict) or op.get("op") not in (
            "index",
            "delete",
        ):
            return False
        if op["op"] == "index" and not isinstance(op.get("fields"), dict):
            return False
    if not isinstance(case.get("queries"), list) or not case["queries"]:
        return False
    crash = case.get("crash")
    if crash is not None:
        if not isinstance(crash, dict):
            return False
        if crash.get("kind") not in _REPLICATION_FAULTS:
            return False
        for key in ("at_action", "at_op", "seed", "shard"):
            if not isinstance(crash.get(key), int) or crash[key] < 0:
                return False
    return True


def _apply_one(tier: ReplicatedShardedSearchEngine, op: dict) -> None:
    if op["op"] == "index":
        tier.index(op["id"], op["fields"])
    else:
        tier.delete(op["id"])


def check_replication_case(case: dict) -> str | None:
    """Run one crash-promotion schedule; ``None`` means all invariants
    held (or the case was structurally malformed — vacuous)."""
    if not _valid_case(case):
        return None
    field_analyzers = {
        "body": ANALYZER_CONFIGS[case["analyzer"]],
        "title": STANDARD_ANALYZER_CONFIG,
    }
    crash = case["crash"]
    crash_shard = None
    injector = None
    if crash is not None:
        crash_shard = crash["shard"] % case["n_shards"]
        if crash["kind"] != "kill":
            injector = FaultInjector(
                MemFS(),
                kind=crash["kind"],
                at_op=crash["at_op"],
                seed=crash["seed"],
            )

    def fs_factory(shard_id: int):
        if injector is not None and shard_id == crash_shard:
            return injector
        return MemFS()

    tier = ReplicatedShardedSearchEngine(
        case["n_shards"],
        n_replicas=case["n_replicas"],
        field_analyzers=field_analyzers,
        cache_size=case["cache_size"],
        ship_every=case["ship_every"],
        snapshot_every=case["snapshot_every"],
        fs_factory=fs_factory,
        executor_mode="serial",
    )
    oracle = SearchEngine(field_analyzers)

    killed = False
    for action_index, op in enumerate(case["actions"]):
        if (
            crash is not None
            and crash["kind"] == "kill"
            and action_index == crash["at_action"]
            and not killed
        ):
            # Fail-stop between commits; the next op (or read) routed
            # to this shard must fail over and promote transparently.
            tier.crash_primary(crash_shard)
            killed = True
        try:
            _apply_one(tier, op)
        except (InjectedCrash, DurabilityError, ReplicaError):
            # The commit died mid-flight on the injected shard.  Only
            # the harness boundary may catch an InjectedCrash: declare
            # the primary dead, promote from surviving bytes, and
            # retry the (idempotent) op on the promoted primary.
            tier.crash_primary(crash_shard)
            tier.promote(crash_shard)
            _apply_one(tier, op)
        # The oracle never crashes: it is the no-crash reference.
        if op["op"] == "index":
            oracle.index(op["id"], op["fields"])
        else:
            oracle.delete(op["id"])

        # Steady reads: every action is followed by the full query
        # batch, so reads race shipping lag, epoch bumps, and the
        # promotion itself.
        for query in case["queries"]:
            want = _search_once(oracle, query)
            got = _search_once(tier, query)
            message = _compare(
                query, got, want, f"after action {action_index}"
            )
            if message is not None:
                return message

    if tier.n_documents != oracle.n_documents:
        return (
            f"doc count diverged from no-crash oracle: "
            f"{tier.n_documents} vs {oracle.n_documents}"
        )

    # Cache-hit determinism on the final state.
    for query in case["queries"]:
        first = _search_once(tier, query)
        second = _search_once(tier, query)
        if first != second:
            return (
                f"cache hit not deterministic for {query!r}: "
                f"first {first!r}, second {second!r}"
            )

    # Convergence: after a forced ship every replica must be
    # canonically identical to its shard's primary.
    tier.ship_all()
    for shard_id, replica_set in enumerate(tier.sets):
        want_state = _engine_state(replica_set.primary)
        for replica_index, replica in enumerate(replica_set.replicas):
            got_state = _engine_state(replica.store)
            if got_state != want_state:
                return (
                    f"shard {shard_id} replica {replica_index} diverged "
                    f"from its primary after ship (lag "
                    f"{replica_set.lag_lsns()!r})"
                )
        if replica_set.lag_lsns() != [0] * len(replica_set.replicas):
            return (
                f"shard {shard_id} still lagging after ship_all: "
                f"{replica_set.lag_lsns()!r}"
            )

    # Structural cache health.
    if tier.cache is not None:
        stats = tier.cache.stats()
        if stats["entries"] > stats["capacity"]:
            return f"cache exceeded capacity: {stats!r}"
    return None
