"""Serving-layer oracles: sharded-vs-unsharded equivalence and cache
coherence.

One generated case drives the same index/delete/query workload through
a :class:`~repro.serving.engine.ShardedSearchEngine` and a plain
:class:`~repro.search.engine.SearchEngine` and verifies:

* **Rank equivalence** — every query returns the same documents with
  the same scores in the same order from both engines, at every shard
  count.  This is the claim that makes sharding an implementation
  detail rather than a semantic change.
* **Cache determinism** — asking the same query twice in a row (a
  guaranteed cache hit) returns exactly the first answer.
* **Cache coherence (metamorphic)** — after a mutation batch, queries
  must match a *cold* unsharded engine built by replaying the full op
  stream from scratch: a stale cached answer surviving an epoch bump
  would diverge here.
"""

from __future__ import annotations

from repro.search.analysis import STANDARD_ANALYZER_CONFIG
from repro.search.engine import SearchEngine
from repro.serving.engine import ShardedSearchEngine
from repro.testing.oracles import ANALYZER_CONFIGS

_TOLERANCE = 1e-8


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _TOLERANCE * (1.0 + max(abs(a), abs(b)))


def _search_once(engine, query):
    """('error', type name) or a ranked (doc_id, score) list."""
    try:
        hits = engine.search(query, size=10)
    except Exception as exc:
        return ("error", type(exc).__name__)
    return [(hit.doc_id, hit.score) for hit in hits]


def _compare(query, got, want, label: str) -> str | None:
    if isinstance(got, tuple) or isinstance(want, tuple):
        if got != want:
            return f"{label} {query!r}: sharded {got!r}, oracle {want!r}"
        return None
    if [doc_id for doc_id, _ in got] != [doc_id for doc_id, _ in want]:
        return f"{label} {query!r}: ranking {got!r}, oracle {want!r}"
    for (_, got_score), (_, want_score) in zip(got, want):
        if not _close(got_score, want_score):
            return f"{label} {query!r}: scores diverged {got!r} vs {want!r}"
    return None


def _valid_case(case: dict) -> bool:
    """Structural validation; shrunk cases may violate any of this."""
    if not isinstance(case, dict):
        return False
    n_shards = case.get("n_shards")
    if not isinstance(n_shards, int) or not 1 <= n_shards <= 16:
        return False
    cache_size = case.get("cache_size")
    if not isinstance(cache_size, int) or cache_size < 1:
        return False
    if case.get("analyzer") not in ANALYZER_CONFIGS:
        return False
    for key in ("ops", "mutations"):
        ops = case.get(key)
        if not isinstance(ops, list):
            return False
        for op in ops:
            if not isinstance(op, dict) or op.get("op") not in (
                "index",
                "delete",
            ):
                return False
            if op["op"] == "index" and not isinstance(
                op.get("fields"), dict
            ):
                return False
    if not isinstance(case.get("queries"), list):
        return False
    if not isinstance(case.get("post_queries"), list):
        return False
    return True


def _apply_ops(ops: list, *engines) -> str | None:
    for op in ops:
        if op["op"] == "index":
            for engine in engines:
                engine.index(op["id"], op["fields"])
        else:
            results = [engine.delete(op["id"]) for engine in engines]
            if len(set(results)) > 1:
                return f"delete({op['id']!r}) verdicts diverged: {results}"
    return None


def check_serving_case(case: dict) -> str | None:
    """Run one serving workload; ``None`` means all invariants held
    (or the case was structurally malformed — vacuous)."""
    if not _valid_case(case):
        return None
    field_analyzers = {
        "body": ANALYZER_CONFIGS[case["analyzer"]],
        "title": STANDARD_ANALYZER_CONFIG,
    }
    sharded = ShardedSearchEngine(
        case["n_shards"], field_analyzers, cache_size=case["cache_size"]
    )
    reference = SearchEngine(field_analyzers)

    message = _apply_ops(case["ops"], sharded, reference)
    if message is not None:
        return message
    if sharded.n_documents != reference.n_documents:
        return (
            f"doc count diverged after seed ops: {sharded.n_documents} "
            f"vs {reference.n_documents}"
        )

    # Rank equivalence + guaranteed-hit cache determinism.
    for query in case["queries"]:
        want = _search_once(reference, query)
        got = _search_once(sharded, query)
        message = _compare(query, got, want, "warm")
        if message is not None:
            return message
        again = _search_once(sharded, query)
        if again != got:
            return (
                f"cache hit not deterministic for {query!r}: "
                f"first {got!r}, second {again!r}"
            )

    # Mutate, then check against a COLD engine replaying everything:
    # a stale cache entry surviving its epoch bump diverges here.
    message = _apply_ops(case["mutations"], sharded, reference)
    if message is not None:
        return message
    cold = SearchEngine(field_analyzers)
    _apply_ops(case["ops"] + case["mutations"], cold)

    for query in case["post_queries"] + case["queries"]:
        want = _search_once(cold, query)
        got = _search_once(sharded, query)
        message = _compare(query, got, want, "post-mutation")
        if message is not None:
            return message

    # Structural cache health: bounded, and consistent counters.
    if sharded.cache is not None:
        stats = sharded.cache.stats()
        if stats["entries"] > stats["capacity"]:
            return f"cache exceeded capacity: {stats!r}"
        if stats["hits"] + stats["misses"] < len(case["queries"]):
            return f"cache counters undercount lookups: {stats!r}"
    return None
