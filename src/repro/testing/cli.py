"""``python -m repro.testing`` — the fuzzing CLI.

Runs the differential oracles and metamorphic invariants over seeded
case batches.  On failure the case is shrunk to a minimal reproducer
and written to a replayable JSON seed file::

    python -m repro.testing --cases 500 --seed 0
    python -m repro.testing --subsystem graph --cases 50
    python -m repro.testing --replay fuzz-failure.json

Exit status is 0 when every case agrees with its oracle, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.testing.differential import (
    SUBSYSTEMS,
    check_case,
    generate_case,
    run,
)
from repro.testing.shrink import shrink


def _failure_category(message: str) -> str:
    """Coarse failure class: keeps the shrinker from wandering onto a
    *different* bug (or a checker crash) while minimizing."""
    return message.split(":", 1)[0]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing",
        description=(
            "Differential & metamorphic correctness harness: fuzz the "
            "optimized search/graph/CRF/temporal implementations "
            "against brute-force oracles."
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master seed (default 0)"
    )
    parser.add_argument(
        "--cases",
        type=int,
        default=200,
        help="cases per subsystem (default 200)",
    )
    parser.add_argument(
        "--subsystem",
        action="append",
        choices=SUBSYSTEMS,
        default=None,
        help="restrict to one subsystem (repeatable; default: all)",
    )
    parser.add_argument(
        "--out",
        default="fuzz-failure.json",
        help="where to write the shrunk failing case (default "
        "fuzz-failure.json)",
    )
    parser.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="re-run a previously saved failure file instead of fuzzing",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report the raw failing case without minimizing it",
    )
    return parser


def _replay(path: str) -> int:
    with open(path, encoding="utf-8") as handle:
        saved = json.load(handle)
    subsystem = saved["subsystem"]
    case = saved.get("shrunk_case") or saved["case"]
    message = check_case(subsystem, case)
    if message is None:
        print(f"replay[{subsystem}]: case no longer fails (fixed)")
        return 0
    print(f"replay[{subsystem}]: still failing\n{message}")
    return 1


def main(argv=None) -> int:
    args = _parser().parse_args(argv)
    if args.replay:
        return _replay(args.replay)

    subsystems = tuple(args.subsystem) if args.subsystem else SUBSYSTEMS
    report = run(
        subsystems=subsystems,
        seed=args.seed,
        cases=args.cases,
        on_progress=lambda name, n: print(
            f"  {name:<11} {n} cases", flush=True
        ),
    )
    total = sum(report.counts.values())
    print(
        f"ran {total} cases (seed={args.seed}) in {report.elapsed:.1f}s; "
        f"digest {report.digest[:16]}"
    )
    if report.ok:
        print("all subsystems agree with their oracles")
        return 0

    failure = report.failures[0]
    print(
        f"\nFAILURE in {failure.subsystem} "
        f"(seed={failure.seed}, case #{failure.case_index}):\n"
        f"{failure.message}\n"
    )
    shrunk = failure.case
    if not args.no_shrink:
        print("shrinking ...", flush=True)
        category = _failure_category(failure.message)

        def same_failure(candidate: dict) -> bool:
            message = check_case(failure.subsystem, candidate)
            return (
                message is not None
                and _failure_category(message) == category
            )

        shrunk = shrink(failure.case, same_failure)
        print(f"shrunk case: {json.dumps(shrunk, ensure_ascii=False)}")
    payload = {
        "subsystem": failure.subsystem,
        "seed": failure.seed,
        "case_index": failure.case_index,
        "message": check_case(failure.subsystem, shrunk),
        "case": failure.case,
        "shrunk_case": shrunk,
        "replay": f"python -m repro.testing --replay {args.out}",
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, ensure_ascii=False)
    print(f"wrote replayable failure to {args.out}")
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
