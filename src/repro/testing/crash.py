"""Crash-recovery fuzzing: injected faults vs. a brute-force oracle.

One generated case is a short ingest/delete workload over the three
stores (docstore, property graph, keyword index) run under a
:class:`~repro.durability.DurabilityManager`, with one deterministic
fault injected somewhere in the filesystem operation stream.  The
checker then recovers from the surviving bytes and verifies the
durability contract:

* **Prefix consistency** — the recovered state equals the state an
  oracle reaches after some *whole* prefix of the workload.  Never a
  partial document, never a reordering.
* **No lost acknowledgements** — that prefix covers at least every
  action whose commit LSN was acknowledged (≤ ``durable_lsn``) before
  the fault.  Recovered state may legitimately be *ahead* of the
  acknowledged prefix: un-fsynced complete records can survive a
  crash via page-cache writeback, and that is allowed — losing an
  acknowledged write is not.
* **Tripartite atomicity** — after recovery, exactly the same document
  ids are visible in the docstore, the graph, and the keyword index.
* **Continuation** — re-running the remaining actions on the recovered
  system converges to the same final state as a run that never
  crashed.

Fault-free cases double as a snapshot+WAL equivalence check: the live
in-memory state, the recovered state, and the oracle must all agree.
"""

from __future__ import annotations

import json

from repro.docstore.store import DocumentStore
from repro.durability import DurabilityManager, FaultInjector, InjectedCrash, MemFS
from repro.exceptions import DurabilityError
from repro.graphdb.graph import PropertyGraph
from repro.search.engine import SearchEngine

FAULT_KINDS = FaultInjector.CRASH_KINDS + FaultInjector.ERROR_KINDS


def _fresh_stores() -> tuple[DocumentStore, PropertyGraph, SearchEngine]:
    return DocumentStore(), PropertyGraph(), SearchEngine()


def apply_action(
    store: DocumentStore,
    graph: PropertyGraph,
    engine: SearchEngine,
    action: dict,
) -> None:
    """Apply one workload action to all three stores (memory only).

    Mirrors what ``CreateApplication.register_report`` does: the
    document lands in the docstore, its report/entity subgraph in the
    graph, and its text fields in the keyword index.
    """
    doc_id = action["id"]
    if action["act"] == "ingest":
        store.collection("reports").insert_one(
            {
                "_id": doc_id,
                "title": action["title"],
                "text": action["body"],
                "category": action["category"],
            }
        )
        graph.add_node(doc_id, entityType="Report", label=action["title"])
        span_ids = []
        for k, (entity_type, label) in enumerate(action["spans"]):
            span_id = f"{doc_id}:T{k + 1}"
            graph.add_node(span_id, entityType=entity_type, label=label)
            graph.add_edge(doc_id, span_id, "HAS_ENTITY")
            span_ids.append(span_id)
        for src, dst, label in action["relations"]:
            graph.add_edge(span_ids[src], span_ids[dst], label)
        engine.index(
            doc_id, {"title": action["title"], "body": action["body"]}
        )
    else:  # delete
        store.collection("reports").delete_one({"_id": doc_id})
        if graph.has_node(doc_id):
            for edge in graph.out_edges(doc_id, "HAS_ENTITY"):
                graph.remove_node(edge.target)
            graph.remove_node(doc_id)
        engine.delete(doc_id)


def _engine_state(engine: SearchEngine) -> dict:
    """Scoring-relevant index statistics keyed by *document id*.

    Internal ordinals are allocator values: two histories that differ
    only by an index-then-delete pair reach semantically identical
    states with different ordinal assignments, so canonical equality
    must translate every posting back to its document id.
    """
    fields = {}
    for field_name in sorted(engine._indexes):
        index = engine._indexes[field_name]
        if index.n_documents == 0 and index.vocabulary_size == 0:
            continue
        fields[field_name] = {
            "postings": {
                term: sorted(
                    [
                        str(engine._ids_by_ordinal[posting.doc_ord]),
                        list(posting.positions),
                    ]
                    for posting in plist
                )
                for term, plist in index._postings.items()
            },
            "doc_lengths": sorted(
                [str(engine._ids_by_ordinal[doc_ord]), length]
                for doc_ord, length in index._doc_lengths.items()
            ),
            "total_length": index._total_length,
        }
    return fields


def canonical_state(
    store: DocumentStore, graph: PropertyGraph, engine: SearchEngine
) -> str:
    """Identity-free canonical rendering of the tripartite state.

    Graph edge ids and engine ordinals are excluded (allocator values,
    not semantics); everything that influences query results or BM25
    scoring is included.
    """
    collections = {}
    for name in store.collection_names():
        docs = sorted(
            json.dumps(doc, sort_keys=True, default=str)
            for doc in store.collection(name)
        )
        collections[name] = docs
    payload = {
        "docstore": collections,
        "graph": {
            "nodes": sorted(
                [node.node_id, sorted(node.properties.items())]
                for node in graph.nodes()
            ),
            "edges": sorted(
                [
                    edge.source,
                    edge.target,
                    edge.label,
                    sorted(edge.properties.items()),
                ]
                for edge in graph.edges()
            ),
        },
        "engine": _engine_state(engine),
    }
    return json.dumps(payload, sort_keys=True, default=str)


def visible_doc_ids(
    store: DocumentStore, graph: PropertyGraph, engine: SearchEngine
) -> tuple[set, set, set]:
    """Document ids visible in each of the three stores."""
    doc_ids = {doc["_id"] for doc in store.collection("reports")}
    graph_ids = {
        node.node_id
        for node in graph.nodes()
        if node.get("entityType") == "Report"
    }
    engine_ids = {
        hit.doc_id
        for hit in engine.search({"match_all": {}}, size=1_000_000)
    }
    return doc_ids, graph_ids, engine_ids


def _valid_case(case: dict) -> bool:
    """Structural validation; shrunk cases may violate any of this."""
    if not isinstance(case, dict):
        return False
    group_commit = case.get("group_commit")
    if not isinstance(group_commit, int) or group_commit < 1:
        return False
    snapshot_every = case.get("snapshot_every")
    if snapshot_every is not None and (
        not isinstance(snapshot_every, int) or snapshot_every < 1
    ):
        return False
    actions = case.get("actions")
    if not isinstance(actions, list):
        return False
    ingested = set()
    for action in actions:
        if not isinstance(action, dict):
            return False
        kind = action.get("act")
        if kind == "ingest":
            doc_id = action.get("id")
            if not isinstance(doc_id, str) or doc_id in ingested:
                return False
            ingested.add(doc_id)
            if not all(
                isinstance(action.get(key), str)
                for key in ("title", "body", "category")
            ):
                return False
            spans = action.get("spans")
            if not isinstance(spans, list) or not all(
                isinstance(span, list)
                and len(span) == 2
                and all(isinstance(part, str) for part in span)
                for span in spans
            ):
                return False
            relations = action.get("relations")
            if not isinstance(relations, list):
                return False
            for relation in relations:
                if not isinstance(relation, list) or len(relation) != 3:
                    return False
                src, dst, label = relation
                if not (
                    isinstance(src, int)
                    and isinstance(dst, int)
                    and isinstance(label, str)
                    and 0 <= src < len(spans)
                    and 0 <= dst < len(spans)
                ):
                    return False
        elif kind == "delete":
            if not isinstance(action.get("id"), str):
                return False
        else:
            return False
    fault = case.get("fault")
    if fault is not None:
        if not isinstance(fault, dict):
            return False
        if fault.get("kind") not in FAULT_KINDS:
            return False
        if not isinstance(fault.get("at_op"), int) or fault["at_op"] < 0:
            return False
        if not isinstance(fault.get("seed"), int):
            return False
    return True


def _oracle_states(actions: list[dict]) -> list[str]:
    """``states[j]`` = canonical state after the first ``j`` actions,
    computed on plain in-memory stores with no durability at all."""
    store, graph, engine = _fresh_stores()
    states = [canonical_state(store, graph, engine)]
    for action in actions:
        apply_action(store, graph, engine, action)
        states.append(canonical_state(store, graph, engine))
    return states


def check_durability_case(case: dict) -> str | None:
    """Run one crash schedule end to end; ``None`` means the contract
    held (or the case was structurally malformed — vacuous)."""
    if not _valid_case(case):
        return None
    actions = case["actions"]
    fault = case["fault"]
    oracle = _oracle_states(actions)

    mem = MemFS()
    if fault is not None:
        fs = FaultInjector(
            mem,
            kind=fault["kind"],
            at_op=fault["at_op"],
            seed=fault["seed"],
        )
    else:
        fs = mem
    store, graph, engine = _fresh_stores()
    manager = DurabilityManager(
        fs,
        group_commit=case["group_commit"],
        snapshot_every=case["snapshot_every"],
    )
    manager.attach("docstore", store)
    manager.attach("graph", graph)
    manager.attach("index", engine)

    applied = 0  # actions whose memory mutation completed
    action_lsns: list[int | None] = []  # lsn per *committed* action
    crashed = False
    try:
        for action in actions:
            apply_action(store, graph, engine, action)
            applied += 1
            action_lsns.append(manager.commit())
        manager.flush()
    except (InjectedCrash, DurabilityError, OSError):
        crashed = True

    # Acknowledged prefix: the longest run of leading actions whose
    # commits were fsynced (no-op actions — lsn None — ride along).
    acked = 0
    for lsn in action_lsns:
        if lsn is not None and lsn > manager.durable_lsn:
            break
        acked += 1

    # Recover from the surviving bytes with a fault-free filesystem.
    recovered_store, recovered_graph, recovered_engine = _fresh_stores()
    recovery = DurabilityManager(
        mem, group_commit=1, snapshot_every=case["snapshot_every"]
    )
    recovery.attach("docstore", recovered_store)
    recovery.attach("graph", recovered_graph)
    recovery.attach("index", recovered_engine)
    try:
        recovery.recover()
    except DurabilityError as exc:
        return f"recovery failed after {'crash' if crashed else 'clean run'}: {exc}"
    recovered = canonical_state(
        recovered_store, recovered_graph, recovered_engine
    )

    # Tripartite atomicity: same ids everywhere, no partial documents.
    doc_ids, graph_ids, engine_ids = visible_doc_ids(
        recovered_store, recovered_graph, recovered_engine
    )
    if not (doc_ids == graph_ids == engine_ids):
        return (
            "recovered stores disagree on visible documents: "
            f"docstore {sorted(doc_ids)}, graph {sorted(graph_ids)}, "
            f"index {sorted(engine_ids)}"
        )

    # Prefix consistency + no lost acknowledgements.
    matched = [
        j for j in range(applied + 1) if oracle[j] == recovered
    ]
    if not matched:
        return (
            f"recovered state matches no action prefix "
            f"(crashed={crashed}, applied={applied}, acked={acked})"
        )
    resume_from = max(matched)
    if resume_from < acked:
        return (
            f"acknowledged writes lost: recovered to prefix "
            f"{resume_from} but {acked} actions were acknowledged "
            f"(durable_lsn={manager.durable_lsn})"
        )

    # Continuation: finish the workload on the recovered system.
    for action in actions[resume_from:]:
        apply_action(
            recovered_store, recovered_graph, recovered_engine, action
        )
        recovery.commit()
    recovery.flush()
    final = canonical_state(
        recovered_store, recovered_graph, recovered_engine
    )
    if final != oracle[-1]:
        return (
            f"continuation after recovery from prefix {resume_from} "
            "diverged from the oracle's final state"
        )

    if not crashed:
        # Fault-free (or fault never fired): live memory, recovered
        # state, and oracle must all be the complete workload.
        live = canonical_state(store, graph, engine)
        if live != oracle[-1]:
            return "fault-free live state diverged from the oracle"
        if recovered != oracle[-1]:
            return (
                "fault-free recovery (snapshot + WAL replay) diverged "
                "from the in-memory state"
            )
        if acked != len(actions):
            return (
                f"fault-free run acknowledged only {acked} of "
                f"{len(actions)} actions"
            )
    return None
