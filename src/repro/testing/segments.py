"""Segment-engine oracle: on-disk segments vs the in-memory engine.

One generated case drives the same index/delete workload — interleaved
with explicit ``flush`` (seal the write buffer into a segment) and
``merge`` (compact segments) schedule points — through a
:class:`~repro.search.segment_engine.SegmentSearchEngine` and a plain
:class:`~repro.search.engine.SearchEngine`, then verifies:

* **Bit-identical scoring** — every query returns the same documents
  with *exactly equal* float scores in the same order, whatever the
  flush/merge/delete schedule.  This is the guarantee that makes the
  segment refactor a pure representation change (scores compare with
  ``==``, not a tolerance).
* **Stored-field round-trip** — hit sources match the indexed fields
  byte for byte after packing through the binary format.
* **Manifest recovery** — optionally the engine is flushed, closed and
  reopened from ``manifest.json`` mid-case; sealed state must come
  back exactly (delete bitmaps included) before mutations continue.
"""

from __future__ import annotations

import shutil
import tempfile

from repro.search.analysis import STANDARD_ANALYZER_CONFIG
from repro.search.engine import SearchEngine
from repro.search.segment_engine import SegmentSearchEngine
from repro.testing.oracles import ANALYZER_CONFIGS

_OPS = ("index", "delete", "flush", "merge")


def _valid_case(case: dict) -> bool:
    """Structural validation; shrunk cases may violate any of this."""
    if not isinstance(case, dict):
        return False
    if case.get("analyzer") not in ANALYZER_CONFIGS:
        return False
    for knob in ("flush_threshold", "merge_factor"):
        value = case.get(knob)
        if not isinstance(value, int) or value < 1:
            return False
    for key in ("ops", "mutations"):
        ops = case.get(key)
        if not isinstance(ops, list):
            return False
        for op in ops:
            if not isinstance(op, dict) or op.get("op") not in _OPS:
                return False
            if op["op"] == "index" and not isinstance(
                op.get("fields"), dict
            ):
                return False
    if not isinstance(case.get("queries"), list):
        return False
    if not isinstance(case.get("post_queries"), list):
        return False
    return True


def _search_once(engine, query):
    """('error', type name) or a ranked (doc_id, score, source) list."""
    try:
        hits = engine.search(query, size=10)
    except Exception as exc:
        return ("error", type(exc).__name__)
    return [(hit.doc_id, hit.score, hit.source) for hit in hits]


def _apply_ops(ops: list, engine, reference) -> str | None:
    for op in ops:
        kind = op["op"]
        if kind == "index":
            engine.index(op["id"], op["fields"])
            reference.index(op["id"], op["fields"])
        elif kind == "delete":
            got = engine.delete(op["id"])
            want = reference.delete(op["id"])
            if got != want:
                return f"delete({op['id']!r}) -> {got}, oracle {want}"
        elif kind == "flush":
            engine.flush()
        else:
            engine.merge()
        if engine.n_documents != reference.n_documents:
            return (
                f"doc count diverged after {op!r}: "
                f"{engine.n_documents} vs {reference.n_documents}"
            )
    return None


def _compare_queries(queries, engine, reference, label) -> str | None:
    for query in queries:
        got = _search_once(engine, query)
        want = _search_once(reference, query)
        if isinstance(got, tuple) or isinstance(want, tuple):
            if got != want:
                return f"{label} {query!r}: segment {got!r}, oracle {want!r}"
            continue
        if got != want:
            # Tuple compare is exact (==) on scores: the segment path
            # promises bit-identity, not tolerance-level agreement.
            return (
                f"{label} {query!r} not bit-identical: "
                f"segment {got!r}, oracle {want!r}"
            )
    return None


def check_segment_case(case: dict) -> str | None:
    """Run one segment workload; ``None`` means all invariants held
    (or the case was structurally malformed — vacuous)."""
    if not _valid_case(case):
        return None
    field_analyzers = {
        "body": ANALYZER_CONFIGS[case["analyzer"]],
        "title": STANDARD_ANALYZER_CONFIG,
    }
    segment_dir = tempfile.mkdtemp(prefix="repro-segfuzz-")
    engine = SegmentSearchEngine(
        field_analyzers,
        segment_dir=segment_dir,
        flush_threshold=case["flush_threshold"],
        merge_factor=case["merge_factor"],
    )
    reference = SearchEngine(field_analyzers)
    try:
        message = _apply_ops(case["ops"], engine, reference)
        if message is not None:
            return message
        message = _compare_queries(
            case["queries"], engine, reference, "warm"
        )
        if message is not None:
            return message

        if case.get("reopen"):
            # Seal everything, drop the process state, come back from
            # the manifest alone.
            engine.flush()
            next_ordinal = engine._next_ordinal
            engine.close()
            engine = SegmentSearchEngine(
                field_analyzers,
                segment_dir=segment_dir,
                flush_threshold=case["flush_threshold"],
                merge_factor=case["merge_factor"],
            )
            if engine._next_ordinal != next_ordinal:
                return (
                    f"manifest reopen lost ordinal clock: "
                    f"{engine._next_ordinal} vs {next_ordinal}"
                )
            if engine.n_documents != reference.n_documents:
                return (
                    f"manifest reopen lost documents: {engine.n_documents}"
                    f" vs {reference.n_documents}"
                )

        message = _apply_ops(case["mutations"], engine, reference)
        if message is not None:
            return message
        return _compare_queries(
            case["post_queries"] + case["queries"],
            engine,
            reference,
            "post-mutation",
        )
    finally:
        engine.close()
        shutil.rmtree(segment_dir, ignore_errors=True)
