"""Differential & metamorphic correctness harness.

The optimized retrieval stack (inverted index + BM25, backtracking
subgraph matching, Viterbi CRF decoding, fixpoint temporal closure)
is fuzzed against pure brute-force **reference oracles** plus a suite
of **metamorphic invariants** (insertion-order permutation, add/remove
restoration, serial-vs-parallel ingest equivalence, query-term
duplication monotonicity, fusion determinism).

Run it with ``python -m repro.testing --cases 500 --seed 0``; failures
shrink to minimal reproducers saved in a replayable seed file.
"""

from repro.testing.crash import (
    apply_action,
    canonical_state,
    check_durability_case,
    visible_doc_ids,
)
from repro.testing.differential import (
    CHECKERS,
    GENERATORS,
    SUBSYSTEMS,
    Failure,
    RunReport,
    check_case,
    generate_case,
    run,
)
from repro.testing.oracles import (
    ReferenceSearchEngine,
    brute_force_bindings,
    exhaustive_decode,
    reference_closure,
    reference_fuse,
)
from repro.testing.replication import check_replication_case
from repro.testing.review import check_review_case, gen_review_case
from repro.testing.rng import case_rng, derive_seed
from repro.testing.serving import check_serving_case
from repro.testing.shrink import shrink

__all__ = [
    "CHECKERS",
    "GENERATORS",
    "SUBSYSTEMS",
    "Failure",
    "RunReport",
    "ReferenceSearchEngine",
    "apply_action",
    "brute_force_bindings",
    "canonical_state",
    "case_rng",
    "check_case",
    "check_durability_case",
    "check_replication_case",
    "check_review_case",
    "check_serving_case",
    "derive_seed",
    "gen_review_case",
    "visible_doc_ids",
    "exhaustive_decode",
    "generate_case",
    "reference_closure",
    "reference_fuse",
    "run",
    "shrink",
]
