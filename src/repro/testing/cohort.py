"""Differential fuzzing for the cohort engine.

Each case regenerates a small gold corpus from a seed, assembles the
full production stack (docstore + dual index + cohort engine) and the
:class:`BruteForceCohortEvaluator` oracle, and checks three properties:

1. **differential** — composed-engine membership and every per-criterion
   candidate set are bit-identical to the per-document oracle;
2. **permutation invariance** — shuffling the criterion lists (which
   reorders the engine's short-circuit plan) leaves membership
   unchanged;
3. **delete metamorphic** — deleting reports through the production
   ``DELETE /reports/{id}`` path removes exactly those members: every
   criterion is a per-report predicate, so unrelated deletions cannot
   change any other report's membership.

Criteria are sampled from the regenerated corpus itself (real span
surfaces, real metadata values) so most criteria are satisfiable, with
a sprinkle of never-matching criteria to exercise the short-circuit
path.
"""

from __future__ import annotations

import random

from repro.cohort.model import CohortDefinition
from repro.exceptions import CohortError

CORPUS_CATEGORIES = (
    "cardiovascular",
    "cancer",
    "infectious disease",
    "neurology",
    "respiratory",
)

_ENTITY_TYPES = (
    "Sign_symptom",
    "Disease_disorder",
    "Medication",
    "Lab_value",
    "Diagnostic_procedure",
    "Therapeutic_procedure",
    "History",
)

_TEMPORAL_RELATIONS = ("BEFORE", "AFTER", "OVERLAP")


def _generate_corpus(corpus_seed: int, categories: list[str]):
    from repro.corpus.generator import CaseReportGenerator

    generator = CaseReportGenerator(seed=corpus_seed)
    return [
        generator.generate(f"fz-{index:03d}", category=category)
        for index, category in enumerate(categories)
    ]


def _sample_span(rng: random.Random, reports) -> tuple[str, str]:
    """(entity_type, surface) of a random real span from the corpus."""
    report = rng.choice(reports)
    spans = report.annotations.spans_sorted()
    span = rng.choice(spans)
    return span.label, span.text


def _gen_mention_spec(rng: random.Random, reports) -> dict:
    roll = rng.random()
    if roll < 0.45:
        entity_type, surface = _sample_span(rng, reports)
        spec = {"entity_type": entity_type, "value": surface}
    elif roll < 0.8:
        spec = {"entity_type": rng.choice(_ENTITY_TYPES), "value": None}
    else:  # rarely-matching spec: real type, fictitious surface
        spec = {
            "entity_type": rng.choice(_ENTITY_TYPES),
            "value": f"no-such-surface-{rng.randint(0, 99)}",
        }
    spec["negated"] = rng.choice([False, False, False, True, None])
    return spec


def _gen_criterion(rng: random.Random, reports) -> dict:
    kind = rng.choices(
        ("entity", "temporal", "graph", "text", "value"),
        weights=(30, 25, 10, 15, 20),
    )[0]
    if kind == "entity":
        return {"kind": "entity", **_gen_mention_spec(rng, reports)}
    if kind == "temporal":
        return {
            "kind": "temporal",
            "relation": rng.choice(_TEMPORAL_RELATIONS),
            "a": _gen_mention_spec(rng, reports),
            "b": _gen_mention_spec(rng, reports),
        }
    if kind == "graph":
        # One- or two-node pattern over indexed properties; a second
        # variable connects through a temporal edge half the time.
        nodes = [["x", {"entityType": rng.choice(_ENTITY_TYPES)}]]
        edges = []
        if rng.random() < 0.6:
            nodes.append(["y", {"entityType": rng.choice(_ENTITY_TYPES)}])
            if rng.random() < 0.8:
                label = rng.choice(("BEFORE", "OVERLAP", None))
                edges.append(
                    ["x", "y", label, label == "BEFORE"]
                )
            else:
                # Unconnected two-node pattern: same-report conjunction.
                nodes[1][1]["doc_id"] = rng.choice(reports).report_id
        return {"kind": "graph", "nodes": nodes, "edges": edges}
    if kind == "text":
        if rng.random() < 0.7:
            _entity_type, surface = _sample_span(rng, reports)
            query = surface
        else:
            query = rng.choice(("fever", "aspirin", "zzzqqq"))
        return {"kind": "text", "query": query}
    field_name = rng.choice(("year", "category", "journal", "mesh_terms"))
    document = rng.choice(reports).to_document()
    if field_name == "year":
        year = document["year"]
        return rng.choice(
            [
                {"kind": "value", "field": "year", "op": "gte", "value": year},
                {"kind": "value", "field": "year", "op": "lte", "value": year},
                {
                    "kind": "value",
                    "field": "year",
                    "op": "between",
                    "value": [year - rng.randint(0, 5), year],
                },
            ]
        )
    value = document[field_name]
    if isinstance(value, list):
        value = rng.choice(value) if value else "none"
    if rng.random() < 0.3:
        return {
            "kind": "value",
            "field": field_name,
            "op": "in",
            "value": [value, "no-such-value"],
        }
    op = rng.choice(("eq", "ne"))
    return {"kind": "value", "field": field_name, "op": op, "value": value}


def gen_cohort_case(rng: random.Random) -> dict:
    """One self-contained, JSON-serializable cohort fuzz case."""
    n_docs = rng.randint(2, 6)
    corpus_seed = rng.randint(0, 10**6)
    categories = [rng.choice(CORPUS_CATEGORIES) for _ in range(n_docs)]
    reports = _generate_corpus(corpus_seed, categories)
    inclusion = [
        _gen_criterion(rng, reports) for _ in range(rng.randint(0, 3))
    ]
    exclusion = [
        _gen_criterion(rng, reports) for _ in range(rng.randint(0, 2))
    ]
    n_deletes = rng.randint(0, max(0, n_docs - 1))
    deletes = sorted(rng.sample(range(n_docs), n_deletes))
    return {
        "corpus_seed": corpus_seed,
        "categories": categories,
        "inclusion": inclusion,
        "exclusion": exclusion,
        "deletes": deletes,
        "permutation_seed": rng.randint(0, 2**31 - 1),
    }


def _build_stack(reports):
    """(app, engine, oracle) over one regenerated corpus."""
    from repro.api.app import CreateApplication
    from repro.cohort.engine import CohortEngine
    from repro.cohort.oracle import BruteForceCohortEvaluator
    from repro.docstore.store import DocumentStore
    from repro.ir.indexer import CreateIrIndexer
    from repro.ir.searcher import CreateIrSearcher

    indexer = CreateIrIndexer()
    app = CreateApplication(
        store=DocumentStore(),
        indexer=indexer,
        searcher=CreateIrSearcher(indexer),
    )
    oracle = BruteForceCohortEvaluator()
    for report in reports:
        document = report.to_document()
        app.register_report(document, annotations=report.annotations)
        oracle.add_report(
            report.report_id, report.title, document, report.annotations
        )
    engine = CohortEngine(
        app.store,
        indexer.graph,
        indexer.engine,
        app._annotations.get,
    )
    return app, engine, oracle


def check_cohort_case(case: dict) -> str | None:
    try:
        categories = list(case["categories"])
        if not categories or any(
            c not in CORPUS_CATEGORIES for c in categories
        ):
            return None  # malformed (post-shrink) case: vacuous
        definition = CohortDefinition.from_json(
            {
                "name": "fuzz",
                "inclusion": case["inclusion"],
                "exclusion": case["exclusion"],
            }
        )
        deletes = list(case.get("deletes", []))
        if any(
            not isinstance(i, int) or not 0 <= i < len(categories)
            for i in deletes
        ) or len(set(deletes)) != len(deletes):
            return None
    except (CohortError, KeyError, TypeError):
        return None  # malformed (post-shrink) case: vacuous

    reports = _generate_corpus(case["corpus_seed"], categories)
    app, engine, oracle = _build_stack(reports)

    # 1. Differential: composed engine vs brute-force oracle.
    result = engine.evaluate(definition)
    expected = oracle.evaluate(definition)
    if result.members != expected:
        return (
            f"membership diverged: engine {result.members!r}, "
            f"oracle {expected!r}"
        )
    for criterion in list(definition.inclusion) + list(definition.exclusion):
        got, backend = engine.candidates(criterion)
        want = oracle.candidates(criterion)
        if got != want:
            return (
                f"candidates diverged for {criterion.to_json()!r} "
                f"({backend}): engine {sorted(got)!r}, "
                f"oracle {sorted(want)!r}"
            )

    # 2. Permutation invariance: reordering criteria reorders the
    # short-circuit plan but must not change membership.
    perm = random.Random(case["permutation_seed"])
    shuffled = CohortDefinition(
        name=definition.name,
        inclusion=perm.sample(
            definition.inclusion, len(definition.inclusion)
        ),
        exclusion=perm.sample(
            definition.exclusion, len(definition.exclusion)
        ),
    )
    permuted = engine.evaluate(shuffled)
    if permuted.members != result.members:
        return (
            f"criterion permutation changed membership: "
            f"{result.members!r} -> {permuted.members!r}"
        )

    # 3. Delete metamorphic: per-report predicates mean deleting
    # reports removes exactly those members.
    if deletes:
        deleted_ids = {reports[i].report_id for i in deletes}
        for doc_id in sorted(deleted_ids):
            response = app.handle("DELETE", f"/reports/{doc_id}")
            if not response.ok:
                return f"delete {doc_id} failed: {response.body!r}"
            oracle.remove_report(doc_id)
        after = engine.evaluate(definition)
        survivors = [m for m in result.members if m not in deleted_ids]
        if after.members != survivors:
            return (
                f"delete metamorphic violated: expected {survivors!r}, "
                f"engine {after.members!r}"
            )
        if after.members != oracle.evaluate(definition):
            return "post-delete membership diverged from oracle"
    return None
