"""Stdlib-only AST lint for hazards the test suite can't catch.

Three rules, each motivated by a real failure mode in this codebase:

* **REPRO001 — bare ``except:``** (everywhere).  The runtime layer's
  whole point is that failures are isolated *and visible*; a bare
  except silently eats ``KeyboardInterrupt``/``SystemExit`` and any
  bug it never anticipated.
* **REPRO002 — mutable default arguments** (everywhere).  A shared
  ``[]``/``{}`` default aliases state across calls — deadly in a
  module where engines and caches are constructed repeatedly under
  fuzzing.
* **REPRO003 — ``time.time()`` in deterministic code** (harness
  modules under ``src/repro/testing/`` and the ``tests/`` tree).
  Oracles and generated cases must be replayable byte-for-byte;
  wall-clock reads are hidden nondeterminism.  Benchmarks and runtime
  metrics legitimately measure time and are exempt.
* **REPRO004 — unbounded queues** (everywhere except ``tests/``).
  ``queue.Queue()`` / ``asyncio.Queue()`` with no ``maxsize`` (or
  ``maxsize=0``) buffers without limit — under overload it queues
  toward memory exhaustion and unbounded latency instead of shedding.
  Bounded admission is a serving invariant; pass an explicit positive
  ``maxsize``.  Tests may build unbounded queues as scaffolding.

Run as ``python -m repro.testing.lint [paths...]``; exits 1 when any
violation is found.  No third-party dependencies — this must run on a
bare CI python.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

DEFAULT_PATHS = ["src", "tests", "benchmarks"]

# Directories whose code must be deterministic (REPRO003 scope).
DETERMINISTIC_PARTS = (
    ("src", "repro", "testing"),
    ("tests",),
)

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set)
_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "OrderedDict"}

# Queue constructors whose default maxsize=0 means "unbounded"
# (REPRO004).  Matched as bare names (from-imports) and as attributes
# of the queue/asyncio/multiprocessing modules.
_QUEUE_NAMES = {"Queue", "LifoQueue", "PriorityQueue", "SimpleQueue"}
_QUEUE_MODULES = {"queue", "asyncio", "multiprocessing"}


def _is_mutable_default(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        return name in _MUTABLE_CALLS
    return False


def _in_deterministic_scope(path: Path) -> bool:
    parts = path.parts
    return any(
        parts[: len(prefix)] == prefix for prefix in DETERMINISTIC_PARTS
    )


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: Path, deterministic: bool):
        self.path = path
        self.deterministic = deterministic
        self.bounded_queues = path.parts[:1] != ("tests",)
        self.findings: list[tuple[int, str, str]] = []

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.findings.append(
                (
                    node.lineno,
                    "REPRO001",
                    "bare 'except:' swallows SystemExit/KeyboardInterrupt; "
                    "catch a concrete exception type",
                )
            )
        self.generic_visit(node)

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                self.findings.append(
                    (
                        default.lineno,
                        "REPRO002",
                        f"mutable default argument in {node.name}(); "
                        "use None and construct inside the body",
                    )
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self.deterministic:
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "time"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                self.findings.append(
                    (
                        node.lineno,
                        "REPRO003",
                        "time.time() in deterministic test/oracle code; "
                        "pass timestamps in or use a seeded source",
                    )
                )
        if self.bounded_queues:
            self._check_queue_bound(node)
        self.generic_visit(node)

    def _queue_name(self, node: ast.Call) -> str | None:
        """The constructor's name when it builds a stdlib queue."""
        func = node.func
        if isinstance(func, ast.Name) and func.id in _QUEUE_NAMES:
            return func.id
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _QUEUE_NAMES
            and isinstance(func.value, ast.Name)
            and func.value.id in _QUEUE_MODULES
        ):
            return f"{func.value.id}.{func.attr}"
        return None

    def _check_queue_bound(self, node: ast.Call) -> None:
        name = self._queue_name(node)
        if name is None:
            return
        # maxsize is the first positional argument or a keyword; a
        # missing bound or a literal <= 0 means unbounded.  A non-
        # literal bound is trusted (it may be computed) — the rule
        # targets the silent default, not dynamic configuration.
        bound = node.args[0] if node.args else None
        for keyword in node.keywords:
            if keyword.arg == "maxsize":
                bound = keyword.value
        if name.endswith("SimpleQueue"):
            unbounded = True  # SimpleQueue has no maxsize at all
        elif bound is None:
            unbounded = True
        elif isinstance(bound, ast.Constant):
            unbounded = (
                isinstance(bound.value, int) and bound.value <= 0
            )
        else:
            unbounded = False
        if unbounded:
            self.findings.append(
                (
                    node.lineno,
                    "REPRO004",
                    f"unbounded {name}(); overload must shed, not "
                    "buffer — pass a positive maxsize",
                )
            )


def lint_file(path: Path, root: Path) -> list[str]:
    """Human-readable findings for one file (empty = clean)."""
    relative = path.relative_to(root) if path.is_relative_to(root) else path
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as exc:
        return [f"{relative}:{exc.lineno}: SYNTAX {exc.msg}"]
    visitor = _Visitor(relative, _in_deterministic_scope(relative))
    visitor.visit(tree)
    return [
        f"{relative}:{line}: {code} {message}"
        for line, code, message in sorted(visitor.findings)
    ]


def lint_paths(paths: list[str], root: Path) -> list[str]:
    findings: list[str] = []
    for entry in paths:
        target = root / entry
        if target.is_file():
            findings.extend(lint_file(target, root))
            continue
        for path in sorted(target.rglob("*.py")):
            findings.extend(lint_file(path, root))
    return findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.lint", description=__doc__.split("\n")[0]
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root the default paths resolve against",
    )
    args = parser.parse_args(argv)
    root = Path(args.root).resolve()
    findings = lint_paths(args.paths or DEFAULT_PATHS, root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"\n{len(findings)} violation(s)", file=sys.stderr)
        return 1
    print("lint clean")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
