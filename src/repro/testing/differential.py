"""The differential runner: optimized implementations vs. oracles.

For each subsystem a checker replays one generated case through both
the production code path and the brute-force oracle and returns
``None`` (agreement) or a failure message.  :func:`run` drives seeded
batches across subsystems and reports a digest of the exact case
sequence, so determinism itself is testable (same seed, same digest).
"""

from __future__ import annotations

import hashlib
import json
import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import TemporalInconsistencyError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.match import (
    EdgePattern,
    GraphPattern,
    NodePattern,
    iter_edge_bindings,
    match_pattern,
    match_pattern_unplanned,
)
from repro.graphdb.planner import explain_pattern
from repro.ml import infer
from repro.search.analysis import STANDARD_ANALYZER_CONFIG
from repro.search.engine import SearchEngine
from repro.temporal.graph import TemporalGraph
from repro.temporal.relations import DENSE_ALGEBRA, THREE_WAY_ALGEBRA
from repro.testing import generators
from repro.testing.crash import check_durability_case
from repro.testing.invariants import (
    check_edge_permutation_invariance,
    check_invariants_case,
)
from repro.testing.oracles import (
    ANALYZER_CONFIGS,
    ReferenceSearchEngine,
    brute_force_bindings,
    exhaustive_decode,
    reference_closure,
)
from repro.testing.cohort import check_cohort_case, gen_cohort_case
from repro.testing.replication import check_replication_case
from repro.testing.review import check_review_case, gen_review_case
from repro.testing.rng import case_rng
from repro.testing.segments import check_segment_case
from repro.testing.serving import check_serving_case

SUBSYSTEMS = (
    "search",
    "graph",
    "planner",
    "crf",
    "temporal",
    "invariants",
    "durability",
    "serving",
    "segments",
    "replication",
    "cohort",
    "review",
)

_TOLERANCE = 1e-8


@dataclass(frozen=True)
class Failure:
    """One reproducible optimized-vs-oracle disagreement."""

    subsystem: str
    seed: int
    case_index: int
    message: str
    case: dict


@dataclass
class RunReport:
    """Outcome of one batch run."""

    seed: int
    cases_per_subsystem: int
    counts: dict = field(default_factory=dict)
    failures: list = field(default_factory=list)
    digest: str = ""
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


# -- per-subsystem checkers --------------------------------------------------


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _TOLERANCE * (1.0 + max(abs(a), abs(b)))


def _search_once(engine, query):
    """('error', type name) or a ranked (doc_id, score) list."""
    try:
        hits = engine.search(query, size=10)
    except Exception as exc:
        return ("error", type(exc).__name__)
    if isinstance(engine, SearchEngine):
        return [(hit.doc_id, hit.score) for hit in hits]
    return list(hits)


def _postings_order_invariant(engine, field_analyzers) -> str | None:
    """Mutate-vs-rebuild: after any op stream, every postings list must
    be strictly doc-ord ascending and order-equivalent to a cold
    rebuild of the surviving documents.

    This is the invariant the segment writer depends on (it packs
    postings as within-term delta arrays) and the one the old
    append-at-tail ``InvertedIndex.add_document`` violated for
    re-added ordinals.
    """
    live = sorted(engine._ids_by_ordinal.items())
    rebuilt = SearchEngine(field_analyzers)
    for _, doc_id in live:
        rebuilt.index(doc_id, engine._sources[doc_id])
    for field_name, index in engine._indexes.items():
        other = rebuilt._indexes.get(field_name)
        terms = index.terms()
        if sorted(terms) != sorted(other.terms() if other else []):
            return (
                f"field {field_name!r} vocabulary diverged from rebuild"
            )
        doc_of = engine._ids_by_ordinal
        rebuilt_doc_of = rebuilt._ids_by_ordinal
        for term in terms:
            posts = index.postings(term)
            ords = [p.doc_ord for p in posts]
            if any(a >= b for a, b in zip(ords, ords[1:])):
                return (
                    f"postings for {field_name}:{term!r} not strictly "
                    f"doc-ord ascending: {ords}"
                )
            got = [(doc_of[p.doc_ord], p.positions) for p in posts]
            want = [
                (rebuilt_doc_of[p.doc_ord], p.positions)
                for p in other.postings(term)
            ]
            if got != want:
                return (
                    f"postings for {field_name}:{term!r} diverged from "
                    f"cold rebuild: {got!r} vs {want!r}"
                )
    return None


def check_search_case(case: dict) -> str | None:
    if case.get("analyzer") not in ANALYZER_CONFIGS:
        return None  # malformed (post-shrink) case: vacuous
    field_analyzers = {
        "body": ANALYZER_CONFIGS[case["analyzer"]],
        "title": STANDARD_ANALYZER_CONFIG,
    }
    engine = SearchEngine(field_analyzers)
    reference = ReferenceSearchEngine(field_analyzers)
    for op in case["ops"]:
        if op["op"] == "index":
            engine.index(op["id"], op["fields"])
            reference.index(op["id"], op["fields"])
        else:
            got = engine.delete(op["id"])
            want = reference.delete(op["id"])
            if got != want:
                return f"delete({op['id']!r}) -> {got}, oracle {want}"
        if engine.n_documents != reference.n_documents:
            return (
                f"doc count diverged after {op!r}: "
                f"{engine.n_documents} vs {reference.n_documents}"
            )
    message = _postings_order_invariant(engine, field_analyzers)
    if message is not None:
        return message
    for query in case["queries"]:
        got = _search_once(engine, query)
        want = _search_once(reference, query)
        if isinstance(got, tuple) or isinstance(want, tuple):
            if got != want:
                return f"{query!r}: engine {got!r}, oracle {want!r}"
            continue
        if [doc_id for doc_id, _ in got] != [doc_id for doc_id, _ in want]:
            return f"{query!r}: ranking {got!r}, oracle {want!r}"
        for (_, got_score), (_, want_score) in zip(got, want):
            if not _close(got_score, want_score):
                return (
                    f"{query!r}: scores diverged {got!r} vs {want!r}"
                )
    return None


def _build_graph_case(case: dict):
    graph = PropertyGraph()
    for node_id, props in case["nodes"]:
        graph.add_node(node_id, **props)
    if case.get("index_property"):
        graph.create_property_index("entityType")
    for src, dst, label in case["edges"]:
        graph.add_edge(src, dst, label)
    pattern = GraphPattern(
        nodes=[
            NodePattern(var, properties=tuple(sorted(props.items())))
            for var, props in case["pattern_nodes"]
        ],
        edges=[
            EdgePattern(src, dst, label=label, directed=bool(directed))
            for src, dst, label, directed in case["pattern_edges"]
        ],
    )
    return graph, pattern


def check_graph_case(case: dict) -> str | None:
    try:
        graph, pattern = _build_graph_case(case)
        pattern.validate()
    except Exception:
        return None  # malformed (post-shrink) case: vacuous
    expected = {
        frozenset(binding.items())
        for binding in brute_force_bindings(graph, pattern)
    }
    got_bindings = match_pattern(graph, pattern)
    got = [
        frozenset(
            (var, node.node_id) for var, node in binding.items()
        )
        for binding in got_bindings
    ]
    if len(got) != len(set(got)):
        return f"match_pattern returned duplicate bindings: {got!r}"
    if set(got) != expected:
        return (
            f"bindings diverged: match_pattern {sorted(map(sorted, got))} "
            f"vs oracle {sorted(map(sorted, expected))}"
        )
    limit = case.get("limit")
    if limit is not None:
        limited = match_pattern(graph, pattern, limit=limit)
        if len(limited) != min(limit, len(expected)):
            return (
                f"limit={limit} returned {len(limited)} bindings, "
                f"expected {min(limit, len(expected))}"
            )
        for binding in limited:
            key = frozenset(
                (var, node.node_id) for var, node in binding.items()
            )
            if key not in expected:
                return f"limited binding {sorted(key)} not admissible"
    for binding in got_bindings[:5]:
        realized = list(iter_edge_bindings(graph, binding, pattern))
        if len(realized) != len(pattern.edges):
            return (
                f"iter_edge_bindings realized {len(realized)} of "
                f"{len(pattern.edges)} edges for {sorted(binding)}"
            )
        for edge_pattern, edge in realized:
            if not edge_pattern.admits(edge):
                return f"iter_edge_bindings yielded inadmissible {edge!r}"
            src = binding[edge_pattern.source].node_id
            dst = binding[edge_pattern.target].node_id
            endpoints_ok = edge.source == src and edge.target == dst
            if not endpoints_ok and not edge_pattern.directed:
                endpoints_ok = edge.source == dst and edge.target == src
            if not endpoints_ok:
                return (
                    f"iter_edge_bindings edge {edge!r} does not connect "
                    f"{src!r}->{dst!r}"
                )
    return None


def check_planner_case(case: dict) -> str | None:
    """Planner-aware differential check, four layers deep:

    1. planned ``match_pattern`` vs. the exhaustive oracle (binding-set
       equivalence, no duplicates);
    2. planned vs. the preserved pre-planner engine
       (:func:`match_pattern_unplanned`);
    3. EXPLAIN: deterministic plan rows across repeated planning, every
       pattern variable planned exactly once, the summary row's actual
       cardinality equal to the true result count;
    4. metamorphic: permuting edge-insertion order changes neither the
       plan nor the binding set.
    """
    try:
        graph, pattern = _build_graph_case(case)
        pattern.validate()
    except Exception:
        return None  # malformed (post-shrink) case: vacuous
    expected = {
        frozenset(binding.items())
        for binding in brute_force_bindings(graph, pattern)
    }
    planned = [
        frozenset((var, node.node_id) for var, node in binding.items())
        for binding in match_pattern(graph, pattern)
    ]
    if len(planned) != len(set(planned)):
        return f"planned match returned duplicate bindings: {planned!r}"
    if set(planned) != expected:
        return (
            f"planned bindings diverged from oracle: "
            f"{sorted(map(sorted, planned))} vs "
            f"{sorted(map(sorted, expected))}"
        )
    unplanned = {
        frozenset((var, node.node_id) for var, node in binding.items())
        for binding in match_pattern_unplanned(graph, pattern)
    }
    if unplanned != expected:
        return (
            f"pre-planner engine diverged from oracle: "
            f"{sorted(map(sorted, unplanned))} vs "
            f"{sorted(map(sorted, expected))}"
        )
    bindings, rows = explain_pattern(graph, pattern)
    _again, rows_again = explain_pattern(graph, pattern)
    if rows != rows_again:
        return f"EXPLAIN is not deterministic: {rows} vs {rows_again}"
    explained = {
        frozenset((var, node.node_id) for var, node in binding.items())
        for binding in bindings
    }
    if explained != expected:
        return (
            f"explain_pattern bindings diverged from oracle: "
            f"{sorted(map(sorted, explained))}"
        )
    planned_vars = sorted(
        row["var"] for row in rows if row["op"] in ("scan", "expand")
    )
    pattern_vars = sorted(node.var for node in pattern.nodes)
    if planned_vars != pattern_vars:
        return (
            f"plan covers variables {planned_vars}, pattern has "
            f"{pattern_vars}: {rows}"
        )
    if rows and rows[-1]["op"] == "result":
        if rows[-1]["actual"] != len(expected):
            return (
                f"EXPLAIN result row claims {rows[-1]['actual']} "
                f"bindings, oracle has {len(expected)}"
            )
    limit = case.get("limit")
    if limit is not None:
        limited = match_pattern(graph, pattern, limit=limit)
        if len(limited) != min(limit, len(expected)):
            return (
                f"limit={limit} returned {len(limited)} bindings, "
                f"expected {min(limit, len(expected))}"
            )
        for binding in limited:
            key = frozenset(
                (var, node.node_id) for var, node in binding.items()
            )
            if key not in expected:
                return f"limited binding {sorted(key)} not admissible"
    return check_edge_permutation_invariance(
        case, case.get("permutation_seed", 0)
    )


def check_crf_case(case: dict) -> str | None:
    try:
        emissions = np.asarray(case["emissions"], dtype=float)
        transitions = np.asarray(case["transitions"], dtype=float)
        start = np.asarray(case["start"], dtype=float)
        end = np.asarray(case["end"], dtype=float)
        if (
            emissions.ndim != 2
            or transitions.shape != (emissions.shape[1],) * 2
            or start.shape != (emissions.shape[1],)
            or end.shape != (emissions.shape[1],)
            or emissions.shape[0] > 7
            or emissions.shape[1] > 5
        ):
            return None  # malformed (post-shrink) case: vacuous
    except (ValueError, KeyError):
        return None
    best_score, _best_path, log_z = exhaustive_decode(
        case["emissions"], case["transitions"], case["start"], case["end"]
    )
    path, score = infer.viterbi(emissions, transitions, start, end)
    if not _close(score, best_score):
        return (
            f"viterbi score {score} != exhaustive max {best_score}"
        )
    realized = infer.sequence_score(
        path, emissions, transitions, start, end
    )
    if not _close(realized, best_score):
        return (
            f"viterbi path scores {realized}, exhaustive max {best_score} "
            f"(backpointers inconsistent with claimed score {score})"
        )
    _alpha, forward_z = infer.forward_log(emissions, transitions, start, end)
    if not _close(forward_z, log_z):
        return f"forward log Z {forward_z} != exhaustive {log_z}"
    return None


_ALGEBRAS = {"three": THREE_WAY_ALGEBRA, "dense": DENSE_ALGEBRA}


def check_temporal_case(case: dict) -> str | None:
    algebra = _ALGEBRAS.get(case.get("algebra"))
    if algebra is None:
        return None
    edges = case["edges"]
    for item in edges:
        if len(item) != 3 or item[0] == item[1]:
            return None  # malformed (post-shrink) case: vacuous
        if item[2] not in algebra.labels:
            return None
    tg = TemporalGraph(algebra=algebra)
    status = "ok"
    try:
        for src, dst, label in edges:
            tg.add(src, dst, label)
        tg.close()
    except TemporalInconsistencyError:
        status = "inconsistent"
    ref_status, ref_payload = reference_closure(edges, algebra)
    if status != ref_status:
        return (
            f"consistency verdicts diverged: TemporalGraph {status}, "
            f"oracle {ref_status} ({ref_payload!r})"
        )
    if status != "ok":
        return None
    got = {(a, b): label for a, b, label in tg.edges()}
    if got != ref_payload:
        only_got = {k: v for k, v in got.items() if ref_payload.get(k) != v}
        only_ref = {k: v for k, v in ref_payload.items() if got.get(k) != v}
        return (
            f"closures diverged: graph-only {only_got!r}, "
            f"oracle-only {only_ref!r}"
        )
    if tg.close() != 0:
        return "close() is not idempotent: second pass inferred relations"
    if tg.n_relations != tg.n_explicit + tg.n_inferred:
        return (
            f"relation accounting broken: {tg.n_relations} != "
            f"{tg.n_explicit} + {tg.n_inferred}"
        )
    return None


GENERATORS = {
    "search": generators.gen_search_case,
    "graph": generators.gen_graph_case,
    "planner": generators.gen_planner_case,
    "crf": generators.gen_crf_case,
    "temporal": generators.gen_temporal_case,
    "invariants": generators.gen_invariants_case,
    "durability": generators.gen_durability_case,
    "serving": generators.gen_serving_case,
    "segments": generators.gen_segment_case,
    "replication": generators.gen_replication_case,
    "cohort": gen_cohort_case,
    "review": gen_review_case,
}

CHECKERS = {
    "search": check_search_case,
    "graph": check_graph_case,
    "planner": check_planner_case,
    "crf": check_crf_case,
    "temporal": check_temporal_case,
    "invariants": check_invariants_case,
    "durability": check_durability_case,
    "serving": check_serving_case,
    "segments": check_segment_case,
    "replication": check_replication_case,
    "cohort": check_cohort_case,
    "review": check_review_case,
}


def generate_case(subsystem: str, seed: int, case_index: int) -> dict:
    """Deterministically regenerate one case."""
    return GENERATORS[subsystem](case_rng(seed, subsystem, case_index))


def check_case(subsystem: str, case: dict) -> str | None:
    """Run one case; unexpected harness exceptions count as failures."""
    try:
        return CHECKERS[subsystem](case)
    except Exception:
        return "checker crashed:\n" + traceback.format_exc(limit=6)


def case_digest(case: dict) -> str:
    """Stable content hash of a case (used for run digests)."""
    payload = json.dumps(case, sort_keys=True, ensure_ascii=False)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run(
    subsystems=SUBSYSTEMS,
    seed: int = 0,
    cases: int = 200,
    fail_fast: bool = True,
    on_progress=None,
) -> RunReport:
    """Fuzz ``cases`` cases per subsystem; collect failures.

    With ``fail_fast`` a failing subsystem stops early (its remaining
    cases are skipped) but other subsystems still run.
    """
    report = RunReport(seed=seed, cases_per_subsystem=cases)
    hasher = hashlib.sha256()
    started = time.perf_counter()
    for subsystem in subsystems:
        if subsystem not in GENERATORS:
            raise ValueError(f"unknown subsystem {subsystem!r}")
        executed = 0
        for index in range(cases):
            case = generate_case(subsystem, seed, index)
            hasher.update(case_digest(case).encode("ascii"))
            message = check_case(subsystem, case)
            executed += 1
            if message is not None:
                report.failures.append(
                    Failure(subsystem, seed, index, message, case)
                )
                if fail_fast:
                    break
        report.counts[subsystem] = executed
        if on_progress is not None:
            on_progress(subsystem, executed)
    report.digest = hasher.hexdigest()
    report.elapsed = time.perf_counter() - started
    return report
