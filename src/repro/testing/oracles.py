"""Brute-force reference implementations ("oracles").

Each oracle recomputes what an optimized subsystem computes, using the
most naive algorithm that is obviously correct:

* :class:`ReferenceSearchEngine` — linear-scan BM25/boolean/phrase
  retrieval straight off the analyzed token streams (no inverted
  index, no postings, no cached statistics).
* :func:`brute_force_bindings` — exhaustive injective enumeration of
  pattern variable assignments, checking every pattern edge against
  the full edge list (no candidate pruning, no backtracking order).
* :func:`exhaustive_decode` — CRF Viterbi / partition function by
  enumerating every label path (pure-Python floats).
* :func:`reference_closure` — temporal transitive closure by repeated
  full relaxation over a dense pair map with immediate updates
  (Floyd–Warshall style), detecting contradictions.
* :func:`reference_fuse` — the Figure-6 fusion policy restated from
  its docstring contract.

Oracles share only *input parsing* helpers with the production code
(analyzers, relation algebras); every indexed/optimized code path they
check is reimplemented independently.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Sequence

from repro.search.analysis import (
    Analyzer,
    CREATE_IR_ANALYZER_CONFIG,
    STANDARD_ANALYZER_CONFIG,
    create_analyzer,
)
from repro.exceptions import SearchError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.match import GraphPattern
from repro.temporal.relations import RelationAlgebra

ANALYZER_CONFIGS = {
    "standard": STANDARD_ANALYZER_CONFIG,
    "whitespace": {"tokenizer": {"type": "whitespace"},
                   "filter": ["lowercase"], "char_filter": []},
    "ngram": CREATE_IR_ANALYZER_CONFIG,
}


# -- search ------------------------------------------------------------------


class ReferenceSearchEngine:
    """Linear-scan reference for :class:`repro.search.SearchEngine`.

    Mirrors the engine's query DSL and BM25 formula but holds only a
    dict of per-document analyzed token streams — document statistics
    (df, avgdl, N) are recomputed from scratch at query time, so any
    stale incremental state in the optimized engine shows up as a
    score difference.
    """

    K1 = 1.2
    B = 0.75

    def __init__(
        self,
        field_analyzers: dict[str, dict] | None = None,
        default_field: str = "body",
    ):
        self.default_field = default_field
        self._analyzer_configs = dict(field_analyzers or {})
        self._analyzers: dict[str, Analyzer] = {}
        # doc_id -> field -> list of (term, position)
        self._docs: dict[Any, dict[str, list[tuple[str, int]]]] = {}

    def _analyzer_for(self, field: str) -> Analyzer:
        analyzer = self._analyzers.get(field)
        if analyzer is None:
            config = self._analyzer_configs.get(
                field, STANDARD_ANALYZER_CONFIG
            )
            analyzer = create_analyzer(config)
            self._analyzers[field] = analyzer
        return analyzer

    def index(self, doc_id: Any, fields: dict[str, Any]) -> None:
        analyzed = {}
        for field, text in fields.items():
            if not isinstance(text, str):
                continue
            analyzed[field] = [
                (t.term, t.position)
                for t in self._analyzer_for(field).analyze(text)
            ]
        self._docs.pop(doc_id, None)
        self._docs[doc_id] = analyzed

    def delete(self, doc_id: Any) -> bool:
        return self._docs.pop(doc_id, None) is not None

    @property
    def n_documents(self) -> int:
        return len(self._docs)

    # -- scoring ------------------------------------------------------------

    def _field_docs(self, field: str) -> dict[Any, list[tuple[str, int]]]:
        return {
            doc_id: fields[field]
            for doc_id, fields in self._docs.items()
            if field in fields
        }

    def _bm25(
        self, field: str, terms: Sequence[str]
    ) -> dict[Any, float]:
        """Accumulated BM25 over ``terms`` by scanning every document."""
        docs = self._field_docs(field)
        n = len(docs)
        if not n or not terms:
            return {}
        lengths = {doc_id: len(tokens) for doc_id, tokens in docs.items()}
        total = sum(lengths.values())
        avg_len = (total / n) or 1.0
        scores: dict[Any, float] = {}
        for term in terms:
            df = sum(
                1
                for tokens in docs.values()
                if any(t == term for t, _ in tokens)
            )
            idf = math.log(1.0 + (n - df + 0.5) / (df + 0.5))
            for doc_id, tokens in docs.items():
                tf = sum(1 for t, _ in tokens if t == term)
                if tf == 0:
                    continue
                denom = tf + self.K1 * (
                    1.0 - self.B + self.B * lengths[doc_id] / avg_len
                )
                contribution = idf * tf * (self.K1 + 1.0) / denom
                scores[doc_id] = scores.get(doc_id, 0.0) + contribution
        return scores

    def _eval(self, query: dict) -> dict[Any, float]:
        if not isinstance(query, dict) or len(query) != 1:
            raise SearchError("query must have exactly one clause")
        kind, body = next(iter(query.items()))
        if kind == "match":
            field, text = self._unpack(body)
            terms = self._analyzer_for(field).terms(str(text))
            return self._bm25(field, terms)
        if kind == "match_phrase":
            return self._phrase(body)
        if kind == "term":
            field, value = self._unpack(body)
            return self._bm25(field, [str(value)])
        if kind == "multi_match":
            return self._multi_match(body)
        if kind == "bool":
            return self._bool(body)
        if kind == "match_all":
            return {doc_id: 1.0 for doc_id in self._docs}
        raise SearchError(f"unknown query clause: {kind!r}")

    def _phrase(self, body: dict) -> dict[Any, float]:
        field, text = self._unpack(body)
        tokens = self._analyzer_for(field).analyze(str(text))
        by_position: dict[int, str] = {}
        for token in tokens:
            current = by_position.get(token.position)
            if current is None or len(token.term) > len(current):
                by_position[token.position] = token.term
        if not by_position:
            return {}
        offsets = sorted(by_position)
        terms = [by_position[pos] for pos in offsets]
        relative = [pos - offsets[0] for pos in offsets]
        base = self._bm25(field, terms)
        out = {}
        for doc_id in base:
            doc_tokens = self._field_docs(field)[doc_id]
            occupied = set(doc_tokens)  # (term, position) pairs
            starts = {p for t, p in doc_tokens if t == terms[0]}
            if any(
                all(
                    (terms[i], start + relative[i]) in occupied
                    for i in range(len(terms))
                )
                for start in starts
            ):
                out[doc_id] = base[doc_id] * 2.0
        return out

    def _multi_match(self, body: dict) -> dict[Any, float]:
        if not isinstance(body, dict) or "query" not in body:
            raise SearchError("multi_match requires a query")
        text = str(body["query"])
        combined: dict[Any, float] = {}
        for spec in body.get("fields") or [self.default_field]:
            field, _, boost_text = str(spec).partition("^")
            try:
                boost = float(boost_text) if boost_text else 1.0
            except ValueError as exc:
                raise SearchError(f"bad field boost: {spec!r}") from exc
            for doc_id, score in self._eval(
                {"match": {field: text}}
            ).items():
                combined[doc_id] = combined.get(doc_id, 0.0) + boost * score
        return combined

    def _bool(self, body: dict) -> dict[Any, float]:
        if not isinstance(body, dict):
            raise SearchError("bool body must be a dict")
        must = [self._eval(q) for q in body.get("must", [])]
        should = [self._eval(q) for q in body.get("should", [])]
        must_not = [self._eval(q) for q in body.get("must_not", [])]
        if must:
            candidates = set(must[0])
            for scores in must[1:]:
                candidates &= set(scores)
        elif should:
            candidates = set()
            for scores in should:
                candidates |= set(scores)
        else:
            candidates = set(self._docs)
        for scores in must_not:
            candidates -= set(scores)
        out = {}
        for doc_id in candidates:
            score = sum(s.get(doc_id, 0.0) for s in must)
            score += sum(s.get(doc_id, 0.0) for s in should)
            if not must and not should:
                score = 1.0
            out[doc_id] = score
        return out

    @staticmethod
    def _unpack(body: dict) -> tuple[str, Any]:
        if not isinstance(body, dict) or len(body) != 1:
            raise SearchError("clause body must map one field to a value")
        return next(iter(body.items()))

    def search(
        self, query: str | dict, size: int = 10
    ) -> list[tuple[Any, float]]:
        """Ranked ``(doc_id, score)`` pairs, engine tie-break rules."""
        if isinstance(query, str):
            query = {"match": {self.default_field: query}}
        scores = self._eval(query)
        ranked = sorted(
            scores.items(), key=lambda item: (-item[1], str(item[0]))
        )
        return ranked[:size]


# -- graph -------------------------------------------------------------------


def brute_force_bindings(
    graph: PropertyGraph, pattern: GraphPattern
) -> list[dict[str, Any]]:
    """All injective variable bindings, by exhaustive enumeration.

    Returns bindings as ``{var: node_id}`` dicts (node *ids*, so results
    compare structurally).

    This is the bottom-level oracle for both the ``graph`` and
    ``planner`` fuzz subsystems: it never consults cardinality
    statistics or adjacency indexes, so a planner bug cannot leak into
    the expected answer.  (``match_pattern_unplanned`` is the faster
    mid-level reference, itself checked against this.)
    """
    pattern.validate()
    if not pattern.nodes:
        return []
    nodes = sorted(graph.nodes(), key=lambda n: n.node_id)
    variables = [p.var for p in pattern.nodes]
    all_edges = list(graph.edges())
    out = []
    for combo in itertools.permutations(nodes, len(variables)):
        binding = dict(zip(variables, combo))
        if not all(
            node_pattern.admits(binding[node_pattern.var])
            for node_pattern in pattern.nodes
        ):
            continue
        ok = True
        for ep in pattern.edges:
            src = binding[ep.source].node_id
            dst = binding[ep.target].node_id
            found = False
            for edge in all_edges:
                if ep.label is not None and edge.label != ep.label:
                    continue
                if edge.source == src and edge.target == dst:
                    found = True
                    break
                if not ep.directed and (
                    edge.source == dst and edge.target == src
                ):
                    found = True
                    break
            if not found:
                ok = False
                break
        if ok:
            out.append({var: node.node_id for var, node in binding.items()})
    return out


# -- crf ---------------------------------------------------------------------


def exhaustive_decode(
    emissions: Sequence[Sequence[float]],
    transitions: Sequence[Sequence[float]],
    start: Sequence[float],
    end: Sequence[float],
) -> tuple[float, tuple[int, ...], float]:
    """(best score, one best path, log partition) over *all* paths."""
    n_steps = len(emissions)
    n_labels = len(start)
    if n_steps == 0:
        return 0.0, (), 0.0
    best_score = -math.inf
    best_path: tuple[int, ...] = ()
    log_terms = []
    for path in itertools.product(range(n_labels), repeat=n_steps):
        score = start[path[0]] + emissions[0][path[0]]
        for t in range(1, n_steps):
            score += (
                transitions[path[t - 1]][path[t]] + emissions[t][path[t]]
            )
        score += end[path[-1]]
        log_terms.append(score)
        if score > best_score:
            best_score = score
            best_path = path
    peak = max(log_terms)
    log_z = peak + math.log(
        sum(math.exp(term - peak) for term in log_terms)
    )
    return best_score, best_path, log_z


# -- temporal ----------------------------------------------------------------


def reference_closure(
    edges: Sequence[Sequence[str]], algebra: RelationAlgebra
) -> tuple[str, Any]:
    """Closure by repeated full relaxation with immediate updates.

    Returns ``("ok", {(a, b): label})`` over canonical (``a < b``)
    pairs, or ``("inconsistent", reason)``.
    """
    relations: dict[tuple[str, str], str] = {}

    def put(a: str, b: str, label: str) -> str | None:
        for key, value in (
            ((a, b), label),
            ((b, a), algebra.inverse(label)),
        ):
            old = relations.get(key)
            if old is not None and old != value:
                return f"{key}: {old} vs {value}"
            relations[key] = value
        return None

    for a, b, label in edges:
        conflict = put(a, b, label)
        if conflict is not None:
            return ("inconsistent", conflict)

    events = sorted({event for pair in relations for event in pair})
    changed = True
    while changed:
        changed = False
        for a in events:
            for b in events:
                if a == b:
                    continue
                r1 = relations.get((a, b))
                if r1 is None:
                    continue
                for c in events:
                    if c == a or c == b:
                        continue
                    r2 = relations.get((b, c))
                    if r2 is None:
                        continue
                    entailed = algebra.compose(r1, r2)
                    if entailed is None:
                        continue
                    old = relations.get((a, c))
                    if old is None:
                        conflict = put(a, c, entailed)
                        if conflict is not None:
                            return ("inconsistent", conflict)
                        changed = True
                    elif old != entailed:
                        return (
                            "inconsistent",
                            f"({a},{c}): {old} vs {entailed}",
                        )
    return (
        "ok",
        {key: label for key, label in relations.items() if key[0] < key[1]},
    )


# -- fusion ------------------------------------------------------------------


def reference_fuse(
    graph_ranked: Sequence[Sequence[Any]],
    keyword_ranked: Sequence[Sequence[Any]],
    size: int,
) -> list[tuple[str, float, str]]:
    """The documented Figure-6 contract, restated independently."""
    out: list[tuple[str, float, str]] = []
    seen = set()
    for engine, ranked in (
        ("graph", graph_ranked),
        ("keyword", keyword_ranked),
    ):
        for doc_id, score in sorted(
            ranked, key=lambda item: (-item[1], str(item[0]))
        ):
            if len(out) >= size:
                return out
            if doc_id in seen:
                continue
            seen.add(doc_id)
            out.append((doc_id, score, engine))
    return out[:size]
