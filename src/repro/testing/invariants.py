"""Metamorphic invariants: properties that must hold without an oracle.

Where the differential oracles ask "does the optimized code agree with
brute force?", these ask "does the optimized code agree with *itself*
under input transformations that provably preserve the answer":

* document insertion-order permutation leaves every ranking unchanged;
* indexing then deleting a document restores the index statistics
  byte-for-byte;
* analyzing a batch serially vs. in parallel (via
  :class:`repro.runtime.BatchExecutor`) builds byte-identical indexes;
* duplicating a query term never lowers any document's score (BM25
  idf is strictly positive in the Lucene variant);
* result fusion is insensitive to the order its input rankings arrive
  in, and respects the block structure/size contract;
* permuting the edge-insertion order of a property graph changes
  neither the pattern-match binding set nor the planner's chosen plan
  (cardinality statistics are exact counts, so estimates — and the
  greedy join order derived from them — cannot depend on arrival
  order).

Each check returns ``None`` on success or a human-readable failure
message.
"""

from __future__ import annotations

import random
from typing import Any

from repro.graphdb.graph import PropertyGraph
from repro.graphdb.match import EdgePattern, GraphPattern, NodePattern
from repro.graphdb.planner import explain_pattern
from repro.ir.ranking import fuse_results
from repro.runtime.executor import BatchExecutor
from repro.search.analysis import STANDARD_ANALYZER_CONFIG, create_analyzer
from repro.search.engine import SearchEngine
from repro.search.inverted_index import InvertedIndex
from repro.testing.oracles import ANALYZER_CONFIGS, reference_fuse

_TOLERANCE = 1e-9


def _field_analyzers(case: dict) -> dict:
    return {
        "body": ANALYZER_CONFIGS[case["analyzer"]],
        "title": STANDARD_ANALYZER_CONFIG,
    }


def _live_docs(case: dict) -> list[tuple[str, dict]]:
    """The documents left alive after replaying the case's op stream."""
    alive: dict[str, dict] = {}
    for op in case["ops"]:
        if op["op"] == "index":
            alive.pop(op["id"], None)
            alive[op["id"]] = op["fields"]
        else:
            alive.pop(op["id"], None)
    return list(alive.items())


def _build_engine(case: dict, docs: list[tuple[str, dict]]) -> SearchEngine:
    engine = SearchEngine(_field_analyzers(case))
    for doc_id, fields in docs:
        engine.index(doc_id, fields)
    return engine


def _rankings(engine: SearchEngine, queries) -> list[list[tuple[Any, float]]]:
    out = []
    for query in queries:
        try:
            hits = engine.search(query, size=50)
        except Exception as exc:  # compared structurally below
            out.append([("__error__", type(exc).__name__)])
            continue
        out.append([(hit.doc_id, hit.score) for hit in hits])
    return out


def engine_index_snapshot(engine: SearchEngine) -> str:
    """A canonical byte-for-byte rendering of all index statistics.

    Deliberately excludes ``_next_ordinal`` (a monotone allocator) and
    empty per-field indexes (an index every document has left is
    semantically identical to one never created) — everything that
    influences scoring or retrieval is included.
    """
    parts = []
    for field in sorted(engine._indexes):
        index: InvertedIndex = engine._indexes[field]
        if index.n_documents == 0 and index.vocabulary_size == 0:
            continue
        postings = {
            term: [(p.doc_ord, tuple(p.positions)) for p in plist]
            for term, plist in sorted(index._postings.items())
        }
        parts.append(
            repr(
                (
                    field,
                    postings,
                    sorted(index._doc_lengths.items()),
                    index._total_length,
                    sorted(index._doc_terms.items()),
                )
            )
        )
    return "\n".join(parts)


# -- invariant checks --------------------------------------------------------


def check_permutation_invariance(case: dict, shuffle_seed: int) -> str | None:
    """Doc insertion order must not affect any query's ranking."""
    docs = _live_docs(case)
    if len(docs) < 2:
        return None
    shuffled = list(docs)
    random.Random(shuffle_seed).shuffle(shuffled)
    base = _rankings(_build_engine(case, docs), case["queries"])
    permuted = _rankings(_build_engine(case, shuffled), case["queries"])
    for query, a, b in zip(case["queries"], base, permuted):
        if a != b:
            return (
                "insertion-order permutation changed ranking for "
                f"{query!r}: {a} vs {b}"
            )
    return None


def check_add_remove_restores(case: dict) -> str | None:
    """index() then delete() of a new doc must restore statistics."""
    engine = _build_engine(case, _live_docs(case))
    before = engine_index_snapshot(engine)
    engine.index(
        "__probe__", {"body": "probe fever cough", "title": "probe"}
    )
    engine.delete("__probe__")
    after = engine_index_snapshot(engine)
    if before != after:
        return (
            "add-then-remove did not restore index statistics:\n"
            f"before:\n{before}\nafter:\n{after}"
        )
    return None


def check_serial_parallel_ingest(case: dict) -> str | None:
    """Serial and parallel analysis must build byte-identical indexes."""
    docs = _live_docs(case)
    if not docs:
        return None
    analyzers = {
        field: create_analyzer(config)
        for field, config in _field_analyzers(case).items()
    }

    def analyze(item):
        _doc_id, fields = item
        return {
            field: analyzers[field].analyze(text)
            for field, text in fields.items()
            if isinstance(text, str) and field in analyzers
        }

    snapshots = []
    for workers in (1, 4):
        outcomes = BatchExecutor(workers=workers, mode="thread").map(
            analyze, docs
        )
        if not all(outcome.ok for outcome in outcomes):
            errors = [o.error for o in outcomes if not o.ok]
            return f"parallel analysis failed: {errors!r}"
        indexes: dict[str, InvertedIndex] = {}
        for ordinal, outcome in enumerate(outcomes):
            for field, tokens in outcome.value.items():
                indexes.setdefault(field, InvertedIndex()).add_document(
                    ordinal, tokens
                )
        fake = SearchEngine()
        fake._indexes = indexes
        snapshots.append(engine_index_snapshot(fake))
    if snapshots[0] != snapshots[1]:
        return (
            "serial vs parallel ingest built different indexes:\n"
            f"{snapshots[0]}\nvs\n{snapshots[1]}"
        )
    return None


def check_duplication_monotonicity(case: dict) -> str | None:
    """Duplicating a query term must never lower a document's score."""
    engine = _build_engine(case, _live_docs(case))
    for query in case["queries"]:
        if "match" not in query:
            continue
        ((field, text),) = query["match"].items()
        words = str(text).split()
        if not words:
            continue
        base = {
            hit.doc_id: hit.score
            for hit in engine.search({"match": {field: text}}, size=1000)
        }
        doubled_text = f"{text} {words[0]}"
        doubled = {
            hit.doc_id: hit.score
            for hit in engine.search(
                {"match": {field: doubled_text}}, size=1000
            )
        }
        missing = set(base) - set(doubled)
        if missing:
            return (
                f"duplicating {words[0]!r} dropped docs {sorted(missing)} "
                f"from {query!r}"
            )
        for doc_id, score in base.items():
            if doubled[doc_id] < score - _TOLERANCE:
                return (
                    f"duplicating {words[0]!r} lowered score of "
                    f"{doc_id!r}: {score} -> {doubled[doc_id]}"
                )
    return None


def check_phrase_self_match(case: dict) -> str | None:
    """A document must phrase-match its own field text.

    The analyzed query positions (including stopword gaps) are exactly
    the document's own indexed positions, so the phrase necessarily
    occurs at start 0 — regardless of analyzer.
    """
    docs = _live_docs(case)
    engine = _build_engine(case, docs)
    for doc_id, fields in docs:
        for field in ("body", "title"):
            text = fields.get(field)
            if not isinstance(text, str):
                continue
            if not engine.explain_terms(field, text):
                continue  # nothing survives analysis (e.g. all stopwords)
            hits = engine.search(
                {"match_phrase": {field: text}}, size=1000
            )
            if doc_id not in {hit.doc_id for hit in hits}:
                return (
                    f"doc {doc_id!r} does not phrase-match its own "
                    f"{field} text {text!r}"
                )
    return None


def check_fusion_determinism(
    fusion_case: dict, shuffle_seed: int
) -> str | None:
    """fuse_results must ignore input order and honor its contract."""
    graph_ranked = [tuple(item) for item in fusion_case["graph_ranked"]]
    keyword_ranked = [tuple(item) for item in fusion_case["keyword_ranked"]]
    size = fusion_case["size"]
    base = fuse_results(graph_ranked, keyword_ranked, size)

    expected = reference_fuse(graph_ranked, keyword_ranked, size)
    if base != expected:
        return f"fusion disagrees with reference: {base} vs {expected}"

    rng = random.Random(shuffle_seed)
    for _ in range(3):
        shuffled_graph = list(graph_ranked)
        shuffled_keyword = list(keyword_ranked)
        rng.shuffle(shuffled_graph)
        rng.shuffle(shuffled_keyword)
        again = fuse_results(shuffled_graph, shuffled_keyword, size)
        if again != base:
            return (
                "fusion output depends on input order: "
                f"{base} vs {again}"
            )

    if len(base) > size:
        return f"fusion exceeded size {size}: {base}"
    doc_ids = [doc_id for doc_id, _score, _engine in base]
    if len(doc_ids) != len(set(doc_ids)):
        return f"fusion emitted duplicate doc ids: {base}"
    engines = [engine for _doc_id, _score, engine in base]
    if "keyword" in engines and "graph" in engines[engines.index("keyword"):]:
        return f"keyword hit ranked above a graph hit: {base}"
    return None


def _build_planner_graph(case: dict, edges: list) -> tuple:
    """Build (graph, pattern) from a planner/graph fuzz case, using
    ``edges`` as the insertion order (may be a permutation of
    ``case["edges"]``)."""
    graph = PropertyGraph()
    for node_id, props in case["nodes"]:
        graph.add_node(node_id, **props)
    if case.get("index_property"):
        graph.create_property_index("entityType")
    for src, dst, label in edges:
        graph.add_edge(src, dst, label)
    pattern = GraphPattern(
        nodes=[
            NodePattern(var, properties=tuple(sorted(props.items())))
            for var, props in case["pattern_nodes"]
        ],
        edges=[
            EdgePattern(src, dst, label=label, directed=bool(directed))
            for src, dst, label, directed in case["pattern_edges"]
        ],
    )
    return graph, pattern


def _binding_set(bindings) -> set:
    return {
        frozenset((var, node.node_id) for var, node in binding.items())
        for binding in bindings
    }


def check_edge_permutation_invariance(
    case: dict, permutation_seed: int
) -> str | None:
    """Edge insertion order must not change bindings or the plan.

    The planner's estimates come from exact counters (label histogram,
    property-index bucket sizes), all invariant under permutation, and
    the executor sorts candidate node ids — so both the chosen plan
    (every EXPLAIN row, estimates included) and the binding set must be
    bit-identical however the same edge multiset arrives.
    """
    try:
        graph, pattern = _build_planner_graph(case, case["edges"])
        pattern.validate()
    except Exception:
        return None  # malformed (post-shrink) case: vacuous
    base_bindings, base_rows = explain_pattern(graph, pattern)
    base_set = _binding_set(base_bindings)
    rng = random.Random(permutation_seed)
    for _ in range(3):
        shuffled = list(case["edges"])
        rng.shuffle(shuffled)
        graph2, pattern2 = _build_planner_graph(case, shuffled)
        bindings, rows = explain_pattern(graph2, pattern2)
        if rows != base_rows:
            return (
                "edge-insertion permutation changed the plan:\n"
                f"{base_rows}\nvs\n{rows}"
            )
        if _binding_set(bindings) != base_set:
            return (
                "edge-insertion permutation changed the binding set: "
                f"{sorted(map(sorted, base_set))} vs "
                f"{sorted(map(sorted, _binding_set(bindings)))}"
            )
    return None


def check_invariants_case(case: dict) -> str | None:
    """Run the whole invariant suite for one generated case."""
    search_case = case.get("search") or {}
    if search_case.get("analyzer") not in ANALYZER_CONFIGS:
        return None  # malformed (post-shrink) case: vacuous
    shuffle_seed = case.get("shuffle_seed", 0)
    for check, args in (
        (check_permutation_invariance, (search_case, shuffle_seed)),
        (check_add_remove_restores, (search_case,)),
        (check_serial_parallel_ingest, (search_case,)),
        (check_duplication_monotonicity, (search_case,)),
        (check_phrase_self_match, (search_case,)),
        (check_fusion_determinism, (case["fusion"], shuffle_seed)),
    ):
        message = check(*args)
        if message is not None:
            return f"{check.__name__}: {message}"
    return None
