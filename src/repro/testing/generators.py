"""Seed-driven generators of synthetic fuzz cases.

Each generator consumes a :class:`random.Random` and returns a plain
JSON-serializable dict (lists, dicts, strings, numbers only) so a case
can be written to a seed file, replayed, and shrunk structurally
without any pickling.

The vocabulary deliberately mixes clinical-ish words, stopwords (so
phrase queries cross position gaps), 1-2 letter codes (kept whole by
the n-gram tokenizer), an accented word (asciifolding), and words
sharing stems (stemmer collisions).
"""

from __future__ import annotations

from random import Random

VOCABULARY = [
    "fever",
    "fevers",
    "cough",
    "chest",
    "pain",
    "dyspnea",
    "amiodarone",
    "patient",
    "admitted",
    "acute",
    "renal",
    "failure",
    "mild",
    "café",
    "bp",
    "iv",
    "the",
    "and",
    "of",
    "was",
]

ANALYZERS = ["standard", "whitespace", "ngram"]

TEMPORAL_ALGEBRAS = ["three", "dense"]


def gen_text(rng: Random, max_words: int = 10, min_words: int = 0) -> str:
    n = rng.randint(min_words, max(min_words, max_words))
    return " ".join(rng.choice(VOCABULARY) for _ in range(n))


# -- search ------------------------------------------------------------------


def gen_query(rng: Random, depth: int = 0) -> dict:
    """One ES-style query dict (bool clauses nest at most twice)."""
    kinds = ["match", "match", "match_phrase", "term", "multi_match",
             "match_all"]
    if depth < 2:
        kinds += ["bool", "bool"]
    kind = rng.choice(kinds)
    field = rng.choice(["body", "title"])
    if kind == "match":
        return {"match": {field: gen_text(rng, 4, 1)}}
    if kind == "match_phrase":
        return {"match_phrase": {field: gen_text(rng, 4, 1)}}
    if kind == "term":
        return {"term": {field: rng.choice(VOCABULARY)}}
    if kind == "multi_match":
        fields = rng.choice([["body"], ["body^2", "title"], ["title^0.5"]])
        return {
            "multi_match": {"query": gen_text(rng, 3, 1), "fields": fields}
        }
    if kind == "match_all":
        return {"match_all": {}}
    body: dict = {}
    for clause in ("must", "should", "must_not"):
        n = rng.randint(0, 2)
        if n:
            body[clause] = [gen_query(rng, depth + 1) for _ in range(n)]
    if not body:
        body["should"] = [gen_query(rng, depth + 1)]
    return {"bool": body}


def gen_search_case(rng: Random) -> dict:
    """Documents + index/delete operations + a query batch."""
    ops = []
    for _ in range(rng.randint(1, 8)):
        if ops and rng.random() < 0.25:
            ops.append({"op": "delete", "id": f"d{rng.randint(0, 5)}"})
        else:
            ops.append(
                {
                    "op": "index",
                    "id": f"d{rng.randint(0, 5)}",
                    "fields": {
                        "body": gen_text(rng, 10),
                        "title": gen_text(rng, 4),
                    },
                }
            )
    return {
        "analyzer": rng.choice(ANALYZERS),
        "ops": ops,
        "queries": [gen_query(rng) for _ in range(rng.randint(1, 5))],
    }


# -- graph -------------------------------------------------------------------

_EDGE_LABELS = ["BEFORE", "OVERLAP", "CAUSES", "MODIFIES"]
_NODE_TYPES = ["Sign_symptom", "Medication", "Lab_value"]


def gen_graph_case(rng: Random) -> dict:
    """A small multigraph (self-loops, parallel edges) plus a pattern."""
    n_nodes = rng.randint(1, 6)
    nodes = [
        [f"n{i}", {"entityType": rng.choice(_NODE_TYPES)}]
        for i in range(n_nodes)
    ]
    edges = []
    for _ in range(rng.randint(0, 10)):
        src = f"n{rng.randint(0, n_nodes - 1)}"
        dst = (
            src  # deliberate self-loops ~20% of the time
            if rng.random() < 0.2
            else f"n{rng.randint(0, n_nodes - 1)}"
        )
        edges.append([src, dst, rng.choice(_EDGE_LABELS)])
    n_vars = rng.randint(1, min(3, n_nodes))
    variables = [f"v{i}" for i in range(n_vars)]
    pattern_nodes = []
    for var in variables:
        props = {}
        if rng.random() < 0.5:
            props["entityType"] = rng.choice(_NODE_TYPES)
        pattern_nodes.append([var, props])
    pattern_edges = []
    for _ in range(rng.randint(0, 4)):
        pattern_edges.append(
            [
                rng.choice(variables),
                rng.choice(variables),
                rng.choice(_EDGE_LABELS + [None]),
                rng.random() < 0.7,  # directed?
            ]
        )
    return {
        "nodes": nodes,
        "edges": edges,
        "pattern_nodes": pattern_nodes,
        "pattern_edges": pattern_edges,
        "limit": rng.choice([None, None, rng.randint(1, 4)]),
        "index_property": rng.random() < 0.5,
    }


def gen_planner_case(rng: Random) -> dict:
    """A graph case sized for the join-order planner, plus a
    permutation seed for the edge-insertion metamorphic check.

    Compared to :func:`gen_graph_case` the graphs are a little larger
    (so scan-order choices actually differ) and skewed: one node type
    dominates, making property selectivity meaningful.  Patterns bias
    toward multiple edges so expansion order matters.
    """
    n_nodes = rng.randint(2, 8)
    nodes = []
    for i in range(n_nodes):
        # Skewed type distribution: ~60% the first type.
        node_type = (
            _NODE_TYPES[0]
            if rng.random() < 0.6
            else rng.choice(_NODE_TYPES)
        )
        nodes.append([f"n{i}", {"entityType": node_type}])
    edges = []
    for _ in range(rng.randint(0, 14)):
        src = f"n{rng.randint(0, n_nodes - 1)}"
        dst = (
            src  # self-loops exercise the planner's filter-only path
            if rng.random() < 0.15
            else f"n{rng.randint(0, n_nodes - 1)}"
        )
        edges.append([src, dst, rng.choice(_EDGE_LABELS)])
    n_vars = rng.randint(1, min(4, n_nodes))
    variables = [f"v{i}" for i in range(n_vars)]
    pattern_nodes = []
    for var in variables:
        props = {}
        if rng.random() < 0.5:
            props["entityType"] = rng.choice(_NODE_TYPES)
        pattern_nodes.append([var, props])
    pattern_edges = []
    for _ in range(rng.randint(0, 5)):
        pattern_edges.append(
            [
                rng.choice(variables),
                rng.choice(variables),
                rng.choice(_EDGE_LABELS + [None]),
                rng.random() < 0.7,  # directed?
            ]
        )
    return {
        "nodes": nodes,
        "edges": edges,
        "pattern_nodes": pattern_nodes,
        "pattern_edges": pattern_edges,
        "limit": rng.choice([None, None, rng.randint(1, 4)]),
        "index_property": rng.random() < 0.6,
        "permutation_seed": rng.randint(0, 2**31),
    }


# -- crf ---------------------------------------------------------------------


def gen_crf_case(rng: Random) -> dict:
    """Random linear-chain potentials, small enough for exhaustive decode."""
    n_steps = rng.randint(1, 5)
    n_labels = rng.randint(1, 4)

    def vec():
        return [round(rng.uniform(-3.0, 3.0), 6) for _ in range(n_labels)]

    return {
        "emissions": [vec() for _ in range(n_steps)],
        "transitions": [vec() for _ in range(n_labels)],
        "start": vec(),
        "end": vec(),
    }


# -- temporal ----------------------------------------------------------------


def _three_way_label(a: tuple[int, int], b: tuple[int, int]) -> str:
    # The three-way algebra models point events (paper Figure 5), so
    # only the start instants matter.
    if a[0] < b[0]:
        return "BEFORE"
    if a[0] > b[0]:
        return "AFTER"
    return "OVERLAP"


def _dense_label(a: tuple[int, int], b: tuple[int, int]) -> str:
    if a == b:
        return "SIMULTANEOUS"
    if a[1] < b[0]:
        return "BEFORE"
    if b[1] < a[0]:
        return "AFTER"
    if a[0] <= b[0] and b[1] <= a[1]:
        return "INCLUDES"
    if b[0] <= a[0] and a[1] <= b[1]:
        return "IS_INCLUDED"
    return "VAGUE"


def gen_temporal_case(rng: Random) -> dict:
    """Edges sampled from a random interval model (hence consistent),
    optionally perturbed with one random relabel (possibly not)."""
    algebra = rng.choice(TEMPORAL_ALGEBRAS)
    n_events = rng.randint(2, 6)
    intervals = {}
    for i in range(n_events):
        start = rng.randint(0, 8)
        intervals[f"e{i}"] = (start, start + rng.randint(1, 4))
    label_of = _three_way_label if algebra == "three" else _dense_label
    events = sorted(intervals)
    pairs = [
        (a, b) for i, a in enumerate(events) for b in events[i + 1:]
    ]
    rng.shuffle(pairs)
    keep = rng.randint(1, len(pairs))
    edges = [
        [a, b, label_of(intervals[a], intervals[b])]
        for a, b in pairs[:keep]
    ]
    if edges and rng.random() < 0.3:
        victim = rng.randrange(len(edges))
        labels = (
            ["BEFORE", "AFTER", "OVERLAP"]
            if algebra == "three"
            else [
                "BEFORE",
                "AFTER",
                "INCLUDES",
                "IS_INCLUDED",
                "SIMULTANEOUS",
                "VAGUE",
            ]
        )
        edges[victim][2] = rng.choice(labels)
    return {"algebra": algebra, "edges": edges}


# -- fusion / invariants -----------------------------------------------------


def gen_fusion_case(rng: Random) -> dict:
    """Ranked lists with deliberate score ties and doc overlap."""

    def ranked(n):
        return [
            [f"d{rng.randint(0, 6)}", float(rng.randint(0, 3))]
            for _ in range(n)
        ]

    return {
        "graph_ranked": ranked(rng.randint(0, 6)),
        "keyword_ranked": ranked(rng.randint(0, 6)),
        "size": rng.randint(1, 8),
    }


def gen_invariants_case(rng: Random) -> dict:
    """Inputs for the metamorphic invariant suite."""
    return {
        "search": gen_search_case(rng),
        "fusion": gen_fusion_case(rng),
        "shuffle_seed": rng.randint(0, 2**31),
    }


# -- serving (sharded fan-out + query cache) ---------------------------------


def gen_serving_case(rng: Random) -> dict:
    """A sharded-serving workload: seed ops, a query batch (run twice
    to exercise the cache), a mutation batch, and a final query batch
    whose results must match a cold unsharded engine.

    Doc ids span a wider range than the search cases so every shard
    count actually spreads documents across partitions.
    """

    def gen_ops(n_min: int, n_max: int) -> list:
        ops = []
        for _ in range(rng.randint(n_min, n_max)):
            if ops and rng.random() < 0.3:
                ops.append({"op": "delete", "id": f"d{rng.randint(0, 11)}"})
            else:
                ops.append(
                    {
                        "op": "index",
                        "id": f"d{rng.randint(0, 11)}",
                        "fields": {
                            "body": gen_text(rng, 10),
                            "title": gen_text(rng, 4),
                        },
                    }
                )
        return ops

    return {
        "n_shards": rng.choice([1, 2, 2, 3, 4, 4]),
        "cache_size": rng.choice([1, 2, 8, 32]),
        "analyzer": rng.choice(ANALYZERS),
        "ops": gen_ops(1, 8),
        "queries": [gen_query(rng) for _ in range(rng.randint(1, 4))],
        "mutations": gen_ops(1, 4),
        "post_queries": [gen_query(rng) for _ in range(rng.randint(1, 3))],
    }


# -- replication (per-shard replicas + crash-promotion schedules) ------------

_REPLICATION_FAULTS = ["kill", "crash", "torn", "io_append", "io_fsync"]


def gen_replication_case(rng: Random) -> dict:
    """A replicated-serving workload with one planned shard failure.

    Writes and steady reads interleave; ``crash: None`` (~1 in 5)
    makes the case a pure replication-equivalence check.  ``kill``
    declares the primary dead between actions (the clean fail-stop);
    the other kinds arm a :class:`FaultInjector` on one shard's WAL
    filesystem, so the failure fires *inside* a commit — mid-append,
    mid-fsync, or as a torn page-cache writeback — at a seed-chosen
    filesystem-op index.
    """
    actions = []
    for _ in range(rng.randint(2, 10)):
        if actions and rng.random() < 0.25:
            actions.append({"op": "delete", "id": f"d{rng.randint(0, 11)}"})
        else:
            actions.append(
                {
                    "op": "index",
                    "id": f"d{rng.randint(0, 11)}",
                    "fields": {
                        "body": gen_text(rng, 10),
                        "title": gen_text(rng, 4),
                    },
                }
            )
    crash = None
    if rng.random() < 0.8:
        crash = {
            "kind": rng.choice(_REPLICATION_FAULTS),
            "at_action": rng.randint(0, len(actions) - 1),
            "at_op": rng.randint(0, 40),
            "seed": rng.randint(0, 2**31),
            "shard": rng.randint(0, 3),
        }
    return {
        "n_shards": rng.choice([1, 2, 2, 3]),
        "n_replicas": rng.choice([1, 1, 2]),
        "cache_size": rng.choice([1, 4, 16]),
        "analyzer": rng.choice(ANALYZERS),
        "ship_every": rng.choice([1, 1, 2, 3]),
        "snapshot_every": rng.choice([None, None, 2, 4]),
        "actions": actions,
        "queries": [gen_query(rng) for _ in range(rng.randint(1, 3))],
        "crash": crash,
    }


# -- segments (on-disk postings + flush/merge/delete schedules) --------------


def gen_segment_case(rng: Random) -> dict:
    """A segment-engine workload: index/delete ops interleaved with an
    explicit flush/merge schedule, so delete bitmaps, sealed segments,
    and compaction all get exercised against the in-memory oracle.

    Tiny ``flush_threshold`` values force many small segments (plus
    auto-flush mid-stream); small ``merge_factor`` values trigger
    automatic compaction on top of the explicit ``merge`` ops.
    """

    def gen_ops(n_min: int, n_max: int) -> list:
        ops: list[dict] = []
        for _ in range(rng.randint(n_min, n_max)):
            roll = rng.random()
            if ops and roll < 0.2:
                ops.append({"op": "delete", "id": f"d{rng.randint(0, 11)}"})
            elif roll < 0.35:
                ops.append({"op": "flush"})
            elif roll < 0.45:
                ops.append({"op": "merge"})
            else:
                ops.append(
                    {
                        "op": "index",
                        "id": f"d{rng.randint(0, 11)}",
                        "fields": {
                            "body": gen_text(rng, 10),
                            "title": gen_text(rng, 4),
                        },
                    }
                )
        return ops

    return {
        "analyzer": rng.choice(ANALYZERS),
        "flush_threshold": rng.choice([1, 2, 3, 3, 50]),
        "merge_factor": rng.choice([2, 2, 3, 8]),
        "ops": gen_ops(2, 10),
        "queries": [gen_query(rng) for _ in range(rng.randint(1, 4))],
        "mutations": gen_ops(1, 5),
        "post_queries": [gen_query(rng) for _ in range(rng.randint(1, 3))],
        "reopen": rng.random() < 0.5,
    }


# -- durability / crash recovery ---------------------------------------------

_DURABILITY_FAULTS = ["crash", "torn", "io_append", "io_fsync", "io_replace"]

_CATEGORIES = ["cardiovascular", "neurological", "infectious"]


def gen_durability_case(rng: Random) -> dict:
    """An ingest/delete workload plus one planned fault.

    Ids are unique per case (``d0``, ``d1``, ...); deletes only target
    previously ingested documents.  ``fault: None`` (~1 in 5) makes the
    case a fault-free snapshot+WAL equivalence check; ``at_op`` indexes
    into the stream of filesystem operations, so the same workload gets
    crashed at many different WAL/snapshot boundaries across cases.
    """
    actions = []
    live: list[str] = []
    for i in range(rng.randint(1, 8)):
        if live and rng.random() < 0.25:
            victim = rng.choice(live)
            live.remove(victim)
            actions.append({"act": "delete", "id": victim})
            continue
        doc_id = f"d{i}"
        spans = [
            [rng.choice(_NODE_TYPES), gen_text(rng, 2, 1)]
            for _ in range(rng.randint(0, 3))
        ]
        relations = []
        if len(spans) >= 2:
            for _ in range(rng.randint(0, 2)):
                src = rng.randrange(len(spans))
                dst = rng.randrange(len(spans))
                if src != dst:
                    relations.append([src, dst, rng.choice(_EDGE_LABELS)])
        actions.append(
            {
                "act": "ingest",
                "id": doc_id,
                "title": gen_text(rng, 3, 1),
                "body": gen_text(rng, 8, 1),
                "category": rng.choice(_CATEGORIES),
                "spans": spans,
                "relations": relations,
            }
        )
        live.append(doc_id)
    fault = None
    if rng.random() < 0.8:
        fault = {
            "kind": rng.choice(_DURABILITY_FAULTS),
            "at_op": rng.randint(0, 30),
            "seed": rng.randint(0, 2**31),
        }
    return {
        "group_commit": rng.choice([1, 1, 2, 3, 4]),
        "snapshot_every": rng.choice([None, None, 2, 3, 5]),
        "actions": actions,
        "fault": fault,
    }
