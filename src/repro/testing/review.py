"""Review-queue crash fuzzing: seeded decision schedules vs. an oracle.

One generated case is a short enroll/decide/drop workload over a
:class:`~repro.review.queue.ReviewQueue` run under a
:class:`~repro.durability.DurabilityManager`, usually with one
deterministic fault injected into the filesystem operation stream.
The checker recovers from the surviving bytes and verifies the review
durability contract against a never-crashed oracle:

* **No lost acked decision** — the recovered state covers at least
  every action whose commit LSN was acknowledged before the fault.
* **No double-commit** — recovery replays each WAL record exactly
  once: a re-applied ``enqueue`` raises inside
  :meth:`ReviewQueue.durable_apply` (surfacing as a recovery failure),
  and a re-applied ``decide`` would break the whole-prefix state
  equality below, since decision lists are part of the canonical state.
* **Prefix consistency** — the recovered state equals the oracle's
  state after some *whole* prefix of the schedule; never a partial
  enroll, never a decision without its claim.
* **Partition exactness** — after finishing the schedule on the
  recovered queue, the queued/decided claim partition is bit-identical
  to the never-crashed oracle's.

Fault-free cases double as a snapshot+WAL equivalence check.
"""

from __future__ import annotations

import json
from random import Random

from repro.annotation.model import AnnotationDocument
from repro.durability import (
    DurabilityManager,
    FaultInjector,
    InjectedCrash,
    MemFS,
)
from repro.exceptions import DurabilityError
from repro.review.model import VERDICTS, claim_id_for
from repro.review.queue import ReviewQueue
from repro.testing.generators import gen_text

FAULT_KINDS = FaultInjector.CRASH_KINDS + FaultInjector.ERROR_KINDS

_LABELS = ("Symptom", "Disease", "Medication", "Procedure", "Test")
_RELATION_LABELS = ("BEFORE", "OVERLAP", "TREATS")
_REVIEWERS = ("alice", "bob", "carol")


# -- generation --------------------------------------------------------------


def _gen_document(rng: Random, doc_id: str) -> dict:
    """One report: text plus non-overlapping extracted spans."""
    words = gen_text(rng, 14, 6).split()
    text = " ".join(words)
    spans = []
    cursor = 0
    for word in words:
        start = text.index(word, cursor)
        cursor = start + len(word)
        if len(spans) < 5 and rng.random() < 0.4:
            spans.append(
                [
                    rng.choice(_LABELS),
                    start,
                    cursor,
                    rng.random() < 0.15,  # negated
                ]
            )
    relations = []
    if len(spans) >= 2:
        for _ in range(rng.randint(0, 2)):
            src = rng.randrange(len(spans))
            dst = rng.randrange(len(spans))
            if src != dst:
                relations.append([src, dst, rng.choice(_RELATION_LABELS)])
    return {
        "act": "enroll",
        "id": doc_id,
        "text": text,
        "spans": spans,
        "relations": relations,
    }


def _gen_decision(rng: Random, action: dict, claim: dict) -> dict:
    """One semantically valid decide action against a live claim."""
    verdict = rng.choice(VERDICTS)
    decision = {
        "act": "decide",
        "claim": claim["claim_id"],
        "reviewer": rng.choice(_REVIEWERS),
        "verdict": verdict,
        "label": None,
        "start": None,
        "end": None,
    }
    if verdict == "edit":
        correct_label = claim["kind"] == "relation" or rng.random() < 0.6
        if correct_label:
            decision["label"] = rng.choice(
                _RELATION_LABELS if claim["kind"] == "relation" else _LABELS
            )
        if claim["kind"] == "mention" and (
            not correct_label or rng.random() < 0.3
        ):
            length = len(action["text"])
            start = rng.randrange(length)
            decision["start"] = start
            decision["end"] = rng.randint(start + 1, length)
    return decision


def gen_review_case(rng: Random) -> dict:
    """An enroll/decide/drop schedule plus one planned fault.

    Decides only ever target claims of currently-enrolled reports, so
    the schedule is semantically valid — the fuzzer probes durability,
    not input validation (the model layer's own tests cover that).
    """
    actions: list[dict] = []
    live: dict[str, dict] = {}  # doc_id -> its enroll action
    live_claims: list[dict] = []  # {"claim_id", "kind", "doc"}
    n_docs = 0
    for _ in range(rng.randint(2, 12)):
        roll = rng.random()
        if live_claims and roll < 0.55:
            claim = rng.choice(live_claims)
            actions.append(
                _gen_decision(rng, live[claim["doc"]], claim)
            )
        elif live and roll < 0.65:
            doc_id = rng.choice(sorted(live))
            del live[doc_id]
            live_claims = [
                claim for claim in live_claims if claim["doc"] != doc_id
            ]
            actions.append({"act": "drop", "id": doc_id})
        else:
            doc_id = f"doc-{n_docs}"
            n_docs += 1
            action = _gen_document(rng, doc_id)
            live[doc_id] = action
            for k in range(len(action["spans"])):
                live_claims.append(
                    {
                        "claim_id": claim_id_for(doc_id, f"T{k + 1}"),
                        "kind": "mention",
                        "doc": doc_id,
                    }
                )
            for k in range(len(action["relations"])):
                live_claims.append(
                    {
                        "claim_id": claim_id_for(doc_id, f"R{k + 1}"),
                        "kind": "relation",
                        "doc": doc_id,
                    }
                )
            actions.append(action)
    fault = None
    if rng.random() < 0.8:
        fault = {
            "kind": rng.choice(FAULT_KINDS),
            "at_op": rng.randint(0, 30),
            "seed": rng.randint(0, 2**31),
        }
    return {
        "actions": actions,
        "fault": fault,
        "group_commit": rng.choice([1, 1, 2, 3, 4]),
        "snapshot_every": rng.choice([None, None, 2, 3, 5]),
    }


# -- checking ----------------------------------------------------------------


def apply_review_action(queue: ReviewQueue, action: dict) -> None:
    """Apply one schedule action to a queue (memory only)."""
    if action["act"] == "enroll":
        doc = AnnotationDocument(doc_id=action["id"], text=action["text"])
        for label, start, end, negated in action["spans"]:
            tb = doc.add_textbound(label, start, end)
            if negated:
                doc.add_attribute("Negated", tb.ann_id)
        for src, dst, label in action["relations"]:
            doc.add_relation(label, f"T{src + 1}", f"T{dst + 1}")
        queue.enqueue_document(action["id"], doc)
    elif action["act"] == "decide":
        queue.decide(
            action["claim"],
            reviewer=action["reviewer"],
            verdict=action["verdict"],
            label=action["label"],
            start=action["start"],
            end=action["end"],
        )
    else:  # drop
        queue.drop_document(action["id"])


def canonical_review_state(queue: ReviewQueue) -> str:
    """Identity-free canonical rendering of the full review state,
    including the queued/decided partition."""
    payload = {
        "docs": sorted(
            [doc_id, queue.document_text(doc_id)]
            for doc_id in queue.documents()
        ),
        "claims": sorted(
            json.dumps(claim.to_json(), sort_keys=True)
            for doc_id in queue.documents()
            for claim in queue.claims_of(doc_id)
        ),
        "decisions": sorted(
            [
                claim.claim_id,
                [
                    json.dumps(d.to_json(), sort_keys=True)
                    for d in queue.decisions_of(claim.claim_id)
                ],
            ]
            for doc_id in queue.documents()
            for claim in queue.claims_of(doc_id)
        ),
        "partition": review_partition(queue),
    }
    return json.dumps(payload, sort_keys=True)


def review_partition(queue: ReviewQueue) -> dict:
    """The queued/decided claim-id partition."""
    return {
        "queued": sorted(claim.claim_id for claim in queue.queued()),
        "decided": sorted(claim.claim_id for claim in queue.decided()),
    }


def _valid_case(case: dict) -> bool:
    """Structural validation; shrunk cases may violate any of this."""
    if not isinstance(case, dict):
        return False
    group_commit = case.get("group_commit")
    if not isinstance(group_commit, int) or group_commit < 1:
        return False
    snapshot_every = case.get("snapshot_every")
    if snapshot_every is not None and (
        not isinstance(snapshot_every, int) or snapshot_every < 1
    ):
        return False
    actions = case.get("actions")
    if not isinstance(actions, list):
        return False
    live: dict[str, dict] = {}
    claims: dict[str, str] = {}  # claim_id -> kind
    for action in actions:
        if not isinstance(action, dict):
            return False
        kind = action.get("act")
        if kind == "enroll":
            doc_id = action.get("id")
            text = action.get("text")
            if not isinstance(doc_id, str) or doc_id in live:
                return False
            if not isinstance(text, str):
                return False
            spans = action.get("spans")
            if not isinstance(spans, list):
                return False
            previous_end = -1
            for span in spans:
                if not (
                    isinstance(span, list)
                    and len(span) == 4
                    and isinstance(span[0], str)
                    and isinstance(span[1], int)
                    and isinstance(span[2], int)
                    and isinstance(span[3], bool)
                    and previous_end <= span[1] < span[2] <= len(text)
                ):
                    return False
                previous_end = span[2]
            relations = action.get("relations")
            if not isinstance(relations, list):
                return False
            for relation in relations:
                if not (
                    isinstance(relation, list)
                    and len(relation) == 3
                    and isinstance(relation[0], int)
                    and isinstance(relation[1], int)
                    and isinstance(relation[2], str)
                    and 0 <= relation[0] < len(spans)
                    and 0 <= relation[1] < len(spans)
                    and relation[0] != relation[1]
                ):
                    return False
            live[doc_id] = action
            for k in range(len(spans)):
                claims[claim_id_for(doc_id, f"T{k + 1}")] = "mention"
            for k in range(len(relations)):
                claims[claim_id_for(doc_id, f"R{k + 1}")] = "relation"
        elif kind == "decide":
            claim_id = action.get("claim")
            if claim_id not in claims:
                return False
            doc_id = claim_id.split(":", 1)[0]
            if doc_id not in live:
                return False
            if action.get("verdict") not in VERDICTS:
                return False
            reviewer = action.get("reviewer")
            if not isinstance(reviewer, str) or not reviewer:
                return False
            label = action.get("label")
            start = action.get("start")
            end = action.get("end")
            if action["verdict"] != "edit":
                if label is not None or start is not None or end is not None:
                    return False
            else:
                if label is None and start is None:
                    return False
                if label is not None and not isinstance(label, str):
                    return False
                if (start is None) != (end is None):
                    return False
                if start is not None:
                    if claims[claim_id] != "mention":
                        return False
                    text = live[doc_id]["text"]
                    if not (
                        isinstance(start, int)
                        and isinstance(end, int)
                        and 0 <= start < end <= len(text)
                    ):
                        return False
        elif kind == "drop":
            doc_id = action.get("id")
            if doc_id not in live:
                return False
            del live[doc_id]
            claims = {
                claim_id: claim_kind
                for claim_id, claim_kind in claims.items()
                if claim_id.split(":", 1)[0] != doc_id
            }
        else:
            return False
    fault = case.get("fault")
    if fault is not None:
        if not isinstance(fault, dict):
            return False
        if fault.get("kind") not in FAULT_KINDS:
            return False
        if not isinstance(fault.get("at_op"), int) or fault["at_op"] < 0:
            return False
        if not isinstance(fault.get("seed"), int):
            return False
    return True


def _oracle_states(actions: list[dict]) -> list[str]:
    """``states[j]`` = canonical state after the first ``j`` actions,
    computed on a plain queue with no durability at all."""
    queue = ReviewQueue()
    states = [canonical_review_state(queue)]
    for action in actions:
        apply_review_action(queue, action)
        states.append(canonical_review_state(queue))
    return states


def check_review_case(case: dict) -> str | None:
    """Run one decision schedule end to end; ``None`` means the review
    durability contract held (or the case was malformed — vacuous)."""
    if not _valid_case(case):
        return None
    actions = case["actions"]
    fault = case["fault"]
    oracle = _oracle_states(actions)

    oracle_queue = ReviewQueue()
    for action in actions:
        apply_review_action(oracle_queue, action)
    oracle_partition = review_partition(oracle_queue)

    mem = MemFS()
    if fault is not None:
        fs = FaultInjector(
            mem,
            kind=fault["kind"],
            at_op=fault["at_op"],
            seed=fault["seed"],
        )
    else:
        fs = mem
    queue = ReviewQueue()
    manager = DurabilityManager(
        fs,
        group_commit=case["group_commit"],
        snapshot_every=case["snapshot_every"],
    )
    manager.attach("review", queue)

    applied = 0
    action_lsns: list[int | None] = []
    crashed = False
    try:
        for action in actions:
            apply_review_action(queue, action)
            applied += 1
            action_lsns.append(manager.commit())
        manager.flush()
    except (InjectedCrash, DurabilityError, OSError):
        crashed = True

    # Acknowledged prefix: every decision (or enroll/drop) in it was
    # fsynced before the fault — losing any of these is a bug.
    acked = 0
    for lsn in action_lsns:
        if lsn is not None and lsn > manager.durable_lsn:
            break
        acked += 1

    recovered_queue = ReviewQueue()
    recovery = DurabilityManager(
        mem, group_commit=1, snapshot_every=case["snapshot_every"]
    )
    recovery.attach("review", recovered_queue)
    try:
        recovery.recover()
    except DurabilityError as exc:
        # Includes the double-commit detector: durable_apply raises on
        # a re-applied enqueue.
        return (
            f"recovery failed after "
            f"{'crash' if crashed else 'clean run'}: {exc}"
        )
    recovered = canonical_review_state(recovered_queue)

    matched = [j for j in range(applied + 1) if oracle[j] == recovered]
    if not matched:
        return (
            f"recovered review state matches no schedule prefix "
            f"(crashed={crashed}, applied={applied}, acked={acked})"
        )
    resume_from = max(matched)
    if resume_from < acked:
        return (
            f"acked decisions lost: recovered to prefix {resume_from} "
            f"but {acked} actions were acknowledged "
            f"(durable_lsn={manager.durable_lsn})"
        )

    # Continuation: finish the schedule, then the partition (and the
    # whole state) must be bit-identical to the never-crashed oracle.
    for action in actions[resume_from:]:
        apply_review_action(recovered_queue, action)
        recovery.commit()
    recovery.flush()
    if review_partition(recovered_queue) != oracle_partition:
        return (
            f"queued/decided partition diverged after recovery from "
            f"prefix {resume_from}: {review_partition(recovered_queue)} "
            f"vs oracle {oracle_partition}"
        )
    if canonical_review_state(recovered_queue) != oracle[-1]:
        return (
            f"continuation after recovery from prefix {resume_from} "
            "diverged from the oracle's final state"
        )

    if not crashed:
        live = canonical_review_state(queue)
        if live != oracle[-1]:
            return "fault-free live state diverged from the oracle"
        if recovered != oracle[-1]:
            return (
                "fault-free recovery (snapshot + WAL replay) diverged "
                "from the in-memory state"
            )
        if acked != len(actions):
            return (
                f"fault-free run acknowledged only {acked} of "
                f"{len(actions)} actions"
            )
    return None
