"""Entry point for ``python -m repro.testing``."""

import sys

from repro.testing.cli import main

sys.exit(main())
