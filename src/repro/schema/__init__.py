"""The comprehensive clinical typing schema (Caufield et al., ref [2]).

Defines the EVENT, ENTITY and RELATION label inventories used across
annotation, extraction, indexing and querying, plus validation of
annotation structures against the schema.
"""

from repro.schema.types import (
    EventType,
    EntityType,
    RelationType,
    TEMPORAL_RELATIONS,
    SEMANTIC_RELATIONS,
    ALL_LABELS,
    label_kind,
    is_event_label,
    is_entity_label,
    SchemaRegistry,
    DEFAULT_REGISTRY,
)
from repro.schema.validation import SchemaValidator, ValidationIssue

__all__ = [
    "EventType",
    "EntityType",
    "RelationType",
    "TEMPORAL_RELATIONS",
    "SEMANTIC_RELATIONS",
    "ALL_LABELS",
    "label_kind",
    "is_event_label",
    "is_entity_label",
    "SchemaRegistry",
    "DEFAULT_REGISTRY",
    "SchemaValidator",
    "ValidationIssue",
]
