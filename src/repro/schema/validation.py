"""Validation of annotation documents against the typing schema.

The annotation interface (and the corpus generator's self-checks) run
every edited document through :class:`SchemaValidator`; unlike the
structural checks in :meth:`AnnotationDocument.verify`, this layer
enforces the *clinical* constraints: label inventories, relation arity
rules, and temporal-relation sanity (no self-loops, no duplicated
contradictory pairs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.annotation.model import AnnotationDocument
from repro.exceptions import SchemaError
from repro.schema.types import (
    DEFAULT_REGISTRY,
    SchemaRegistry,
    TEMPORAL_RELATIONS,
    RelationType,
)


@dataclass(frozen=True, slots=True)
class ValidationIssue:
    """A single schema violation found in a document.

    Attributes:
        ann_id: the offending annotation's id.
        code: machine-readable issue code.
        message: human-readable description.
    """

    ann_id: str
    code: str
    message: str


class SchemaValidator:
    """Checks :class:`AnnotationDocument` instances against a registry.

    Use :meth:`validate` to collect all issues (the annotation UI path)
    or :meth:`check` to fail fast on the first (the pipeline path).
    """

    def __init__(self, registry: SchemaRegistry | None = None):
        self._registry = registry or DEFAULT_REGISTRY

    def validate(self, doc: AnnotationDocument) -> list[ValidationIssue]:
        """Return every schema issue in ``doc`` (empty list = valid)."""
        issues: list[ValidationIssue] = []
        issues.extend(self._validate_spans(doc))
        issues.extend(self._validate_relations(doc))
        issues.extend(self._validate_temporal_pairs(doc))
        return issues

    def check(self, doc: AnnotationDocument) -> None:
        """Raise :class:`SchemaError` on the first issue found."""
        issues = self.validate(doc)
        if issues:
            first = issues[0]
            raise SchemaError(
                f"{doc.doc_id}/{first.ann_id}: {first.message} "
                f"({len(issues)} issue(s) total)"
            )

    # -- individual passes -------------------------------------------------

    def _validate_spans(self, doc: AnnotationDocument) -> list[ValidationIssue]:
        issues = []
        for tb in doc.textbounds.values():
            if tb.label not in self._registry.span_labels:
                issues.append(
                    ValidationIssue(
                        tb.ann_id,
                        "unknown-span-label",
                        f"span label {tb.label!r} is not in the schema",
                    )
                )
        return issues

    def _validate_relations(
        self, doc: AnnotationDocument
    ) -> list[ValidationIssue]:
        issues = []
        for rel in doc.relations.values():
            source = doc.textbounds.get(rel.source)
            target = doc.textbounds.get(rel.target)
            if source is None or target is None:
                issues.append(
                    ValidationIssue(
                        rel.ann_id,
                        "dangling-relation",
                        "relation endpoint missing from document",
                    )
                )
                continue
            try:
                self._registry.check_relation(
                    rel.label, source.label, target.label
                )
            except SchemaError as exc:
                issues.append(
                    ValidationIssue(rel.ann_id, "bad-relation", str(exc))
                )
        return issues

    def _validate_temporal_pairs(
        self, doc: AnnotationDocument
    ) -> list[ValidationIssue]:
        """Reject duplicate/contradictory temporal edges on one pair."""
        issues = []
        seen: dict[frozenset[str], tuple[str, str, str, str]] = {}
        for rel in doc.relations.values():
            try:
                rel_type = RelationType(rel.label)
            except ValueError:
                continue
            if rel_type not in TEMPORAL_RELATIONS:
                continue
            key = frozenset((rel.source, rel.target))
            if key in seen:
                prev_id, prev_label, prev_src, _prev_tgt = seen[key]
                if not self._consistent(
                    prev_label, prev_src, rel.label, rel.source
                ):
                    issues.append(
                        ValidationIssue(
                            rel.ann_id,
                            "temporal-conflict",
                            f"contradicts {prev_id} ({prev_label}) on the "
                            f"same event pair",
                        )
                    )
            else:
                seen[key] = (rel.ann_id, rel.label, rel.source, rel.target)
        return issues

    @staticmethod
    def _consistent(
        label_a: str, source_a: str, label_b: str, source_b: str
    ) -> bool:
        """Two temporal edges on one pair are consistent iff they express
        the same ordering once direction is normalized."""
        same_direction = source_a == source_b

        def normalize(label: str, same: bool) -> str:
            if same:
                return label
            flips = {"BEFORE": "AFTER", "AFTER": "BEFORE", "OVERLAP": "OVERLAP"}
            return flips[label]

        return label_a == normalize(label_b, same_direction)
