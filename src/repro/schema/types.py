"""Label inventories of the clinical typing schema.

The schema follows Caufield et al. (the paper's reference [2], the
MACCROBAT typing system): EVENTS are trigger spans that advance the
clinical course; ENTITIES are non-trigger spans playing semantic roles;
RELATIONS connect events to events or events to entities and are either
temporal (BEFORE / AFTER / OVERLAP) or semantic (IDENTICAL / MODIFY /
SUB_PROCEDURE / CAUSES / INDICATES).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.exceptions import SchemaError


class EventType(str, Enum):
    """Trigger span types: situations that progress the clinical course."""

    SIGN_SYMPTOM = "Sign_symptom"
    DIAGNOSTIC_PROCEDURE = "Diagnostic_procedure"
    LAB_VALUE = "Lab_value"
    DISEASE_DISORDER = "Disease_disorder"
    MEDICATION = "Medication"
    THERAPEUTIC_PROCEDURE = "Therapeutic_procedure"
    CLINICAL_EVENT = "Clinical_event"
    OUTCOME = "Outcome"
    ACTIVITY = "Activity"


class EntityType(str, Enum):
    """Non-trigger span types: semantic-role players in the narrative."""

    AGE = "Age"
    SEX = "Sex"
    PERSONAL_BACKGROUND = "Personal_background"
    OCCUPATION = "Occupation"
    HISTORY = "History"
    FAMILY_HISTORY = "Family_history"
    SUBJECT = "Subject"
    NONBIOLOGICAL_LOCATION = "Nonbiological_location"
    BIOLOGICAL_STRUCTURE = "Biological_structure"
    DETAILED_DESCRIPTION = "Detailed_description"
    SEVERITY = "Severity"
    DISTANCE = "Distance"
    AREA = "Area"
    VOLUME = "Volume"
    MASS = "Mass"
    COLOR = "Color"
    SHAPE = "Shape"
    TEXTURE = "Texture"
    DOSAGE = "Dosage"
    ADMINISTRATION = "Administration"
    FREQUENCY = "Frequency"
    DATE = "Date"
    TIME = "Time"
    DURATION = "Duration"
    QUALITATIVE_CONCEPT = "Qualitative_concept"
    QUANTITATIVE_CONCEPT = "Quantitative_concept"
    OTHER_ENTITY = "Other_entity"


class RelationType(str, Enum):
    """Relation labels between spans."""

    # Temporal relations order events in time (paper section III-B).
    BEFORE = "BEFORE"
    AFTER = "AFTER"
    OVERLAP = "OVERLAP"
    # Semantic relations reflect meaning between words.
    IDENTICAL = "IDENTICAL"
    MODIFY = "MODIFY"
    SUB_PROCEDURE = "SUB_PROCEDURE"
    CAUSES = "CAUSES"
    INDICATES = "INDICATES"


TEMPORAL_RELATIONS: frozenset[RelationType] = frozenset(
    {RelationType.BEFORE, RelationType.AFTER, RelationType.OVERLAP}
)

SEMANTIC_RELATIONS: frozenset[RelationType] = frozenset(
    set(RelationType) - TEMPORAL_RELATIONS
)

_EVENT_LABELS = frozenset(member.value for member in EventType)
_ENTITY_LABELS = frozenset(member.value for member in EntityType)

ALL_LABELS: frozenset[str] = _EVENT_LABELS | _ENTITY_LABELS


def is_event_label(label: str) -> bool:
    """True when ``label`` names an EVENT type."""
    return label in _EVENT_LABELS


def is_entity_label(label: str) -> bool:
    """True when ``label`` names an ENTITY type."""
    return label in _ENTITY_LABELS


def label_kind(label: str) -> str:
    """Classify a span label as ``"event"`` or ``"entity"``.

    Raises:
        SchemaError: the label is in neither inventory.
    """
    if is_event_label(label):
        return "event"
    if is_entity_label(label):
        return "entity"
    raise SchemaError(f"unknown span label: {label!r}")


@dataclass
class SchemaRegistry:
    """The full schema: span labels, relation labels and arity rules.

    Relations are constrained per the paper: temporal and semantic
    relations hold between two EVENTS or between an EVENT and an ENTITY
    (MODIFY typically entity->event).  The registry stores, for each
    relation, the allowed (source kind, target kind) pairs; validation
    walks these tables.
    """

    span_labels: frozenset[str] = field(default_factory=lambda: ALL_LABELS)
    relation_rules: dict[RelationType, frozenset[tuple[str, str]]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self.relation_rules:
            event_event = frozenset({("event", "event")})
            any_pair = frozenset(
                {("event", "event"), ("event", "entity"), ("entity", "event")}
            )
            # BEFORE/AFTER admit entity participants because the paper's
            # own Figure 5 orders a History entity ("glucocorticoids")
            # before a clinical event.
            self.relation_rules = {
                RelationType.BEFORE: any_pair,
                RelationType.AFTER: any_pair,
                RelationType.OVERLAP: any_pair,
                RelationType.IDENTICAL: any_pair,
                RelationType.MODIFY: any_pair | frozenset({("entity", "entity")}),
                RelationType.SUB_PROCEDURE: event_event,
                RelationType.CAUSES: event_event,
                RelationType.INDICATES: any_pair,
            }

    def check_span_label(self, label: str) -> None:
        """Raise :class:`SchemaError` for labels outside the schema."""
        if label not in self.span_labels:
            raise SchemaError(f"unknown span label: {label!r}")

    def check_relation(
        self, relation: str, source_label: str, target_label: str
    ) -> None:
        """Validate a relation triple against the arity rules.

        Raises:
            SchemaError: unknown relation, unknown span label, or a
                (source kind, target kind) pair the relation disallows.
        """
        try:
            rel = RelationType(relation)
        except ValueError:
            raise SchemaError(f"unknown relation label: {relation!r}") from None
        pair = (label_kind(source_label), label_kind(target_label))
        if pair not in self.relation_rules[rel]:
            raise SchemaError(
                f"relation {rel.value} not allowed between "
                f"{pair[0]} ({source_label}) and {pair[1]} ({target_label})"
            )


DEFAULT_REGISTRY = SchemaRegistry()
