"""End-to-end orchestration: crawl -> parse -> extract -> index -> serve.

This module wires every subsystem into the architecture of the paper's
Figures 2/3: the crawler captures publications from the (synthetic)
PubMed site, the Grobid service converts them to structured text, the
trained extraction models produce each report's knowledge graph, the
dual indexer loads the graph and keyword engines, and the application
facade serves search/annotation/visualization requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.annotation.model import AnnotationDocument
from repro.api.app import CreateApplication
from repro.corpus.datasets import TemporalDocument, TemporalInstance
from repro.corpus.generator import CaseReport, CaseReportGenerator
from repro.corpus.pubmed import build_corpus
from repro.crawler.crawler import Crawler
from repro.crawler.repository import SyntheticPubMed
from repro.docstore.store import DocumentStore
from repro.exceptions import PipelineError
from repro.grobid.service import GrobidService
from repro.ir.indexer import CreateIrIndexer
from repro.ir.query_parser import QueryParser
from repro.ir.searcher import CreateIrSearcher
from repro.ml.embeddings import CharNgramEmbedder
from repro.ner.negation import NegationDetector
from repro.ner.tagger import NerTagger
from repro.schema.types import is_event_label
from repro.temporal.classifier import TemporalClassifier
from repro.temporal.global_inference import global_inference
from repro.temporal.psl import PslConfig, fit_with_psl
from repro.temporal.relations import THREE_WAY_ALGEBRA
from repro.text.tokenize import tokenize


class ClinicalExtractor:
    """NER + temporal RE applied to raw report text.

    The trained extraction stack of CREATe-IR: tags entity/event spans
    with the C-FLAIR-substitute tagger, classifies temporal relations
    between nearby events with the PSL-trained classifier, and (by
    default) enforces global consistency before emitting relations.
    """

    def __init__(
        self,
        ner: NerTagger,
        temporal: TemporalClassifier | None,
        use_global_inference: bool = True,
        max_pair_distance: int = 3,
    ):
        self.ner = ner
        self.temporal = temporal
        self.use_global_inference = use_global_inference
        self.max_pair_distance = max_pair_distance
        self.algebra = THREE_WAY_ALGEBRA
        self.negation = NegationDetector()

    @classmethod
    def train(
        cls,
        train_reports: list[CaseReport],
        unlabeled_sentences: list[list[str]] | None = None,
        seed: int = 13,
        ner_epochs: int = 5,
        temporal_epochs: int = 15,
    ) -> "ClinicalExtractor":
        """Train both models from gold-annotated reports."""
        if not train_reports:
            raise PipelineError("no training reports")
        embedder = None
        if unlabeled_sentences:
            embedder = CharNgramEmbedder(seed=seed).fit(unlabeled_sentences)
            embedder.fit_clusters()
        ner = NerTagger(
            decoder="crf",
            use_context_embeddings=embedder is not None,
            embedder=embedder,
            epochs=ner_epochs,
            seed=seed,
        )
        ner.fit([report.annotations for report in train_reports])

        temporal_docs = [
            _temporal_doc_from_report(report, max_distance=3)
            for report in train_reports
        ]
        temporal_docs = [doc for doc in temporal_docs if doc.pairs]
        temporal = None
        if temporal_docs:
            temporal = fit_with_psl(
                TemporalClassifier(epochs=temporal_epochs, seed=seed),
                temporal_docs,
                THREE_WAY_ALGEBRA,
                PslConfig(weight=1.0, epochs=temporal_epochs, seed=seed),
            )
        return cls(ner, temporal)

    def extract(self, doc_id: str, text: str) -> AnnotationDocument:
        """Produce an annotation document for raw text.

        Negated mentions (NegEx-style scope detection) receive a
        ``Negated`` attribute and are excluded from the temporal event
        sequence — a denied symptom is not part of the clinical course.
        """
        doc = AnnotationDocument(doc_id=doc_id, text=text)
        scopes = self.negation.detect(text)
        for span in self.ner.predict_spans(text):
            tb = doc.add_textbound(span.label, span.start, span.end)
            if self.negation.span_negated((span.start, span.end), scopes):
                doc.add_attribute("Negated", tb.ann_id)
        if self.temporal is None:
            return doc

        event_ids = [
            tb.ann_id
            for tb in doc.spans_sorted()
            if is_event_label(tb.label) and not doc.is_negated(tb.ann_id)
        ]
        pairs = []
        for i, src_id in enumerate(event_ids):
            upper = min(i + 1 + self.max_pair_distance, len(event_ids))
            for j in range(i + 1, upper):
                pairs.append(
                    TemporalInstance(
                        doc_id,
                        src_id,
                        event_ids[j],
                        self.temporal.labels[0],  # placeholder
                        j - i,
                    )
                )
        if not pairs:
            return doc
        tdoc = TemporalDocument(doc_id, doc, event_ids, pairs)
        probs = self.temporal.predict_proba_doc(tdoc)
        if self.use_global_inference:
            labels = global_inference(
                tdoc, probs, self.temporal.labels, self.algebra
            )
        else:
            labels = [
                self.temporal.labels[int(k)]
                for k in np.argmax(probs, axis=1)
            ]
        for pair, label in zip(pairs, labels):
            doc.add_relation(label, pair.src_id, pair.tgt_id)
        return doc


def _temporal_doc_from_report(
    report: CaseReport, max_distance: int
) -> TemporalDocument:
    order = [event.event_id for event in report.timeline.events]
    pairs = []
    for i, a in enumerate(report.timeline.events):
        upper = min(i + 1 + max_distance, len(report.timeline.events))
        for j in range(i + 1, upper):
            b = report.timeline.events[j]
            from repro.corpus.timeline import interval_relation

            pairs.append(
                TemporalInstance(
                    report.report_id,
                    a.event_id,
                    b.event_id,
                    interval_relation(a, b),
                    j - i,
                )
            )
    return TemporalDocument(
        report.report_id, report.annotations, order, pairs
    )


@dataclass
class PipelineStats:
    """Counters from one pipeline run."""

    crawled: int = 0
    parsed: int = 0
    parse_failures: int = 0
    extracted: int = 0
    indexed: int = 0
    graph_nodes: int = 0
    graph_edges: int = 0


@dataclass
class CreatePipeline:
    """The assembled system, end to end.

    Build with :func:`build_demo_system` for the standard demo
    configuration, or construct the pieces individually for tests.
    """

    extractor: ClinicalExtractor
    store: DocumentStore = field(default_factory=DocumentStore)
    grobid: GrobidService = field(default_factory=GrobidService)
    stats: PipelineStats = field(default_factory=PipelineStats)

    def __post_init__(self) -> None:
        self.indexer = CreateIrIndexer()
        parser = QueryParser(self.extractor.ner, self.extractor.temporal)
        self.searcher = CreateIrSearcher(self.indexer, parser=parser)
        self.app = CreateApplication(
            store=self.store,
            indexer=self.indexer,
            searcher=self.searcher,
            grobid=self.grobid,
            extractor=self.extractor.extract,
        )

    def ingest_from_site(
        self, site: SyntheticPubMed, max_pages: int | None = None
    ) -> PipelineStats:
        """Crawl a site and run every captured publication through
        parse -> extract -> index -> store."""
        crawler = Crawler(site)
        results = crawler.crawl(max_pages=max_pages)
        self.stats.crawled = len(results)
        for result in results:
            try:
                publication = self.grobid.process(result.body)
            except Exception:
                self.stats.parse_failures += 1
                continue
            self.stats.parsed += 1
            text = publication.body_text()
            doc_id = result.url.rsplit("/", 1)[-1]
            annotations = self.extractor.extract(doc_id, text)
            self.stats.extracted += 1
            document = {
                "_id": doc_id,
                "title": publication.metadata.title,
                "authors": publication.metadata.authors,
                "abstract": publication.metadata.abstract,
                "text": text,
                "source": result.content_type,
            }
            self.app.register_report(document, annotations)
            self.stats.indexed += 1
        self.stats.graph_nodes = self.indexer.graph.n_nodes
        self.stats.graph_edges = self.indexer.graph.n_edges
        return self.stats


def build_demo_system(
    n_reports: int = 100,
    n_train: int = 60,
    seed: int = 0,
    use_gold_annotations: bool = False,
) -> tuple[CreatePipeline, list[CaseReport]]:
    """Standard demo configuration: train, crawl, ingest, serve.

    Args:
        n_reports: size of the served corpus.
        n_train: gold-annotated reports used to train the extractors
            (disjoint from the served corpus).
        use_gold_annotations: index gold annotations instead of running
            extraction (the "perfect extraction" upper bound).

    Returns:
        (pipeline, served_reports) — the reports list carries the gold
        layers for evaluation.
    """
    train_generator = CaseReportGenerator(seed=seed + 900)
    train_reports = [
        train_generator.generate(f"train-{i:04d}", "cardiovascular")
        for i in range(n_train)
    ]
    unlabeled = [
        [token.text for token in tokenize(report.text)]
        for report in train_reports
    ]
    extractor = ClinicalExtractor.train(
        train_reports, unlabeled_sentences=unlabeled, seed=seed + 13
    )
    pipeline = CreatePipeline(extractor=extractor)

    reports = build_corpus(n_reports, seed=seed)
    if use_gold_annotations:
        for report in reports:
            pipeline.app.register_report(
                report.to_document(), report.annotations
            )
        pipeline.stats.indexed = len(reports)
    else:
        site = SyntheticPubMed(reports, seed=seed)
        pipeline.ingest_from_site(site)
    return pipeline, reports
