"""End-to-end orchestration: crawl -> parse -> extract -> index -> serve.

This module wires every subsystem into the architecture of the paper's
Figures 2/3: the crawler captures publications from the (synthetic)
PubMed site, the Grobid service converts them to structured text, the
trained extraction models produce each report's knowledge graph, the
dual indexer loads the graph and keyword engines, and the application
facade serves search/annotation/visualization requests.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.annotation.model import AnnotationDocument
from repro.api.app import CreateApplication
from repro.corpus.datasets import TemporalDocument, TemporalInstance
from repro.corpus.generator import CaseReport, CaseReportGenerator
from repro.corpus.pubmed import build_corpus
from repro.crawler.crawler import Crawler, CrawlResult
from repro.crawler.repository import SyntheticPubMed
from repro.docstore.store import DocumentStore
from repro.durability import DurabilityManager, RecoveryReport
from repro.exceptions import (
    ParseError,
    PipelineError,
    ReproError,
    StageFailure,
    TransientParseError,
)
from repro.grobid.service import GrobidService
from repro.ir.indexer import CreateIrIndexer
from repro.ir.query_parser import QueryParser
from repro.ir.searcher import CreateIrSearcher
from repro.ml.embeddings import CharNgramEmbedder
from repro.ner.negation import NegationDetector
from repro.ner.tagger import NerTagger
from repro.runtime.executor import BatchExecutor
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.tracing import SpanTracer
from repro.schema.types import is_event_label
from repro.serving import ShardedIrIndexer, ShardedIrSearcher
from repro.temporal.classifier import TemporalClassifier
from repro.temporal.global_inference import global_inference
from repro.temporal.psl import PslConfig, fit_with_psl
from repro.temporal.relations import THREE_WAY_ALGEBRA
from repro.text.tokenize import tokenize


class ClinicalExtractor:
    """NER + temporal RE applied to raw report text.

    The trained extraction stack of CREATe-IR: tags entity/event spans
    with the C-FLAIR-substitute tagger, classifies temporal relations
    between nearby events with the PSL-trained classifier, and (by
    default) enforces global consistency before emitting relations.
    """

    def __init__(
        self,
        ner: NerTagger,
        temporal: TemporalClassifier | None,
        use_global_inference: bool = True,
        max_pair_distance: int = 3,
    ):
        self.ner = ner
        self.temporal = temporal
        self.use_global_inference = use_global_inference
        self.max_pair_distance = max_pair_distance
        self.algebra = THREE_WAY_ALGEBRA
        self.negation = NegationDetector()

    @classmethod
    def train(
        cls,
        train_reports: list[CaseReport],
        unlabeled_sentences: list[list[str]] | None = None,
        seed: int = 13,
        ner_epochs: int = 5,
        temporal_epochs: int = 15,
    ) -> "ClinicalExtractor":
        """Train both models from gold-annotated reports."""
        if not train_reports:
            raise PipelineError("no training reports")
        embedder = None
        if unlabeled_sentences:
            embedder = CharNgramEmbedder(seed=seed).fit(unlabeled_sentences)
            embedder.fit_clusters()
        ner = NerTagger(
            decoder="crf",
            use_context_embeddings=embedder is not None,
            embedder=embedder,
            epochs=ner_epochs,
            seed=seed,
        )
        ner.fit([report.annotations for report in train_reports])

        temporal_docs = [
            _temporal_doc_from_report(report, max_distance=3)
            for report in train_reports
        ]
        temporal_docs = [doc for doc in temporal_docs if doc.pairs]
        temporal = None
        if temporal_docs:
            temporal = fit_with_psl(
                TemporalClassifier(epochs=temporal_epochs, seed=seed),
                temporal_docs,
                THREE_WAY_ALGEBRA,
                PslConfig(weight=1.0, epochs=temporal_epochs, seed=seed),
            )
        return cls(ner, temporal)

    def extract(self, doc_id: str, text: str) -> AnnotationDocument:
        """Produce an annotation document for raw text.

        Negated mentions (NegEx-style scope detection) receive a
        ``Negated`` attribute and are excluded from the temporal event
        sequence — a denied symptom is not part of the clinical course.
        """
        doc = AnnotationDocument(doc_id=doc_id, text=text)
        scopes = self.negation.detect(text)
        for span in self.ner.predict_spans(text):
            tb = doc.add_textbound(span.label, span.start, span.end)
            if self.negation.span_negated((span.start, span.end), scopes):
                doc.add_attribute("Negated", tb.ann_id)
        if self.temporal is None:
            return doc

        event_ids = [
            tb.ann_id
            for tb in doc.spans_sorted()
            if is_event_label(tb.label) and not doc.is_negated(tb.ann_id)
        ]
        pairs = []
        for i, src_id in enumerate(event_ids):
            upper = min(i + 1 + self.max_pair_distance, len(event_ids))
            for j in range(i + 1, upper):
                pairs.append(
                    TemporalInstance(
                        doc_id,
                        src_id,
                        event_ids[j],
                        self.temporal.labels[0],  # placeholder
                        j - i,
                    )
                )
        if not pairs:
            return doc
        tdoc = TemporalDocument(doc_id, doc, event_ids, pairs)
        probs = self.temporal.predict_proba_doc(tdoc)
        if self.use_global_inference:
            labels = global_inference(
                tdoc, probs, self.temporal.labels, self.algebra
            )
        else:
            labels = [
                self.temporal.labels[int(k)]
                for k in np.argmax(probs, axis=1)
            ]
        for pair, label in zip(pairs, labels):
            doc.add_relation(label, pair.src_id, pair.tgt_id)
        return doc


def _temporal_doc_from_report(
    report: CaseReport, max_distance: int
) -> TemporalDocument:
    order = [event.event_id for event in report.timeline.events]
    pairs = []
    for i, a in enumerate(report.timeline.events):
        upper = min(i + 1 + max_distance, len(report.timeline.events))
        for j in range(i + 1, upper):
            b = report.timeline.events[j]
            from repro.corpus.timeline import interval_relation

            pairs.append(
                TemporalInstance(
                    report.report_id,
                    a.event_id,
                    b.event_id,
                    interval_relation(a, b),
                    j - i,
                )
            )
    return TemporalDocument(
        report.report_id, report.annotations, order, pairs
    )


@dataclass(frozen=True, slots=True)
class DeadLetter:
    """One document's isolated failure record.

    A failed document never aborts the run and is never silently
    dropped: it lands here with enough context to retry or debug it.
    """

    doc_id: str
    stage: str  # "parse", "extract", or "index"
    error_type: str
    message: str
    attempts: int = 1


@dataclass
class PipelineStats:
    """Counters from one pipeline run.

    Deliberately contains no wall-clock timings so a parallel ingest
    produces stats byte-identical to a serial one (timings live in the
    pipeline's :class:`MetricsRegistry`).
    """

    crawled: int = 0
    parsed: int = 0
    parse_failures: int = 0
    parse_failed_ids: list[str] = field(default_factory=list)
    parse_retries: int = 0
    extracted: int = 0
    extract_failures: int = 0
    indexed: int = 0
    index_failures: int = 0
    id_collisions: int = 0
    contradiction_skips: int = 0
    closure_failures: int = 0
    graph_nodes: int = 0
    graph_edges: int = 0
    dead_letters: list[DeadLetter] = field(default_factory=list)

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True, slots=True)
class _ExtractedDoc:
    """Parse+extract output shipped back from a batch worker."""

    doc_id: str
    title: str
    authors: list[str]
    abstract: str
    text: str
    source: str
    annotations: AnnotationDocument
    parse_seconds: float
    extract_seconds: float
    parse_attempts: int


# Worker-side state for the parse+extract stage.  Set by
# :func:`_init_ingest_worker`, which the executor runs once per process
# worker (inheriting heavyweight models via fork) and once inline for
# serial/thread mode.
_INGEST_WORKER: dict = {}


def _init_ingest_worker(
    grobid: GrobidService, extractor: ClinicalExtractor, retries: int
) -> None:
    _INGEST_WORKER["grobid"] = grobid
    _INGEST_WORKER["extractor"] = extractor
    _INGEST_WORKER["retries"] = retries


def _parse_extract(payload: tuple[str, str, str]) -> _ExtractedDoc:
    """One document through parse (with bounded retry) and extract.

    Raises:
        StageFailure: a *known* failure mode — ``ParseError`` (after
            exhausting retries for transient service errors) or any
            exception from extraction — tagged with its stage so the
            parent can dead-letter it.  Anything else propagates raw
            and aborts the run: unexpected exceptions must not be
            silently eaten.
    """
    doc_id, body, source = payload
    grobid: GrobidService = _INGEST_WORKER["grobid"]
    extractor: ClinicalExtractor = _INGEST_WORKER["extractor"]
    retries: int = _INGEST_WORKER["retries"]

    attempts = 0
    parse_start = time.perf_counter()
    while True:
        attempts += 1
        try:
            publication = grobid.process(body)
            break
        except TransientParseError as exc:
            if attempts > retries:
                raise StageFailure(
                    "parse", type(exc).__name__, str(exc), attempts
                ) from exc
        except ParseError as exc:
            raise StageFailure(
                "parse", type(exc).__name__, str(exc), attempts
            ) from exc
    parse_seconds = time.perf_counter() - parse_start

    text = publication.body_text()
    extract_start = time.perf_counter()
    try:
        annotations = extractor.extract(doc_id, text)
    except Exception as exc:
        raise StageFailure(
            "extract", type(exc).__name__, str(exc), attempts
        ) from exc
    return _ExtractedDoc(
        doc_id=doc_id,
        title=publication.metadata.title,
        authors=list(publication.metadata.authors),
        abstract=publication.metadata.abstract,
        text=text,
        source=source,
        annotations=annotations,
        parse_seconds=parse_seconds,
        extract_seconds=time.perf_counter() - extract_start,
        parse_attempts=attempts,
    )


@dataclass
class CreatePipeline:
    """The assembled system, end to end.

    Build with :func:`build_demo_system` for the standard demo
    configuration, or construct the pieces individually for tests.

    Ingestion runs as explicit staged batches — serial crawl, parallel
    parse+extract (the CPU-heavy NER Viterbi + temporal
    global-inference path), serial index/store — so results are
    deterministic at any worker count.  Per-document failures are
    isolated into :class:`DeadLetter` records instead of aborting the
    run or being silently swallowed.

    Args:
        workers: default parse+extract pool size (1 = serial).
        executor_mode: ``"thread"`` (overlaps Grobid service latency)
            or ``"process"`` (sidesteps the GIL for CPU-bound
            extraction on multi-core hosts).
        parse_retries: bounded retries for transient Grobid errors.
        serving_shards: partition the dual index across this many
            shards and serve queries as parallel per-shard fan-out
            (0 = the classic unsharded engines).  Results are exactly
            rank-equivalent to the unsharded configuration.
        query_cache_size: entries in each serving-layer query cache
            (epoch-invalidated; only used when ``serving_shards`` >= 1).
        segment_dir: back the unsharded keyword engine with on-disk
            immutable segments under this directory (numpy-packed
            postings, bit-identical scores).  Ignored when
            ``serving_shards`` >= 1.
        durability: optional WAL/snapshot manager.  When set, the
            docstore, property graph, keyword index, and review queue
            are attached to it, every registered report commits as one
            atomic WAL record, and :meth:`recover` rebuilds all four
            stores from disk after a crash.  Sharded serving participates through
            its facades: one WAL record still carries a whole document.
    """

    extractor: ClinicalExtractor
    store: DocumentStore = field(default_factory=DocumentStore)
    grobid: GrobidService = field(default_factory=GrobidService)
    stats: PipelineStats = field(default_factory=PipelineStats)
    workers: int = 1
    executor_mode: str = "thread"
    parse_retries: int = 2
    serving_shards: int = 0
    query_cache_size: int = 256
    segment_dir: str | None = None
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: SpanTracer = field(default_factory=SpanTracer)
    durability: DurabilityManager | None = None

    def __post_init__(self) -> None:
        parser = QueryParser(self.extractor.ner, self.extractor.temporal)
        serving_stats = None
        if self.serving_shards >= 1:
            self.indexer = ShardedIrIndexer(
                self.serving_shards,
                cache_size=self.query_cache_size,
                metrics=self.metrics,
            )
            self.searcher = ShardedIrSearcher(
                self.indexer,
                parser=parser,
                metrics=self.metrics,
                cache_size=self.query_cache_size,
            )
            serving_stats = self._serving_stats
        else:
            engine = None
            if self.segment_dir is not None:
                from repro.search.segment_engine import (
                    create_segment_ir_engine,
                )

                engine = create_segment_ir_engine(self.segment_dir)
            self.indexer = CreateIrIndexer(engine=engine)
            self.indexer.engine.metrics = self.metrics
            self.searcher = CreateIrSearcher(
                self.indexer, parser=parser, metrics=self.metrics
            )
        if self.durability is not None:
            # Attach order is replay order; all three stores recover
            # together so a document is either fully visible everywhere
            # or absent everywhere.  The sharded facades speak the same
            # Durable protocol (ops tagged with their shard).
            self.durability.attach("docstore", self.store)
            self.durability.attach("graph", self.indexer.graph)
            self.durability.attach("index", self.indexer.engine)
        self.app = CreateApplication(
            store=self.store,
            indexer=self.indexer,
            searcher=self.searcher,
            grobid=self.grobid,
            extractor=self.extractor.extract,
            metrics=self.metrics,
            runtime_stats=lambda: self.stats.as_dict(),
            serving_stats=serving_stats,
            durability=self.durability,
        )
        if self.durability is not None:
            # Review claims/decisions replay after the stores they
            # reference: a recovered claim always finds its report.
            self.durability.attach("review", self.app.review)

    def _serving_stats(self) -> dict:
        """The ``/stats`` serving section (sharded configuration only)."""
        payload = self.indexer.serving_stats()
        ir_cache = self.searcher.cache_stats()
        if ir_cache is not None:
            payload["ir_cache"] = ir_cache
        return payload

    def recover(self) -> RecoveryReport:
        """Rebuild the docstore, graph, and keyword index from the
        durability manager's snapshot + WAL.

        Raises:
            PipelineError: the pipeline has no durability manager.
        """
        if self.durability is None:
            raise PipelineError("pipeline has no durability manager")
        return self.durability.recover()

    def ingest_from_site(
        self,
        site: SyntheticPubMed,
        max_pages: int | None = None,
        workers: int | None = None,
    ) -> PipelineStats:
        """Crawl a site and run every captured publication through
        parse -> extract -> index -> store.

        Stages:

        1. **crawl** (serial): frontier-driven capture.
        2. **parse+extract** (parallel over ``workers``): Grobid parse
           with bounded retry for transient service errors, then NER +
           temporal extraction.  Per-document failures dead-letter;
           unexpected exceptions propagate.
        3. **index/store** (serial, input order): keeps graph/keyword
           index contents byte-identical at any worker count.
        """
        workers = self.workers if workers is None else workers
        with self.tracer.span(
            "pipeline.ingest", workers=workers
        ), self.metrics.time("pipeline.ingest_seconds"):
            with self.tracer.span("pipeline.crawl"), self.metrics.time(
                "pipeline.crawl_seconds"
            ):
                crawler = Crawler(site, metrics=self.metrics)
                results = crawler.crawl(max_pages=max_pages)
            self.stats.crawled += len(results)
            self.metrics.increment("pipeline.crawled", len(results))

            payloads = self._assign_doc_ids(results)
            with self.tracer.span(
                "pipeline.parse_extract",
                documents=len(payloads),
                workers=workers,
            ), self.metrics.time("pipeline.parse_extract_seconds"):
                executor = BatchExecutor(
                    workers=workers,
                    mode=self.executor_mode,
                    initializer=_init_ingest_worker,
                    initargs=(self.grobid, self.extractor, self.parse_retries),
                )
                outcomes = executor.map(_parse_extract, payloads)
            extracted = self._collect_outcomes(payloads, outcomes)

            with self.tracer.span(
                "pipeline.index", documents=len(extracted)
            ), self.metrics.time("pipeline.index_stage_seconds"):
                self._index_documents(extracted)

        self.stats.graph_nodes = self.indexer.graph.n_nodes
        self.stats.graph_edges = self.indexer.graph.n_edges
        return self.stats

    # -- ingest stages -----------------------------------------------------

    def _assign_doc_ids(
        self, results: list[CrawlResult]
    ) -> list[tuple[str, str, str]]:
        """Derive doc ids from URLs, disambiguating collisions.

        Two URLs sharing a final path segment (or a segment already in
        the store) would silently overwrite each other; instead the
        later one gets a deterministic ``<id>~<n>`` suffix and the
        collision is counted.
        """
        reports = self.store.collection("reports")
        seen: set[str] = set()
        payloads = []
        for result in results:
            base = result.url.rsplit("/", 1)[-1]
            doc_id = base
            suffix = 2
            while doc_id in seen or reports.get(doc_id) is not None:
                doc_id = f"{base}~{suffix}"
                suffix += 1
            if doc_id != base:
                self.stats.id_collisions += 1
                self.metrics.increment("pipeline.id_collisions")
            seen.add(doc_id)
            payloads.append((doc_id, result.body, result.content_type))
        return payloads

    def _collect_outcomes(self, payloads, outcomes) -> list[_ExtractedDoc]:
        """Apply the failure policy to batch outcomes, in input order."""
        extracted: list[_ExtractedDoc] = []
        for payload, outcome in zip(payloads, outcomes):
            doc_id = payload[0]
            if outcome.ok:
                doc: _ExtractedDoc = outcome.value
                self.stats.parsed += 1
                self.stats.extracted += 1
                self.stats.parse_retries += doc.parse_attempts - 1
                self.metrics.record(
                    "pipeline.parse_seconds", doc.parse_seconds
                )
                self.metrics.record(
                    "pipeline.extract_seconds", doc.extract_seconds
                )
                extracted.append(doc)
                continue
            error = outcome.error
            if not isinstance(error, StageFailure):
                # Unexpected failure: propagate instead of eating it.
                raise error
            self._dead_letter(
                doc_id,
                error.stage,
                error.error_type,
                error.message,
                error.attempts,
            )
            if error.stage == "parse":
                self.stats.parse_failures += 1
                self.stats.parse_failed_ids.append(doc_id)
                self.stats.parse_retries += error.attempts - 1
            else:
                self.stats.parsed += 1  # parse succeeded, extract failed
                self.stats.parse_retries += error.attempts - 1
                self.stats.extract_failures += 1
        return extracted

    def _index_documents(self, extracted: list[_ExtractedDoc]) -> None:
        skips_before = self.indexer.contradiction_skips
        closures_before = self.indexer.closure_failures
        for doc in extracted:
            document = {
                "_id": doc.doc_id,
                "title": doc.title,
                "authors": doc.authors,
                "abstract": doc.abstract,
                "text": doc.text,
                "source": doc.source,
            }
            try:
                with self.metrics.time("pipeline.index_seconds"):
                    self.app.register_report(document, doc.annotations)
            except ReproError as exc:
                self.stats.index_failures += 1
                self._dead_letter(
                    doc.doc_id, "index", type(exc).__name__, str(exc)
                )
                continue
            self.stats.indexed += 1
            self.metrics.increment("pipeline.indexed")
        if self.durability is not None:
            # Drain any group-commit remainder: every indexed document
            # must be acknowledged (fsynced) before the stage returns.
            self.durability.flush()
        self.stats.contradiction_skips += (
            self.indexer.contradiction_skips - skips_before
        )
        self.stats.closure_failures += (
            self.indexer.closure_failures - closures_before
        )

    def _dead_letter(
        self,
        doc_id: str,
        stage: str,
        error_type: str,
        message: str,
        attempts: int = 1,
    ) -> None:
        self.stats.dead_letters.append(
            DeadLetter(doc_id, stage, error_type, message, attempts)
        )
        self.metrics.increment("pipeline.dead_letters")
        self.metrics.increment(f"pipeline.dead_letters.{stage}")


def build_demo_system(
    n_reports: int = 100,
    n_train: int = 60,
    seed: int = 0,
    use_gold_annotations: bool = False,
    workers: int = 1,
) -> tuple[CreatePipeline, list[CaseReport]]:
    """Standard demo configuration: train, crawl, ingest, serve.

    Args:
        n_reports: size of the served corpus.
        n_train: gold-annotated reports used to train the extractors
            (disjoint from the served corpus).
        use_gold_annotations: index gold annotations instead of running
            extraction (the "perfect extraction" upper bound).
        workers: parse+extract pool size for the ingest stage.

    Returns:
        (pipeline, served_reports) — the reports list carries the gold
        layers for evaluation.
    """
    train_generator = CaseReportGenerator(seed=seed + 900)
    train_reports = [
        train_generator.generate(f"train-{i:04d}", "cardiovascular")
        for i in range(n_train)
    ]
    unlabeled = [
        [token.text for token in tokenize(report.text)]
        for report in train_reports
    ]
    extractor = ClinicalExtractor.train(
        train_reports, unlabeled_sentences=unlabeled, seed=seed + 13
    )
    pipeline = CreatePipeline(extractor=extractor, workers=workers)

    reports = build_corpus(n_reports, seed=seed)
    if use_gold_annotations:
        for report in reports:
            pipeline.app.register_report(
                report.to_document(), report.annotations
            )
        pipeline.stats.indexed = len(reports)
    else:
        site = SyntheticPubMed(reports, seed=seed)
        pipeline.ingest_from_site(site)
    return pipeline, reports
