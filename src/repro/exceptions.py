"""Exception hierarchy shared across the repro package.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch one base type at API boundaries while still being able to
distinguish failure modes precisely in tests.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SchemaError(ReproError):
    """A type label or relation violates the clinical typing schema."""


class AnnotationError(ReproError):
    """Malformed standoff annotation data (BRAT .ann)."""


class SpanError(AnnotationError):
    """A text-bound span is inconsistent with its document text."""


class DocumentStoreError(ReproError):
    """Base error for the document store (MongoDB analog)."""


class DuplicateKeyError(DocumentStoreError):
    """An _id that already exists was inserted again."""


class QueryError(DocumentStoreError):
    """A document-store query uses an unknown operator or bad operand."""


class SearchError(ReproError):
    """Base error for the full-text search engine (ElasticSearch analog)."""


class AnalyzerError(SearchError):
    """An analysis chain was configured with unknown components."""


class GraphError(ReproError):
    """Base error for the property graph store (Neo4j analog)."""


class CypherError(GraphError):
    """A mini-Cypher query failed to parse or execute."""


class ParseError(ReproError):
    """A publication document (SimPDF / TEI XML) could not be parsed."""


class TransientParseError(ParseError):
    """A retryable parse-service failure (timeouts, overload).

    The real Grobid is a remote service; callers are expected to retry
    a bounded number of times before dead-lettering the document.
    """


class StageFailure(ReproError):
    """One document failed in one named pipeline stage.

    Carries everything a dead-letter record needs — the stage, the
    original error's type name and message, and how many attempts were
    made — as plain strings so the failure crosses process boundaries.
    """

    def __init__(
        self, stage: str, error_type: str, message: str, attempts: int = 1
    ):
        super().__init__(f"{stage} failed ({error_type}): {message}")
        self.stage = stage
        self.error_type = error_type
        self.message = message
        self.attempts = attempts

    def __reduce__(self):
        return (
            StageFailure,
            (self.stage, self.error_type, self.message, self.attempts),
        )


class DurabilityError(ReproError):
    """The write-ahead log or snapshot machinery failed.

    Raised for failed flushes (the commit was *not* acknowledged),
    corrupt snapshots, and attempts to commit through a manager that
    has been poisoned by an earlier disk error.
    """


class ServingError(ReproError):
    """Base error for the replicated serving tier and async front end."""


class ReplicaError(ServingError):
    """A shard replica set cannot serve: the primary is down and no
    replica is eligible for promotion (or promotion itself failed)."""


class LoadShedError(ServingError):
    """The front end rejected a request at admission: the bounded
    queue is full.  This is the *fast* failure mode — the caller got an
    immediate answer instead of queueing toward collapse."""

    status = 429


class DeadlineExceededError(ServingError):
    """A request ran out of its deadline budget (queueing included)."""

    status = 504


class CrawlError(ReproError):
    """The crawler could not fetch or process a URL."""


class ModelError(ReproError):
    """An ML model was used before fitting, or with bad shapes."""


class NotFittedError(ModelError):
    """Predict/transform called on an unfitted model."""


class TemporalInconsistencyError(ReproError):
    """A temporal graph contains contradictory relations."""


class PipelineError(ReproError):
    """End-to-end pipeline orchestration failure."""


class CohortError(ReproError):
    """Malformed cohort definition or criterion."""


class ReviewError(ReproError):
    """Invalid review-queue operation (unknown claim, bad decision)."""


class ApiError(ReproError):
    """Application-facade request failure, carries an HTTP-like status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message
