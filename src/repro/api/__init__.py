"""Application facade: the library equivalent of CREATe's backend API.

The demo serves a React frontend from an Express REST backend; the
reproducible part is the request surface, implemented here as an
in-process application with JSON request/response endpoints covering
report submission (including the Grobid-backed PDF service), search,
annotation management and visualization.
"""

from repro.api.app import CreateApplication, Response

__all__ = ["CreateApplication", "Response"]
