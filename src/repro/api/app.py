"""The CREATe application: endpoints over the assembled subsystems.

Routes (method, path template):

* ``POST /submissions``          — submit a publication (SimPDF or TEI
  XML); runs the Grobid service, extraction, and indexing.
* ``GET  /reports``              — list reports (``category``, ``skip``,
  ``limit`` params).
* ``GET  /reports/{id}``         — one report's stored document.
* ``GET  /reports/{id}/graph``   — its knowledge graph as JSON.
* ``GET  /reports/{id}/svg``     — its Figure-7 SVG visualization.
* ``GET  /reports/{id}/timeline``— its timeline SVG.
* ``GET  /reports/{id}/ann``     — its annotations in BRAT format.
* ``PUT  /reports/{id}/ann``     — replace annotations (validated).
* ``GET  /search``               — CREATe-IR search (``q``, ``size``).
* ``GET  /stats``                — corpus statistics (Figure 1 data).
* ``GET  /review/queue``         — undecided claims (``skip``, ``limit``,
  ``doc_id`` params).
* ``GET  /review/claims/{id}``   — one claim with its decisions.
* ``POST /review/claims/{id}/decision`` — record a reviewer verdict.
* ``GET  /review/reports/{id}``  — HTML evidence view with decision
  anchors.
* ``GET  /review/agreement``     — inter-reviewer agreement over
  doubly-reviewed claims.

All integer query parameters are validated by :func:`_int_param`:
non-integers and negatives return 400, never 500.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.annotation.brat import parse_ann, serialize_ann
from repro.annotation.model import AnnotationDocument
from repro.cohort.engine import CohortEngine
from repro.cohort.fhir import cohort_bundle
from repro.cohort.model import CohortDefinition
from repro.docstore.store import DocumentStore
from repro.exceptions import AnnotationError, ApiError, ParseError, ReproError
from repro.grobid.service import GrobidService
from repro.ir.indexer import CreateIrIndexer
from repro.ir.searcher import CreateIrSearcher
from repro.review.queue import ReviewQueue
from repro.schema.validation import SchemaValidator
from repro.temporal.graph import TemporalGraph
from repro.temporal.relations import THREE_WAY_ALGEBRA
from repro.viz.svg import GraphStyle, render_graph_svg
from repro.viz.timeline import render_timeline_svg

if TYPE_CHECKING:  # pragma: no cover
    from repro.durability import DurabilityManager
    from repro.runtime.metrics import MetricsRegistry


def _int_param(params: dict, name: str, default: int) -> int:
    """A non-negative integer query parameter, or 400.

    ``int()`` on raw query input raises bare ``ValueError``/``TypeError``
    which the dispatcher would surface as a 500; this helper turns both
    malformed and negative values into a client-visible 400.
    """
    raw = params.get(name, default)
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise ApiError(
            400, f"{name} must be an integer, got {raw!r}"
        ) from None
    if value < 0:
        raise ApiError(400, f"{name} must be non-negative, got {value}")
    return value


def _opt_int_field(body: dict, name: str) -> int | None:
    """An optional integer body field, or 400."""
    raw = body.get(name)
    if raw is None:
        return None
    try:
        return int(raw)
    except (TypeError, ValueError):
        raise ApiError(
            400, f"{name} must be an integer, got {raw!r}"
        ) from None


@dataclass
class Response:
    """HTTP-like response envelope."""

    status: int
    body: Any

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


@dataclass
class CreateApplication:
    """The assembled application.

    Args:
        store: document store holding report metadata + text.
        indexer: populated dual index.
        searcher: the CREATe-IR searcher over ``indexer``.
        grobid: publication parsing service.
        extractor: optional callable ``(doc_id, text) ->
            AnnotationDocument`` running NER + temporal extraction on
            submissions (submissions index keyword-only when absent).
        metrics: optional runtime metrics registry; when present,
            ``/stats`` serves its counter/timer snapshot.
        runtime_stats: optional callable returning pipeline run
            counters (dead letters, failures) for ``/stats``.
        serving_stats: optional callable returning the sharded serving
            layer's health (shards, epochs, cache hit rates, replica
            lag, promotions) for ``/stats``.
        frontend_stats: optional callable returning the async front
            end's admission health (shed/timeout/retry counters,
            per-route latency percentiles) for ``/stats``.
        durability: optional WAL manager; when present, every
            report-mutating request seals its journaled ops into one
            commit record, and ``/stats`` serves WAL/recovery health.
        review: the durable review queue; registered reports with
            annotations are enrolled automatically and ``/review``
            routes serve it.
    """

    store: DocumentStore
    indexer: CreateIrIndexer
    searcher: CreateIrSearcher
    grobid: GrobidService = field(default_factory=GrobidService)
    extractor: Callable[[str, str], AnnotationDocument] | None = None
    validator: SchemaValidator = field(default_factory=SchemaValidator)
    metrics: "MetricsRegistry | None" = None
    runtime_stats: Callable[[], dict] | None = None
    serving_stats: Callable[[], dict] | None = None
    frontend_stats: Callable[[], dict] | None = None
    durability: "DurabilityManager | None" = None
    review: ReviewQueue = field(default_factory=ReviewQueue)

    def __post_init__(self) -> None:
        self._annotations: dict[str, AnnotationDocument] = {}
        self._routes = [
            ("POST", re.compile(r"^/submissions$"), self._post_submission),
            ("GET", re.compile(r"^/reports$"), self._list_reports),
            ("GET", re.compile(r"^/reports/(?P<doc_id>[^/]+)$"), self._get_report),
            ("GET", re.compile(r"^/reports/(?P<doc_id>[^/]+)/graph$"), self._get_graph),
            ("GET", re.compile(r"^/reports/(?P<doc_id>[^/]+)/svg$"), self._get_svg),
            ("GET", re.compile(r"^/reports/(?P<doc_id>[^/]+)/timeline$"), self._get_timeline),
            ("GET", re.compile(r"^/reports/(?P<doc_id>[^/]+)/ann$"), self._get_ann),
            ("PUT", re.compile(r"^/reports/(?P<doc_id>[^/]+)/ann$"), self._put_ann),
            ("DELETE", re.compile(r"^/reports/(?P<doc_id>[^/]+)$"), self._delete_report),
            ("GET", re.compile(r"^/reports/(?P<doc_id>[^/]+)/html$"), self._get_html),
            ("GET", re.compile(r"^/search$"), self._search),
            ("GET", re.compile(r"^/suggest$"), self._suggest),
            ("GET", re.compile(r"^/stats$"), self._stats),
            ("GET", re.compile(r"^/categories$"), self._categories),
            ("POST", re.compile(r"^/cohorts$"), self._post_cohort),
            ("GET", re.compile(r"^/cohorts$"), self._list_cohorts),
            ("GET", re.compile(r"^/cohorts/(?P<name>[^/]+)$"), self._get_cohort),
            ("DELETE", re.compile(r"^/cohorts/(?P<name>[^/]+)$"), self._delete_cohort),
            ("POST", re.compile(r"^/cohorts/(?P<name>[^/]+)/evaluate$"), self._evaluate_cohort),
            ("GET", re.compile(r"^/cohorts/(?P<name>[^/]+)/fhir$"), self._export_cohort_fhir),
            ("GET", re.compile(r"^/review/queue$"), self._review_queue),
            ("GET", re.compile(r"^/review/claims/(?P<claim_id>[^/]+)$"), self._review_claim),
            ("POST", re.compile(r"^/review/claims/(?P<claim_id>[^/]+)/decision$"), self._review_decide),
            ("GET", re.compile(r"^/review/reports/(?P<doc_id>[^/]+)$"), self._review_report),
            ("GET", re.compile(r"^/review/agreement$"), self._review_agreement),
        ]
        self._suggester = None
        self.cohorts = CohortEngine(
            self.store,
            self.indexer.graph,
            self.indexer.engine,
            self._annotations.get,
        )

    # -- dispatch ------------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        body: Any = None,
        params: dict | None = None,
    ) -> Response:
        """Route a request; never raises (errors map to status codes)."""
        params = params or {}
        for route_method, pattern, handler in self._routes:
            if route_method != method.upper():
                continue
            match = pattern.match(path)
            if match is None:
                continue
            try:
                return handler(body=body, params=params, **match.groupdict())
            except ApiError as exc:
                return Response(exc.status, {"error": exc.message})
            except ReproError as exc:
                return Response(400, {"error": str(exc)})
        return Response(404, {"error": f"no route for {method} {path}"})

    # -- registration used by the pipeline ------------------------------------

    def register_report(
        self,
        document: dict,
        annotations: AnnotationDocument | None = None,
    ) -> str:
        """Store an already-extracted report and index it.

        Returns the stored ``_id``.

        With a durability manager, the docstore insert, graph load and
        keyword indexing land in one WAL commit record — recovery
        either replays the whole document or none of it.  The commit
        runs even when indexing fails partway so the log stays faithful
        to the in-memory (dead-lettered) state.
        """
        self._suggester = None  # vocabulary changed
        try:
            doc_id = self.store.collection("reports").insert_one(document)
            if annotations is not None:
                self._annotations[doc_id] = annotations
                self.indexer.index_annotation_document(
                    doc_id, document.get("title", ""), annotations
                )
                self.review.enqueue_document(doc_id, annotations)
            else:
                self.indexer.engine.index(
                    doc_id,
                    {
                        "title": document.get("title", ""),
                        "body": document.get("text", ""),
                    },
                )
        finally:
            if self.durability is not None:
                self.durability.commit()
        return doc_id

    # -- handlers ------------------------------------------------------------------

    def _post_submission(self, body: Any, params: dict) -> Response:
        if not isinstance(body, str) or not body.strip():
            raise ApiError(400, "submission body must be document content")
        try:
            publication = self.grobid.process(body)
        except ParseError as exc:
            raise ApiError(422, f"could not parse submission: {exc}") from exc
        text = publication.body_text()
        document = {
            "title": publication.metadata.title,
            "authors": publication.metadata.authors,
            "affiliations": publication.metadata.affiliations,
            "abstract": publication.metadata.abstract,
            "text": text,
            "source": "user-submission",
        }
        annotations = None
        if self.extractor is not None:
            doc_id_hint = f"sub-{self.store.collection('reports').count() + 1}"
            annotations = self.extractor(doc_id_hint, text)
        doc_id = self.register_report(document, annotations)
        return Response(
            201,
            {
                "id": doc_id,
                "title": publication.metadata.title,
                "authors": publication.metadata.authors,
                "n_sections": len(publication.sections),
                "extracted": annotations is not None,
            },
        )

    def _list_reports(self, body: Any, params: dict) -> Response:
        query = {}
        if "category" in params:
            query["category"] = params["category"]
        reports = self.store.collection("reports").find(
            query,
            sort=[("_id", 1)],
            skip=_int_param(params, "skip", 0),
            limit=_int_param(params, "limit", 20),
            projection=["title", "category", "year", "journal"],
        )
        return Response(200, {"reports": reports})

    def _get_report(self, body: Any, params: dict, doc_id: str) -> Response:
        document = self.store.collection("reports").get(doc_id)
        if document is None:
            raise ApiError(404, f"unknown report {doc_id}")
        return Response(200, document)

    def _get_graph(self, body: Any, params: dict, doc_id: str) -> Response:
        self._require_report(doc_id)
        nodes = [
            {"nodeId": node.node_id, **node.properties}
            for node in self.indexer.graph.find_nodes(doc_id=doc_id)
        ]
        node_ids = {node["nodeId"] for node in nodes}
        edges = [
            {
                "source": edge.source,
                "target": edge.target,
                "label": edge.label,
                "inferred": bool(edge.get("inferred", False)),
            }
            for edge in self.indexer.graph.edges()
            if edge.source in node_ids
        ]
        return Response(200, {"nodes": nodes, "edges": edges})

    def _get_svg(self, body: Any, params: dict, doc_id: str) -> Response:
        self._require_report(doc_id)
        svg = render_graph_svg(
            self.indexer.graph,
            GraphStyle(),
            node_filter=lambda node: node.get("doc_id") == doc_id,
        )
        return Response(200, svg)

    def _get_timeline(self, body: Any, params: dict, doc_id: str) -> Response:
        self._require_report(doc_id)
        graph = TemporalGraph(algebra=THREE_WAY_ALGEBRA)
        labels = {}
        for node in self.indexer.graph.find_nodes(doc_id=doc_id):
            labels[node.node_id] = str(node.get("label", node.node_id))
            for edge in self.indexer.graph.out_edges(node.node_id):
                if edge.label in ("BEFORE", "OVERLAP"):
                    try:
                        graph.add(edge.source, edge.target, edge.label)
                    except ReproError:
                        continue
        return Response(200, render_timeline_svg(graph, labels))

    def _get_ann(self, body: Any, params: dict, doc_id: str) -> Response:
        annotations = self._annotations.get(doc_id)
        if annotations is None:
            raise ApiError(404, f"no annotations for {doc_id}")
        return Response(200, serialize_ann(annotations))

    def _put_ann(self, body: Any, params: dict, doc_id: str) -> Response:
        document = self._require_report(doc_id)
        if not isinstance(body, str):
            raise ApiError(400, "annotation body must be .ann content")
        try:
            annotations = parse_ann(doc_id, document.get("text", ""), body)
        except AnnotationError as exc:
            raise ApiError(422, f"bad annotations: {exc}") from exc
        issues = self.validator.validate(annotations)
        if issues:
            return Response(
                422,
                {
                    "error": "schema violations",
                    "issues": [
                        {"ann_id": issue.ann_id, "code": issue.code}
                        for issue in issues
                    ],
                },
            )
        self._annotations[doc_id] = annotations
        self.review.drop_document(doc_id)
        self.review.enqueue_document(doc_id, annotations)
        if self.durability is not None:
            self.durability.commit()
        return Response(200, {"id": doc_id, "spans": len(annotations.textbounds)})

    def _delete_report(self, body: Any, params: dict, doc_id: str) -> Response:
        self._require_report(doc_id)
        self.store.collection("reports").delete_one({"_id": doc_id})
        self.indexer.engine.delete(doc_id)
        for node in self.indexer.graph.find_nodes(doc_id=doc_id):
            self.indexer.graph.remove_node(node.node_id)
        self._annotations.pop(doc_id, None)
        self.review.drop_document(doc_id)
        self._suggester = None  # vocabulary changed
        if self.durability is not None:
            self.durability.commit()
        return Response(200, {"deleted": doc_id})

    def _search(self, body: Any, params: dict) -> Response:
        query = params.get("q", "")
        if not query:
            raise ApiError(400, "missing query parameter q")
        size = _int_param(params, "size", 10)
        want_highlight = str(params.get("highlight", "")).lower() in (
            "1",
            "true",
            "yes",
        )
        results = self.searcher.search(query, size=size)
        rows = []
        for result in results:
            row = {
                "id": result.doc_id,
                "score": result.score,
                "engine": result.engine,
            }
            if want_highlight:
                row["highlights"] = self.indexer.engine.highlight(
                    result.doc_id, "body", query
                )
            rows.append(row)
        return Response(200, {"query": query, "results": rows})

    def _stats(self, body: Any, params: dict) -> Response:
        reports = self.store.collection("reports")
        by_category = {
            category: reports.count({"category": category})
            for category in reports.distinct("category")
        }
        payload = {
            "n_reports": len(reports),
            "by_category": by_category,
            "graph_nodes": self.indexer.graph.n_nodes,
            "graph_edges": self.indexer.graph.n_edges,
            "indexer": self.indexer.stats(),
        }
        planner_stats = getattr(self.indexer.graph, "planner_stats", None)
        if planner_stats is not None:
            payload["planner"] = planner_stats()
        if self.runtime_stats is not None:
            payload["pipeline"] = self.runtime_stats()
        if self.serving_stats is not None:
            payload["serving"] = self.serving_stats()
        if self.frontend_stats is not None:
            payload["frontend"] = self.frontend_stats()
        if self.metrics is not None:
            payload["metrics"] = self.metrics.snapshot()
        if self.durability is not None:
            payload["durability"] = self.durability.stats()
        payload["cohort"] = self.cohorts.stats()
        payload["review"] = self.review.stats()
        return Response(200, payload)

    def _get_html(self, body: Any, params: dict, doc_id: str) -> Response:
        from repro.viz.report_html import render_report_html

        document = self._require_report(doc_id)
        annotations = self._annotations.get(doc_id)
        if annotations is None:
            raise ApiError(404, f"no annotations for {doc_id}")
        html = render_report_html(
            annotations,
            title=document.get("title", ""),
            metadata={
                key: document[key]
                for key in ("authors", "journal", "year", "category")
                if document.get(key)
            },
        )
        return Response(200, html)

    def _suggest(self, body: Any, params: dict) -> Response:
        from repro.search.suggest import QuerySuggester

        prefix = params.get("q", "")
        if not prefix:
            raise ApiError(400, "missing query parameter q")
        if self._suggester is None:
            suggester = QuerySuggester()
            suggester.add_from_graph(self.indexer.graph)
            suggester.add_from_ontology(self.indexer.normalizer.ontology)
            self._suggester = suggester
        limit = _int_param(params, "size", 8)
        return Response(
            200,
            {
                "suggestions": [
                    {"text": s.text, "weight": s.weight, "source": s.source}
                    for s in self._suggester.suggest(prefix, limit=limit)
                ]
            },
        )

    def _categories(self, body: Any, params: dict) -> Response:
        """The Figure 1 data: per-category counts and shares, computed
        with the document store's aggregation pipeline."""
        rows = self.store.collection("reports").aggregate(
            [
                {"$match": {"category": {"$exists": True}}},
                {"$group": {"_id": "$category", "count": {"$count": 1}}},
                {"$sort": {"count": -1}},
            ]
        )
        total = sum(row["count"] for row in rows) or 1
        return Response(
            200,
            {
                "categories": [
                    {
                        "category": row["_id"],
                        "count": row["count"],
                        "share": row["count"] / total,
                    }
                    for row in rows
                ]
            },
        )

    # -- cohorts -------------------------------------------------------------

    def _post_cohort(self, body: Any, params: dict) -> Response:
        """Define (or replace) a named cohort; the definition is
        validated and persisted in the docstore."""
        definition = CohortDefinition.from_json(body)
        cohorts = self.store.collection("cohorts")
        cohorts.delete_one({"_id": definition.name})
        cohorts.insert_one({"_id": definition.name, **definition.to_json()})
        return Response(201, definition.to_json())

    def _list_cohorts(self, body: Any, params: dict) -> Response:
        rows = self.store.collection("cohorts").find(
            sort=[("_id", 1)], projection=["name", "description"]
        )
        return Response(200, {"cohorts": rows})

    def _get_cohort(self, body: Any, params: dict, name: str) -> Response:
        return Response(200, self._require_cohort(name).to_json())

    def _delete_cohort(self, body: Any, params: dict, name: str) -> Response:
        self._require_cohort(name)
        self.store.collection("cohorts").delete_one({"_id": name})
        return Response(200, {"deleted": name})

    def _evaluate_cohort(
        self, body: Any, params: dict, name: str
    ) -> Response:
        """Evaluate a cohort; ``skip``/``limit`` paginate the member
        list while ``size`` always reports the full cohort."""
        definition = self._require_cohort(name)
        result = self.cohorts.evaluate(definition)
        skip = _int_param(params, "skip", 0)
        limit = _int_param(params, "limit", 50)
        payload = result.as_dict()
        payload["members"] = result.members[skip : skip + limit]
        payload["skip"] = skip
        payload["limit"] = limit
        return Response(200, payload)

    def _export_cohort_fhir(
        self, body: Any, params: dict, name: str
    ) -> Response:
        """The cohort as a FHIR-style Bundle with span provenance."""
        definition = self._require_cohort(name)
        result = self.cohorts.evaluate(definition)
        bundle = cohort_bundle(
            name, result.members, self._annotations.get
        )
        return Response(200, bundle)

    def _require_cohort(self, name: str) -> CohortDefinition:
        stored = self.store.collection("cohorts").get(name)
        if stored is None:
            raise ApiError(404, f"unknown cohort {name}")
        return CohortDefinition.from_json(
            {key: value for key, value in stored.items() if key != "_id"}
        )

    def _require_report(self, doc_id: str) -> dict:
        document = self.store.collection("reports").get(doc_id)
        if document is None:
            raise ApiError(404, f"unknown report {doc_id}")
        return document

    # -- review --------------------------------------------------------------

    @staticmethod
    def _claim_payload(claim, decisions) -> dict:
        return {
            "claim": claim.to_json(),
            "status": "decided" if decisions else "queued",
            "decisions": [decision.to_json() for decision in decisions],
        }

    def _review_queue(self, body: Any, params: dict) -> Response:
        """Undecided claims in queue order, paginated."""
        skip = _int_param(params, "skip", 0)
        limit = _int_param(params, "limit", 20)
        queued = self.review.queued(doc_id=params.get("doc_id"))
        return Response(
            200,
            {
                "total": len(queued),
                "skip": skip,
                "limit": limit,
                "claims": [
                    claim.to_json()
                    for claim in queued[skip : skip + limit]
                ],
            },
        )

    def _review_claim(self, body: Any, params: dict, claim_id: str) -> Response:
        claim = self.review.claim(claim_id)
        if claim is None:
            raise ApiError(404, f"unknown claim {claim_id}")
        return Response(
            200,
            self._claim_payload(claim, self.review.decisions_of(claim_id)),
        )

    def _review_decide(self, body: Any, params: dict, claim_id: str) -> Response:
        """Record one reviewer's verdict; the decision is journaled and
        committed through the WAL before the response acknowledges it."""
        if self.review.claim(claim_id) is None:
            raise ApiError(404, f"unknown claim {claim_id}")
        if not isinstance(body, dict):
            raise ApiError(400, "decision body must be a JSON object")
        decision = self.review.decide(
            claim_id,
            reviewer=str(body.get("reviewer", "")),
            verdict=str(body.get("verdict", "")),
            label=(
                None if body.get("label") is None else str(body["label"])
            ),
            start=_opt_int_field(body, "start"),
            end=_opt_int_field(body, "end"),
            note=str(body.get("note", "")),
        )
        if self.durability is not None:
            self.durability.commit()
        return Response(
            201,
            {
                "decision": decision.to_json(),
                "queue_depth": self.review.stats()["queue_depth"],
            },
        )

    def _review_report(self, body: Any, params: dict, doc_id: str) -> Response:
        """The HTML evidence view: highlighted spans with per-claim
        decision anchors."""
        from repro.review.html import render_review_html

        if self.review.document_text(doc_id) is None:
            raise ApiError(404, f"report {doc_id} is not under review")
        return Response(200, render_review_html(self.review, doc_id))

    def _review_agreement(self, body: Any, params: dict) -> Response:
        pair = self.review.pair_agreement()
        if pair is None:
            return Response(200, {"doubly_reviewed": 0})
        return Response(
            200,
            {
                "doubly_reviewed": self.review.stats()["double_reviewed"],
                "reviewer_a": pair.reviewer_a,
                "reviewer_b": pair.reviewer_b,
                "n_claims": pair.n_claims,
                "verdict_kappa": pair.verdict_kappa,
                "span_f1": pair.report.span_f1.f1,
                "token_kappa": pair.report.token_kappa,
                "relation_f1": pair.report.relation_f1.f1,
                "n_documents": pair.report.n_documents,
            },
        )
