"""The local pairwise temporal relation classifier.

Features follow the classic temporal-RE recipe: surfaces and types of
the two events, the words between them (with special weight on
temporal cue words like "later", "subsequently", "at the same time"),
narrative distance, and sentence structure.  The model is multinomial
logistic regression over hashed features; the PSL trainer in
:mod:`repro.temporal.psl` reuses this class's featurization and
parameters, adding the soft-logic gradient.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import sparse

from repro.annotation.model import AnnotationDocument, TextBound
from repro.corpus.datasets import TemporalDocument, TemporalInstance
from repro.exceptions import ModelError, NotFittedError
from repro.ml.features import FeatureHasher
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import PRF1, classification_f1
from repro.text.tokenize import tokenize

_CUE_WORDS = frozenset(
    {
        "later", "after", "before", "subsequently", "then", "while",
        "during", "following", "prior", "earlier", "simultaneously",
        "meanwhile", "next", "initially", "finally", "afterwards",
        "admission", "discharge", "until", "when", "and",
        "thereafter", "concurrently", "accompanied", "progressing",
        "completing", "concluded", "amid", "once", "shortly", "soon",
        "parallel", "together", "midst", "conjunction", "along",
    }
)


def pair_features(
    doc: AnnotationDocument,
    src: TextBound,
    tgt: TextBound,
    narrative_distance: int,
    max_context_distance: int = 2,
) -> list[str]:
    """Feature strings for an ordered event pair in its document.

    Lexical context (cue words between the mentions, local windows) is
    only extracted for pairs up to ``max_context_distance`` events
    apart: for long-range pairs the intervening text is dominated by
    *other* events' cues, which mislead more than they inform — such
    pairs carry only type/distance priors, making them exactly the
    cases global transitive inference (the paper's Figure 5 argument)
    must recover.
    """
    first, second = (src, tgt) if src.start <= tgt.start else (tgt, src)
    between_text = doc.text[first.end : second.start]
    between_tokens = [t.lower for t in tokenize(between_text)]

    feats = [
        f"src_label={src.label}",
        f"tgt_label={tgt.label}",
        f"label_pair={src.label}|{tgt.label}",
        f"dist={min(narrative_distance, 5)}",
        f"pair_dist={src.label}|{tgt.label}|{min(narrative_distance, 5)}",
        f"textorder={'src_first' if src.start <= tgt.start else 'tgt_first'}",
        f"n_between={min(len(between_tokens), 20) // 5}",
        f"same_sentence={'.' not in between_text}",
    ]
    if narrative_distance > max_context_distance:
        return feats

    feats.append(f"src_head={_head(src.text)}")
    feats.append(f"tgt_head={_head(tgt.text)}")
    for token in between_tokens:
        if token in _CUE_WORDS:
            feats.append(f"cue={token}")
            feats.append(f"cue_pair={token}|{src.label}|{tgt.label}")
    # A short window of context before each event mention.
    feats.extend(
        f"src_prev={t.lower}"
        for t in tokenize(doc.text[max(0, src.start - 30) : src.start])[-2:]
    )
    feats.extend(
        f"tgt_prev={t.lower}"
        for t in tokenize(doc.text[max(0, tgt.start - 30) : tgt.start])[-2:]
    )
    return feats


def _head(surface: str) -> str:
    words = surface.lower().split()
    return words[-1] if words else ""


class TemporalClassifier:
    """Trainable pairwise temporal relation classifier.

    Args:
        n_features: hashed feature space size.
        epochs / learning_rate / l2: optimizer settings.
    """

    def __init__(
        self,
        n_features: int = 1 << 17,
        epochs: int = 25,
        learning_rate: float = 0.08,
        l2: float = 1e-5,
        seed: int = 17,
    ):
        self.n_features = n_features
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.l2 = l2
        self.seed = seed
        self.labels: list[str] = []
        self._label_index: dict[str, int] = {}
        self._hasher = FeatureHasher(n_features)
        self.model: LogisticRegression | None = None

    # -- data plumbing ---------------------------------------------------------

    def featurize_doc(
        self, doc: TemporalDocument
    ) -> tuple[sparse.csr_matrix, list[TemporalInstance]]:
        """Feature matrix (one row per labeled pair) for a document."""
        rows = []
        for pair in doc.pairs:
            src = doc.annotations.textbounds[pair.src_id]
            tgt = doc.annotations.textbounds[pair.tgt_id]
            rows.append(
                pair_features(
                    doc.annotations, src, tgt, pair.narrative_distance
                )
            )
        return self._hasher.transform(rows), list(doc.pairs)

    def encode_labels(self, pairs: Sequence[TemporalInstance]) -> np.ndarray:
        """Label ids for instances (labels must be known)."""
        return np.asarray(
            [self._label_index[pair.label] for pair in pairs],
            dtype=np.int64,
        )

    def init_labels(self, docs: Sequence[TemporalDocument]) -> None:
        """Fix the label inventory from training documents."""
        inventory = sorted(
            {pair.label for doc in docs for pair in doc.pairs}
        )
        if len(inventory) < 2:
            raise ModelError("need at least two relation labels")
        self.labels = inventory
        self._label_index = {label: i for i, label in enumerate(inventory)}
        self.model = LogisticRegression(
            n_classes=len(inventory),
            n_features=self.n_features,
            learning_rate=self.learning_rate,
            l2=self.l2,
            seed=self.seed,
        )

    # -- training ------------------------------------------------------------------

    def fit(self, docs: Sequence[TemporalDocument]) -> "TemporalClassifier":
        """Plain cross-entropy training (the local baseline)."""
        self.init_labels(docs)
        matrices = []
        labels = []
        for doc in docs:
            x, pairs = self.featurize_doc(doc)
            matrices.append(x)
            labels.append(self.encode_labels(pairs))
        x_all = sparse.vstack(matrices).tocsr()
        y_all = np.concatenate(labels)
        self.model.fit(
            x_all, y_all, epochs=self.epochs, seed=self.seed
        )
        return self

    # -- inference --------------------------------------------------------------------

    def predict_proba_doc(self, doc: TemporalDocument) -> np.ndarray:
        """Per-pair label probabilities, rows aligned with ``doc.pairs``."""
        self._require_fitted()
        x, _pairs = self.featurize_doc(doc)
        return self.model.predict_proba(x)

    def predict_doc(self, doc: TemporalDocument) -> list[str]:
        """Argmax labels per pair (no global inference)."""
        probs = self.predict_proba_doc(doc)
        return [self.labels[i] for i in np.argmax(probs, axis=1)]

    def evaluate(
        self,
        docs: Sequence[TemporalDocument],
        predictions: Sequence[Sequence[str]] | None = None,
        average: str = "micro",
    ) -> PRF1:
        """Micro P/R/F1 over all pairs of the given documents.

        Args:
            predictions: pre-computed per-doc label lists (e.g. from
                global inference); when None, local argmax is used.
        """
        gold: list[str] = []
        predicted: list[str] = []
        for idx, doc in enumerate(docs):
            gold.extend(pair.label for pair in doc.pairs)
            if predictions is not None:
                predicted.extend(predictions[idx])
            else:
                predicted.extend(self.predict_doc(doc))
        return classification_f1(gold, predicted, average=average)

    def _require_fitted(self) -> None:
        if self.model is None:
            raise NotFittedError("TemporalClassifier used before fit()")
        self.model.require_fitted()
