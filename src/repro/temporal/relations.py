"""Temporal relation algebras: inverses and transitivity composition.

Two algebras cover the paper's evaluation corpora:

* :data:`THREE_WAY_ALGEBRA` — I2B2-2012's BEFORE / AFTER / OVERLAP with
  the paper's own transitivity example (Figure 5: "given that b
  happened before d, e happened after d and e happened simultaneously
  with f, we can infer ... that b was before f");
* :data:`DENSE_ALGEBRA` — TB-Dense's six labels, where SIMULTANEOUS is
  a composition identity and INCLUDES/IS_INCLUDED self-compose.

A composition returning None means the pair's relation is not entailed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RelationAlgebra:
    """Label inventory with inverse and composition tables."""

    labels: tuple[str, ...]
    inverses: dict[str, str]
    compositions: dict[tuple[str, str], str]

    def inverse(self, label: str) -> str:
        """The relation seen from the opposite direction."""
        return self.inverses[label]

    def compose(self, first: str, second: str) -> str | None:
        """r(a,c) entailed by first(a,b) and second(b,c), or None."""
        return self.compositions.get((first, second))

    def consistent(self, first: str, second: str, third: str) -> bool:
        """Is third(a,c) consistent with first(a,b) ∧ second(b,c)?"""
        entailed = self.compose(first, second)
        return entailed is None or entailed == third


def _symmetric_compositions(
    rules: dict[tuple[str, str], str], inverses: dict[str, str]
) -> dict[tuple[str, str], str]:
    """Close a rule table under inversion:
    r1(a,b) ∧ r2(b,c) -> r3(a,c) implies inv(r2)(c,b) ∧ inv(r1)(b,a)
    -> inv(r3)(c,a)."""
    closed = dict(rules)
    for (first, second), third in rules.items():
        closed[(inverses[second], inverses[first])] = inverses[third]
    return closed


_THREE_INVERSES = {"BEFORE": "AFTER", "AFTER": "BEFORE", "OVERLAP": "OVERLAP"}

_THREE_RULES = {
    ("BEFORE", "BEFORE"): "BEFORE",
    ("BEFORE", "OVERLAP"): "BEFORE",
    ("OVERLAP", "BEFORE"): "BEFORE",
    ("OVERLAP", "OVERLAP"): "OVERLAP",
}

THREE_WAY_ALGEBRA = RelationAlgebra(
    labels=("BEFORE", "AFTER", "OVERLAP"),
    inverses=_THREE_INVERSES,
    compositions=_symmetric_compositions(_THREE_RULES, _THREE_INVERSES),
)

_DENSE_INVERSES = {
    "BEFORE": "AFTER",
    "AFTER": "BEFORE",
    "INCLUDES": "IS_INCLUDED",
    "IS_INCLUDED": "INCLUDES",
    "SIMULTANEOUS": "SIMULTANEOUS",
    "VAGUE": "VAGUE",
}

_DENSE_RULES = {
    ("BEFORE", "BEFORE"): "BEFORE",
    ("INCLUDES", "INCLUDES"): "INCLUDES",
    # SIMULTANEOUS is an identity element.
    ("SIMULTANEOUS", "BEFORE"): "BEFORE",
    ("BEFORE", "SIMULTANEOUS"): "BEFORE",
    ("SIMULTANEOUS", "INCLUDES"): "INCLUDES",
    ("INCLUDES", "SIMULTANEOUS"): "INCLUDES",
    ("SIMULTANEOUS", "SIMULTANEOUS"): "SIMULTANEOUS",
    ("SIMULTANEOUS", "IS_INCLUDED"): "IS_INCLUDED",
    # Interval-sound mixed rules (each verified against the interval
    # semantics; combinations whose conclusion is not entailed — e.g.
    # INCLUDES then BEFORE — are deliberately absent).
    ("IS_INCLUDED", "BEFORE"): "BEFORE",
    ("AFTER", "INCLUDES"): "AFTER",
    ("BEFORE", "INCLUDES"): "BEFORE",
    ("IS_INCLUDED", "AFTER"): "AFTER",
}

DENSE_ALGEBRA = RelationAlgebra(
    labels=(
        "BEFORE",
        "AFTER",
        "INCLUDES",
        "IS_INCLUDED",
        "SIMULTANEOUS",
        "VAGUE",
    ),
    inverses=_DENSE_INVERSES,
    compositions=_symmetric_compositions(_DENSE_RULES, _DENSE_INVERSES),
)


def algebra_for_labels(labels: tuple[str, ...] | list[str]) -> RelationAlgebra:
    """Pick the algebra matching a dataset's label inventory.

    Raises:
        ValueError: labels fit neither algebra.
    """
    label_set = set(labels)
    if label_set <= set(THREE_WAY_ALGEBRA.labels):
        return THREE_WAY_ALGEBRA
    if label_set <= set(DENSE_ALGEBRA.labels):
        return DENSE_ALGEBRA
    raise ValueError(f"no relation algebra covers labels {sorted(label_set)}")
