"""Global inference: document-level MAP assignment under consistency.

Given per-pair label probabilities, pick the joint assignment that
maximizes total log-probability subject to the algebra's transitivity
constraints.  Solved exactly as an integer linear program with
``scipy.optimize.milp``; a greedy repair pass serves as fallback when
the solver fails (infeasible numerics or absent constraint structure).

ILP formulation (per document):

* binary ``x[p, r]`` per pair p and label r, with Σ_r x[p, r] = 1;
* objective: maximize Σ x[p, r] · log P(r | p);
* for each grounded rule r1(a,b) ∧ r2(b,c) → r3(a,c):
  ``x[ab, r1] + x[bc, r2] - x[ac, r3] <= 1``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import optimize, sparse

from repro.corpus.datasets import TemporalDocument
from repro.temporal.psl import find_triples
from repro.temporal.relations import RelationAlgebra


def global_inference(
    doc: TemporalDocument,
    probs: np.ndarray,
    labels: Sequence[str],
    algebra: RelationAlgebra,
) -> list[str]:
    """Consistency-constrained MAP labels for one document's pairs.

    Args:
        doc: the document (supplies pair structure).
        probs: (n_pairs, n_labels) local probabilities.
        labels: column order of ``probs``.
        algebra: relation algebra for constraints.

    Returns:
        One label per pair (aligned with ``doc.pairs``).
    """
    n_pairs, n_labels = probs.shape
    if n_pairs == 0:
        return []
    triples = find_triples(doc)
    local = [labels[i] for i in np.argmax(probs, axis=1)]
    if not triples:
        return local

    solution = _solve_ilp(probs, triples, labels, algebra)
    if solution is not None:
        return solution
    return _greedy_repair(doc, probs, list(labels), algebra, triples)


def _solve_ilp(
    probs: np.ndarray,
    triples: list[tuple[int, int, int]],
    labels: Sequence[str],
    algebra: RelationAlgebra,
) -> list[str] | None:
    n_pairs, n_labels = probs.shape
    n_vars = n_pairs * n_labels
    log_probs = np.log(np.clip(probs, 1e-12, None))

    def var(pair: int, label: int) -> int:
        return pair * n_labels + label

    label_index = {label: i for i, label in enumerate(labels)}

    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    lower: list[float] = []
    upper: list[float] = []
    row_count = 0

    # Exactly-one-label rows.
    for p in range(n_pairs):
        for r in range(n_labels):
            rows.append(row_count)
            cols.append(var(p, r))
            data.append(1.0)
        lower.append(1.0)
        upper.append(1.0)
        row_count += 1

    # Transitivity rows.
    for i_ab, i_bc, i_ac in triples:
        for r1 in labels:
            for r2 in labels:
                r3 = algebra.compose(r1, r2)
                if r3 is None or r3 not in label_index:
                    continue
                rows.extend([row_count] * 3)
                cols.extend(
                    [
                        var(i_ab, label_index[r1]),
                        var(i_bc, label_index[r2]),
                        var(i_ac, label_index[r3]),
                    ]
                )
                data.extend([1.0, 1.0, -1.0])
                lower.append(-np.inf)
                upper.append(1.0)
                row_count += 1

    constraint_matrix = sparse.csr_matrix(
        (data, (rows, cols)), shape=(row_count, n_vars)
    )
    constraints = optimize.LinearConstraint(
        constraint_matrix, np.asarray(lower), np.asarray(upper)
    )
    result = optimize.milp(
        c=-log_probs.ravel(),  # milp minimizes
        constraints=constraints,
        integrality=np.ones(n_vars),
        bounds=optimize.Bounds(0.0, 1.0),
    )
    if not result.success or result.x is None:
        return None
    assignment = result.x.reshape(n_pairs, n_labels)
    return [labels[int(np.argmax(row))] for row in assignment]


def _greedy_repair(
    doc: TemporalDocument,
    probs: np.ndarray,
    labels: list[str],
    algebra: RelationAlgebra,
    triples: list[tuple[int, int, int]],
    max_passes: int = 10,
) -> list[str]:
    """Fallback: locally flip the cheapest pair until rules hold."""
    label_index = {label: i for i, label in enumerate(labels)}
    assignment = [int(i) for i in np.argmax(probs, axis=1)]

    def violations() -> list[tuple[int, int, int]]:
        bad = []
        for i_ab, i_bc, i_ac in triples:
            r3 = algebra.compose(
                labels[assignment[i_ab]], labels[assignment[i_bc]]
            )
            if (
                r3 is not None
                and r3 in label_index
                and assignment[i_ac] != label_index[r3]
            ):
                bad.append((i_ab, i_bc, i_ac))
        return bad

    for _ in range(max_passes):
        bad = violations()
        if not bad:
            break
        i_ab, i_bc, i_ac = bad[0]
        # Candidate repairs: set ac to the entailed label, or flip ab/bc
        # to their next-best label; pick the least log-prob loss.
        entailed = algebra.compose(
            labels[assignment[i_ab]], labels[assignment[i_bc]]
        )
        candidates: list[tuple[float, int, int]] = []
        if entailed is not None and entailed in label_index:
            target = label_index[entailed]
            cost = (
                probs[i_ac, assignment[i_ac]] - probs[i_ac, target]
            )
            candidates.append((cost, i_ac, target))
        for pair_idx in (i_ab, i_bc):
            current = assignment[pair_idx]
            order = np.argsort(-probs[pair_idx])
            for alt in order:
                if int(alt) != current:
                    cost = probs[pair_idx, current] - probs[pair_idx, alt]
                    candidates.append((cost, pair_idx, int(alt)))
                    break
        if not candidates:
            break
        _cost, pair_idx, new_label = min(candidates)
        assignment[pair_idx] = new_label
    return [labels[i] for i in assignment]
