"""Probabilistic-soft-logic regularization for temporal RE training.

Implements the training objective of the paper's temporal module
(ref [7]): alongside cross-entropy, each document contributes a loss
term measuring how far the predicted relation *probabilities* are from
satisfying the transitivity and symmetry rules, under the Łukasiewicz
t-norm.  For a grounded rule

    r1(a, b) ∧ r2(b, c) → r3(a, c)

the distance to satisfaction is ``max(0, p1 + p2 - 1 - p3)`` where the
``p``s are the model's probabilities for the participating labels; the
regularizer is the mean squared distance over all groundings.  The
gradient flows into the classifier's logits through the softmax.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.corpus.datasets import TemporalDocument
from repro.ml.logistic import softmax
from repro.temporal.classifier import TemporalClassifier
from repro.temporal.relations import RelationAlgebra


@dataclass(frozen=True)
class PslConfig:
    """PSL training hyperparameters."""

    weight: float = 1.0
    epochs: int = 25
    seed: int = 17


def find_triples(
    doc: TemporalDocument,
) -> list[tuple[int, int, int]]:
    """Indices (into ``doc.pairs``) of transitivity triples.

    A triple (ab, bc, ac) grounds a rule when all three pairs are in the
    document's labeled pair set with matching shared events.
    """
    index: dict[tuple[str, str], int] = {}
    for i, pair in enumerate(doc.pairs):
        index[(pair.src_id, pair.tgt_id)] = i
    triples = []
    for (a, b), i_ab in index.items():
        for (b2, c), i_bc in index.items():
            if b2 != b or c == a:
                continue
            i_ac = index.get((a, c))
            if i_ac is not None:
                triples.append((i_ab, i_bc, i_ac))
    return triples


def psl_loss_and_grad(
    probs: np.ndarray,
    triples: Sequence[tuple[int, int, int]],
    algebra: RelationAlgebra,
    label_index: dict[str, int],
) -> tuple[float, np.ndarray]:
    """Łukasiewicz distance-to-satisfaction loss and its prob-gradient.

    Args:
        probs: (n_pairs, n_labels) probabilities for one document.
        triples: transitivity groundings from :func:`find_triples`.
        algebra: supplies the composition table.
        label_index: label -> column.

    Returns:
        (loss, dloss_dprobs) with the same shape as ``probs``.
    """
    grad = np.zeros_like(probs)
    loss = 0.0
    count = 0
    for i_ab, i_bc, i_ac in triples:
        for r1 in algebra.labels:
            for r2 in algebra.labels:
                r3 = algebra.compose(r1, r2)
                if r3 is None:
                    continue
                if (
                    r1 not in label_index
                    or r2 not in label_index
                    or r3 not in label_index
                ):
                    # The dataset's observed label set may be a subset
                    # of the algebra's inventory.
                    continue
                c1, c2, c3 = (
                    label_index[r1],
                    label_index[r2],
                    label_index[r3],
                )
                distance = (
                    probs[i_ab, c1] + probs[i_bc, c2] - 1.0 - probs[i_ac, c3]
                )
                count += 1
                if distance <= 0.0:
                    continue
                loss += distance * distance
                grad[i_ab, c1] += 2.0 * distance
                grad[i_bc, c2] += 2.0 * distance
                grad[i_ac, c3] -= 2.0 * distance
    if count:
        loss /= count
        grad /= count
    return loss, grad


def _dlogits_from_dprobs(
    probs: np.ndarray, dprobs: np.ndarray
) -> np.ndarray:
    """Backprop through row-wise softmax:
    dL/dz = p ⊙ (dL/dp - (dL/dp · p))."""
    inner = np.sum(dprobs * probs, axis=1, keepdims=True)
    return probs * (dprobs - inner)


def fit_with_psl(
    classifier: TemporalClassifier,
    docs: Sequence[TemporalDocument],
    algebra: RelationAlgebra,
    config: PslConfig | None = None,
) -> TemporalClassifier:
    """Train a :class:`TemporalClassifier` with CE + PSL regularization.

    The optimizer walks documents (not shuffled pairs) because the PSL
    groundings are per-document structures.
    """
    config = config or PslConfig()
    classifier.init_labels(docs)
    model = classifier.model
    label_index = {
        label: i for i, label in enumerate(classifier.labels)
    }

    prepared = []
    for doc in docs:
        x, pairs = classifier.featurize_doc(doc)
        y = classifier.encode_labels(pairs)
        triples = find_triples(doc)
        prepared.append((x, y, triples))

    rng = np.random.default_rng(config.seed)
    order = np.arange(len(prepared))
    for _epoch in range(config.epochs):
        rng.shuffle(order)
        for idx in order:
            x, y, triples = prepared[idx]
            if x.shape[0] == 0:
                continue
            _ce_loss, grad_w, grad_b = model.ce_gradient(x, y)
            if triples:
                probs = softmax(model.logits(x))
                _psl_loss, dprobs = psl_loss_and_grad(
                    probs, triples, algebra, label_index
                )
                dlogits = _dlogits_from_dprobs(probs, dprobs)
                extra_w, extra_b = model.grad_from_dlogits(
                    x, config.weight * dlogits
                )
                grad_w += extra_w
                grad_b += extra_b
            model.step(grad_w, grad_b)
    return classifier
