"""Temporal relation extraction with PSL regularization (paper ref [7]).

The paper's second extraction module predicts temporal relations among
extracted events, exploiting "common dependencies such as transitivity
and symmetry patterns": a probabilistic-soft-logic loss regularizes
training, and global inference enforces consistency at prediction time.
This package implements the relation algebra, the temporal graph with
transitive closure (Figure 5), the local pairwise classifier, the PSL
regularizer, and exact ILP-based global inference.
"""

from repro.temporal.relations import (
    RelationAlgebra,
    THREE_WAY_ALGEBRA,
    DENSE_ALGEBRA,
    algebra_for_labels,
)
from repro.temporal.graph import TemporalGraph
from repro.temporal.classifier import TemporalClassifier, pair_features
from repro.temporal.psl import PslConfig, psl_loss_and_grad
from repro.temporal.global_inference import global_inference

__all__ = [
    "RelationAlgebra",
    "THREE_WAY_ALGEBRA",
    "DENSE_ALGEBRA",
    "algebra_for_labels",
    "TemporalGraph",
    "TemporalClassifier",
    "pair_features",
    "PslConfig",
    "psl_loss_and_grad",
    "global_inference",
]
