"""Temporal graphs: the structure behind Figure 5.

A :class:`TemporalGraph` stores labeled temporal relations between
event ids, normalizes directionality through the algebra's inverses,
computes the transitive closure to a fixpoint, and detects
inconsistencies (contradictory labels for one pair).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import TemporalInconsistencyError
from repro.temporal.relations import RelationAlgebra, THREE_WAY_ALGEBRA


@dataclass
class TemporalGraph:
    """Pairwise temporal relations with closure and consistency checks."""

    algebra: RelationAlgebra = field(default_factory=lambda: THREE_WAY_ALGEBRA)
    # canonical storage: relations[(a, b)] = label with a < b lexically
    _relations: dict[tuple[str, str], str] = field(default_factory=dict)
    _explicit: set[tuple[str, str]] = field(default_factory=set)

    # -- construction -------------------------------------------------------

    def add(self, source: str, target: str, label: str) -> None:
        """Record ``label(source, target)``.

        Raises:
            TemporalInconsistencyError: the pair already carries a
                different label.
            ValueError: unknown label or self-loop.
        """
        self._check_label(label)
        if source == target:
            raise ValueError("temporal relation endpoints must differ")
        key, stored = self._canonicalize(source, target, label)
        existing = self._relations.get(key)
        if existing is not None and existing != stored:
            raise TemporalInconsistencyError(
                f"pair {key} already {existing}, cannot also be {stored}"
            )
        self._relations[key] = stored
        self._explicit.add(key)

    # -- queries --------------------------------------------------------------

    def relation(self, source: str, target: str) -> str | None:
        """The stored relation for a pair (direction-adjusted), or None."""
        key, flip = self._key(source, target)
        stored = self._relations.get(key)
        if stored is None:
            return None
        return self.algebra.inverse(stored) if flip else stored

    def events(self) -> list[str]:
        """All event ids appearing in any relation."""
        seen = set()
        for a, b in self._relations:
            seen.add(a)
            seen.add(b)
        return sorted(seen)

    @property
    def n_relations(self) -> int:
        return len(self._relations)

    @property
    def n_explicit(self) -> int:
        return len(self._explicit)

    @property
    def n_inferred(self) -> int:
        return len(self._relations) - len(self._explicit)

    def edges(self) -> list[tuple[str, str, str]]:
        """All (source, target, label) triples in canonical direction."""
        return [
            (a, b, label)
            for (a, b), label in sorted(self._relations.items())
        ]

    # -- closure ----------------------------------------------------------------

    def close(self, max_rounds: int = 50) -> int:
        """Transitive closure to a fixpoint; returns #inferred relations.

        Applies every composition rule over every connected triple
        until no new relation appears.

        Raises:
            TemporalInconsistencyError: closure derives a label that
                contradicts a stored one.
        """
        inferred_total = 0
        for _round in range(max_rounds):
            new_relations: dict[tuple[str, str], str] = {}
            events = self.events()
            for i, a in enumerate(events):
                for b in events:
                    if a == b:
                        continue
                    r1 = self.relation(a, b)
                    if r1 is None:
                        continue
                    for c in events:
                        if c == a or c == b:
                            continue
                        r2 = self.relation(b, c)
                        if r2 is None:
                            continue
                        entailed = self.algebra.compose(r1, r2)
                        if entailed is None:
                            continue
                        existing = self.relation(a, c)
                        if existing is None:
                            key, stored = self._canonicalize(a, c, entailed)
                            prior = new_relations.get(key)
                            if prior is not None and prior != stored:
                                raise TemporalInconsistencyError(
                                    f"closure conflict on {key}: "
                                    f"{prior} vs {stored}"
                                )
                            new_relations[key] = stored
                        elif existing != entailed:
                            raise TemporalInconsistencyError(
                                f"closure derives {entailed}({a},{c}) but "
                                f"graph holds {existing}"
                            )
            if not new_relations:
                break
            self._relations.update(new_relations)
            inferred_total += len(new_relations)
        return inferred_total

    def is_consistent(self) -> bool:
        """True when closure succeeds without contradictions."""
        probe = TemporalGraph(algebra=self.algebra)
        probe._relations = dict(self._relations)
        probe._explicit = set(self._explicit)
        try:
            probe.close()
        except TemporalInconsistencyError:
            return False
        return True

    # -- internals -----------------------------------------------------------------

    def _check_label(self, label: str) -> None:
        if label not in self.algebra.labels:
            raise ValueError(
                f"unknown relation {label!r} for this algebra"
            )

    def _key(self, source: str, target: str) -> tuple[tuple[str, str], bool]:
        if source <= target:
            return (source, target), False
        return (target, source), True

    def _canonicalize(
        self, source: str, target: str, label: str
    ) -> tuple[tuple[str, str], str]:
        key, flip = self._key(source, target)
        return key, (self.algebra.inverse(label) if flip else label)
