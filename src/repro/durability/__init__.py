"""Crash-consistent durability: WAL, snapshots, and fault injection.

The paper's stack keeps every artifact in MongoDB / Neo4j /
ElasticSearch; our pure-Python substitutes are in-memory, so this
package gives them the missing property — a crash loses nothing that
was acknowledged.  One :class:`DurabilityManager` journals logical
operations from the document store, the property graph, and the search
engine into a shared checksummed write-ahead log with group-commit
batching and periodic snapshots; recovery replays the log and yields
exactly the state at the last acknowledged commit, with each
document's three-store footprint appearing atomically or not at all.

:class:`FaultInjector` and :class:`MemFS` make that claim testable:
seed-driven crash schedules (torn writes, short writes, dropped
fsyncs, mid-commit kills) drive the ``durability`` subsystem of the
:mod:`repro.testing` differential harness.
"""

from repro.durability.fs import (
    FaultInjector,
    InjectedCrash,
    MemFS,
    OsFileSystem,
    atomic_write,
    fs_write_atomic,
)
from repro.durability.manager import Durable, DurabilityManager, RecoveryReport
from repro.durability.snapshot import SNAPSHOT_NAME, load_snapshot, write_snapshot
from repro.durability.wal import (
    ReplayResult,
    WriteAheadLog,
    encode_record,
    scan_records,
)

__all__ = [
    "Durable",
    "DurabilityManager",
    "FaultInjector",
    "InjectedCrash",
    "MemFS",
    "OsFileSystem",
    "RecoveryReport",
    "ReplayResult",
    "SNAPSHOT_NAME",
    "WriteAheadLog",
    "atomic_write",
    "encode_record",
    "fs_write_atomic",
    "load_snapshot",
    "scan_records",
    "write_snapshot",
]
