"""The append-only, checksummed write-ahead log.

On-disk framing, one record after another::

    b"WALR" | length:u32be | crc32(payload):u32be | payload (JSON, utf-8)

Records buffer in process memory until :meth:`WriteAheadLog.flush`,
which lands the whole batch in **one** append + **one** fsync — that is
the group commit: N commits amortize a single disk sync.  Replay scans
records front to back and stops at the first frame that does not check
out (bad magic, impossible length, checksum mismatch, truncated tail);
everything before it is intact by construction, everything from it on
is a torn tail from an interrupted write and is physically truncated.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field

from repro.exceptions import DurabilityError

_MAGIC = b"WALR"
_HEADER = struct.Struct(">4sII")
_MAX_RECORD_BYTES = 64 * 1024 * 1024  # sanity bound on the length field


def encode_record(record: dict) -> bytes:
    """Frame one record: magic, length, checksum, JSON payload."""
    payload = json.dumps(
        record, sort_keys=True, ensure_ascii=False, separators=(",", ":")
    ).encode("utf-8")
    return _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload)) + payload


@dataclass
class ReplayResult:
    """What a replay scan found."""

    records: list = field(default_factory=list)
    valid_bytes: int = 0
    torn: bool = False
    torn_reason: str = ""


def scan_records(data: bytes) -> ReplayResult:
    """Decode frames until the data ends or a frame fails to verify."""
    result = ReplayResult()
    offset = 0
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            result.torn, result.torn_reason = True, "truncated header"
            break
        magic, length, crc = _HEADER.unpack_from(data, offset)
        if magic != _MAGIC:
            result.torn, result.torn_reason = True, "bad magic"
            break
        if length > _MAX_RECORD_BYTES:
            result.torn, result.torn_reason = True, "implausible length"
            break
        start = offset + _HEADER.size
        end = start + length
        if end > len(data):
            result.torn, result.torn_reason = True, "truncated payload"
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            result.torn, result.torn_reason = True, "checksum mismatch"
            break
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            result.torn, result.torn_reason = True, "undecodable payload"
            break
        result.records.append(record)
        result.valid_bytes = end
        offset = end
    return result


class WriteAheadLog:
    """Buffered appends to one log file on a durability filesystem.

    Args:
        fs: filesystem (``OsFileSystem``, ``MemFS``, or an injector).
        name: log file name within the filesystem.
    """

    def __init__(self, fs, name: str = "wal.log"):
        self.fs = fs
        self.name = name
        self._buffer: list[bytes] = []
        self.appended_records = 0
        self.flushes = 0
        self.bytes_written = 0

    @property
    def buffered(self) -> int:
        """Records appended but not yet flushed (not durable)."""
        return len(self._buffer)

    def append(self, record: dict) -> None:
        """Buffer one record (durable only after :meth:`flush`)."""
        self._buffer.append(encode_record(record))
        self.appended_records += 1

    def flush(self) -> None:
        """Group-commit the buffer: one append, one fsync.

        Raises:
            DurabilityError: the write or sync failed; the records in
                the failed batch must not be acknowledged.
        """
        if not self._buffer:
            return
        batch = b"".join(self._buffer)
        try:
            self.fs.append(self.name, batch)
            self.fs.fsync(self.name)
        except OSError as exc:
            raise DurabilityError(f"WAL flush failed: {exc}") from exc
        self._buffer.clear()
        self.flushes += 1
        self.bytes_written += len(batch)

    def replay(self, truncate_torn: bool = True) -> ReplayResult:
        """Scan the log; optionally truncate a torn tail in place."""
        try:
            data = self.fs.read_bytes(self.name)
        except FileNotFoundError:
            return ReplayResult()
        result = scan_records(data)
        if result.torn and truncate_torn:
            self.fs.truncate(self.name, result.valid_bytes)
        return result

    def reset(self) -> None:
        """Atomically replace the log with an empty one (post-snapshot)."""
        from repro.durability.fs import fs_write_atomic

        self._buffer.clear()
        try:
            fs_write_atomic(self.fs, self.name, b"")
        except OSError as exc:
            raise DurabilityError(f"WAL reset failed: {exc}") from exc
