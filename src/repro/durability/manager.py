"""The durability manager: WAL + snapshots over ``Durable`` stores.

Commit protocol (write-behind logging with ack-after-fsync):

1. Callers mutate attached stores through their normal APIs; each
   store journals the logical operation it performed.
2. :meth:`DurabilityManager.commit` drains every journal into **one**
   WAL record — a document's docstore insert, graph nodes/edges, and
   keyword indexing travel together, which is what makes ingest atomic
   across the three stores.
3. The record buffers until the group-commit quota fills (or
   :meth:`flush` is called); then one append + one fsync makes the
   whole batch durable and advances ``durable_lsn``.  A commit is
   *acknowledged* only once its LSN is ≤ ``durable_lsn``.

Recovery: load the newest snapshot (if any) into the freshly attached
stores, then replay WAL records with ``lsn`` beyond the snapshot,
truncating any torn tail.  A failed flush poisons the manager —
after an fsync error the log's tail state is unknowable, so further
commits must not be acknowledged (the fsyncgate lesson).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.durability.snapshot import SNAPSHOT_NAME, load_snapshot, write_snapshot
from repro.durability.wal import WriteAheadLog
from repro.exceptions import DurabilityError
from repro.runtime.metrics import MetricsRegistry


@runtime_checkable
class Durable(Protocol):
    """What a store must provide to ride the WAL.

    ``journal`` is a list the store appends one JSON-shaped op dict to
    per logical mutation (or ``None`` when durability is off); the
    three methods replay ops and move whole states.
    """

    journal: list | None

    def durable_apply(self, op: dict) -> None: ...

    def durable_snapshot(self) -> dict: ...

    def durable_restore(self, state: dict) -> None: ...


@dataclass
class RecoveryReport:
    """What one recovery pass did."""

    snapshot_loaded: bool = False
    snapshot_lsn: int = 0
    records_replayed: int = 0
    ops_applied: int = 0
    torn_tail: bool = False
    torn_reason: str = ""
    durable_lsn: int = 0


class DurabilityManager:
    """Coordinates one WAL + snapshot pair across named stores.

    Args:
        fs: durability filesystem (``OsFileSystem`` for real
            directories, ``MemFS``/``FaultInjector`` in tests).
        group_commit: commits per fsync (1 = sync every commit).
        snapshot_every: auto-snapshot after this many commits
            (``None`` disables; explicit :meth:`snapshot` always works).
        metrics: registry for counters and commit-latency percentiles
            (a private one is created when omitted).
    """

    def __init__(
        self,
        fs,
        group_commit: int = 1,
        snapshot_every: int | None = None,
        metrics: MetricsRegistry | None = None,
        wal_name: str = "wal.log",
        snapshot_name: str = SNAPSHOT_NAME,
    ):
        if group_commit < 1:
            raise DurabilityError("group_commit must be >= 1")
        self.fs = fs
        self.group_commit = group_commit
        self.snapshot_every = snapshot_every
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.wal = WriteAheadLog(fs, wal_name)
        self.snapshot_name = snapshot_name
        self._stores: dict[str, Durable] = {}
        self.next_lsn = 1
        self.durable_lsn = 0
        self.snapshot_lsn = 0
        self._pending_lsns: list[int] = []
        self._commits_since_snapshot = 0
        self._failed = False
        self.last_recovery: RecoveryReport | None = None

    # -- wiring ------------------------------------------------------------

    def attach(self, name: str, store: Durable) -> None:
        """Register a store and switch its journal on.

        Attach order fixes the per-record replay order; stores must be
        independent of each other (ours are).
        """
        if name in self._stores:
            raise DurabilityError(f"store {name!r} already attached")
        self._stores[name] = store
        store.journal = []

    # -- commit path -------------------------------------------------------

    def commit(self) -> int | None:
        """Seal every journaled op since the last commit into one WAL
        record.

        Returns the record's LSN, or ``None`` when nothing changed.
        The LSN is acknowledged (durable) only once it is ≤
        :attr:`durable_lsn` — immediately with ``group_commit=1``,
        after the group's fsync otherwise.
        """
        self._check_usable()
        ops: dict[str, list] = {}
        for name, store in self._stores.items():
            journal = store.journal
            if journal:
                ops[name] = list(journal)
                journal.clear()
        if not ops:
            return None
        lsn = self.next_lsn
        self.next_lsn += 1
        with self.metrics.time("durability.commit_seconds"):
            self.wal.append({"lsn": lsn, "ops": ops})
            self._pending_lsns.append(lsn)
            self.metrics.increment("durability.commits")
            self.metrics.increment(
                "durability.ops", sum(len(v) for v in ops.values())
            )
            if len(self._pending_lsns) >= self.group_commit:
                self.flush()
        self._commits_since_snapshot += 1
        if (
            self.snapshot_every is not None
            and self._commits_since_snapshot >= self.snapshot_every
        ):
            self.snapshot()
        return lsn

    def flush(self) -> int:
        """Fsync buffered records; returns the new ``durable_lsn``.

        Raises:
            DurabilityError: the disk write failed.  The manager is
                poisoned: unflushed commits were never acknowledged and
                no further commits are accepted.
        """
        self._check_usable()
        if not self._pending_lsns:
            return self.durable_lsn
        try:
            self.wal.flush()
        except DurabilityError:
            self._failed = True
            raise
        self.durable_lsn = self._pending_lsns[-1]
        self._pending_lsns.clear()
        self.metrics.increment("durability.fsyncs")
        return self.durable_lsn

    def snapshot(self) -> int:
        """Write a full-state snapshot and reset the WAL.

        Returns the snapshot's LSN.  Any journaled-but-uncommitted ops
        are committed first so the snapshot sits exactly on a commit
        boundary.
        """
        self._check_usable()
        self.commit()
        self.flush()
        states = {
            name: store.durable_snapshot()
            for name, store in self._stores.items()
        }
        with self.metrics.time("durability.snapshot_seconds"):
            size = write_snapshot(
                self.fs, self.durable_lsn, states, self.snapshot_name
            )
            self.wal.reset()
        self.snapshot_lsn = self.durable_lsn
        self._commits_since_snapshot = 0
        self.metrics.increment("durability.snapshots_written")
        self.metrics.increment("durability.snapshot_bytes", size)
        return self.snapshot_lsn

    # -- recovery ----------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Rebuild the attached (empty) stores from disk.

        Load the snapshot when present, replay the WAL suffix, truncate
        a torn tail, and position LSNs for new commits.
        """
        report = RecoveryReport()
        snapshot = load_snapshot(self.fs, self.snapshot_name)
        start_lsn = 0
        if snapshot is not None:
            start_lsn = int(snapshot.get("lsn", 0))
            for name, store in self._stores.items():
                state = snapshot["stores"].get(name)
                if state is not None:
                    self._quiet_restore(store, state)
            report.snapshot_loaded = True
            report.snapshot_lsn = start_lsn
            self.metrics.increment("durability.snapshots_loaded")
        replayed = self.wal.replay(truncate_torn=True)
        if replayed.torn:
            report.torn_tail = True
            report.torn_reason = replayed.torn_reason
            self.metrics.increment("durability.torn_tails_truncated")
        last_lsn = start_lsn
        for record in replayed.records:
            lsn = int(record.get("lsn", 0))
            if lsn <= start_lsn:
                continue
            for name, ops in record.get("ops", {}).items():
                store = self._stores.get(name)
                if store is None:
                    raise DurabilityError(
                        f"WAL record {lsn} references unattached store "
                        f"{name!r}"
                    )
                for op in ops:
                    self._quiet_apply(store, op)
                    report.ops_applied += 1
            report.records_replayed += 1
            last_lsn = max(last_lsn, lsn)
        self.next_lsn = last_lsn + 1
        self.durable_lsn = last_lsn
        self.snapshot_lsn = start_lsn
        report.durable_lsn = last_lsn
        self.metrics.increment(
            "durability.records_replayed", report.records_replayed
        )
        self.metrics.increment("durability.recoveries")
        self.last_recovery = report
        return report

    # -- observability -----------------------------------------------------

    def stats(self) -> dict:
        """WAL/recovery health for ``/stats``."""
        out = {
            "durable_lsn": self.durable_lsn,
            "next_lsn": self.next_lsn,
            "snapshot_lsn": self.snapshot_lsn,
            "pending_commits": len(self._pending_lsns),
            "group_commit": self.group_commit,
            "failed": self._failed,
            "wal_bytes_written": self.wal.bytes_written,
            "counters": {
                name: self.metrics.counter(f"durability.{name}")
                for name in (
                    "commits",
                    "ops",
                    "fsyncs",
                    "snapshots_written",
                    "snapshots_loaded",
                    "records_replayed",
                    "torn_tails_truncated",
                    "recoveries",
                )
            },
        }
        timer = self.metrics.timer_stats("durability.commit_seconds")
        if timer is not None:
            out["commit_latency"] = timer.as_dict()
        return out

    # -- internals ---------------------------------------------------------

    def _check_usable(self) -> None:
        if self._failed:
            raise DurabilityError(
                "durability manager is poisoned after a failed flush on "
                f"{self._wal_location()} (last durable LSN "
                f"{self.durable_lsn}); recover from disk before "
                "committing again"
            )

    def _wal_location(self) -> str:
        """Operator-facing WAL path: directory-qualified when the
        filesystem has a real root, bare log name otherwise."""
        root = getattr(self.fs, "root", None)
        if root is not None:
            return str(Path(root) / self.wal.name)
        return self.wal.name

    @staticmethod
    def _quiet_apply(store: Durable, op: dict) -> None:
        journal, store.journal = store.journal, None
        try:
            store.durable_apply(op)
        finally:
            store.journal = journal

    @staticmethod
    def _quiet_restore(store: Durable, state: dict) -> None:
        journal, store.journal = store.journal, None
        try:
            store.durable_restore(state)
        finally:
            store.journal = journal
