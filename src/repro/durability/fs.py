"""Filesystem abstraction, atomic writes, and deterministic faults.

Durability code never touches ``os`` directly: it goes through a small
filesystem interface (append / fsync / replace / truncate / read) with
two implementations — :class:`OsFileSystem` over a real directory and
:class:`MemFS`, an in-memory model that distinguishes *durable* bytes
(survived an fsync) from *pending* bytes (sitting in the page cache).
:class:`FaultInjector` wraps either one and executes a seed-driven
fault plan: process crashes between or *inside* operations (torn
writes keep a prefix of unsynced bytes, modeling partial page
writeback), short writes, and injected IO errors on append/fsync/
replace.  Everything is deterministic, so a single integer seed
reproduces an exact crash schedule.
"""

from __future__ import annotations

import os
import random
import tempfile
from pathlib import Path


class InjectedCrash(Exception):
    """A simulated process kill from the fault injector.

    Deliberately not a :class:`repro.exceptions.ReproError`: no
    application-level handler may catch and "recover" from a process
    death — only the test harness boundary does.
    """


def atomic_write(
    path: str | Path, data: str | bytes, encoding: str = "utf-8"
) -> Path:
    """Write a file all-or-nothing: temp file + fsync + ``os.replace``.

    An interrupted writer leaves either the complete old content or the
    complete new content, never a partial file.

    Returns the target path.
    """
    path = Path(path)
    payload = data.encode(encoding) if isinstance(data, str) else data
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def fs_write_atomic(fs, name: str, data: bytes) -> None:
    """Atomic whole-file write through a durability filesystem.

    Composed from primitives (append temp, fsync temp, replace) so a
    fault injector sees — and can crash between — each step.
    """
    tmp = name + ".tmp"
    fs.remove(tmp)
    fs.append(tmp, data)
    fs.fsync(tmp)
    fs.replace(tmp, name)


class OsFileSystem:
    """Real files under a root directory, with cached append handles."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._handles: dict[str, object] = {}

    def _path(self, name: str) -> Path:
        return self.root / name

    def append(self, name: str, data: bytes) -> None:
        handle = self._handles.get(name)
        if handle is None:
            handle = self._path(name).open("ab")
            self._handles[name] = handle
        handle.write(data)

    def fsync(self, name: str) -> None:
        handle = self._handles.get(name)
        if handle is None:
            return
        handle.flush()
        os.fsync(handle.fileno())

    def read_bytes(self, name: str) -> bytes:
        self._drop_handle(name, flush=True)
        path = self._path(name)
        if not path.exists():
            raise FileNotFoundError(name)
        return path.read_bytes()

    def exists(self, name: str) -> bool:
        handle = self._handles.get(name)
        if handle is not None:
            handle.flush()
        return self._path(name).exists()

    def replace(self, src: str, dst: str) -> None:
        self._drop_handle(src, flush=True)
        self._drop_handle(dst, flush=False)
        os.replace(self._path(src), self._path(dst))

    def truncate(self, name: str, length: int) -> None:
        self._drop_handle(name, flush=True)
        os.truncate(self._path(name), length)

    def remove(self, name: str) -> None:
        self._drop_handle(name, flush=False)
        try:
            os.unlink(self._path(name))
        except FileNotFoundError:
            pass

    def close(self) -> None:
        for name in list(self._handles):
            self._drop_handle(name, flush=True)

    def _drop_handle(self, name: str, flush: bool) -> None:
        handle = self._handles.pop(name, None)
        if handle is None:
            return
        if flush:
            handle.flush()
        handle.close()


class MemFS:
    """In-memory filesystem modeling the durable/page-cache split.

    ``append`` lands in *pending* (the page cache); ``fsync`` promotes
    pending bytes to *durable*.  :meth:`apply_crash` simulates a power
    cut: every file keeps its durable bytes plus an arbitrary (caller-
    chosen) prefix of its pending bytes — unsynced data may partially
    survive via background writeback, exactly the window a torn-tail
    WAL scan must handle.
    """

    def __init__(self):
        self._durable: dict[str, bytes] = {}
        self._pending: dict[str, bytes] = {}

    def append(self, name: str, data: bytes) -> None:
        if name not in self._durable and name not in self._pending:
            self._pending[name] = b""
        self._pending[name] = self._pending.get(name, b"") + data

    def fsync(self, name: str) -> None:
        pending = self._pending.pop(name, None)
        if pending is not None:
            self._durable[name] = self._durable.get(name, b"") + pending

    def read_bytes(self, name: str) -> bytes:
        if name not in self._durable and name not in self._pending:
            raise FileNotFoundError(name)
        return self._durable.get(name, b"") + self._pending.get(name, b"")

    def exists(self, name: str) -> bool:
        return name in self._durable or name in self._pending

    def replace(self, src: str, dst: str) -> None:
        if not self.exists(src):
            raise FileNotFoundError(src)
        content = self.read_bytes(src)
        # Rename is journaled/atomic; callers fsync src beforehand, so
        # the renamed content is durable.
        self._durable[dst] = content
        self._pending.pop(dst, None)
        self._durable.pop(src, None)
        self._pending.pop(src, None)

    def truncate(self, name: str, length: int) -> None:
        content = self.read_bytes(name)[:length]
        self._durable[name] = content
        self._pending.pop(name, None)

    def remove(self, name: str) -> None:
        self._durable.pop(name, None)
        self._pending.pop(name, None)

    def apply_crash(self, keep_pending) -> None:
        """Simulate a power cut.

        Args:
            keep_pending: callable ``(name, pending_bytes) -> int``
                giving how many pending bytes of each file survive.
        """
        for name, pending in sorted(self._pending.items()):
            kept = max(0, min(len(pending), int(keep_pending(name, pending))))
            if kept:
                self._durable[name] = (
                    self._durable.get(name, b"") + pending[:kept]
                )
            elif name not in self._durable:
                # The file was created but nothing ever hit the disk.
                continue
        self._pending.clear()


class FaultInjector:
    """Deterministic fault schedule over a durability filesystem.

    Counts mutating operations (append / fsync / replace / truncate)
    and fires the planned fault when the counter reaches ``at_op``:

    * ``"crash"`` — discard all pending bytes, raise InjectedCrash.
    * ``"torn"`` — an append writes a prefix of its data, then a crash
      keeps a seed-chosen prefix of every file's pending bytes.
    * ``"io_append"`` — short write: a prefix lands in the cache and
      the call raises ``OSError``.
    * ``"io_fsync"`` — the kernel lost the write: pending bytes are
      dropped and fsync raises ``OSError`` (fsyncgate semantics — the
      caller must not retry and must treat the commit as failed).
    * ``"io_replace"`` — the rename fails, target left untouched.

    Args:
        fs: the wrapped :class:`MemFS` (crash modes require it).
        kind / at_op: fault kind and the 0-based op index to fire at.
        seed: drives torn-prefix lengths.
    """

    CRASH_KINDS = ("crash", "torn")
    ERROR_KINDS = ("io_append", "io_fsync", "io_replace")

    def __init__(
        self,
        fs: MemFS,
        kind: str | None = None,
        at_op: int | None = None,
        seed: int = 0,
    ):
        self.fs = fs
        self.kind = kind
        self.at_op = at_op
        self.ops = 0
        self.fired = False
        self._rng = random.Random(seed)

    # -- plumbing ----------------------------------------------------------

    def read_bytes(self, name: str) -> bytes:
        return self.fs.read_bytes(name)

    def exists(self, name: str) -> bool:
        return self.fs.exists(name)

    def remove(self, name: str) -> None:
        self.fs.remove(name)

    # -- faultable operations ----------------------------------------------

    def _due(self) -> bool:
        due = (
            not self.fired
            and self.at_op is not None
            and self.ops >= self.at_op
        )
        self.ops += 1
        return due

    def _crash(self) -> None:
        self.fired = True
        if self.kind == "torn":
            self.fs.apply_crash(
                lambda _name, pending: self._rng.randint(0, len(pending))
            )
        else:
            self.fs.apply_crash(lambda _name, _pending: 0)
        raise InjectedCrash(f"injected {self.kind} at op {self.ops - 1}")

    def append(self, name: str, data: bytes) -> None:
        if self._due():
            if self.kind in self.CRASH_KINDS:
                if self.kind == "torn" and data:
                    self.fs.append(
                        name, data[: self._rng.randint(0, len(data))]
                    )
                self._crash()
            if self.kind == "io_append":
                self.fired = True
                if data:
                    self.fs.append(
                        name, data[: self._rng.randint(0, len(data) - 1)]
                    )
                raise OSError(f"injected short write on {name}")
        self.fs.append(name, data)

    def fsync(self, name: str) -> None:
        if self._due():
            if self.kind in self.CRASH_KINDS:
                self._crash()
            if self.kind == "io_fsync":
                self.fired = True
                self.fs._pending.pop(name, None)
                raise OSError(f"injected fsync failure on {name}")
        self.fs.fsync(name)

    def replace(self, src: str, dst: str) -> None:
        if self._due():
            if self.kind in self.CRASH_KINDS:
                self._crash()
            if self.kind == "io_replace":
                self.fired = True
                raise OSError(f"injected rename failure {src} -> {dst}")
        self.fs.replace(src, dst)

    def truncate(self, name: str, length: int) -> None:
        if self._due() and self.kind in self.CRASH_KINDS:
            self._crash()
        self.fs.truncate(name, length)
