"""Checksummed full-state snapshots.

A snapshot is one JSON file carrying every attached store's
``durable_snapshot()`` plus the LSN it covers; a SHA-256 over the
canonicalized stores payload detects bit rot.  Snapshots are written
through :func:`repro.durability.fs.fs_write_atomic` (temp + fsync +
rename), so a crash mid-snapshot leaves the previous snapshot intact —
recovery then simply replays a longer WAL suffix.
"""

from __future__ import annotations

import hashlib
import json

from repro.exceptions import DurabilityError

SNAPSHOT_NAME = "snapshot.json"


def _stores_digest(stores: dict) -> str:
    canonical = json.dumps(stores, sort_keys=True, ensure_ascii=False)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def write_snapshot(fs, lsn: int, stores: dict, name: str = SNAPSHOT_NAME) -> int:
    """Atomically persist a snapshot; returns its size in bytes."""
    from repro.durability.fs import fs_write_atomic

    payload = json.dumps(
        {"lsn": lsn, "sha256": _stores_digest(stores), "stores": stores},
        sort_keys=True,
        ensure_ascii=False,
        separators=(",", ":"),
    ).encode("utf-8")
    try:
        fs_write_atomic(fs, name, payload)
    except OSError as exc:
        raise DurabilityError(f"snapshot write failed: {exc}") from exc
    return len(payload)


def load_snapshot(fs, name: str = SNAPSHOT_NAME) -> dict | None:
    """Load and verify the snapshot; ``None`` when none exists.

    Raises:
        DurabilityError: the file exists but fails verification —
            atomic writes rule out crash damage, so this is real
            corruption and silently ignoring it would resurrect an
            arbitrarily old state.
    """
    try:
        data = fs.read_bytes(name)
    except FileNotFoundError:
        return None
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DurabilityError(f"snapshot {name} is not valid JSON") from exc
    if not isinstance(payload, dict) or "stores" not in payload:
        raise DurabilityError(f"snapshot {name} has no stores payload")
    if payload.get("sha256") != _stores_digest(payload["stores"]):
        raise DurabilityError(f"snapshot {name} failed checksum verification")
    return payload
