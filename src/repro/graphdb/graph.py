"""The property graph store.

Nodes and edges carry free-form string-keyed properties.  Per the
paper's data model, case-report nodes use ``label`` (a natural-language
description) and ``entityType`` (the schema type); edges use a relation
label plus optional properties.  Adjacency is indexed both ways and
nodes are secondarily indexed by property values for fast lookups.

The graph also maintains exact cardinality statistics — per-edge-label
counts and, through the property indexes, per-(property, value) node
counts — plus adjacency lists keyed by ``(node, edge label)``.  Both
are updated incrementally on every mutation and rebuilt on snapshot
restore, which is what lets :mod:`repro.graphdb.planner` cost join
orders without ever scanning the graph.
"""

from __future__ import annotations

from collections import defaultdict
from copy import deepcopy
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.exceptions import GraphError


@dataclass(slots=True)
class Node:
    """A graph node: unique id plus properties."""

    node_id: str
    properties: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.properties.get(key, default)


@dataclass(slots=True)
class Edge:
    """A directed, labeled edge between two node ids."""

    edge_id: int
    source: str
    target: str
    label: str
    properties: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.properties.get(key, default)


class PropertyGraph:
    """Directed multigraph with property-indexed nodes.

    Example:
        >>> g = PropertyGraph()
        >>> _ = g.add_node("n1", label="fever", entityType="Sign_symptom")
        >>> _ = g.add_node("n2", label="cough", entityType="Sign_symptom")
        >>> _ = g.add_edge("n1", "n2", "OVERLAP")
        >>> [e.label for e in g.out_edges("n1")]
        ['OVERLAP']
    """

    def __init__(self):
        self._nodes: dict[str, Node] = {}
        self._edges: dict[int, Edge] = {}
        self._outgoing: dict[str, list[int]] = defaultdict(list)
        self._incoming: dict[str, list[int]] = defaultdict(list)
        self._property_index: dict[str, dict[Any, set[str]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._indexed_properties: set[str] = set()
        # Cardinality statistics + (node, label) adjacency, maintained
        # incrementally (see module docstring).  The planner reads
        # these; they never require a scan.
        self._edge_label_counts: dict[str, int] = {}
        self._out_by_label: dict[tuple[str, str], list[int]] = defaultdict(
            list
        )
        self._in_by_label: dict[tuple[str, str], list[int]] = defaultdict(
            list
        )
        # Planner observability (not journaled: derived, not state).
        self.planner_counters: dict[str, int] = {}
        self._next_edge_id = 0
        # Durability journal (repro.durability.Durable protocol): when a
        # manager attaches this graph, each mutation appends one
        # replayable op dict here.
        self.journal: list | None = None

    def _log_op(self, op: dict) -> None:
        if self.journal is not None:
            self.journal.append(op)

    # -- nodes ---------------------------------------------------------------

    def add_node(self, node_id: str, **properties: Any) -> Node:
        """Create a node (merging properties when it already exists)."""
        node = self._nodes.get(node_id)
        if node is None:
            node = Node(node_id, dict(properties))
            self._nodes[node_id] = node
            self._index_node(node)
        else:
            self._unindex_node(node)
            node.properties.update(properties)
            self._index_node(node)
        self._log_op(
            {"op": "add_node", "id": node_id, "props": deepcopy(properties)}
        )
        return node

    def node(self, node_id: str) -> Node:
        """Fetch a node by id.

        Raises:
            GraphError: unknown id.
        """
        node = self._nodes.get(node_id)
        if node is None:
            raise GraphError(f"unknown node: {node_id!r}")
        return node

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def remove_node(self, node_id: str) -> None:
        """Delete a node and all incident edges."""
        node = self._nodes.pop(node_id, None)
        if node is None:
            return
        self._unindex_node(node)
        incident = set(self._outgoing.pop(node_id, [])) | set(
            self._incoming.pop(node_id, [])
        )
        for edge_id in incident:
            edge = self._edges.pop(edge_id, None)
            if edge is None:
                continue
            if edge.source != node_id:
                self._outgoing[edge.source].remove(edge_id)
            if edge.target != node_id:
                self._incoming[edge.target].remove(edge_id)
            self._unindex_edge(edge)
        self._log_op({"op": "remove_node", "id": node_id})

    def nodes(self) -> Iterator[Node]:
        """All nodes (insertion order)."""
        return iter(list(self._nodes.values()))

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    # -- edges ------------------------------------------------------------------

    def add_edge(
        self, source: str, target: str, label: str, **properties: Any
    ) -> Edge:
        """Create a directed edge; endpoints must exist.

        Raises:
            GraphError: missing endpoint.
        """
        for endpoint in (source, target):
            if endpoint not in self._nodes:
                raise GraphError(f"unknown node: {endpoint!r}")
        edge = Edge(self._next_edge_id, source, target, label, dict(properties))
        self._edges[edge.edge_id] = edge
        self._outgoing[source].append(edge.edge_id)
        self._incoming[target].append(edge.edge_id)
        self._index_edge(edge)
        self._next_edge_id += 1
        self._log_op(
            {
                "op": "add_edge",
                "src": source,
                "dst": target,
                "label": label,
                "props": deepcopy(properties),
            }
        )
        return edge

    def remove_edge(self, edge_id: int) -> None:
        """Delete an edge by id (no-op when absent)."""
        edge = self._edges.pop(edge_id, None)
        if edge is None:
            return
        self._outgoing[edge.source].remove(edge_id)
        self._incoming[edge.target].remove(edge_id)
        self._unindex_edge(edge)
        self._log_op({"op": "remove_edge", "id": edge_id})

    def edges(self) -> Iterator[Edge]:
        """All edges."""
        return iter(list(self._edges.values()))

    @property
    def n_edges(self) -> int:
        return len(self._edges)

    def out_edges(self, node_id: str, label: str | None = None) -> list[Edge]:
        """Outgoing edges of a node, optionally filtered by label.

        Label-filtered lookups hit the ``(node, label)`` adjacency
        index directly instead of scanning the node's full edge list.
        """
        if label is not None:
            ids = self._out_by_label.get((node_id, label), ())
        else:
            ids = self._outgoing.get(node_id, ())
        return [self._edges[eid] for eid in ids]

    def in_edges(self, node_id: str, label: str | None = None) -> list[Edge]:
        """Incoming edges of a node, optionally filtered by label."""
        if label is not None:
            ids = self._in_by_label.get((node_id, label), ())
        else:
            ids = self._incoming.get(node_id, ())
        return [self._edges[eid] for eid in ids]

    def out_degree(self, node_id: str, label: str | None = None) -> int:
        """Outgoing edge count, without materializing the edges."""
        if label is not None:
            return len(self._out_by_label.get((node_id, label), ()))
        return len(self._outgoing.get(node_id, ()))

    def in_degree(self, node_id: str, label: str | None = None) -> int:
        """Incoming edge count, without materializing the edges."""
        if label is not None:
            return len(self._in_by_label.get((node_id, label), ()))
        return len(self._incoming.get(node_id, ()))

    def neighbors(self, node_id: str) -> set[str]:
        """Ids of nodes adjacent in either direction."""
        out = {self._edges[eid].target for eid in self._outgoing.get(node_id, ())}
        inc = {self._edges[eid].source for eid in self._incoming.get(node_id, ())}
        return out | inc

    # -- property index -----------------------------------------------------------

    def create_property_index(self, key: str) -> None:
        """Index nodes by the value of property ``key``."""
        if key in self._indexed_properties:
            return
        self._indexed_properties.add(key)
        for node in self._nodes.values():
            value = node.properties.get(key)
            if _hashable(value):
                self._property_index[key][value].add(node.node_id)
        self._log_op({"op": "create_property_index", "key": key})

    def find_nodes(self, **criteria: Any) -> list[Node]:
        """Nodes whose properties equal every criterion.

        Uses property indexes when available, scanning otherwise.
        """
        candidate_ids: set[str] | None = None
        unindexed: dict[str, Any] = {}
        for key, value in criteria.items():
            if key in self._indexed_properties and _hashable(value):
                bucket = self._property_index[key].get(value, set())
                candidate_ids = (
                    set(bucket)
                    if candidate_ids is None
                    else candidate_ids & bucket
                )
            else:
                unindexed[key] = value
        if candidate_ids is None:
            pool: Iterator[Node] = iter(self._nodes.values())
        else:
            pool = (self._nodes[nid] for nid in candidate_ids)
        out = []
        for node in pool:
            if all(
                node.properties.get(key) == value
                for key, value in unindexed.items()
            ):
                out.append(node)
        out.sort(key=lambda n: n.node_id)
        return out

    # -- cardinality statistics (planner inputs) ---------------------------------

    def edge_label_counts(self) -> dict[str, int]:
        """Exact live-edge count per edge label."""
        return dict(self._edge_label_counts)

    def edge_label_count(self, label: str) -> int:
        """Exact live-edge count for one label (0 when absent)."""
        return self._edge_label_counts.get(label, 0)

    def property_value_count(self, key: str, value: Any) -> int | None:
        """Exact node count for ``key == value``, or None when ``key``
        is not indexed (the planner then falls back to ``n_nodes``)."""
        if key not in self._indexed_properties or not _hashable(value):
            return None
        return len(self._property_index.get(key, {}).get(value, ()))

    def statistics(self) -> dict:
        """Snapshot of every cardinality the planner consults.

        Exact at all times: maintained incrementally on add/delete and
        rebuilt from scratch on snapshot restore, so it equals what a
        cold rebuild of the same graph would report.
        """
        return {
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "edge_labels": dict(sorted(self._edge_label_counts.items())),
            "indexed_properties": {
                key: {
                    "n_values": len(self._property_index.get(key, {})),
                    "n_indexed_nodes": sum(
                        len(bucket)
                        for bucket in self._property_index.get(
                            key, {}
                        ).values()
                    ),
                }
                for key in sorted(self._indexed_properties)
            },
        }

    def planner_stats(self) -> dict:
        """The ``/stats`` planner section: counters + statistics."""
        return {
            "counters": dict(sorted(self.planner_counters.items())),
            "statistics": self.statistics(),
        }

    # -- durability (repro.durability.Durable protocol) -------------------------

    def durable_apply(self, op: dict) -> None:
        """Replay one journaled op (journal suspended by the manager).

        Edge ids are assigned sequentially, so replaying the full op
        stream from the same starting state reproduces them exactly —
        which is what lets ``remove_edge`` ops replay by id.
        """
        kind = op["op"]
        if kind == "add_node":
            self.add_node(op["id"], **op["props"])
        elif kind == "add_edge":
            self.add_edge(op["src"], op["dst"], op["label"], **op["props"])
        elif kind == "remove_node":
            self.remove_node(op["id"])
        elif kind == "remove_edge":
            self.remove_edge(op["id"])
        elif kind == "create_property_index":
            self.create_property_index(op["key"])
        else:
            raise GraphError(f"unknown journal op: {kind!r}")

    def durable_snapshot(self) -> dict:
        """JSON-shaped full state, including edge-id assignment."""
        return {
            "nodes": [
                [node.node_id, deepcopy(node.properties)]
                for node in self._nodes.values()
            ],
            "edges": [
                [
                    edge.edge_id,
                    edge.source,
                    edge.target,
                    edge.label,
                    deepcopy(edge.properties),
                ]
                for edge in self._edges.values()
            ],
            "next_edge_id": self._next_edge_id,
            "indexed_properties": sorted(self._indexed_properties),
        }

    def durable_restore(self, state: dict) -> None:
        """Replace this (empty) graph's contents with a snapshot state.

        Edge ids are restored verbatim so post-restore ``remove_edge``
        replays keep working.
        """
        self._nodes.clear()
        self._edges.clear()
        self._outgoing.clear()
        self._incoming.clear()
        self._property_index.clear()
        self._indexed_properties.clear()
        self._edge_label_counts.clear()
        self._out_by_label.clear()
        self._in_by_label.clear()
        for key in state.get("indexed_properties", ()):
            self._indexed_properties.add(key)
        for node_id, props in state.get("nodes", ()):
            node = Node(node_id, deepcopy(props))
            self._nodes[node_id] = node
            self._index_node(node)
        for edge_id, source, target, label, props in state.get("edges", ()):
            edge = Edge(int(edge_id), source, target, label, deepcopy(props))
            self._edges[edge.edge_id] = edge
            self._outgoing[source].append(edge.edge_id)
            self._incoming[target].append(edge.edge_id)
            self._index_edge(edge)
        self._next_edge_id = int(state.get("next_edge_id", 0))

    # -- internals --------------------------------------------------------------

    def _index_node(self, node: Node) -> None:
        for key in self._indexed_properties:
            value = node.properties.get(key)
            if _hashable(value):
                self._property_index[key][value].add(node.node_id)

    def _unindex_node(self, node: Node) -> None:
        for key in self._indexed_properties:
            value = node.properties.get(key)
            if _hashable(value):
                bucket = self._property_index[key]
                ids = bucket.get(value)
                if ids is not None:
                    ids.discard(node.node_id)
                    if not ids:
                        del bucket[value]

    def _index_edge(self, edge: Edge) -> None:
        self._edge_label_counts[edge.label] = (
            self._edge_label_counts.get(edge.label, 0) + 1
        )
        self._out_by_label[(edge.source, edge.label)].append(edge.edge_id)
        self._in_by_label[(edge.target, edge.label)].append(edge.edge_id)

    def _unindex_edge(self, edge: Edge) -> None:
        count = self._edge_label_counts.get(edge.label, 0) - 1
        if count > 0:
            self._edge_label_counts[edge.label] = count
        else:
            self._edge_label_counts.pop(edge.label, None)
        for index, key in (
            (self._out_by_label, (edge.source, edge.label)),
            (self._in_by_label, (edge.target, edge.label)),
        ):
            bucket = index.get(key)
            if bucket is not None:
                bucket.remove(edge.edge_id)
                if not bucket:
                    del index[key]


def _hashable(value: Any) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True
