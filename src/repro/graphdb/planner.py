"""Cost-based join-order planning for graph pattern matching.

The naive matcher materializes every variable's full candidate pool and
backtracks over it; on dense multi-edge graphs most of that work probes
bindings no edge can ever realize.  The planner replaces it with the
classic two-phase scheme:

1. **Plan** (:func:`plan_pattern`): using the exact cardinality
   statistics :class:`~repro.graphdb.graph.PropertyGraph` maintains
   (per-edge-label counts, per-(property, value) node counts from the
   property indexes), pick the most selective pattern node as the
   start, then greedily expand along the pattern edge with the
   cheapest estimated output cardinality.  Pattern components that no
   edge reaches start their own scan (cartesian product).
2. **Execute** (:func:`execute_plan`): backtrack in plan order, but
   generate candidates for *expanded* variables from the bound
   neighbor's ``(node, edge label)`` adjacency list instead of the
   variable's whole pool.  Every pattern edge between the new variable
   and already-bound variables is still verified, so the binding set
   is exactly the exhaustive enumerator's.

Estimates are derived only from exact, insertion-order-invariant
counts and all ties break on pattern position, so the chosen plan —
and therefore the ``EXPLAIN`` output — is deterministic for a fixed
graph + pattern and invariant under edge-insertion-order permutation.

``EXPLAIN`` (:func:`explain_pattern`, or the mini-Cypher ``EXPLAIN
MATCH``) executes the plan and reports estimated vs. actual
cardinality per step, which is how a regressed estimate is diagnosed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.graphdb.match import EdgePattern, GraphPattern, NodePattern

if TYPE_CHECKING:  # pragma: no cover
    from repro.graphdb.graph import Node, PropertyGraph


@dataclass
class PlanStep:
    """One planned binding step.

    Attributes:
        op: ``"scan"`` (iterate a candidate pool) or ``"expand"``
            (enumerate neighbors of an already-bound variable).
        var: the variable this step binds.
        estimated: planner's estimated rows after this step.
        from_var: bound variable expanded from (expand only).
        edge_index: index into ``pattern.edges`` of the driving edge.
        direction: ``"out"``/``"in"``/``"both"`` relative to ``var``'s
            partner (expand only).
        label: edge label of the driving edge (None = any).
        actual: bindings actually produced at this step (filled in by
            :func:`execute_plan`; -1 until executed).
    """

    op: str
    var: str
    estimated: float
    from_var: str | None = None
    edge_index: int | None = None
    direction: str = ""
    label: str | None = None
    actual: int = -1

    def describe(self) -> dict:
        """One EXPLAIN row (JSON-shaped, deterministic key order)."""
        row = {
            "op": self.op,
            "var": self.var,
            "estimated": round(self.estimated, 3),
            "actual": self.actual,
        }
        if self.op == "expand":
            arrow = {"out": "->", "in": "<-", "both": "--"}[self.direction]
            label = self.label if self.label is not None else "*"
            row["detail"] = f"({self.from_var})-[:{label}]{arrow}({self.var})"
        return row


@dataclass
class QueryPlan:
    """An ordered sequence of :class:`PlanStep`, one per variable."""

    steps: list[PlanStep] = field(default_factory=list)
    estimated_total: float = 0.0

    def var_order(self) -> list[str]:
        return [step.var for step in self.steps]

    def explain(self) -> list[dict]:
        """EXPLAIN rows: one per step, estimated vs. actual."""
        return [
            {"step": index, **step.describe()}
            for index, step in enumerate(self.steps)
        ]


# -- cost model ---------------------------------------------------------------


def estimate_node_candidates(graph, node_pattern: NodePattern) -> float:
    """Estimated candidate-pool size for one pattern node.

    Exact when a constrained property is indexed (the index bucket size
    *is* the cardinality); otherwise falls back to ``n_nodes``.
    Predicates are opaque, so they never reduce the estimate.
    """
    best = float(graph.n_nodes)
    for key, value in node_pattern.properties:
        count = graph.property_value_count(key, value)
        if count is not None:
            best = min(best, float(count))
    return best


def _avg_fanout(graph, label: str | None) -> float:
    """Mean edges per node for one label (any label when None)."""
    n_nodes = max(1, graph.n_nodes)
    if label is None:
        return graph.n_edges / n_nodes
    return graph.edge_label_count(label) / n_nodes


def _expand_estimate(
    graph,
    frontier_rows: float,
    edge: EdgePattern,
    target_estimate: float,
) -> float:
    """Estimated rows after expanding ``edge`` toward its unbound end.

    frontier × fanout(label) × selectivity(target pattern); undirected
    edges may realize in either orientation, so their fanout doubles.
    """
    fanout = _avg_fanout(graph, edge.label)
    if not edge.directed:
        fanout *= 2.0
    selectivity = target_estimate / max(1, graph.n_nodes)
    return frontier_rows * fanout * selectivity


# -- planning -----------------------------------------------------------------


def plan_pattern(graph, pattern: GraphPattern) -> QueryPlan:
    """Choose a deterministic, cost-ordered binding order.

    Greedy: cheapest scan first, then always the connecting pattern
    edge with the smallest estimated output; a new scan starts only
    when no pattern edge crosses from bound to unbound variables
    (disconnected pattern components).  Ties break on pattern
    position, never on graph iteration order.
    """
    pattern.validate()
    position = {p.var: i for i, p in enumerate(pattern.nodes)}
    by_var = {p.var: p for p in pattern.nodes}
    estimates = {
        p.var: estimate_node_candidates(graph, p) for p in pattern.nodes
    }
    unbound = set(by_var)
    bound: set[str] = set()
    plan = QueryPlan()
    frontier_rows = 1.0
    while unbound:
        best_expand: tuple[float, int, int] | None = None
        for edge_index, edge in enumerate(pattern.edges):
            if edge.source == edge.target:
                continue  # self-loops filter, they never expand
            if edge.source in bound and edge.target in unbound:
                target = edge.target
            elif edge.target in bound and edge.source in unbound:
                target = edge.source
            else:
                continue
            cost = _expand_estimate(
                graph, frontier_rows, edge, estimates[target]
            )
            key = (cost, position[target], edge_index)
            if best_expand is None or key < best_expand:
                best_expand = key
        if best_expand is not None:
            cost, _, edge_index = best_expand
            edge = pattern.edges[edge_index]
            if edge.source in bound:
                var, from_var = edge.target, edge.source
                direction = "out" if edge.directed else "both"
            else:
                var, from_var = edge.source, edge.target
                direction = "in" if edge.directed else "both"
            step = PlanStep(
                op="expand",
                var=var,
                estimated=cost,
                from_var=from_var,
                edge_index=edge_index,
                direction=direction,
                label=edge.label,
            )
        else:
            var = min(unbound, key=lambda v: (estimates[v], position[v]))
            cost = frontier_rows * estimates[var]
            step = PlanStep(op="scan", var=var, estimated=cost)
        plan.steps.append(step)
        frontier_rows = max(1.0, cost)
        unbound.discard(step.var)
        bound.add(step.var)
    plan.estimated_total = frontier_rows
    return plan


# -- execution ----------------------------------------------------------------


def _scan_candidates(graph, node_pattern: NodePattern) -> "list[Node]":
    """The full, deterministic candidate pool for a scanned variable."""
    exact = dict(node_pattern.properties)
    if exact:
        pool = graph.find_nodes(**exact)
    else:
        pool = sorted(graph.nodes(), key=lambda n: n.node_id)
    if node_pattern.predicate is not None:
        pool = [node for node in pool if node_pattern.predicate(node)]
    return pool


def _expand_candidates(
    graph, step: PlanStep, anchor: "Node", node_pattern: NodePattern
) -> "list[Node]":
    """Neighbor candidates of a bound node along the step's edge.

    A superset filter: every admissible binding of ``step.var`` must be
    adjacent to the anchor along this edge, so enumerating the label's
    adjacency list (instead of the variable's whole pool) loses
    nothing; the executor still verifies every pattern edge.
    """
    ids: set[str] = set()
    if step.direction in ("out", "both"):
        ids.update(
            e.target for e in graph.out_edges(anchor.node_id, step.label)
        )
    if step.direction in ("in", "both"):
        ids.update(
            e.source for e in graph.in_edges(anchor.node_id, step.label)
        )
    out = []
    for node_id in sorted(ids):
        node = graph.node(node_id)
        if node_pattern.admits(node):
            out.append(node)
    return out


def execute_plan(
    graph,
    pattern: GraphPattern,
    plan: QueryPlan,
    limit: int | None = None,
) -> "list[dict[str, Node]]":
    """Enumerate all bindings in plan order.

    Produces exactly the exhaustive enumerator's binding *set*; the
    order is deterministic (plan order, node-id order within a step).
    Fills each step's ``actual`` with the bindings that survived it.
    """
    by_var = {p.var: p for p in pattern.nodes}
    edges_by_vars: dict[frozenset[str], list[EdgePattern]] = {}
    for edge in pattern.edges:
        edges_by_vars.setdefault(
            frozenset((edge.source, edge.target)), []
        ).append(edge)

    scan_pools = {
        step.var: _scan_candidates(graph, by_var[step.var])
        for step in plan.steps
        if step.op == "scan"
    }
    for step in plan.steps:
        step.actual = 0
    results: "list[dict[str, Node]]" = []

    def consistent(binding, var, node) -> bool:
        if any(bound.node_id == node.node_id for bound in binding.values()):
            return False  # injective matching, as in cypher MATCH
        for edge in edges_by_vars.get(frozenset((var,)), ()):
            if not _edge_satisfied(graph, edge, var, node, var, node):
                return False
        for other_var, other_node in binding.items():
            for edge in edges_by_vars.get(frozenset((var, other_var)), ()):
                if not _edge_satisfied(
                    graph, edge, var, node, other_var, other_node
                ):
                    return False
        return True

    def backtrack(depth: int, binding) -> bool:
        """Returns True when the limit has been reached."""
        if depth == len(plan.steps):
            results.append(dict(binding))
            return limit is not None and len(results) >= limit
        step = plan.steps[depth]
        if step.op == "scan":
            candidates = scan_pools[step.var]
        else:
            candidates = _expand_candidates(
                graph, step, binding[step.from_var], by_var[step.var]
            )
        for node in candidates:
            if consistent(binding, step.var, node):
                step.actual += 1
                binding[step.var] = node
                if backtrack(depth + 1, binding):
                    return True
                del binding[step.var]
        return False

    backtrack(0, {})
    counters = getattr(graph, "planner_counters", None)
    if counters is not None:
        counters["plans_executed"] = counters.get("plans_executed", 0) + 1
        for step in plan.steps:
            key = f"{step.op}_steps"
            counters[key] = counters.get(key, 0) + 1
    return results


def explain_pattern(
    graph,
    pattern: GraphPattern,
    limit: int | None = None,
) -> "tuple[list[dict[str, Node]], list[dict]]":
    """Plan, execute, and return ``(bindings, explain rows)``.

    The rows carry estimated and actual cardinality per step plus a
    summary row with the total binding count; for a fixed graph and
    pattern the output is stable across calls.
    """
    pattern.validate()
    if not pattern.nodes:
        return [], []
    plan = plan_pattern(graph, pattern)
    bindings = execute_plan(graph, pattern, plan, limit=limit)
    rows = plan.explain()
    rows.append(
        {
            "step": len(plan.steps),
            "op": "result",
            "var": "",
            "estimated": round(plan.estimated_total, 3),
            "actual": len(bindings),
        }
    )
    return bindings, rows


def _edge_satisfied(graph, edge, var, node, other_var, other_node) -> bool:
    """Does some graph edge realize ``edge`` between the two bindings?

    Unlike the pre-planner check this filters by label through the
    ``(node, label)`` adjacency index instead of scanning the source's
    full edge list.
    """
    if edge.source == var:
        src, dst = node, other_node
    else:
        src, dst = other_node, node
    if any(
        e.target == dst.node_id
        for e in graph.out_edges(src.node_id, edge.label)
    ):
        return True
    if not edge.directed:
        return any(
            e.target == src.node_id
            for e in graph.out_edges(dst.node_id, edge.label)
        )
    return False
