"""Property graph substrate: the Neo4j analog.

CREATe indexes each case report as a graph — nodes carry ``nodeId``,
``label`` (natural-language description) and ``entityType``; edges carry
``source``, ``target`` and a relation ``label`` — and queries it via
cypher (paper section III-D).  This package implements the graph store,
subgraph pattern matching, and a mini-Cypher query language.
"""

from repro.graphdb.graph import PropertyGraph, Node, Edge
from repro.graphdb.match import (
    NodePattern,
    EdgePattern,
    GraphPattern,
    match_pattern,
    match_pattern_unplanned,
)
from repro.graphdb.planner import (
    PlanStep,
    QueryPlan,
    explain_pattern,
    plan_pattern,
)
from repro.graphdb.cypher import CypherEngine
from repro.graphdb.traverse import (
    shortest_path,
    connected_components,
    degree_stats,
)

__all__ = [
    "PropertyGraph",
    "Node",
    "Edge",
    "NodePattern",
    "EdgePattern",
    "GraphPattern",
    "match_pattern",
    "match_pattern_unplanned",
    "PlanStep",
    "QueryPlan",
    "plan_pattern",
    "explain_pattern",
    "CypherEngine",
    "shortest_path",
    "connected_components",
    "degree_stats",
]
