"""Subgraph pattern matching over a :class:`PropertyGraph`.

A :class:`GraphPattern` is a small query graph of variable-named node
patterns connected by edge patterns; :func:`match_pattern` enumerates
all bindings of pattern variables to graph nodes, executing the
join order chosen by the cost-based planner
(:mod:`repro.graphdb.planner`): scan the most selective variable,
expand the rest along ``(node, edge label)`` adjacency.

:func:`match_pattern_unplanned` keeps the pre-planner engine —
backtracking over full per-variable candidate pools, most-constrained
variable first — as the mid-level reference the benchmark and the fuzz
harness compare the planner against (the bottom-level oracle is
``repro.testing.oracles.brute_force_bindings``).

This is the engine behind both mini-Cypher ``MATCH`` and CREATe-IR's
entity & relation search: a parsed user query becomes a pattern whose
nodes constrain ``entityType`` and (fuzzily) ``label``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.graphdb.graph import Edge, Node, PropertyGraph


@dataclass(frozen=True, slots=True)
class NodePattern:
    """Constraints one pattern variable places on a graph node.

    Attributes:
        var: variable name (binding key in results).
        properties: exact property equalities.
        predicate: arbitrary extra constraint (e.g. fuzzy label match).
    """

    var: str
    properties: tuple[tuple[str, Any], ...] = ()
    predicate: Callable[[Node], bool] | None = None

    def admits(self, node: Node) -> bool:
        """Does ``node`` satisfy this pattern?"""
        for key, value in self.properties:
            if node.properties.get(key) != value:
                return False
        if self.predicate is not None and not self.predicate(node):
            return False
        return True


@dataclass(frozen=True, slots=True)
class EdgePattern:
    """A required edge between two bound variables.

    Attributes:
        source / target: variable names.
        label: required edge label (None = any).
        directed: when False, either orientation satisfies the pattern.
    """

    source: str
    target: str
    label: str | None = None
    directed: bool = True

    def admits(self, edge: Edge) -> bool:
        return self.label is None or edge.label == self.label


@dataclass
class GraphPattern:
    """A conjunction of node and edge patterns."""

    nodes: list[NodePattern] = field(default_factory=list)
    edges: list[EdgePattern] = field(default_factory=list)

    def node_vars(self) -> list[str]:
        return [pattern.var for pattern in self.nodes]

    def validate(self) -> None:
        """Check edge endpoints reference declared variables."""
        declared = set(self.node_vars())
        for edge in self.edges:
            for var in (edge.source, edge.target):
                if var not in declared:
                    raise ValueError(
                        f"edge references undeclared variable {var!r}"
                    )


def match_pattern(
    graph: PropertyGraph,
    pattern: GraphPattern,
    limit: int | None = None,
) -> list[dict[str, Node]]:
    """All bindings of pattern variables to distinct graph nodes.

    Executes the cost-based plan (most selective variable first,
    cheapest-edge expansion); the binding *set* is identical to the
    exhaustive enumerator's and the order is deterministic.

    Args:
        graph: the data graph.
        pattern: the query pattern (validated internally).
        limit: stop after this many bindings (None = exhaustive).

    Returns:
        A list of ``{var: Node}`` dicts; deterministic order.
    """
    from repro.graphdb.planner import execute_plan, plan_pattern

    pattern.validate()
    if not pattern.nodes:
        return []
    plan = plan_pattern(graph, pattern)
    return execute_plan(graph, pattern, plan, limit=limit)


def match_pattern_unplanned(
    graph: PropertyGraph,
    pattern: GraphPattern,
    limit: int | None = None,
) -> list[dict[str, Node]]:
    """The pre-planner matcher, kept verbatim as a reference.

    Materializes every variable's full candidate pool and backtracks
    most-constrained-variable first, checking pattern edges by
    scanning the source node's complete edge list.  Same binding set
    as :func:`match_pattern`; used by ``bench_graph_match`` as the
    speedup baseline and by the fuzz harness as a second oracle.
    """
    pattern.validate()
    if not pattern.nodes:
        return []

    candidates: dict[str, list[Node]] = {}
    for node_pattern in pattern.nodes:
        exact = dict(node_pattern.properties)
        pool = graph.find_nodes(**exact) if exact else sorted(
            graph.nodes(), key=lambda n: n.node_id
        )
        if node_pattern.predicate is not None:
            pool = [node for node in pool if node_pattern.predicate(node)]
        candidates[node_pattern.var] = pool
        if not pool:
            return []

    # Most-constrained variable first keeps the search shallow.
    order = sorted(pattern.nodes, key=lambda p: len(candidates[p.var]))
    edges_by_vars: dict[frozenset[str], list[EdgePattern]] = {}
    for edge in pattern.edges:
        edges_by_vars.setdefault(
            frozenset((edge.source, edge.target)), []
        ).append(edge)

    results: list[dict[str, Node]] = []

    def consistent(
        binding: dict[str, Node], var: str, node: Node
    ) -> bool:
        if any(bound.node_id == node.node_id for bound in binding.values()):
            return False  # injective matching, as in cypher MATCH
        # Self-loop patterns (source var == target var) constrain the
        # candidate itself, not a previously bound variable.
        for edge in edges_by_vars.get(frozenset((var,)), ()):
            if not _edge_satisfied(graph, edge, var, node, var, node):
                return False
        for other_var, other_node in binding.items():
            for edge in edges_by_vars.get(frozenset((var, other_var)), ()):
                if not _edge_satisfied(graph, edge, var, node, other_var, other_node):
                    return False
        return True

    def backtrack(depth: int, binding: dict[str, Node]) -> bool:
        """Returns True when the limit has been reached."""
        if depth == len(order):
            results.append(dict(binding))
            return limit is not None and len(results) >= limit
        node_pattern = order[depth]
        for node in candidates[node_pattern.var]:
            if consistent(binding, node_pattern.var, node):
                binding[node_pattern.var] = node
                if backtrack(depth + 1, binding):
                    return True
                del binding[node_pattern.var]
        return False

    backtrack(0, {})
    return results


def _edge_satisfied(
    graph: PropertyGraph,
    edge: EdgePattern,
    var: str,
    node: Node,
    other_var: str,
    other_node: Node,
) -> bool:
    if edge.source == var:
        src, dst = node, other_node
    else:
        src, dst = other_node, node
    forward = any(
        e.target == dst.node_id and edge.admits(e)
        for e in graph.out_edges(src.node_id)
    )
    if forward:
        return True
    if not edge.directed:
        return any(
            e.target == src.node_id and edge.admits(e)
            for e in graph.out_edges(dst.node_id)
        )
    return False


def iter_edge_bindings(
    graph: PropertyGraph,
    binding: dict[str, Node],
    pattern: GraphPattern,
) -> Iterator[tuple[EdgePattern, Edge]]:
    """For a node binding, yield one concrete edge per edge pattern.

    Useful to report *which* edges realized a match (for result
    explanations and visualization highlighting).
    """
    for edge_pattern in pattern.edges:
        src = binding[edge_pattern.source]
        dst = binding[edge_pattern.target]
        found = None
        for e in graph.out_edges(src.node_id):
            if e.target == dst.node_id and edge_pattern.admits(e):
                found = e
                break
        if found is None and not edge_pattern.directed:
            for e in graph.out_edges(dst.node_id):
                if e.target == src.node_id and edge_pattern.admits(e):
                    found = e
                    break
        if found is not None:
            yield (edge_pattern, found)
