"""Graph traversal utilities: paths, components, degree statistics.

Used by the portal's graph views (connected clusters of a case graph)
and available as public API for downstream analyses over the indexed
knowledge graphs.
"""

from __future__ import annotations

from collections import deque

from repro.graphdb.graph import PropertyGraph


def shortest_path(
    graph: PropertyGraph,
    source: str,
    target: str,
    label: str | None = None,
    directed: bool = False,
) -> list[str] | None:
    """BFS shortest node path from ``source`` to ``target``.

    Args:
        label: restrict traversal to edges with this label.
        directed: follow edges only source->target when True.

    Returns:
        The node-id path including both endpoints, or None when
        unreachable.
    """
    if not graph.has_node(source) or not graph.has_node(target):
        return None
    if source == target:
        return [source]
    parents: dict[str, str] = {}
    queue = deque([source])
    visited = {source}
    while queue:
        current = queue.popleft()
        neighbors = [e.target for e in graph.out_edges(current, label=label)]
        if not directed:
            neighbors.extend(
                e.source for e in graph.in_edges(current, label=label)
            )
        for neighbor in neighbors:
            if neighbor in visited:
                continue
            visited.add(neighbor)
            parents[neighbor] = current
            if neighbor == target:
                path = [target]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                return list(reversed(path))
            queue.append(neighbor)
    return None


def connected_components(graph: PropertyGraph) -> list[list[str]]:
    """Weakly connected components, each sorted, largest first."""
    remaining = {node.node_id for node in graph.nodes()}
    components: list[list[str]] = []
    while remaining:
        start = min(remaining)
        seen = {start}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for neighbor in graph.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        components.append(sorted(seen))
        remaining -= seen
    components.sort(key=lambda comp: (-len(comp), comp[0]))
    return components


def degree_stats(graph: PropertyGraph) -> dict[str, float]:
    """Degree summary over the whole graph (for portal dashboards).

    Includes the per-edge-label histogram the graph maintains for the
    planner, so dashboards see the same cardinalities queries plan on.
    """
    nodes = list(graph.nodes())
    if not nodes:
        return {
            "n_nodes": 0,
            "n_edges": 0,
            "mean_degree": 0.0,
            "max_degree": 0,
            "edge_labels": {},
        }
    degrees = [
        graph.out_degree(node.node_id) + graph.in_degree(node.node_id)
        for node in nodes
    ]
    return {
        "n_nodes": len(nodes),
        "n_edges": graph.n_edges,
        "mean_degree": sum(degrees) / len(degrees),
        "max_degree": max(degrees),
        "edge_labels": graph.edge_label_counts(),
    }
