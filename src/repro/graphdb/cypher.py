"""Mini-Cypher: the query language of the Neo4j analog.

Implements the subset CREATe uses to index and search case-report
graphs:

* ``CREATE (a:Label {k: 'v'}), (a)-[:REL]->(b:Label {...})``
* ``MATCH (a:Label {k: 'v'})-[r:REL]->(b) WHERE a.k CONTAINS 'x'
  RETURN a, b.k, r LIMIT 10``
* ``EXPLAIN MATCH ...`` — run the statement through the cost-based
  planner and return one row per plan step (estimated vs. actual
  cardinality) plus a final ``result`` summary row instead of the
  match rows; output is stable for a fixed graph + query.

Node labels map to the ``_label`` node property; relationship types map
to edge labels.  ``WHERE`` supports ``=``, ``<>``, ``CONTAINS`` and
``AND``; ``RETURN`` supports variables, ``var.property`` and
``count(*)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import CypherError
from repro.graphdb.graph import Node, PropertyGraph
from repro.graphdb.match import (
    EdgePattern,
    GraphPattern,
    NodePattern,
    iter_edge_bindings,
    match_pattern,
)

_TOKEN_RE = re.compile(
    r"""
      (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
    | (?P<number>-?\d+(?:\.\d+)?)
    | (?P<arrow><-|->|-)
    | (?P<symbol>[(){}\[\],:.=*]|<>)
    | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<ws>\s+)
    """,
    re.VERBOSE,
)

_KEYWORDS = frozenset(
    {
        "CREATE", "MATCH", "WHERE", "RETURN", "LIMIT", "AND",
        "CONTAINS", "ORDER", "BY", "DESC", "ASC", "COUNT", "EXPLAIN",
    }
)


@dataclass
class _Token:
    kind: str
    value: str


def _lex(query: str) -> list[_Token]:
    tokens = []
    pos = 0
    while pos < len(query):
        match = _TOKEN_RE.match(query, pos)
        if match is None:
            raise CypherError(
                f"cannot tokenize cypher at position {pos}: "
                f"{query[pos:pos + 20]!r}"
            )
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        value = match.group()
        if kind == "name" and value.upper() in _KEYWORDS:
            tokens.append(_Token("keyword", value.upper()))
        else:
            tokens.append(_Token(kind, value))
    return tokens


@dataclass
class _ParsedNode:
    var: str
    label: str | None
    properties: dict[str, Any] = field(default_factory=dict)


@dataclass
class _ParsedEdge:
    source_var: str
    target_var: str
    var: str | None
    label: str | None
    directed: bool


@dataclass
class _Condition:
    var: str
    key: str
    op: str  # '=', '<>', 'CONTAINS'
    value: Any


@dataclass
class _ReturnItem:
    kind: str  # 'var', 'property', 'count'
    var: str = ""
    key: str = ""


class _Parser:
    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._pos = 0
        self._anon_counter = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self) -> _Token | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise CypherError("unexpected end of query")
        self._pos += 1
        return token

    def _expect(self, kind: str, value: str | None = None) -> _Token:
        token = self._next()
        if token.kind != kind or (value is not None and token.value != value):
            raise CypherError(
                f"expected {value or kind}, got {token.value!r}"
            )
        return token

    def _accept(self, kind: str, value: str | None = None) -> _Token | None:
        token = self._peek()
        if (
            token is not None
            and token.kind == kind
            and (value is None or token.value == value)
        ):
            self._pos += 1
            return token
        return None

    def at_end(self) -> bool:
        return self._pos >= len(self._tokens)

    # -- grammar ----------------------------------------------------------------

    def parse_patterns(self) -> tuple[list[_ParsedNode], list[_ParsedEdge]]:
        nodes: list[_ParsedNode] = []
        edges: list[_ParsedEdge] = []
        seen_vars: set[str] = set()
        while True:
            node = self._parse_node()
            if node.var not in seen_vars:
                nodes.append(node)
                seen_vars.add(node.var)
            else:
                self._merge_node(nodes, node)
            left_var = node.var
            while self._peek() is not None and self._peek().value in ("-", "<-"):
                edge, direction_right = self._parse_edge_segment()
                right = self._parse_node()
                if right.var not in seen_vars:
                    nodes.append(right)
                    seen_vars.add(right.var)
                else:
                    self._merge_node(nodes, right)
                if direction_right:
                    edges.append(
                        _ParsedEdge(left_var, right.var, edge[0], edge[1], edge[2])
                    )
                else:
                    edges.append(
                        _ParsedEdge(right.var, left_var, edge[0], edge[1], edge[2])
                    )
                left_var = right.var
            if not self._accept("symbol", ","):
                break
        return nodes, edges

    @staticmethod
    def _merge_node(nodes: list[_ParsedNode], update: _ParsedNode) -> None:
        for node in nodes:
            if node.var == update.var:
                if update.label is not None:
                    node.label = update.label
                node.properties.update(update.properties)
                return

    def _parse_node(self) -> _ParsedNode:
        self._expect("symbol", "(")
        var = None
        token = self._peek()
        if token is not None and token.kind == "name":
            var = self._next().value
        label = None
        if self._accept("symbol", ":"):
            label = self._expect("name").value
        properties: dict[str, Any] = {}
        if self._accept("symbol", "{"):
            properties = self._parse_properties()
        self._expect("symbol", ")")
        if var is None:
            self._anon_counter += 1
            var = f"_anon{self._anon_counter}"
        return _ParsedNode(var, label, properties)

    def _parse_properties(self) -> dict[str, Any]:
        properties: dict[str, Any] = {}
        if self._accept("symbol", "}"):
            return properties
        while True:
            key = self._expect("name").value
            self._expect("symbol", ":")
            properties[key] = self._parse_literal()
            if self._accept("symbol", "}"):
                return properties
            self._expect("symbol", ",")

    def _parse_literal(self) -> Any:
        token = self._next()
        if token.kind == "string":
            return _unquote(token.value)
        if token.kind == "number":
            text = token.value
            return float(text) if "." in text else int(text)
        if token.kind == "name" and token.value in ("true", "false"):
            return token.value == "true"
        if token.kind == "name" and token.value == "null":
            return None
        raise CypherError(f"expected literal, got {token.value!r}")

    def _parse_edge_segment(
        self,
    ) -> tuple[tuple[str | None, str | None, bool], bool]:
        """Parse ``-[r:REL]->`` / ``<-[r:REL]-`` / ``-[r:REL]-``.

        Returns ((var, label, directed), direction_right).
        """
        leading = self._next()
        reversed_dir = leading.value == "<-"
        if leading.value not in ("-", "<-"):
            raise CypherError(f"expected edge, got {leading.value!r}")
        var = None
        label = None
        if self._accept("symbol", "["):
            token = self._peek()
            if token is not None and token.kind == "name":
                var = self._next().value
            if self._accept("symbol", ":"):
                label = self._expect("name").value
            self._expect("symbol", "]")
        trailing = self._next()
        if trailing.value == "->":
            if reversed_dir:
                raise CypherError("edge cannot have arrows on both ends")
            return (var, label, True), True
        if trailing.value == "-":
            if reversed_dir:
                return (var, label, True), False
            return (var, label, False), True
        raise CypherError(f"malformed edge ending: {trailing.value!r}")

    def parse_where(self) -> list[_Condition]:
        conditions = []
        while True:
            var = self._expect("name").value
            self._expect("symbol", ".")
            key = self._expect("name").value
            token = self._next()
            if token.kind == "symbol" and token.value in ("=", "<>"):
                op = token.value
            elif token.kind == "keyword" and token.value == "CONTAINS":
                op = "CONTAINS"
            else:
                raise CypherError(f"unknown comparison: {token.value!r}")
            value = self._parse_literal()
            conditions.append(_Condition(var, key, op, value))
            if not self._accept("keyword", "AND"):
                return conditions

    def parse_return(self) -> list[_ReturnItem]:
        items = []
        while True:
            if self._accept("keyword", "COUNT"):
                self._expect("symbol", "(")
                self._expect("symbol", "*")
                self._expect("symbol", ")")
                items.append(_ReturnItem("count"))
            else:
                var = self._expect("name").value
                if self._accept("symbol", "."):
                    key = self._expect("name").value
                    items.append(_ReturnItem("property", var, key))
                else:
                    items.append(_ReturnItem("var", var))
            if not self._accept("symbol", ","):
                return items


def _unquote(raw: str) -> str:
    body = raw[1:-1]
    return body.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")


class CypherEngine:
    """Executes mini-Cypher statements against a :class:`PropertyGraph`.

    Example:
        >>> engine = CypherEngine(PropertyGraph())
        >>> _ = engine.run("CREATE (a:Event {label: 'fever'})")
        >>> engine.run("MATCH (a:Event) RETURN a.label")
        [{'a.label': 'fever'}]
    """

    def __init__(self, graph: PropertyGraph | None = None):
        self.graph = graph if graph is not None else PropertyGraph()
        self._create_counter = 0

    def run(self, query: str) -> list[dict[str, Any]]:
        """Execute one statement; returns result rows (CREATE returns [])."""
        tokens = _lex(query)
        if not tokens:
            raise CypherError("empty query")
        parser = _Parser(tokens)
        head = parser._next()
        if head.kind != "keyword":
            raise CypherError(f"expected CREATE or MATCH, got {head.value!r}")
        if head.value == "CREATE":
            return self._run_create(parser)
        if head.value == "MATCH":
            return self._run_match(parser)
        if head.value == "EXPLAIN":
            parser._expect("keyword", "MATCH")
            return self._run_match(parser, explain=True)
        raise CypherError(f"unsupported statement: {head.value}")

    # -- CREATE ------------------------------------------------------------

    def _run_create(self, parser: _Parser) -> list[dict[str, Any]]:
        nodes, edges = parser.parse_patterns()
        if not parser.at_end():
            raise CypherError("trailing tokens after CREATE pattern")
        bound: dict[str, str] = {}
        for parsed in nodes:
            explicit_id = parsed.properties.get("nodeId")
            if parsed.var in bound and not parsed.properties and parsed.label is None:
                continue
            if explicit_id is not None:
                node_id = str(explicit_id)
            elif self.graph.has_node(parsed.var) and not parsed.properties:
                node_id = parsed.var
            else:
                self._create_counter += 1
                node_id = f"cy{self._create_counter}"
            properties = dict(parsed.properties)
            if parsed.label is not None:
                properties["_label"] = parsed.label
            # Pattern reuse of an existing variable refers to the same node.
            if parsed.var in bound:
                node_id = bound[parsed.var]
                self.graph.add_node(node_id, **properties)
            else:
                self.graph.add_node(node_id, **properties)
                bound[parsed.var] = node_id
        for parsed_edge in edges:
            source = bound.get(parsed_edge.source_var)
            target = bound.get(parsed_edge.target_var)
            if source is None or target is None:
                raise CypherError(
                    "CREATE edge references unbound variable"
                )
            self.graph.add_edge(
                source, target, parsed_edge.label or "RELATED"
            )
        return []

    # -- MATCH ---------------------------------------------------------------

    def _run_match(
        self, parser: _Parser, explain: bool = False
    ) -> list[dict[str, Any]]:
        nodes, edges = parser.parse_patterns()
        conditions: list[_Condition] = []
        if parser._accept("keyword", "WHERE"):
            conditions = parser.parse_where()
        parser._expect("keyword", "RETURN")
        return_items = parser.parse_return()
        order_by: tuple[str, str, bool] | None = None
        if parser._accept("keyword", "ORDER"):
            parser._expect("keyword", "BY")
            var = parser._expect("name").value
            parser._expect("symbol", ".")
            key = parser._expect("name").value
            descending = bool(parser._accept("keyword", "DESC"))
            if not descending:
                parser._accept("keyword", "ASC")
            order_by = (var, key, descending)
        limit = None
        if parser._accept("keyword", "LIMIT"):
            limit = int(parser._expect("number").value)
        if not parser.at_end():
            raise CypherError("trailing tokens after MATCH query")

        pattern = GraphPattern(
            nodes=[
                NodePattern(
                    parsed.var,
                    tuple(
                        sorted(
                            {
                                **parsed.properties,
                                **(
                                    {"_label": parsed.label}
                                    if parsed.label is not None
                                    else {}
                                ),
                            }.items()
                        )
                    ),
                )
                for parsed in nodes
            ],
            edges=[
                EdgePattern(e.source_var, e.target_var, e.label, e.directed)
                for e in edges
            ],
        )
        if explain:
            # Plan + execute, reporting the plan instead of the rows.
            # WHERE/RETURN/ORDER/LIMIT are parsed (and validated) but
            # apply downstream of the pattern match they describe.
            from repro.graphdb.planner import explain_pattern

            _bindings, rows = explain_pattern(self.graph, pattern)
            return rows
        bindings = match_pattern(self.graph, pattern)
        bindings = [
            binding
            for binding in bindings
            if self._where_holds(binding, conditions)
        ]
        if order_by is not None:
            var, key, descending = order_by

            def sort_value(binding):
                from repro.docstore.store import _sort_key

                node = binding.get(var)
                value = node.properties.get(key) if node else None
                # _sort_key gives a total order over mixed JSON types,
                # with None first ascending.
                return _sort_key(value)

            bindings.sort(key=sort_value, reverse=descending)
        rows = [
            self._project(binding, return_items, pattern)
            for binding in bindings
        ]
        if any(item.kind == "count" for item in return_items):
            return [{"count": len(rows)}]
        if limit is not None:
            rows = rows[:limit]
        return rows

    @staticmethod
    def _where_holds(
        binding: dict[str, Node], conditions: list[_Condition]
    ) -> bool:
        for cond in conditions:
            node = binding.get(cond.var)
            if node is None:
                return False
            value = node.properties.get(cond.key)
            if cond.op == "=":
                if value != cond.value:
                    return False
            elif cond.op == "<>":
                if value == cond.value:
                    return False
            elif cond.op == "CONTAINS":
                if not (
                    isinstance(value, str)
                    and isinstance(cond.value, str)
                    and cond.value.lower() in value.lower()
                ):
                    return False
        return True

    def _project(
        self,
        binding: dict[str, Node],
        items: list[_ReturnItem],
        pattern: GraphPattern,
    ) -> dict[str, Any]:
        row: dict[str, Any] = {}
        edge_lookup = None
        for item in items:
            if item.kind == "count":
                continue
            if item.kind == "var":
                node = binding.get(item.var)
                if node is not None:
                    row[item.var] = {
                        "nodeId": node.node_id,
                        **node.properties,
                    }
                else:
                    # Maybe an edge variable.
                    if edge_lookup is None:
                        edge_lookup = {
                            ep: edge
                            for ep, edge in iter_edge_bindings(
                                self.graph, binding, pattern
                            )
                        }
                    row[item.var] = None
            else:
                node = binding.get(item.var)
                row[f"{item.var}.{item.key}"] = (
                    node.properties.get(item.key) if node else None
                )
        return row
