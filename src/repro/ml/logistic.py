"""Multinomial logistic regression on sparse features, trained with Adam.

Used by the temporal relation classifier.  Besides the usual
``fit``/``predict_proba`` surface, the class exposes its forward pass
and an externally drivable Adam step so the PSL-regularized trainer in
:mod:`repro.temporal.psl` can inject its soft-logic gradient into the
same parameters.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.exceptions import ModelError, NotFittedError


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilized."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class LogisticRegression:
    """Multinomial logistic regression (softmax) classifier.

    Args:
        n_classes: number of output classes (label ids 0..n-1).
        n_features: input dimensionality (hashed feature space).
        learning_rate / beta1 / beta2: Adam hyperparameters.
        l2: L2 regularization strength.
    """

    def __init__(
        self,
        n_classes: int,
        n_features: int,
        learning_rate: float = 0.05,
        l2: float = 1e-5,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        seed: int = 7,
    ):
        if n_classes < 2:
            raise ModelError("need at least two classes")
        self.n_classes = n_classes
        self.n_features = n_features
        self.learning_rate = learning_rate
        self.l2 = l2
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        rng = np.random.default_rng(seed)
        self.weights = rng.normal(0.0, 1e-3, size=(n_features, n_classes))
        self.bias = np.zeros(n_classes)
        self._m_w = np.zeros_like(self.weights)
        self._v_w = np.zeros_like(self.weights)
        self._m_b = np.zeros_like(self.bias)
        self._v_b = np.zeros_like(self.bias)
        self._t = 0
        self._fitted = False

    # -- forward ------------------------------------------------------------

    def logits(self, x: sparse.csr_matrix) -> np.ndarray:
        """Raw class scores, shape (n_rows, n_classes)."""
        return np.asarray(x @ self.weights) + self.bias

    def predict_proba(self, x: sparse.csr_matrix) -> np.ndarray:
        """Class probabilities, shape (n_rows, n_classes)."""
        return softmax(self.logits(x))

    def predict(self, x: sparse.csr_matrix) -> np.ndarray:
        """Argmax class ids."""
        return np.argmax(self.logits(x), axis=1)

    # -- training -----------------------------------------------------------

    def fit(
        self,
        x: sparse.csr_matrix,
        y: np.ndarray,
        epochs: int = 30,
        batch_size: int = 64,
        seed: int = 11,
        quiet: bool = True,
    ) -> "LogisticRegression":
        """Standard cross-entropy training with minibatch Adam."""
        y = np.asarray(y, dtype=np.int64)
        if x.shape[0] != len(y):
            raise ModelError("X/y row mismatch")
        if y.size and (y.min() < 0 or y.max() >= self.n_classes):
            raise ModelError("label id out of range")
        rng = np.random.default_rng(seed)
        indices = np.arange(x.shape[0])
        for epoch in range(epochs):
            rng.shuffle(indices)
            total = 0.0
            for lo in range(0, len(indices), batch_size):
                batch = indices[lo : lo + batch_size]
                loss, grad_w, grad_b = self.ce_gradient(x[batch], y[batch])
                self.step(grad_w, grad_b)
                total += loss * len(batch)
            if not quiet and len(indices):
                print(f"logreg epoch {epoch}: loss={total / len(indices):.4f}")
        self._fitted = True
        return self

    def ce_gradient(
        self, x: sparse.csr_matrix, y: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Mean cross-entropy loss and its gradient on a batch.

        Returns:
            (loss, grad_weights, grad_bias) — gradients include L2.
        """
        n = x.shape[0]
        probs = self.predict_proba(x)
        log_likelihood = -np.log(
            np.clip(probs[np.arange(n), y], 1e-12, None)
        ).mean()
        delta = probs.copy()
        delta[np.arange(n), y] -= 1.0
        delta /= n
        grad_w = np.asarray(x.T @ delta) + self.l2 * self.weights
        grad_b = delta.sum(axis=0)
        return float(log_likelihood), grad_w, grad_b

    def grad_from_dlogits(
        self, x: sparse.csr_matrix, dlogits: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Backpropagate an arbitrary d(loss)/d(logits) to the parameters.

        This is the hook the PSL regularizer uses: it computes its own
        dlogits from the soft-logic rule distances, then folds the
        parameter gradient in here.
        """
        grad_w = np.asarray(x.T @ dlogits)
        grad_b = dlogits.sum(axis=0)
        return grad_w, grad_b

    def step(self, grad_w: np.ndarray, grad_b: np.ndarray) -> None:
        """One Adam update using internal moment state."""
        self._t += 1
        self._m_w = self.beta1 * self._m_w + (1 - self.beta1) * grad_w
        self._v_w = self.beta2 * self._v_w + (1 - self.beta2) * grad_w**2
        self._m_b = self.beta1 * self._m_b + (1 - self.beta1) * grad_b
        self._v_b = self.beta2 * self._v_b + (1 - self.beta2) * grad_b**2
        m_w_hat = self._m_w / (1 - self.beta1**self._t)
        v_w_hat = self._v_w / (1 - self.beta2**self._t)
        m_b_hat = self._m_b / (1 - self.beta1**self._t)
        v_b_hat = self._v_b / (1 - self.beta2**self._t)
        self.weights -= (
            self.learning_rate * m_w_hat / (np.sqrt(v_w_hat) + self.epsilon)
        )
        self.bias -= (
            self.learning_rate * m_b_hat / (np.sqrt(v_b_hat) + self.epsilon)
        )
        self._fitted = True

    def require_fitted(self) -> None:
        """Raise :class:`NotFittedError` when no update has happened."""
        if not self._fitted:
            raise NotFittedError("LogisticRegression used before fit()")
