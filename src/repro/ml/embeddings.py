"""Char-n-gram contextual embeddings: the C-FLAIR substitute.

The paper pre-trains C-FLAIR, a FLAIR-style contextualized character
language model, for a week on a V100.  Offline and CPU-only we keep the
three properties that matter to the downstream tagger:

1. **subword robustness** — token vectors are composed from character
   n-gram vectors, so unseen inflections of clinical terms
   ("cardiomyopathies") land near their stems;
2. **distributional pretraining** — n-gram vectors come from a PPMI
   co-occurrence matrix over an unlabeled corpus, factorized with
   truncated SVD (the classic count-based analogue of an LM objective);
3. **contextualization** — per-token vectors are mixed with
   exponentially decayed forward and backward context states, a
   fixed-weight analogue of FLAIR's bidirectional recurrent states.

Dense vectors feed the sparse CRF through random-hyperplane sign bits
(LSH), emitted as ordinary string features.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import svds

from repro.exceptions import NotFittedError
from repro.text.ngrams import character_ngrams

_BOUNDARY = "\x01"  # marks word start/end inside n-grams


class CharNgramEmbedder:
    """Pretrainable char-n-gram embeddings with fixed-decay context mixing.

    Args:
        dim: embedding dimensionality after SVD.
        min_gram / max_gram: character n-gram sizes (word-boundary
            markers included).
        window: context window (in tokens) for co-occurrence counting.
        max_context_words: context vocabulary cap (most frequent kept).
        decay: exponential decay of the forward/backward context states.
        n_bits: number of LSH sign bits exposed as CRF features.
    """

    def __init__(
        self,
        dim: int = 48,
        min_gram: int = 3,
        max_gram: int = 5,
        window: int = 2,
        max_context_words: int = 4000,
        decay: float = 0.5,
        n_bits: int = 64,
        seed: int = 29,
    ):
        self.dim = dim
        self.min_gram = min_gram
        self.max_gram = max_gram
        self.window = window
        self.max_context_words = max_context_words
        self.decay = decay
        self.n_bits = n_bits
        self.seed = seed
        self._gram_index: dict[str, int] | None = None
        self._gram_vectors: np.ndarray | None = None
        self._hyperplanes: np.ndarray | None = None
        self._token_cache: dict[str, np.ndarray] = {}
        self._pretrain_tokens: list[str] = []
        self._centroids: dict[int, np.ndarray] = {}
        self._cluster_cache: dict[str, tuple[tuple[int, int], ...]] = {}

    # -- pretraining ---------------------------------------------------------

    def fit(self, sentences: Sequence[Sequence[str]]) -> "CharNgramEmbedder":
        """Pretrain on tokenized, unlabeled sentences.

        Builds the n-gram/context co-occurrence matrix, applies PPMI,
        and factorizes with truncated SVD.
        """
        context_counts: Counter[str] = Counter()
        for sentence in sentences:
            context_counts.update(token.lower() for token in sentence)
        context_vocab = {
            word: idx
            for idx, (word, _count) in enumerate(
                context_counts.most_common(self.max_context_words)
            )
        }

        gram_index: dict[str, int] = {}
        rows: list[int] = []
        cols: list[int] = []
        for sentence in sentences:
            lowered = [token.lower() for token in sentence]
            for pos, token in enumerate(lowered):
                contexts = [
                    context_vocab[neighbor]
                    for offset in range(-self.window, self.window + 1)
                    if offset != 0
                    and 0 <= pos + offset < len(lowered)
                    and (neighbor := lowered[pos + offset]) in context_vocab
                ]
                if not contexts:
                    continue
                for gram in self._grams_of(token):
                    gram_id = gram_index.setdefault(gram, len(gram_index))
                    for ctx_id in contexts:
                        rows.append(gram_id)
                        cols.append(ctx_id)

        n_grams = len(gram_index)
        n_contexts = max(len(context_vocab), 1)
        if n_grams == 0:
            # Degenerate corpus: fall back to an empty table; token
            # vectors become zeros and the tagger degrades gracefully.
            self._gram_index = {}
            self._gram_vectors = np.zeros((0, self.dim))
        else:
            counts = sparse.coo_matrix(
                (np.ones(len(rows)), (rows, cols)),
                shape=(n_grams, n_contexts),
            ).tocsr()
            ppmi = self._ppmi(counts)
            k = min(self.dim, min(ppmi.shape) - 1)
            if k < 1:
                vectors = np.zeros((n_grams, self.dim))
            else:
                u, s, _vt = svds(ppmi, k=k, random_state=self.seed)
                # svds returns ascending singular values; order is
                # irrelevant downstream, but scale by sqrt(s) as usual.
                vectors = u * np.sqrt(np.maximum(s, 0.0))
                if vectors.shape[1] < self.dim:
                    pad = np.zeros((n_grams, self.dim - vectors.shape[1]))
                    vectors = np.hstack([vectors, pad])
            self._gram_index = gram_index
            self._gram_vectors = vectors

        rng = np.random.default_rng(self.seed)
        self._hyperplanes = rng.standard_normal((3 * self.dim, self.n_bits))
        self._token_cache.clear()
        self._cluster_cache.clear()
        self._pretrain_tokens = sorted(
            {token.lower() for sentence in sentences for token in sentence}
        )
        return self

    def fit_clusters(self, ks: tuple[int, ...] = (16, 64, 256)) -> None:
        """Brown-cluster-style word classes: k-means over token vectors.

        Runs k-means at each granularity in ``ks`` over the pretraining
        vocabulary's static vectors.  Unseen tokens are assigned at
        lookup time through their char-n-gram composition, which is how
        the pretrained representation transfers to novel clinical terms.
        """
        self._require_fitted()
        vectors = np.stack(
            [self.token_vector(token) for token in self._pretrain_tokens]
        ) if self._pretrain_tokens else np.zeros((0, self.dim))
        self._centroids = {}
        for k in ks:
            self._centroids[k] = _kmeans(
                vectors, min(k, max(len(vectors), 1)), seed=self.seed + k
            )
        self._cluster_cache.clear()

    def cluster_ids(self, token: str) -> tuple[tuple[int, int], ...]:
        """``(k, cluster_id)`` pairs across fitted granularities."""
        if not self._centroids:
            return ()
        key = token.lower()
        cached = self._cluster_cache.get(key)
        if cached is not None:
            return cached
        vector = self.token_vector(key)
        out = []
        for k in sorted(self._centroids):
            centroids = self._centroids[k]
            if len(centroids) == 0:
                continue
            distances = np.linalg.norm(centroids - vector, axis=1)
            out.append((k, int(np.argmin(distances))))
        result = tuple(out)
        if len(self._cluster_cache) < 500_000:
            self._cluster_cache[key] = result
        return result

    @staticmethod
    def _ppmi(counts: sparse.csr_matrix) -> sparse.csr_matrix:
        """Positive pointwise mutual information transform."""
        total = counts.sum()
        if total == 0:
            return counts
        row_sums = np.asarray(counts.sum(axis=1)).ravel()
        col_sums = np.asarray(counts.sum(axis=0)).ravel()
        coo = counts.tocoo()
        pmi = np.log(
            (coo.data * total)
            / (row_sums[coo.row] * col_sums[coo.col])
        )
        positive = np.maximum(pmi, 0.0)
        return sparse.coo_matrix(
            (positive, (coo.row, coo.col)), shape=counts.shape
        ).tocsr()

    # -- inference -------------------------------------------------------------

    def token_vector(self, token: str) -> np.ndarray:
        """Static (context-free) vector: mean of the token's gram vectors."""
        self._require_fitted()
        key = token.lower()
        cached = self._token_cache.get(key)
        if cached is not None:
            return cached
        gram_ids = [
            self._gram_index[gram]
            for gram in self._grams_of(key)
            if gram in self._gram_index
        ]
        if gram_ids:
            vector = self._gram_vectors[gram_ids].mean(axis=0)
            norm = np.linalg.norm(vector)
            if norm > 0:
                vector = vector / norm
        else:
            vector = np.zeros(self.dim)
        if len(self._token_cache) < 500_000:
            self._token_cache[key] = vector
        return vector

    def contextual_vectors(self, tokens: Sequence[str]) -> np.ndarray:
        """Contextualized token matrix, shape (len(tokens), 3 * dim).

        Columns are [static | forward state | backward state], where the
        forward state at t is the decayed mix of vectors at positions
        < t and the backward state mirrors it — the fixed-weight stand-in
        for FLAIR's two recurrent character LMs.
        """
        self._require_fitted()
        n = len(tokens)
        static = np.zeros((n, self.dim))
        for t, token in enumerate(tokens):
            static[t] = self.token_vector(token)
        forward = np.zeros_like(static)
        backward = np.zeros_like(static)
        state = np.zeros(self.dim)
        for t in range(n):
            forward[t] = state
            state = self.decay * state + (1 - self.decay) * static[t]
        state = np.zeros(self.dim)
        for t in range(n - 1, -1, -1):
            backward[t] = state
            state = self.decay * state + (1 - self.decay) * static[t]
        return np.hstack([static, forward, backward])

    def sign_features(self, tokens: Sequence[str]) -> list[list[str]]:
        """LSH sign-bit feature strings per token (CRF-consumable).

        Each token gets ``n_bits`` features of the form ``"cemb7=+"``.
        """
        self._require_fitted()
        contextual = self.contextual_vectors(tokens)
        signs = contextual @ self._hyperplanes > 0
        return [
            [
                f"cemb{bit}={'+' if signs[t, bit] else '-'}"
                for bit in range(self.n_bits)
            ]
            for t in range(len(tokens))
        ]

    @property
    def n_grams_learned(self) -> int:
        """Size of the learned n-gram vocabulary."""
        self._require_fitted()
        return len(self._gram_index)

    # -- internals ----------------------------------------------------------

    def _grams_of(self, token: str) -> list[str]:
        wrapped = f"{_BOUNDARY}{token.lower()}{_BOUNDARY}"
        if len(wrapped) < self.min_gram:
            return []
        return [
            gram
            for gram, _s, _e in character_ngrams(
                wrapped, self.min_gram, min(self.max_gram, len(wrapped))
            )
        ]

    def _require_fitted(self) -> None:
        if self._gram_index is None:
            raise NotFittedError("CharNgramEmbedder used before fit()")


def _kmeans(
    vectors: np.ndarray, k: int, seed: int, n_iterations: int = 12
) -> np.ndarray:
    """Lloyd's k-means with k-means++ style seeding; returns centroids."""
    n = len(vectors)
    if n == 0:
        return np.zeros((0, vectors.shape[1] if vectors.ndim == 2 else 1))
    k = min(k, n)
    rng = np.random.default_rng(seed)

    # k-means++ seeding.
    centroids = [vectors[int(rng.integers(0, n))]]
    for _ in range(1, k):
        distances = np.min(
            np.stack(
                [np.sum((vectors - c) ** 2, axis=1) for c in centroids]
            ),
            axis=0,
        )
        total = distances.sum()
        if total <= 0:
            centroids.append(vectors[int(rng.integers(0, n))])
            continue
        probabilities = distances / total
        centroids.append(vectors[int(rng.choice(n, p=probabilities))])
    centers = np.stack(centroids)

    for _ in range(n_iterations):
        # Assign.
        distances = (
            np.sum(vectors**2, axis=1, keepdims=True)
            - 2.0 * vectors @ centers.T
            + np.sum(centers**2, axis=1)[None, :]
        )
        assignment = np.argmin(distances, axis=1)
        # Update.
        new_centers = centers.copy()
        for j in range(k):
            members = vectors[assignment == j]
            if len(members):
                new_centers[j] = members.mean(axis=0)
        if np.allclose(new_centers, centers):
            break
        centers = new_centers
    return centers
