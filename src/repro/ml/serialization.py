"""Model persistence: save/load for the trained extraction stack.

The paper distributes its pretrained C-FLAIR model as a download; the
library equivalent is deterministic on-disk serialization for every
trained component.  Formats are open (``.npz`` arrays + ``.json``
metadata, no pickle), so saved models are portable and inspectable.

Large hashed weight tables are stored sparsely (only rows touched
during training), which keeps saved taggers small.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.exceptions import ModelError
from repro.ml.crf import LinearChainCRF
from repro.ml.embeddings import CharNgramEmbedder
from repro.ml.logistic import LogisticRegression

_FORMAT_VERSION = 1


def _dump_json(path: Path, payload: dict) -> None:
    path.write_text(json.dumps(payload, indent=2), encoding="utf-8")


def _load_json(path: Path) -> dict:
    if not path.exists():
        raise ModelError(f"missing model file: {path}")
    return json.loads(path.read_text(encoding="utf-8"))


# -- CRF ---------------------------------------------------------------------


def save_crf(model: LinearChainCRF, directory: str | Path) -> Path:
    """Persist a trained CRF under ``directory`` (created if needed)."""
    if model._emit is None:
        raise ModelError("cannot save an unfitted CRF")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    nonzero_rows = np.flatnonzero(np.abs(model._emit).sum(axis=1))
    np.savez_compressed(
        directory / "crf.npz",
        emit_rows=nonzero_rows,
        emit_values=model._emit[nonzero_rows],
        trans=model._trans,
        start=model._start,
        end=model._end,
    )
    _dump_json(
        directory / "crf.json",
        {
            "format_version": _FORMAT_VERSION,
            "labels": model.labels,
            "n_features": model.n_features,
            "epochs": model.epochs,
            "learning_rate": model.learning_rate,
            "l2": model.l2,
            "seed": model.seed,
        },
    )
    return directory


def load_crf(directory: str | Path) -> LinearChainCRF:
    """Rebuild a CRF saved by :func:`save_crf`."""
    directory = Path(directory)
    meta = _load_json(directory / "crf.json")
    arrays = np.load(directory / "crf.npz")
    model = LinearChainCRF(
        n_features=meta["n_features"],
        epochs=meta["epochs"],
        learning_rate=meta["learning_rate"],
        l2=meta["l2"],
        seed=meta["seed"],
    )
    model.labels = list(meta["labels"])
    model._label_index = {label: i for i, label in enumerate(model.labels)}
    emit = np.zeros((meta["n_features"], len(model.labels)))
    emit[arrays["emit_rows"]] = arrays["emit_values"]
    model._emit = emit
    model._trans = arrays["trans"]
    model._start = arrays["start"]
    model._end = arrays["end"]
    return model


# -- embedder -----------------------------------------------------------------


def save_embedder(embedder: CharNgramEmbedder, directory: str | Path) -> Path:
    """Persist a fitted embedder (gram table, hyperplanes, clusters)."""
    embedder._require_fitted()
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {
        "gram_vectors": embedder._gram_vectors,
        "hyperplanes": embedder._hyperplanes,
    }
    cluster_ks = sorted(embedder._centroids)
    for k in cluster_ks:
        arrays[f"centroids_{k}"] = embedder._centroids[k]
    np.savez_compressed(directory / "embedder.npz", **arrays)
    _dump_json(
        directory / "embedder.json",
        {
            "format_version": _FORMAT_VERSION,
            "dim": embedder.dim,
            "min_gram": embedder.min_gram,
            "max_gram": embedder.max_gram,
            "window": embedder.window,
            "max_context_words": embedder.max_context_words,
            "decay": embedder.decay,
            "n_bits": embedder.n_bits,
            "seed": embedder.seed,
            "gram_index": embedder._gram_index,
            "pretrain_tokens": embedder._pretrain_tokens,
            "cluster_ks": cluster_ks,
        },
    )
    return directory


def load_embedder(directory: str | Path) -> CharNgramEmbedder:
    """Rebuild an embedder saved by :func:`save_embedder`."""
    directory = Path(directory)
    meta = _load_json(directory / "embedder.json")
    arrays = np.load(directory / "embedder.npz")
    embedder = CharNgramEmbedder(
        dim=meta["dim"],
        min_gram=meta["min_gram"],
        max_gram=meta["max_gram"],
        window=meta["window"],
        max_context_words=meta["max_context_words"],
        decay=meta["decay"],
        n_bits=meta["n_bits"],
        seed=meta["seed"],
    )
    embedder._gram_index = dict(meta["gram_index"])
    embedder._gram_vectors = arrays["gram_vectors"]
    embedder._hyperplanes = arrays["hyperplanes"]
    embedder._pretrain_tokens = list(meta["pretrain_tokens"])
    embedder._centroids = {
        k: arrays[f"centroids_{k}"] for k in meta["cluster_ks"]
    }
    return embedder


# -- logistic regression --------------------------------------------------------


def save_logistic(model: LogisticRegression, directory: str | Path) -> Path:
    """Persist a trained logistic regression."""
    model.require_fitted()
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    nonzero_rows = np.flatnonzero(np.abs(model.weights).sum(axis=1) > 1e-12)
    np.savez_compressed(
        directory / "logistic.npz",
        weight_rows=nonzero_rows,
        weight_values=model.weights[nonzero_rows],
        bias=model.bias,
    )
    _dump_json(
        directory / "logistic.json",
        {
            "format_version": _FORMAT_VERSION,
            "n_classes": model.n_classes,
            "n_features": model.n_features,
            "learning_rate": model.learning_rate,
            "l2": model.l2,
        },
    )
    return directory


def load_logistic(directory: str | Path) -> LogisticRegression:
    """Rebuild a logistic regression saved by :func:`save_logistic`."""
    directory = Path(directory)
    meta = _load_json(directory / "logistic.json")
    arrays = np.load(directory / "logistic.npz")
    model = LogisticRegression(
        n_classes=meta["n_classes"],
        n_features=meta["n_features"],
        learning_rate=meta["learning_rate"],
        l2=meta["l2"],
    )
    weights = np.zeros((meta["n_features"], meta["n_classes"]))
    weights[arrays["weight_rows"]] = arrays["weight_values"]
    model.weights = weights
    model.bias = arrays["bias"]
    model._fitted = True
    return model


# -- high-level: tagger / classifier / extractor -----------------------------------


def save_ner_tagger(tagger, directory: str | Path) -> Path:
    """Persist a trained :class:`repro.ner.NerTagger`."""
    from repro.ner.tagger import NerTagger

    if not isinstance(tagger, NerTagger):
        raise ModelError("save_ner_tagger expects a NerTagger")
    if tagger._model is None:
        raise ModelError("cannot save an unfitted NerTagger")
    if not isinstance(tagger._model, LinearChainCRF):
        raise ModelError("only CRF-decoder taggers support persistence")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_crf(tagger._model, directory)
    has_embedder = (
        tagger.use_context_embeddings and tagger.embedder is not None
    )
    if has_embedder:
        save_embedder(tagger.embedder, directory)
    _dump_json(
        directory / "tagger.json",
        {
            "format_version": _FORMAT_VERSION,
            "decoder": tagger.decoder,
            "use_context_embeddings": tagger.use_context_embeddings,
            "embedding_feature_mode": tagger.embedding_feature_mode,
            "epochs": tagger.epochs,
            "n_features": tagger.n_features,
            "seed": tagger.seed,
            "has_embedder": has_embedder,
        },
    )
    return directory


def load_ner_tagger(directory: str | Path):
    """Rebuild a tagger saved by :func:`save_ner_tagger`."""
    from repro.ner.tagger import NerTagger

    directory = Path(directory)
    meta = _load_json(directory / "tagger.json")
    embedder = load_embedder(directory) if meta["has_embedder"] else None
    tagger = NerTagger(
        decoder=meta["decoder"],
        use_context_embeddings=meta["use_context_embeddings"],
        embedding_feature_mode=meta["embedding_feature_mode"],
        embedder=embedder,
        epochs=meta["epochs"],
        n_features=meta["n_features"],
        seed=meta["seed"],
    )
    tagger._model = load_crf(directory)
    return tagger


def save_temporal_classifier(classifier, directory: str | Path) -> Path:
    """Persist a trained :class:`repro.temporal.TemporalClassifier`."""
    from repro.temporal.classifier import TemporalClassifier

    if not isinstance(classifier, TemporalClassifier):
        raise ModelError("expected a TemporalClassifier")
    if classifier.model is None:
        raise ModelError("cannot save an unfitted TemporalClassifier")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_logistic(classifier.model, directory)
    _dump_json(
        directory / "temporal.json",
        {
            "format_version": _FORMAT_VERSION,
            "labels": classifier.labels,
            "n_features": classifier.n_features,
            "epochs": classifier.epochs,
            "learning_rate": classifier.learning_rate,
            "l2": classifier.l2,
            "seed": classifier.seed,
        },
    )
    return directory


def load_temporal_classifier(directory: str | Path):
    """Rebuild a classifier saved by :func:`save_temporal_classifier`."""
    from repro.temporal.classifier import TemporalClassifier

    directory = Path(directory)
    meta = _load_json(directory / "temporal.json")
    classifier = TemporalClassifier(
        n_features=meta["n_features"],
        epochs=meta["epochs"],
        learning_rate=meta["learning_rate"],
        l2=meta["l2"],
        seed=meta["seed"],
    )
    classifier.labels = list(meta["labels"])
    classifier._label_index = {
        label: i for i, label in enumerate(classifier.labels)
    }
    classifier.model = load_logistic(directory)
    return classifier


def save_extractor(extractor, directory: str | Path) -> Path:
    """Persist a full :class:`repro.pipeline.ClinicalExtractor`."""
    directory = Path(directory)
    save_ner_tagger(extractor.ner, directory / "ner")
    if extractor.temporal is not None:
        save_temporal_classifier(extractor.temporal, directory / "temporal")
    _dump_json(
        directory / "extractor.json",
        {
            "format_version": _FORMAT_VERSION,
            "use_global_inference": extractor.use_global_inference,
            "max_pair_distance": extractor.max_pair_distance,
            "has_temporal": extractor.temporal is not None,
        },
    )
    return directory


def load_extractor(directory: str | Path):
    """Rebuild an extractor saved by :func:`save_extractor`."""
    from repro.pipeline import ClinicalExtractor

    directory = Path(directory)
    meta = _load_json(directory / "extractor.json")
    ner = load_ner_tagger(directory / "ner")
    temporal = (
        load_temporal_classifier(directory / "temporal")
        if meta["has_temporal"]
        else None
    )
    return ClinicalExtractor(
        ner,
        temporal,
        use_global_inference=meta["use_global_inference"],
        max_pair_distance=meta["max_pair_distance"],
    )
