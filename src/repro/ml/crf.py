"""Linear-chain conditional random field over hashed string features.

This is the decoder at the heart of the C-FLAIR-substitute NER tagger:
emission weights live in a hashed feature table, transitions are dense,
training maximizes conditional log-likelihood with forward-backward
gradients and Adagrad updates (sparse-friendly).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ModelError, NotFittedError
from repro.ml import infer


class LinearChainCRF:
    """CRF sequence labeler.

    Inputs are pre-hashed: each sentence is a list of int arrays, one
    array of feature indices per token (see
    :meth:`repro.ml.features.FeatureHasher.indices_of`).

    Attributes:
        labels: the label inventory, fixed at fit time.
    """

    def __init__(
        self,
        n_features: int = 1 << 18,
        epochs: int = 8,
        learning_rate: float = 0.2,
        l2: float = 1e-6,
        seed: int = 13,
    ):
        self.n_features = n_features
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.l2 = l2
        self.seed = seed
        self.labels: list[str] = []
        self._label_index: dict[str, int] = {}
        self._emit: np.ndarray | None = None  # (n_features, L)
        self._trans: np.ndarray | None = None  # (L, L)
        self._start: np.ndarray | None = None
        self._end: np.ndarray | None = None

    # -- API ---------------------------------------------------------------

    def fit(
        self,
        sequences: Sequence[Sequence[np.ndarray]],
        label_sequences: Sequence[Sequence[str]],
        quiet: bool = True,
    ) -> "LinearChainCRF":
        """Train on parallel (features, labels) sequences.

        Args:
            sequences: per-sentence lists of per-token feature-index arrays.
            label_sequences: per-sentence label strings, same lengths.
            quiet: suppress per-epoch loss logging.
        """
        if len(sequences) != len(label_sequences):
            raise ModelError("sequences/labels count mismatch")
        self._init_parameters(label_sequences)
        encoded = [
            np.asarray([self._label_index[y] for y in ys], dtype=np.int64)
            for ys in label_sequences
        ]
        rng = np.random.default_rng(self.seed)
        order = np.arange(len(sequences))
        # Adagrad accumulators.
        acc_emit = np.full((self.n_features, len(self.labels)), 1e-8)
        acc_trans = np.full_like(self._trans, 1e-8)
        acc_start = np.full_like(self._start, 1e-8)
        acc_end = np.full_like(self._end, 1e-8)

        for epoch in range(self.epochs):
            rng.shuffle(order)
            total_nll = 0.0
            for i in order:
                feats, gold = sequences[i], encoded[i]
                if len(gold) == 0:
                    continue
                total_nll += self._update_one(
                    feats, gold, acc_emit, acc_trans, acc_start, acc_end
                )
            if not quiet:
                print(f"crf epoch {epoch}: nll={total_nll:.2f}")
        return self

    def predict(self, feats: Sequence[np.ndarray]) -> list[str]:
        """Viterbi-decode one sentence's feature arrays into labels."""
        self._require_fitted()
        if len(feats) == 0:
            return []
        emissions = self._emissions(feats)
        path, _score = infer.viterbi(
            emissions, self._trans, self._start, self._end
        )
        return [self.labels[y] for y in path]

    def predict_batch(
        self, sequences: Sequence[Sequence[np.ndarray]]
    ) -> list[list[str]]:
        """Decode many sentences."""
        return [self.predict(feats) for feats in sequences]

    def sequence_log_likelihood(
        self, feats: Sequence[np.ndarray], labels: Sequence[str]
    ) -> float:
        """log P(labels | feats) under the trained model."""
        self._require_fitted()
        gold = np.asarray(
            [self._label_index[y] for y in labels], dtype=np.int64
        )
        emissions = self._emissions(feats)
        _alpha, log_z = infer.forward_log(
            emissions, self._trans, self._start, self._end
        )
        score = infer.sequence_score(
            gold, emissions, self._trans, self._start, self._end
        )
        return score - log_z

    # -- internals ----------------------------------------------------------

    def _init_parameters(
        self, label_sequences: Sequence[Sequence[str]]
    ) -> None:
        inventory = sorted({y for ys in label_sequences for y in ys})
        if not inventory:
            raise ModelError("no labels in training data")
        self.labels = inventory
        self._label_index = {y: i for i, y in enumerate(inventory)}
        n_labels = len(inventory)
        self._emit = np.zeros((self.n_features, n_labels))
        self._trans = np.zeros((n_labels, n_labels))
        self._start = np.zeros(n_labels)
        self._end = np.zeros(n_labels)

    def _emissions(self, feats: Sequence[np.ndarray]) -> np.ndarray:
        emissions = np.empty((len(feats), len(self.labels)))
        for t, indices in enumerate(feats):
            if len(indices):
                emissions[t] = self._emit[indices].sum(axis=0)
            else:
                emissions[t] = 0.0
        return emissions

    def _update_one(
        self,
        feats: Sequence[np.ndarray],
        gold: np.ndarray,
        acc_emit: np.ndarray,
        acc_trans: np.ndarray,
        acc_start: np.ndarray,
        acc_end: np.ndarray,
    ) -> float:
        """One Adagrad step on one sentence; returns its NLL."""
        emissions = self._emissions(feats)
        unary, pairwise, log_z = infer.marginals(
            emissions, self._trans, self._start, self._end
        )
        gold_score = infer.sequence_score(
            gold, emissions, self._trans, self._start, self._end
        )
        nll = log_z - gold_score

        n_labels = len(self.labels)
        lr = self.learning_rate

        # Emission gradient per token: expected (unary) minus empirical.
        for t, indices in enumerate(feats):
            if len(indices) == 0:
                continue
            grad_row = unary[t].copy()
            grad_row[gold[t]] -= 1.0
            grad_row += self.l2 * self._emit[indices].mean(axis=0)
            acc_emit[indices] += grad_row**2
            self._emit[indices] -= (
                lr * grad_row / np.sqrt(acc_emit[indices])
            )

        # Transition gradient.
        grad_trans = pairwise.sum(axis=0) if len(gold) > 1 else np.zeros(
            (n_labels, n_labels)
        )
        for t in range(len(gold) - 1):
            grad_trans[gold[t], gold[t + 1]] -= 1.0
        grad_trans += self.l2 * self._trans
        acc_trans += grad_trans**2
        self._trans -= lr * grad_trans / np.sqrt(acc_trans)

        # Start / end gradients.
        grad_start = unary[0].copy()
        grad_start[gold[0]] -= 1.0
        acc_start += grad_start**2
        self._start -= lr * grad_start / np.sqrt(acc_start)

        grad_end = unary[-1].copy()
        grad_end[gold[-1]] -= 1.0
        acc_end += grad_end**2
        self._end -= lr * grad_end / np.sqrt(acc_end)

        return nll

    def _require_fitted(self) -> None:
        if self._emit is None:
            raise NotFittedError("LinearChainCRF used before fit()")
