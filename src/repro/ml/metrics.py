"""Evaluation metrics: classification, span extraction, and retrieval.

Every experiment in EXPERIMENTS.md reports numbers computed here, so
the implementations follow the standard definitions exactly (micro/
macro P-R-F1, exact-span matching for NER, binary-relevance IR metrics).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np


@dataclass(frozen=True, slots=True)
class PRF1:
    """Precision / recall / F1 triple with its support counts."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    predicted: int
    gold: int

    @classmethod
    def from_counts(cls, tp: int, predicted: int, gold: int) -> "PRF1":
        precision = tp / predicted if predicted else 0.0
        recall = tp / gold if gold else 0.0
        if precision + recall > 0:
            f1 = 2 * precision * recall / (precision + recall)
        else:
            f1 = 0.0
        return cls(precision, recall, f1, tp, predicted, gold)


def confusion_matrix(
    gold: Sequence[Hashable], predicted: Sequence[Hashable]
) -> dict[tuple[Hashable, Hashable], int]:
    """Sparse confusion counts keyed by ``(gold_label, predicted_label)``."""
    if len(gold) != len(predicted):
        raise ValueError(
            f"length mismatch: {len(gold)} gold vs {len(predicted)} predicted"
        )
    counts: Counter[tuple[Hashable, Hashable]] = Counter(zip(gold, predicted))
    return dict(counts)


def classification_f1(
    gold: Sequence[Hashable],
    predicted: Sequence[Hashable],
    average: str = "micro",
    exclude: frozenset | None = None,
) -> PRF1:
    """Multi-class P/R/F1.

    Args:
        gold / predicted: aligned label sequences.
        average: ``"micro"`` (pool counts over classes) or ``"macro"``
            (mean of per-class F1s).
        exclude: labels ignored on both sides (e.g. the NONE relation
            class, matching how temporal RE is scored in I2B2/TB-Dense).
    """
    if len(gold) != len(predicted):
        raise ValueError("gold/predicted length mismatch")
    exclude = exclude or frozenset()
    labels = (set(gold) | set(predicted)) - exclude
    per_class: dict[Hashable, PRF1] = {}
    for label in labels:
        tp = sum(
            1 for g, p in zip(gold, predicted) if g == label and p == label
        )
        pred = sum(1 for p in predicted if p == label)
        gld = sum(1 for g in gold if g == label)
        per_class[label] = PRF1.from_counts(tp, pred, gld)

    if average == "micro":
        tp = sum(score.true_positives for score in per_class.values())
        pred = sum(score.predicted for score in per_class.values())
        gld = sum(score.gold for score in per_class.values())
        return PRF1.from_counts(tp, pred, gld)
    if average == "macro":
        if not per_class:
            return PRF1.from_counts(0, 0, 0)
        precision = float(
            np.mean([s.precision for s in per_class.values()])
        )
        recall = float(np.mean([s.recall for s in per_class.values()]))
        f1 = float(np.mean([s.f1 for s in per_class.values()]))
        tp = sum(score.true_positives for score in per_class.values())
        pred = sum(score.predicted for score in per_class.values())
        gld = sum(score.gold for score in per_class.values())
        return PRF1(precision, recall, f1, tp, pred, gld)
    raise ValueError(f"unknown average mode: {average!r}")


def per_class_f1(
    gold: Sequence[Hashable], predicted: Sequence[Hashable]
) -> dict[Hashable, PRF1]:
    """Per-class P/R/F1 table (for classification reports)."""
    labels = set(gold) | set(predicted)
    report = {}
    for label in sorted(labels, key=str):
        tp = sum(
            1 for g, p in zip(gold, predicted) if g == label and p == label
        )
        pred = sum(1 for p in predicted if p == label)
        gld = sum(1 for g in gold if g == label)
        report[label] = PRF1.from_counts(tp, pred, gld)
    return report


def span_prf1(
    gold_spans: Sequence[Sequence[tuple[int, int, str]]],
    predicted_spans: Sequence[Sequence[tuple[int, int, str]]],
) -> PRF1:
    """Exact-match span F1 over a corpus (the standard NER metric).

    Args:
        gold_spans / predicted_spans: per-document lists of
            ``(start, end, label)`` triples.
    """
    if len(gold_spans) != len(predicted_spans):
        raise ValueError("document count mismatch")
    tp = 0
    n_pred = 0
    n_gold = 0
    for gold_doc, pred_doc in zip(gold_spans, predicted_spans):
        gold_set = set(gold_doc)
        pred_set = set(pred_doc)
        tp += len(gold_set & pred_set)
        n_pred += len(pred_set)
        n_gold += len(gold_set)
    return PRF1.from_counts(tp, n_pred, n_gold)


# -- retrieval metrics ----------------------------------------------------


def precision_at_k(
    ranked_ids: Sequence[Hashable], relevant: frozenset | set, k: int
) -> float:
    """Fraction of the top-k results that are relevant."""
    if k <= 0:
        raise ValueError("k must be positive")
    top = ranked_ids[:k]
    if not top:
        return 0.0
    hits = sum(1 for doc_id in top if doc_id in relevant)
    return hits / k


def recall_at_k(
    ranked_ids: Sequence[Hashable], relevant: frozenset | set, k: int
) -> float:
    """Fraction of all relevant documents found in the top-k."""
    if not relevant:
        return 0.0
    hits = sum(1 for doc_id in ranked_ids[:k] if doc_id in relevant)
    return hits / len(relevant)


def average_precision(
    ranked_ids: Sequence[Hashable], relevant: frozenset | set
) -> float:
    """AP: mean of precision values at each relevant rank."""
    if not relevant:
        return 0.0
    hits = 0
    total = 0.0
    for rank, doc_id in enumerate(ranked_ids, start=1):
        if doc_id in relevant:
            hits += 1
            total += hits / rank
    return total / len(relevant)


def reciprocal_rank(
    ranked_ids: Sequence[Hashable], relevant: frozenset | set
) -> float:
    """1/rank of the first relevant result (0 when none appears)."""
    for rank, doc_id in enumerate(ranked_ids, start=1):
        if doc_id in relevant:
            return 1.0 / rank
    return 0.0


def ndcg_at_k(
    ranked_ids: Sequence[Hashable],
    gains: dict[Hashable, float],
    k: int,
) -> float:
    """Normalized discounted cumulative gain with graded relevance.

    Args:
        ranked_ids: system ranking.
        gains: doc id -> graded relevance (missing ids imply 0).
        k: cutoff.
    """
    if k <= 0:
        raise ValueError("k must be positive")

    def dcg(sequence: Sequence[float]) -> float:
        return float(
            sum(g / np.log2(i + 2) for i, g in enumerate(sequence[:k]))
        )

    achieved = dcg([gains.get(doc_id, 0.0) for doc_id in ranked_ids])
    ideal = dcg(sorted(gains.values(), reverse=True))
    if ideal == 0.0:
        return 0.0
    return achieved / ideal
