"""ML substrate: everything the extraction models need, on numpy/scipy.

No deep-learning framework is available offline, so this package
implements the training stack from scratch: feature hashing, multinomial
logistic regression (Adam), linear-chain CRF (forward-backward +
Adagrad), averaged structured perceptron, char-n-gram "contextual"
embeddings (the C-FLAIR substitute), and evaluation metrics for
classification, sequence labeling and retrieval.
"""

from repro.ml.features import FeatureHasher, hash_feature
from repro.ml.logistic import LogisticRegression
from repro.ml.crf import LinearChainCRF
from repro.ml.perceptron import StructuredPerceptron
from repro.ml.embeddings import CharNgramEmbedder
from repro.ml.serialization import (
    save_ner_tagger,
    load_ner_tagger,
    save_temporal_classifier,
    load_temporal_classifier,
    save_extractor,
    load_extractor,
)
from repro.ml.metrics import (
    classification_f1,
    confusion_matrix,
    span_prf1,
    precision_at_k,
    average_precision,
    ndcg_at_k,
    reciprocal_rank,
    PRF1,
)

__all__ = [
    "FeatureHasher",
    "hash_feature",
    "LogisticRegression",
    "LinearChainCRF",
    "StructuredPerceptron",
    "CharNgramEmbedder",
    "save_ner_tagger",
    "load_ner_tagger",
    "save_temporal_classifier",
    "load_temporal_classifier",
    "save_extractor",
    "load_extractor",
    "classification_f1",
    "confusion_matrix",
    "span_prf1",
    "precision_at_k",
    "average_precision",
    "ndcg_at_k",
    "reciprocal_rank",
    "PRF1",
]
