"""Averaged structured perceptron sequence labeler.

The cheaper of the two sequence decoders: same hashed-feature emission
table and dense transitions as the CRF, trained with Collins-style
structured perceptron updates and weight averaging.  Used as the
"plain decoder" ablation against the CRF in the NER benchmarks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ModelError, NotFittedError
from repro.ml import infer


class StructuredPerceptron:
    """Collins (2002) averaged perceptron for sequence labeling."""

    def __init__(
        self,
        n_features: int = 1 << 18,
        epochs: int = 8,
        seed: int = 13,
    ):
        self.n_features = n_features
        self.epochs = epochs
        self.seed = seed
        self.labels: list[str] = []
        self._label_index: dict[str, int] = {}
        self._emit: np.ndarray | None = None
        self._trans: np.ndarray | None = None
        self._start: np.ndarray | None = None
        self._end: np.ndarray | None = None

    def fit(
        self,
        sequences: Sequence[Sequence[np.ndarray]],
        label_sequences: Sequence[Sequence[str]],
    ) -> "StructuredPerceptron":
        """Train with averaged perceptron updates."""
        if len(sequences) != len(label_sequences):
            raise ModelError("sequences/labels count mismatch")
        inventory = sorted({y for ys in label_sequences for y in ys})
        if not inventory:
            raise ModelError("no labels in training data")
        self.labels = inventory
        self._label_index = {y: i for i, y in enumerate(inventory)}
        n_labels = len(inventory)

        emit = np.zeros((self.n_features, n_labels))
        trans = np.zeros((n_labels, n_labels))
        start = np.zeros(n_labels)
        end = np.zeros(n_labels)
        # Averaging via the "sum of historical weights" trick: keep a
        # running total updated lazily through timestamps for the sparse
        # emission table and densely for the small matrices.
        emit_total = np.zeros_like(emit)
        emit_stamp = np.zeros(self.n_features, dtype=np.int64)
        trans_total = np.zeros_like(trans)
        start_total = np.zeros_like(start)
        end_total = np.zeros_like(end)

        encoded = [
            np.asarray([self._label_index[y] for y in ys], dtype=np.int64)
            for ys in label_sequences
        ]
        rng = np.random.default_rng(self.seed)
        order = np.arange(len(sequences))
        step = 0

        for _epoch in range(self.epochs):
            rng.shuffle(order)
            for i in order:
                feats, gold = sequences[i], encoded[i]
                if len(gold) == 0:
                    continue
                step += 1
                emissions = self._score_emissions(emit, feats, n_labels)
                predicted, _ = infer.viterbi(emissions, trans, start, end)
                if np.array_equal(predicted, gold):
                    continue
                # Flush pending averages for the rows we are touching.
                touched = np.unique(np.concatenate(list(feats)))
                emit_total[touched] += (
                    (step - emit_stamp[touched])[:, None] * emit[touched]
                )
                emit_stamp[touched] = step
                trans_total += trans
                start_total += start
                end_total += end

                for t, indices in enumerate(feats):
                    if len(indices) == 0:
                        continue
                    if predicted[t] != gold[t]:
                        emit[indices, gold[t]] += 1.0
                        emit[indices, predicted[t]] -= 1.0
                for t in range(len(gold) - 1):
                    if (
                        gold[t] != predicted[t]
                        or gold[t + 1] != predicted[t + 1]
                    ):
                        trans[gold[t], gold[t + 1]] += 1.0
                        trans[predicted[t], predicted[t + 1]] -= 1.0
                if gold[0] != predicted[0]:
                    start[gold[0]] += 1.0
                    start[predicted[0]] -= 1.0
                if gold[-1] != predicted[-1]:
                    end[gold[-1]] += 1.0
                    end[predicted[-1]] -= 1.0

        if step == 0:
            step = 1
        # Final flush and average.
        emit_total += (step - emit_stamp)[:, None] * emit
        self._emit = emit_total / step
        self._trans = (trans_total + trans) / step
        self._start = (start_total + start) / step
        self._end = (end_total + end) / step
        return self

    def predict(self, feats: Sequence[np.ndarray]) -> list[str]:
        """Viterbi-decode one sentence."""
        if self._emit is None:
            raise NotFittedError("StructuredPerceptron used before fit()")
        if len(feats) == 0:
            return []
        emissions = self._score_emissions(
            self._emit, feats, len(self.labels)
        )
        path, _ = infer.viterbi(
            emissions, self._trans, self._start, self._end
        )
        return [self.labels[y] for y in path]

    def predict_batch(
        self, sequences: Sequence[Sequence[np.ndarray]]
    ) -> list[list[str]]:
        """Decode many sentences."""
        return [self.predict(feats) for feats in sequences]

    @staticmethod
    def _score_emissions(
        emit: np.ndarray, feats: Sequence[np.ndarray], n_labels: int
    ) -> np.ndarray:
        emissions = np.zeros((len(feats), n_labels))
        for t, indices in enumerate(feats):
            if len(indices):
                emissions[t] = emit[indices].sum(axis=0)
        return emissions
