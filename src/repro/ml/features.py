"""Feature hashing: string features -> fixed-width sparse vectors.

Both extraction models operate on hand-built string features
("w=fever", "suffix3=ver", "prev_w=had").  The hasher maps each string
into ``[0, n_features)`` with a signed hash so collisions partially
cancel, the standard hashing-trick construction.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping

import numpy as np
from scipy import sparse


def hash_feature(feature: str, n_features: int) -> tuple[int, float]:
    """Map a feature string to ``(index, sign)`` deterministically.

    Uses blake2b (stable across processes, unlike ``hash()``) with the
    last byte deciding the sign.
    """
    digest = hashlib.blake2b(feature.encode("utf-8"), digest_size=9).digest()
    index = int.from_bytes(digest[:8], "little") % n_features
    sign = 1.0 if digest[8] & 1 else -1.0
    return index, sign


class FeatureHasher:
    """Vectorizes dicts/iterables of string features into CSR matrices.

    Example:
        >>> hasher = FeatureHasher(n_features=1 << 18)
        >>> X = hasher.transform([{"w=fever": 1.0}, {"w=cough": 1.0}])
        >>> X.shape
        (2, 262144)
    """

    def __init__(self, n_features: int = 1 << 18, signed: bool = True):
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        self.n_features = n_features
        self.signed = signed
        self._cache: dict[str, tuple[int, float]] = {}

    def index(self, feature: str) -> tuple[int, float]:
        """Hashed ``(index, sign)`` of one feature string, memoized."""
        cached = self._cache.get(feature)
        if cached is None:
            index, sign = hash_feature(feature, self.n_features)
            if not self.signed:
                sign = 1.0
            cached = (index, sign)
            # Bound the memo so long corpus runs cannot grow unboundedly.
            if len(self._cache) < 1_000_000:
                self._cache[feature] = cached
        return cached

    def transform(
        self, rows: Iterable[Mapping[str, float] | Iterable[str]]
    ) -> sparse.csr_matrix:
        """Vectorize feature rows into a CSR matrix.

        Each row may be a mapping feature->value or a plain iterable of
        feature strings (implying value 1.0).
        """
        indptr = [0]
        indices: list[int] = []
        data: list[float] = []
        for row in rows:
            items = (
                row.items()
                if isinstance(row, Mapping)
                else ((feat, 1.0) for feat in row)
            )
            for feature, value in items:
                idx, sign = self.index(feature)
                indices.append(idx)
                data.append(sign * value)
            indptr.append(len(indices))
        matrix = sparse.csr_matrix(
            (
                np.asarray(data, dtype=np.float64),
                np.asarray(indices, dtype=np.int64),
                np.asarray(indptr, dtype=np.int64),
            ),
            shape=(len(indptr) - 1, self.n_features),
        )
        matrix.sum_duplicates()
        return matrix

    def indices_of(self, features: Iterable[str]) -> np.ndarray:
        """Hashed indices (signs dropped) for sequence models that score
        by index lookup rather than matrix product."""
        return np.asarray(
            [self.index(feat)[0] for feat in features], dtype=np.int64
        )
