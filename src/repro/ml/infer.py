"""Exact inference for linear-chain models: Viterbi and forward-backward.

Scores are arranged as:

* ``emissions``: array (T, L) of per-token label scores.
* ``transitions``: array (L, L); ``transitions[i, j]`` scores label j
  following label i.
* ``start`` / ``end``: arrays (L,) scoring the first / last label.

All computations are in log space.
"""

from __future__ import annotations

import numpy as np
from scipy.special import logsumexp


def viterbi(
    emissions: np.ndarray,
    transitions: np.ndarray,
    start: np.ndarray,
    end: np.ndarray,
) -> tuple[np.ndarray, float]:
    """Best label sequence and its score.

    Returns:
        (labels, score): ``labels`` is an int array of length T.
    """
    n_steps, n_labels = emissions.shape
    if n_steps == 0:
        return np.empty(0, dtype=np.int64), 0.0
    delta = start + emissions[0]
    backpointers = np.zeros((n_steps, n_labels), dtype=np.int64)
    for t in range(1, n_steps):
        candidate = delta[:, None] + transitions  # (L_prev, L_next)
        backpointers[t] = np.argmax(candidate, axis=0)
        delta = candidate[backpointers[t], np.arange(n_labels)] + emissions[t]
    delta = delta + end
    best_last = int(np.argmax(delta))
    best_score = float(delta[best_last])
    labels = np.empty(n_steps, dtype=np.int64)
    labels[-1] = best_last
    for t in range(n_steps - 1, 0, -1):
        labels[t - 1] = backpointers[t, labels[t]]
    return labels, best_score


def forward_log(
    emissions: np.ndarray,
    transitions: np.ndarray,
    start: np.ndarray,
    end: np.ndarray,
) -> tuple[np.ndarray, float]:
    """Forward messages (log alpha) and the log partition function."""
    n_steps, n_labels = emissions.shape
    alpha = np.empty((n_steps, n_labels))
    alpha[0] = start + emissions[0]
    for t in range(1, n_steps):
        alpha[t] = (
            logsumexp(alpha[t - 1][:, None] + transitions, axis=0)
            + emissions[t]
        )
    log_z = float(logsumexp(alpha[-1] + end))
    return alpha, log_z


def backward_log(
    emissions: np.ndarray,
    transitions: np.ndarray,
    end: np.ndarray,
) -> np.ndarray:
    """Backward messages (log beta)."""
    n_steps, n_labels = emissions.shape
    beta = np.empty((n_steps, n_labels))
    beta[-1] = end
    for t in range(n_steps - 2, -1, -1):
        beta[t] = logsumexp(
            transitions + (emissions[t + 1] + beta[t + 1])[None, :], axis=1
        )
    return beta


def marginals(
    emissions: np.ndarray,
    transitions: np.ndarray,
    start: np.ndarray,
    end: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Unary and pairwise marginals under the CRF distribution.

    Returns:
        (unary, pairwise, log_z) where ``unary`` has shape (T, L) and
        ``pairwise`` has shape (T-1, L, L) — pairwise[t, i, j] is
        P(y_t = i, y_{t+1} = j).
    """
    n_steps, n_labels = emissions.shape
    alpha, log_z = forward_log(emissions, transitions, start, end)
    beta = backward_log(emissions, transitions, end)
    unary = np.exp(alpha + beta - log_z)
    pairwise = np.empty((max(n_steps - 1, 0), n_labels, n_labels))
    for t in range(n_steps - 1):
        joint = (
            alpha[t][:, None]
            + transitions
            + (emissions[t + 1] + beta[t + 1])[None, :]
            - log_z
        )
        pairwise[t] = np.exp(joint)
    return unary, pairwise, log_z


def sequence_score(
    labels: np.ndarray,
    emissions: np.ndarray,
    transitions: np.ndarray,
    start: np.ndarray,
    end: np.ndarray,
) -> float:
    """Unnormalized log score of one labeling."""
    if len(labels) == 0:
        return 0.0
    score = float(start[labels[0]] + emissions[0, labels[0]])
    for t in range(1, len(labels)):
        score += float(
            transitions[labels[t - 1], labels[t]] + emissions[t, labels[t]]
        )
    score += float(end[labels[-1]])
    return score
