"""Doc-id hash routing and shard epochs.

The serving layer partitions documents across ``n_shards`` independent
partitions by a *stable* hash of the doc id (crc32, not Python's
per-process salted ``hash``), so a document always lives on the same
shard across runs, restarts and recovery replays.

Each shard carries an **epoch** counter: every mutation that touches a
shard bumps its epoch.  Cached query results are stamped with the
epoch vector they were computed under; a cached entry is served only
while every shard's epoch still matches, which makes staleness
structurally impossible rather than a matter of TTL tuning.
"""

from __future__ import annotations

import zlib
from typing import Any

from repro.exceptions import ReproError


class ShardRouter:
    """Stable doc-id -> shard assignment plus per-shard epochs.

    Example:
        >>> router = ShardRouter(4)
        >>> router.shard_of("pmid-0001") == router.shard_of("pmid-0001")
        True
    """

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ReproError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = int(n_shards)
        self._epochs = [0] * self.n_shards

    def shard_of(self, doc_id: Any) -> int:
        """The shard owning ``doc_id`` (stable across processes)."""
        key = str(doc_id).encode("utf-8")
        return zlib.crc32(key) % self.n_shards

    # -- epochs ------------------------------------------------------------

    def bump(self, shard_id: int) -> int:
        """Advance one shard's epoch (called on every shard mutation)."""
        self._epochs[shard_id] += 1
        return self._epochs[shard_id]

    def bump_for(self, doc_id: Any) -> int:
        """Bump the epoch of the shard owning ``doc_id``."""
        return self.bump(self.shard_of(doc_id))

    def epoch(self, shard_id: int) -> int:
        return self._epochs[shard_id]

    def epochs(self) -> tuple[int, ...]:
        """The current epoch vector (the cache validity stamp)."""
        return tuple(self._epochs)
