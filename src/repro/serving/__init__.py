"""Sharded query serving: partitioned indexes, parallel fan-out
search with exact top-k merge, an invalidation-correct query cache,
per-shard read replicas with WAL-shipped failover, and an
admission-controlled asyncio front end."""

from repro.serving.cache import QueryCache
from repro.serving.engine import ShardedSearchEngine
from repro.serving.frontend import Route, ServingFrontend
from repro.serving.graph import ShardedPropertyGraph
from repro.serving.ir import ShardedIrIndexer, ShardedIrSearcher
from repro.serving.replica import (
    ReplicatedShardedSearchEngine,
    ShardReplicaSet,
)
from repro.serving.router import ShardRouter
from repro.serving.segment_shards import ProcessShardedSegmentEngine

__all__ = [
    "ProcessShardedSegmentEngine",
    "QueryCache",
    "ReplicatedShardedSearchEngine",
    "Route",
    "ServingFrontend",
    "ShardReplicaSet",
    "ShardRouter",
    "ShardedIrIndexer",
    "ShardedIrSearcher",
    "ShardedPropertyGraph",
    "ShardedSearchEngine",
]
