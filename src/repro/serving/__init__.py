"""Sharded query serving: partitioned indexes, parallel fan-out
search with exact top-k merge, and an invalidation-correct query
cache."""

from repro.serving.cache import QueryCache
from repro.serving.engine import ShardedSearchEngine
from repro.serving.graph import ShardedPropertyGraph
from repro.serving.ir import ShardedIrIndexer, ShardedIrSearcher
from repro.serving.router import ShardRouter
from repro.serving.segment_shards import ProcessShardedSegmentEngine

__all__ = [
    "ProcessShardedSegmentEngine",
    "QueryCache",
    "ShardRouter",
    "ShardedIrIndexer",
    "ShardedIrSearcher",
    "ShardedPropertyGraph",
    "ShardedSearchEngine",
]
