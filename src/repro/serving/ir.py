"""Sharded CREATe-IR serving: dual-index partitions behind one facade.

``ShardedIrIndexer`` partitions both CREATe-IR indexes — the property
graph and the keyword engine — by doc-id hash: each partition is a
complete :class:`~repro.ir.indexer.CreateIrIndexer` over its slice of
the corpus (own cypher engine, own temporal closure), sharing one
concept normalizer.  ``ShardedIrSearcher`` executes the paper's
Figure-6 workflow as a parallel fan-out: the query is parsed once,
each shard runs graph search and keyword search over its partition,
and the per-shard rankings merge into exactly the unsharded result
(graph scores are per-document; keyword scores use cross-shard BM25
statistics).

An epoch-stamped LRU cache fronts the fused result; any
``register_report``/``delete`` bumps the touched shard's epoch and
thereby invalidates every cached query that could observe it.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.ir.indexer import CreateIrIndexer, IndexedReport
from repro.ir.query_parser import ParsedQuery, QueryParser
from repro.ir.ranking import fuse_results
from repro.ir.searcher import CreateIrSearcher, GraphMatchDetail, SearchResult
from repro.ontology.normalize import ConceptNormalizer
from repro.runtime.executor import BatchExecutor
from repro.search.analysis import (
    CREATE_IR_ANALYZER_CONFIG,
    STANDARD_ANALYZER_CONFIG,
)
from repro.serving.cache import QueryCache
from repro.serving.engine import ShardedSearchEngine
from repro.serving.graph import ShardedPropertyGraph
from repro.serving.router import ShardRouter

if TYPE_CHECKING:  # pragma: no cover
    from typing import Sequence

    from repro.runtime.metrics import MetricsRegistry


class ShardedIrIndexer:
    """Doc-id-hash sharded drop-in for :class:`CreateIrIndexer`.

    Args:
        n_shards: partition count.
        close_temporal: forwarded to every partition's indexer.
        cache_size: engine-level query-cache entries (0 disables).
        metrics: registry for shard/cache counters.
    """

    def __init__(
        self,
        n_shards: int,
        close_temporal: bool = True,
        cache_size: int = 256,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.router = ShardRouter(n_shards)
        self.engine = ShardedSearchEngine(
            n_shards,
            {
                "body": CREATE_IR_ANALYZER_CONFIG,
                "title": STANDARD_ANALYZER_CONFIG,
            },
            default_field="body",
            router=self.router,
            cache_size=cache_size,
            metrics=metrics,
        )
        self.graph = ShardedPropertyGraph(n_shards, router=self.router)
        self.normalizer = ConceptNormalizer()
        self.shards: list[CreateIrIndexer] = [
            CreateIrIndexer(
                graph=self.graph.shard(shard_id),
                engine=self.engine.shard(shard_id),
                close_temporal=close_temporal,
                normalizer=self.normalizer,
            )
            for shard_id in range(n_shards)
        ]

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    # -- indexing (routed) -------------------------------------------------

    def index_report(
        self,
        doc_id: str,
        title: str,
        text: str,
        spans: "Sequence[tuple[str, str, str, str]]",
        relations: "Sequence[tuple[str, str, str]]",
        negated_span_ids: "Sequence[str]" = (),
    ) -> IndexedReport:
        """Index one report on the shard its doc id hashes to."""
        shard_id = self.router.shard_of(doc_id)
        record = self.shards[shard_id].index_report(
            doc_id,
            title,
            text,
            spans,
            relations,
            negated_span_ids=negated_span_ids,
        )
        self.router.bump(shard_id)
        return record

    def index_annotation_document(self, doc_id, title, annotation_doc):
        """Convenience: index straight from an annotation document."""
        shard_id = self.router.shard_of(doc_id)
        record = self.shards[shard_id].index_annotation_document(
            doc_id, title, annotation_doc
        )
        self.router.bump(shard_id)
        return record

    # -- aggregate accounting ----------------------------------------------

    @property
    def n_reports(self) -> int:
        return sum(shard.n_reports for shard in self.shards)

    @property
    def contradiction_skips(self) -> int:
        return sum(shard.contradiction_skips for shard in self.shards)

    @property
    def closure_failures(self) -> int:
        return sum(shard.closure_failures for shard in self.shards)

    def report_stats(self, doc_id: str) -> IndexedReport | None:
        return self.shards[self.router.shard_of(doc_id)].report_stats(doc_id)

    def stats(self) -> dict:
        """Aggregate indexing health plus per-shard occupancy."""
        return {
            "n_reports": self.n_reports,
            "contradiction_skips": self.contradiction_skips,
            "closure_failures": self.closure_failures,
            "shards": [
                {
                    "shard": shard_id,
                    "n_reports": shard.n_reports,
                    "documents": self.engine.shard(shard_id).n_documents,
                    "graph_nodes": self.graph.shard(shard_id).n_nodes,
                    "epoch": self.router.epoch(shard_id),
                }
                for shard_id, shard in enumerate(self.shards)
            ],
        }

    def serving_stats(self) -> dict:
        """The ``/stats`` serving section: shards, epochs, caches, and
        the graph planner's cardinality statistics + plan counters."""
        return {
            "n_shards": self.n_shards,
            "epochs": list(self.router.epochs()),
            "engine": self.engine.stats(),
            "graph": self.graph.stats(),
            "planner": self.graph.planner_stats(),
        }


class ShardedIrSearcher:
    """Parallel fan-out executor for the Figure-6 search workflow.

    Drop-in for :class:`CreateIrSearcher` over a
    :class:`ShardedIrIndexer`: results are exactly the unsharded
    searcher's (same documents, scores, engines, order).

    Args:
        indexer: the populated sharded indexer.
        parser: query parser (None = accept only pre-parsed queries).
        relation_bonus: score bonus per matched query relation.
        cache_size: fused-result cache entries (0 disables).
    """

    def __init__(
        self,
        indexer: ShardedIrIndexer,
        parser: QueryParser | None = None,
        relation_bonus: float = 1.0,
        metrics: "MetricsRegistry | None" = None,
        cache_size: int = 256,
    ):
        self._indexer = indexer
        self._parser = parser
        self.relation_bonus = relation_bonus
        self.metrics = metrics
        self._shard_searchers = [
            CreateIrSearcher(shard, parser=None, relation_bonus=relation_bonus)
            for shard in indexer.shards
        ]
        self.cache = (
            QueryCache(cache_size, indexer.router.epochs)
            if cache_size
            else None
        )
        self._executor = BatchExecutor(
            workers=indexer.n_shards, mode="thread"
        )

    # -- public API --------------------------------------------------------

    def search(self, query, size: int = 10) -> list[SearchResult]:
        """Search with a raw string (parsed) or a :class:`ParsedQuery`."""
        start = time.perf_counter()
        key = None
        if self.cache is not None and isinstance(query, str):
            key = ("ir", query, size)
            cached = self.cache.get(key)
            if cached is not None:
                self._record(start, cached=True)
                return list(cached)
        if isinstance(query, str):
            if self._parser is None:
                parsed = ParsedQuery(text=query)
            else:
                parsed = self._parser.parse(query)
        else:
            parsed = query
        graph_ranked, keyword_ranked = self._fan_out(parsed, size)
        results = [
            SearchResult(doc_id, score, engine)
            for doc_id, score, engine in fuse_results(
                graph_ranked, keyword_ranked, size
            )
        ]
        if key is not None:
            self.cache.put(key, list(results))
        self._record(start, cached=False)
        return results

    def graph_search(self, parsed: ParsedQuery) -> list[GraphMatchDetail]:
        """Merged per-shard graph matches, globally ranked."""
        details: list[GraphMatchDetail] = []
        for shard_details in self._map_shards(
            lambda searcher: searcher.graph_search(parsed)
        ):
            details.extend(shard_details)
        details.sort(key=lambda detail: (-detail.score, detail.doc_id))
        return details

    def keyword_only(
        self, query_text: str, size: int = 10
    ) -> list[SearchResult]:
        """Ablation: skip the graph engine entirely."""
        return [
            SearchResult(hit.doc_id, hit.score, "keyword")
            for hit in self._indexer.engine.search(
                {"match": {"body": query_text}}, size=size
            )
        ]

    def cache_stats(self) -> dict | None:
        return self.cache.stats() if self.cache is not None else None

    # -- fan-out -----------------------------------------------------------

    def _fan_out(self, parsed: ParsedQuery, size: int):
        keyword_query = {"match": {"body": parsed.keyword_text()}}
        graph_ranked: list[tuple[str, float]] = []
        keyword_hits: list = []

        def one_shard(shard_id: int):
            details = self._shard_searchers[shard_id].graph_search(parsed)
            hits = self._indexer.engine.shard(shard_id).search(
                keyword_query, size=size * 3
            )
            return details, hits

        for details, hits in self._map_shards_indexed(one_shard):
            graph_ranked.extend(
                (detail.doc_id, detail.score) for detail in details
            )
            keyword_hits.extend(hits)
        keyword_hits.sort(key=lambda hit: (-hit.score, str(hit.doc_id)))
        keyword_ranked = [
            (hit.doc_id, hit.score) for hit in keyword_hits[: size * 3]
        ]
        return graph_ranked, keyword_ranked

    def _map_shards(self, fn):
        return self._map_shards_indexed(
            lambda shard_id: fn(self._shard_searchers[shard_id])
        )

    def _map_shards_indexed(self, fn):
        if self._indexer.n_shards == 1:
            return [fn(0)]
        outcomes = self._executor.map(fn, range(self._indexer.n_shards))
        values = []
        for shard_id, outcome in enumerate(outcomes):
            if not outcome.ok:
                raise outcome.error
            if self.metrics is not None:
                self.metrics.record(
                    f"serving.shard{shard_id}.ir_seconds", outcome.duration
                )
            values.append(outcome.value)
        return values

    def _record(self, start: float, cached: bool) -> None:
        if self.metrics is None:
            return
        self.metrics.increment("serving.ir.searches")
        if cached:
            self.metrics.increment("serving.ir.cache_hits")
        else:
            self.metrics.increment("serving.ir.cache_misses")
        self.metrics.record(
            "serving.ir.search_seconds", time.perf_counter() - start
        )
