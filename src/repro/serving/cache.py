"""Epoch-stamped LRU query cache.

Entries are stamped with the shard epoch vector at compute time and
validated against the *current* vector on every lookup — a hit is only
served when no shard has mutated since the entry was stored.  There is
no TTL and no explicit invalidation call to forget: correctness falls
out of the epoch comparison, and stale entries are evicted lazily on
the lookup that discovers them.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro.exceptions import ReproError


class QueryCache:
    """Bounded LRU keyed by query, validated by shard epochs.

    Args:
        capacity: maximum live entries (LRU eviction beyond it).
        epochs: callable returning the current epoch vector; entries
            stored under an older vector never hit.

    Example:
        >>> epochs = [0]
        >>> cache = QueryCache(2, lambda: tuple(epochs))
        >>> cache.put("q", [1, 2]); cache.get("q")
        [1, 2]
        >>> epochs[0] += 1  # a mutation lands
        >>> cache.get("q") is None
        True
    """

    def __init__(self, capacity: int, epochs: Callable[[], tuple]):
        if capacity < 1:
            raise ReproError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._epochs = epochs
        self._entries: OrderedDict[Hashable, tuple[tuple, Any]] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stale_drops = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Any | None:
        """The cached value, or None on miss/stale (stale is dropped)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        stamp, value = entry
        if stamp != self._epochs():
            del self._entries[key]
            self.stale_drops += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(
        self, key: Hashable, value: Any, stamp: tuple | None = None
    ) -> None:
        """Store a value stamped with an epoch vector.

        Callers that compute ``value`` outside the cache (a query
        fan-out) pass the vector they captured *before* computing, so a
        mutation racing the computation makes the entry stale-on-
        arrival instead of masking itself behind a fresh stamp.  With
        ``stamp=None`` the current vector is used.
        """
        if stamp is None:
            stamp = self._epochs()
        self._entries[key] = (stamp, value)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict:
        """Hit/miss/eviction counters for ``/stats``."""
        total = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stale_drops": self.stale_drops,
            "hit_rate": (self.hits / total) if total else 0.0,
        }
