"""Sharded keyword serving: per-shard fan-out, exact top-k merge.

``ShardedSearchEngine`` partitions documents across N independent
:class:`~repro.search.engine.SearchEngine` shards by doc-id hash and
executes every query as a parallel fan-out on the runtime
:class:`~repro.runtime.executor.BatchExecutor`, merging per-shard
top-k lists into the global top-k.

**Exact rank equivalence.**  BM25 depends on corpus statistics (``N``,
``df``, avgdl) that a shard holding 1/N of the corpus gets wrong.
Each shard therefore scores through a
:class:`~repro.search.engine.CorpusStatsIndexView` whose statistics
are aggregated across *all* shards, so per-document scores are
bit-identical to the unsharded engine and the merged top-k (with the
engine's ``(-score, doc_id)`` tie-break) is exactly its ranking.

An epoch-stamped :class:`~repro.serving.cache.QueryCache` sits in
front of the fan-out; every ``index``/``delete`` bumps the owning
shard's epoch, so a cached result can never be served stale.
"""

from __future__ import annotations

import json
import time
from typing import TYPE_CHECKING, Any

from repro.exceptions import SearchError
from repro.runtime.executor import BatchExecutor
from repro.search.engine import ScoredHit, SearchEngine
from repro.serving.cache import QueryCache
from repro.serving.router import ShardRouter

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.metrics import MetricsRegistry


class _GlobalFieldStats:
    """Corpus statistics for one field, summed across every shard."""

    __slots__ = ("_field", "_shards")

    def __init__(self, field_name: str, shards: list[SearchEngine]):
        self._field = field_name
        self._shards = shards

    @property
    def n_documents(self) -> int:
        return sum(
            shard._field_index(self._field).n_documents
            for shard in self._shards
        )

    @property
    def total_length(self) -> int:
        return sum(
            shard._field_index(self._field).total_length
            for shard in self._shards
        )

    def document_frequency(self, term: str) -> int:
        return sum(
            shard._field_index(self._field).document_frequency(term)
            for shard in self._shards
        )


class _ShardJournal:
    """Conduit: a shard store's journaled ops land in the owning
    facade's journal tagged with the shard id, so one WAL record can
    carry (and replay) mutations across partitions."""

    __slots__ = ("_owner", "_shard_id")

    def __init__(self, owner, shard_id: int):
        self._owner = owner
        self._shard_id = shard_id

    def append(self, op: dict) -> None:
        journal = self._owner.journal
        if journal is not None:
            journal.append({"shard": self._shard_id, "o": op})


class ShardedSearchEngine:
    """N-way sharded :class:`SearchEngine` with identical semantics.

    Args:
        n_shards: partition count (1 keeps the fan-out machinery but a
            single partition; useful for cache-only serving).
        field_analyzers / default_field: as for :class:`SearchEngine`
            (identical analyzers on every shard).
        router: shared :class:`ShardRouter` (created when omitted) —
            pass the serving layer's router so graph and keyword
            mutations share one epoch vector.
        cache_size: query-cache entries (0 disables the cache).
        metrics: registry for per-shard and cache counters.
    """

    def __init__(
        self,
        n_shards: int,
        field_analyzers: dict[str, dict] | None = None,
        default_field: str = "body",
        router: ShardRouter | None = None,
        cache_size: int = 256,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.router = router if router is not None else ShardRouter(n_shards)
        if self.router.n_shards != n_shards:
            raise SearchError(
                f"router has {self.router.n_shards} shards, engine asked "
                f"for {n_shards}"
            )
        self.default_field = default_field
        self.metrics = metrics
        self.shards: list[SearchEngine] = [
            SearchEngine(field_analyzers, default_field=default_field)
            for _ in range(n_shards)
        ]
        for shard in self.shards:
            shard.stats_provider = self._stats_for_field
        self._field_stats: dict[str, _GlobalFieldStats] = {}
        self.cache = (
            QueryCache(cache_size, self.router.epochs) if cache_size else None
        )
        self._executor = BatchExecutor(workers=n_shards, mode="thread")
        self._journal: list | None = None

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard(self, shard_id: int) -> SearchEngine:
        """Direct access to one partition (serving internals, tests)."""
        return self.shards[shard_id]

    def _stats_for_field(self, field_name: str) -> _GlobalFieldStats:
        stats = self._field_stats.get(field_name)
        if stats is None:
            stats = _GlobalFieldStats(field_name, self.shards)
            self._field_stats[field_name] = stats
        return stats

    # -- indexing ----------------------------------------------------------

    def index(self, doc_id: Any, fields: dict[str, str]) -> None:
        """Index (or re-index) a document on its owning shard."""
        shard_id = self.router.shard_of(doc_id)
        self.shards[shard_id].index(doc_id, fields)
        self.router.bump(shard_id)

    def delete(self, doc_id: Any) -> bool:
        """Remove a document; returns False when it was absent."""
        shard_id = self.router.shard_of(doc_id)
        deleted = self.shards[shard_id].delete(doc_id)
        if deleted:
            self.router.bump(shard_id)
        return deleted

    @property
    def n_documents(self) -> int:
        return sum(shard.n_documents for shard in self.shards)

    # -- search ------------------------------------------------------------

    def search(self, query: str | dict, size: int = 10) -> list[ScoredHit]:
        """Top ``size`` hits, exactly as the unsharded engine ranks them.

        Cache-hitting queries skip the fan-out entirely; misses fan out
        one task per shard, each returning its local top ``size`` under
        global statistics, then merge on ``(-score, doc_id)``.
        """
        start = time.perf_counter()
        if isinstance(query, str):
            query = {self.default_field: query}
            query = {"match": query}
        key = None
        stamp = None
        if self.cache is not None:
            key = (_canonical(query), size)
            cached = self.cache.get(key)
            if cached is not None:
                self._record_search(start, cached=True)
                return list(cached)
            # Capture the epoch vector BEFORE the fan-out: a mutation
            # landing while shards compute must make this entry stale
            # at store time, not get papered over by a fresh stamp.
            stamp = self.router.epochs()
        hits = self._fan_out(query, size)
        if self.cache is not None:
            self.cache.put(key, list(hits), stamp=stamp)
        self._record_search(start, cached=False)
        return hits

    def _fan_out(self, query: dict, size: int) -> list[ScoredHit]:
        if self.n_shards == 1:
            return self.shards[0].search(query, size=size)
        outcomes = self._executor.map(
            lambda shard: shard.search(query, size=size), self.shards
        )
        merged: list[ScoredHit] = []
        for shard_id, outcome in enumerate(outcomes):
            if not outcome.ok:
                raise outcome.error
            if self.metrics is not None:
                self.metrics.record(
                    f"serving.shard{shard_id}.search_seconds",
                    outcome.duration,
                )
            merged.extend(outcome.value)
        merged.sort(key=lambda hit: (-hit.score, str(hit.doc_id)))
        return merged[:size]

    def _record_search(self, start: float, cached: bool) -> None:
        if self.metrics is None:
            return
        self.metrics.increment("serving.engine.searches")
        if cached:
            self.metrics.increment("serving.engine.cache_hits")
        else:
            self.metrics.increment("serving.engine.cache_misses")
        self.metrics.record(
            "serving.engine.search_seconds", time.perf_counter() - start
        )

    def explain_terms(self, field: str, text: str) -> list[str]:
        """Analyzer output (identical on every shard)."""
        return self.shards[0].explain_terms(field, text)

    def highlight(
        self, doc_id: Any, field: str, query_text: str, window: int = 60
    ) -> list[str]:
        """Snippets from the owning shard's stored copy."""
        shard_id = self.router.shard_of(doc_id)
        return self.shards[shard_id].highlight(
            doc_id, field, query_text, window=window
        )

    # -- durability (repro.durability.Durable protocol) --------------------

    @property
    def journal(self) -> list | None:
        return self._journal

    @journal.setter
    def journal(self, value: list | None) -> None:
        # Attaching (or the manager's quiet-replay suspension) wires or
        # unwires the per-shard conduits in lockstep, so shard-level
        # mutations journal into this facade exactly while it has one.
        self._journal = value
        for shard_id, shard in enumerate(self.shards):
            shard.journal = (
                _ShardJournal(self, shard_id) if value is not None else None
            )

    def durable_apply(self, op: dict) -> None:
        """Replay one shard-tagged op on the owning partition."""
        shard_id = int(op["shard"])
        self.shards[shard_id].durable_apply(op["o"])
        self.router.bump(shard_id)

    def durable_snapshot(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "shards": [shard.durable_snapshot() for shard in self.shards],
        }

    def durable_restore(self, state: dict) -> None:
        """Restore every partition; shard count must match the snapshot
        (resharding is a rebuild, not a restore)."""
        if int(state.get("n_shards", -1)) != self.n_shards:
            raise SearchError(
                f"snapshot has {state.get('n_shards')} shards, engine has "
                f"{self.n_shards}"
            )
        for shard_id, shard_state in enumerate(state["shards"]):
            self.shards[shard_id].durable_restore(shard_state)
            self.router.bump(shard_id)

    # -- observability -----------------------------------------------------

    def stats(self) -> dict:
        """Shard occupancy, epochs and cache health for ``/stats``."""
        out = {
            "n_shards": self.n_shards,
            "epochs": list(self.router.epochs()),
            "shard_documents": [shard.n_documents for shard in self.shards],
        }
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        return out


def _canonical(query: dict) -> str:
    """Stable cache key text for a query dict."""
    return json.dumps(query, sort_keys=True, ensure_ascii=False, default=str)
