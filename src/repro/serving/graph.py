"""Sharded property graph: N independent partitions, one facade.

Case-report knowledge graphs are naturally partitionable: every node
carries a ``doc_id`` property and every edge connects spans of the
same report, so routing nodes by doc-id hash yields fully independent
per-shard subgraphs.  The facade presents the whole corpus with the
:class:`~repro.graphdb.graph.PropertyGraph` read API (merged,
deterministic ordering) while indexing writes go straight to shard
graphs through the per-shard :class:`~repro.ir.indexer.CreateIrIndexer`
instances that own them.

Mutations bump the owning shard's epoch on the shared
:class:`~repro.serving.router.ShardRouter`, which is what invalidates
cached query results that depended on this partition.
"""

from __future__ import annotations

from itertools import chain
from typing import Any, Iterator

from repro.exceptions import GraphError
from repro.graphdb.graph import Edge, Node, PropertyGraph
from repro.serving.engine import _ShardJournal
from repro.serving.router import ShardRouter


class ShardedPropertyGraph:
    """Doc-id-hash partitioned :class:`PropertyGraph` facade.

    Args:
        n_shards: partition count.
        router: shared epoch/routing state (created when omitted).
    """

    def __init__(self, n_shards: int, router: ShardRouter | None = None):
        self.router = router if router is not None else ShardRouter(n_shards)
        if self.router.n_shards != n_shards:
            raise GraphError(
                f"router has {self.router.n_shards} shards, graph asked "
                f"for {n_shards}"
            )
        self.shards: list[PropertyGraph] = [
            PropertyGraph() for _ in range(n_shards)
        ]
        # Facade-level executor slot; per-shard matches land on the
        # shard graphs' own counters (see merged_planner_counters).
        self.planner_counters: dict[str, int] = {}
        self._journal: list | None = None

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard(self, shard_id: int) -> PropertyGraph:
        """Direct access to one partition (serving internals, tests)."""
        return self.shards[shard_id]

    def _owning_shard(self, node_id: str) -> int | None:
        for shard_id, shard in enumerate(self.shards):
            if shard.has_node(node_id):
                return shard_id
        return None

    # -- nodes -------------------------------------------------------------

    def add_node(self, node_id: str, **properties: Any) -> Node:
        """Create/merge a node on the shard its document hashes to.

        Routing uses the ``doc_id`` property when present (the CREATe
        data model always sets it), falling back to the node id.
        """
        existing = self._owning_shard(node_id)
        if existing is not None:
            shard_id = existing  # merge must land on the current owner
        else:
            key = properties.get("doc_id", node_id)
            shard_id = self.router.shard_of(key)
        node = self.shards[shard_id].add_node(node_id, **properties)
        self.router.bump(shard_id)
        return node

    def node(self, node_id: str) -> Node:
        shard_id = self._owning_shard(node_id)
        if shard_id is None:
            raise GraphError(f"unknown node: {node_id!r}")
        return self.shards[shard_id].node(node_id)

    def has_node(self, node_id: str) -> bool:
        return self._owning_shard(node_id) is not None

    def remove_node(self, node_id: str) -> None:
        """Delete a node (and incident edges) from its owning shard."""
        shard_id = self._owning_shard(node_id)
        if shard_id is None:
            return
        self.shards[shard_id].remove_node(node_id)
        self.router.bump(shard_id)

    def nodes(self) -> Iterator[Node]:
        """All nodes (shard order, insertion order within a shard)."""
        return chain.from_iterable(shard.nodes() for shard in self.shards)

    @property
    def n_nodes(self) -> int:
        return sum(shard.n_nodes for shard in self.shards)

    # -- edges -------------------------------------------------------------

    def add_edge(
        self, source: str, target: str, label: str, **properties: Any
    ) -> Edge:
        """Create an edge; both endpoints must live on one shard.

        Raises:
            GraphError: missing endpoint, or endpoints on different
                shards (cross-document edges are outside the serving
                data model).
        """
        src_shard = self._owning_shard(source)
        tgt_shard = self._owning_shard(target)
        if src_shard is None:
            raise GraphError(f"unknown node: {source!r}")
        if tgt_shard is None:
            raise GraphError(f"unknown node: {target!r}")
        if src_shard != tgt_shard:
            raise GraphError(
                f"cross-shard edge {source!r} -> {target!r} "
                f"(shards {src_shard} and {tgt_shard})"
            )
        edge = self.shards[src_shard].add_edge(
            source, target, label, **properties
        )
        self.router.bump(src_shard)
        return edge

    def edges(self) -> Iterator[Edge]:
        """All edges (shard order)."""
        return chain.from_iterable(shard.edges() for shard in self.shards)

    @property
    def n_edges(self) -> int:
        return sum(shard.n_edges for shard in self.shards)

    def out_edges(self, node_id: str, label: str | None = None) -> list[Edge]:
        shard_id = self._owning_shard(node_id)
        if shard_id is None:
            return []
        return self.shards[shard_id].out_edges(node_id, label)

    def in_edges(self, node_id: str, label: str | None = None) -> list[Edge]:
        shard_id = self._owning_shard(node_id)
        if shard_id is None:
            return []
        return self.shards[shard_id].in_edges(node_id, label)

    def neighbors(self, node_id: str) -> set[str]:
        shard_id = self._owning_shard(node_id)
        if shard_id is None:
            return set()
        return self.shards[shard_id].neighbors(node_id)

    def out_degree(self, node_id: str, label: str | None = None) -> int:
        shard_id = self._owning_shard(node_id)
        if shard_id is None:
            return 0
        return self.shards[shard_id].out_degree(node_id, label)

    def in_degree(self, node_id: str, label: str | None = None) -> int:
        shard_id = self._owning_shard(node_id)
        if shard_id is None:
            return 0
        return self.shards[shard_id].in_degree(node_id, label)

    # -- cardinality statistics (planner inputs) ---------------------------

    def edge_label_counts(self) -> dict[str, int]:
        """Per-label edge counts summed across shards."""
        merged: dict[str, int] = {}
        for shard in self.shards:
            for label, count in shard.edge_label_counts().items():
                merged[label] = merged.get(label, 0) + count
        return merged

    def edge_label_count(self, label: str) -> int:
        return sum(shard.edge_label_count(label) for shard in self.shards)

    def property_value_count(self, key: str, value: Any) -> int | None:
        """Cross-shard node count for ``key == value``; None when any
        shard cannot answer exactly (unindexed key)."""
        total = 0
        for shard in self.shards:
            count = shard.property_value_count(key, value)
            if count is None:
                return None
            total += count
        return total

    def statistics(self) -> dict:
        """Shard-merged planner statistics (same shape as unsharded)."""
        merged = {
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "edge_labels": dict(sorted(self.edge_label_counts().items())),
            "indexed_properties": {},
        }
        for shard in self.shards:
            for key, entry in shard.statistics()["indexed_properties"].items():
                slot = merged["indexed_properties"].setdefault(
                    key, {"n_values": 0, "n_indexed_nodes": 0}
                )
                # Distinct values may overlap across shards, so this
                # is an upper bound; indexed-node totals are exact.
                slot["n_values"] += entry["n_values"]
                slot["n_indexed_nodes"] += entry["n_indexed_nodes"]
        return merged

    def merged_planner_counters(self) -> dict[str, int]:
        """Plan-execution counters: per-shard matches + facade-level
        matches (``planner_counters`` is the executor's mutable slot,
        like on the unsharded graph)."""
        merged = dict(self.planner_counters)
        for shard in self.shards:
            for key, count in shard.planner_counters.items():
                merged[key] = merged.get(key, 0) + count
        return merged

    def planner_stats(self) -> dict:
        """The ``/stats`` planner section, aggregated over shards."""
        return {
            "counters": dict(sorted(self.merged_planner_counters().items())),
            "statistics": self.statistics(),
        }

    # -- property index ----------------------------------------------------

    def create_property_index(self, key: str) -> None:
        for shard in self.shards:
            shard.create_property_index(key)

    def find_nodes(self, **criteria: Any) -> list[Node]:
        """Matching nodes across all shards, sorted by node id (the
        same contract as the unsharded graph)."""
        out: list[Node] = []
        for shard in self.shards:
            out.extend(shard.find_nodes(**criteria))
        out.sort(key=lambda node: node.node_id)
        return out

    # -- durability (repro.durability.Durable protocol) --------------------

    @property
    def journal(self) -> list | None:
        return self._journal

    @journal.setter
    def journal(self, value: list | None) -> None:
        self._journal = value
        for shard_id, shard in enumerate(self.shards):
            shard.journal = (
                _ShardJournal(self, shard_id) if value is not None else None
            )

    def durable_apply(self, op: dict) -> None:
        shard_id = int(op["shard"])
        self.shards[shard_id].durable_apply(op["o"])
        self.router.bump(shard_id)

    def durable_snapshot(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "shards": [shard.durable_snapshot() for shard in self.shards],
        }

    def durable_restore(self, state: dict) -> None:
        if int(state.get("n_shards", -1)) != self.n_shards:
            raise GraphError(
                f"snapshot has {state.get('n_shards')} shards, graph has "
                f"{self.n_shards}"
            )
        for shard_id, shard_state in enumerate(state["shards"]):
            self.shards[shard_id].durable_restore(shard_state)
            self.router.bump(shard_id)

    # -- observability -----------------------------------------------------

    def stats(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "shard_nodes": [shard.n_nodes for shard in self.shards],
            "shard_edges": [shard.n_edges for shard in self.shards],
        }
