"""Process-parallel shard serving over mmap'd immutable segments.

``ProcessShardedSegmentEngine`` partitions documents across N
:class:`~repro.search.segment_engine.SegmentSearchEngine` shards (one
segment directory per shard) and executes query fan-out on a
**persistent process pool** — each worker process mmaps its shard's
segments once per manifest generation and keeps them warm across
queries, so fan-out costs IPC of a query dict and a top-k id/score
list instead of GIL-bound Python scoring.

Exact rank equivalence works as in the thread-sharded engine, but the
corpus statistics have to cross a process boundary: the parent walks
the query, collects every ``(field, term)`` the execution will score,
aggregates live ``N`` / total length / ``df`` across all shards, and
ships that small payload with the query.  Workers score through a
stats-override composite, so per-document BM25 contributions are
bit-identical to the unsharded in-memory engine.

The parent keeps its own engine instances for mutations, statistics
and stored-field resolution; workers are pure readers of the on-disk
segment directories (delete bitmaps included — they live in each
shard's manifest).
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING, Any

from repro.exceptions import SearchError
from repro.runtime.executor import BatchExecutor
from repro.search.engine import ScoredHit, SearchEngine
from repro.search.segment_engine import SegmentSearchEngine
from repro.serving.cache import QueryCache
from repro.serving.engine import _canonical, _ShardJournal
from repro.serving.router import ShardRouter

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.metrics import MetricsRegistry


class _PayloadStats:
    """Corpus statistics reconstructed from a shipped payload."""

    __slots__ = ("n_documents", "total_length", "_df")

    def __init__(self, n_documents: int, total_length: int, df: dict):
        self.n_documents = n_documents
        self.total_length = total_length
        self._df = df

    def document_frequency(self, term: str) -> int:
        return self._df.get(term, 0)


# Per-process cache: shard directory -> (manifest generation, engine).
# Worker processes are single-threaded; no locking needed.
_WORKER_ENGINES: dict[str, tuple[int, SegmentSearchEngine]] = {}


def _worker_search(task: tuple) -> list[tuple]:
    """Run one query on one shard inside a pool worker.

    ``task`` is ``(shard_dir, generation, field_analyzers,
    default_field, query, size, stats_payload)``.  Returns the shard's
    local top-``size`` as ``(doc_id, score)`` pairs; the parent merges
    and resolves stored fields from its own engines.
    """
    (
        shard_dir,
        generation,
        field_analyzers,
        default_field,
        query,
        size,
        stats_payload,
    ) = task
    cached = _WORKER_ENGINES.get(shard_dir)
    if cached is None or cached[0] != generation:
        if cached is not None:
            cached[1].close()
        engine = SegmentSearchEngine(
            field_analyzers,
            default_field=default_field,
            segment_dir=shard_dir,
        )
        _WORKER_ENGINES[shard_dir] = (generation, engine)
    else:
        engine = cached[1]
    stats = {
        field: _PayloadStats(
            payload["n"], payload["total"], payload["df"]
        )
        for field, payload in stats_payload.items()
    }
    engine.stats_provider = lambda field: stats[field]
    try:
        hits = engine.search(query, size=size)
    finally:
        engine.stats_provider = None
    return [(hit.doc_id, hit.score) for hit in hits]


class ProcessShardedSegmentEngine:
    """N-way segment-sharded search served by process workers.

    Args:
        n_shards: partition count.
        segment_root: directory holding one ``shard-K`` segment
            directory per shard.
        field_analyzers / default_field: as for
            :class:`~repro.search.engine.SearchEngine`.
        cache_size: epoch-validated query-cache entries (0 disables).
        flush_threshold / merge_factor: per-shard segment policy.
        mode: executor mode — ``"process"`` (default) for the real
            worker pool, ``"serial"`` to run fan-out inline (tests).
        query_deadline: seconds each fan-out may spend in the worker
            pool before the query fails and the pool is recycled
            (``None`` waits forever).  A hung or killed worker process
            must not wedge the parent: on a deadline miss the query
            raises :class:`SearchError`, the stuck workers are
            terminated, and fresh ones serve the next query (they
            re-mmap warm segments on first use).
        metrics: registry for serving counters.
    """

    def __init__(
        self,
        n_shards: int,
        segment_root: str,
        field_analyzers: dict[str, dict] | None = None,
        default_field: str = "body",
        cache_size: int = 256,
        flush_threshold: int = 4096,
        merge_factor: int = 8,
        mode: str = "process",
        query_deadline: float | None = None,
        metrics: "MetricsRegistry | None" = None,
    ):
        if n_shards < 1:
            raise SearchError(f"n_shards must be >= 1, got {n_shards}")
        self.segment_root = str(segment_root)
        os.makedirs(self.segment_root, exist_ok=True)
        self.router = ShardRouter(n_shards)
        self.default_field = default_field
        self.metrics = metrics
        self._field_analyzers = dict(field_analyzers or {})
        self.shards: list[SegmentSearchEngine] = [
            SegmentSearchEngine(
                field_analyzers,
                default_field=default_field,
                segment_dir=os.path.join(self.segment_root, f"shard-{i}"),
                flush_threshold=flush_threshold,
                merge_factor=merge_factor,
            )
            for i in range(n_shards)
        ]
        self.cache = (
            QueryCache(cache_size, self.router.epochs) if cache_size else None
        )
        if mode == "process":
            _ensure_child_import_path()
        self._executor = BatchExecutor(
            workers=n_shards if mode != "serial" else 1,
            mode=mode,
            persistent=True,
        )
        self.query_deadline = query_deadline
        self.worker_timeouts = 0
        self._journal: list | None = None

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_documents(self) -> int:
        return sum(shard.n_documents for shard in self.shards)

    def shard(self, shard_id: int) -> SegmentSearchEngine:
        return self.shards[shard_id]

    # -- indexing ----------------------------------------------------------

    def index(self, doc_id: Any, fields: dict[str, str]) -> None:
        """Index (or re-index) a document on its owning shard."""
        shard_id = self.router.shard_of(doc_id)
        self.shards[shard_id].index(doc_id, fields)
        self.router.bump(shard_id)

    def delete(self, doc_id: Any) -> bool:
        """Remove a document; returns False when it was absent."""
        shard_id = self.router.shard_of(doc_id)
        deleted = self.shards[shard_id].delete(doc_id)
        if deleted:
            self.router.bump(shard_id)
        return deleted

    def flush(self) -> None:
        """Seal every shard's write buffer (workers only see sealed
        documents, so this runs automatically before each fan-out)."""
        for shard in self.shards:
            shard.flush()

    # -- search ------------------------------------------------------------

    def search(self, query: str | dict, size: int = 10) -> list[ScoredHit]:
        """Top ``size`` hits, exactly as the unsharded engine ranks
        them, computed by the worker pool on cache miss."""
        start = time.perf_counter()
        if isinstance(query, str):
            query = {"match": {self.default_field: query}}
        key = None
        stamp = None
        if self.cache is not None:
            key = (_canonical(query), size)
            cached = self.cache.get(key)
            if cached is not None:
                self._record_search(start, cached=True)
                return list(cached)
            stamp = self.router.epochs()
        hits = self._fan_out(query, size)
        if self.cache is not None:
            self.cache.put(key, list(hits), stamp=stamp)
        self._record_search(start, cached=False)
        return hits

    def _fan_out(self, query: dict, size: int) -> list[ScoredHit]:
        self.flush()
        field_terms: dict[str, set] = {}
        self._collect_field_terms(query, field_terms)
        stats_payload = {
            field: self._field_payload(field, terms)
            for field, terms in field_terms.items()
        }
        tasks = [
            (
                shard.segment_dir,
                shard.generation,
                self._field_analyzers,
                self.default_field,
                query,
                size,
                stats_payload,
            )
            for shard in self.shards
        ]
        outcomes = self._executor.map(
            _worker_search, tasks, timeout=self.query_deadline
        )
        merged: list[tuple] = []
        for shard_id, outcome in enumerate(outcomes):
            if not outcome.ok:
                if isinstance(outcome.error, TimeoutError):
                    # A worker is hung (or its process was killed).
                    # Recycle the pool so the stuck slot does not
                    # poison every subsequent query, then fail fast.
                    self.worker_timeouts += 1
                    if self.metrics is not None:
                        self.metrics.increment(
                            "serving.segments.worker_timeouts"
                        )
                    self._executor.recycle()
                    raise SearchError(
                        f"shard {shard_id} worker missed the "
                        f"{self.query_deadline:.3f}s query deadline; "
                        "worker pool recycled"
                    ) from outcome.error
                raise outcome.error
            if self.metrics is not None:
                self.metrics.record(
                    f"serving.segshard{shard_id}.search_seconds",
                    outcome.duration,
                )
            merged.extend(outcome.value)
        merged.sort(key=lambda pair: (-pair[1], str(pair[0])))
        hits = []
        for doc_id, score in merged[:size]:
            shard = self.shards[self.router.shard_of(doc_id)]
            hits.append(ScoredHit(doc_id, score, shard._source(doc_id)))
        return hits

    def _field_payload(self, field: str, terms: set) -> dict:
        composites = [shard.field_stats(field) for shard in self.shards]
        return {
            "n": sum(c.n_documents for c in composites),
            "total": sum(c.total_length for c in composites),
            "df": {
                term: sum(c.document_frequency(term) for c in composites)
                for term in sorted(terms)
            },
        }

    def _collect_field_terms(
        self, query: dict, out: dict[str, set]
    ) -> None:
        """Gather every (field, term) the execution of ``query`` will
        score, mirroring the engine's dispatch (and its validation
        errors, so malformed queries fail identically)."""
        if not isinstance(query, dict) or len(query) != 1:
            raise SearchError(
                "query must be a dict with exactly one top-level clause"
            )
        kind, body = next(iter(query.items()))
        analyzer_of = self.shards[0]._analyzer_for
        if kind == "match":
            field, text = SearchEngine._unpack(body, "match")
            out.setdefault(field, set()).update(
                analyzer_of(field).terms(str(text))
            )
        elif kind == "match_phrase":
            field, text = SearchEngine._unpack(body, "match_phrase")
            tokens = analyzer_of(field).analyze(str(text))
            by_position: dict[int, str] = {}
            for token in tokens:
                current = by_position.get(token.position)
                if current is None or len(token.term) > len(current):
                    by_position[token.position] = token.term
            out.setdefault(field, set()).update(by_position.values())
        elif kind == "term":
            field, value = SearchEngine._unpack(body, "term")
            out.setdefault(field, set()).add(str(value))
        elif kind == "multi_match":
            if not isinstance(body, dict) or "query" not in body:
                raise SearchError("multi_match requires a query")
            text = str(body["query"])
            fields = body.get("fields") or [self.default_field]
            for spec in fields:
                field, _, boost_text = str(spec).partition("^")
                if boost_text:
                    try:
                        float(boost_text)
                    except ValueError as exc:
                        raise SearchError(
                            f"bad field boost: {spec!r}"
                        ) from exc
                out.setdefault(field, set()).update(
                    analyzer_of(field).terms(text)
                )
        elif kind == "bool":
            if not isinstance(body, dict):
                raise SearchError("bool body must be a dict")
            for clause in ("must", "should", "must_not"):
                for sub in body.get(clause, []):
                    self._collect_field_terms(sub, out)
        elif kind == "match_all":
            pass
        else:
            raise SearchError(f"unknown query clause: {kind!r}")

    def _record_search(self, start: float, cached: bool) -> None:
        if self.metrics is None:
            return
        self.metrics.increment("serving.segments.searches")
        if cached:
            self.metrics.increment("serving.segments.cache_hits")
        else:
            self.metrics.increment("serving.segments.cache_misses")
        self.metrics.record(
            "serving.segments.search_seconds", time.perf_counter() - start
        )

    def highlight(
        self, doc_id: Any, field: str, query_text: str, window: int = 60
    ) -> list[str]:
        """Snippets from the owning shard's stored copy."""
        shard_id = self.router.shard_of(doc_id)
        return self.shards[shard_id].highlight(
            doc_id, field, query_text, window=window
        )

    def close(self) -> None:
        """Shut the worker pool down and release segment mmaps."""
        self._executor.close()
        for shard in self.shards:
            shard.close()

    # -- durability (repro.durability.Durable protocol) --------------------

    @property
    def journal(self) -> list | None:
        return self._journal

    @journal.setter
    def journal(self, value: list | None) -> None:
        self._journal = value
        for shard_id, shard in enumerate(self.shards):
            shard.journal = (
                _ShardJournal(self, shard_id) if value is not None else None
            )

    def durable_apply(self, op: dict) -> None:
        shard_id = int(op["shard"])
        self.shards[shard_id].durable_apply(op["o"])
        self.router.bump(shard_id)

    def durable_snapshot(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "shards": [shard.durable_snapshot() for shard in self.shards],
        }

    def durable_restore(self, state: dict) -> None:
        if int(state.get("n_shards", -1)) != self.n_shards:
            raise SearchError(
                f"snapshot has {state.get('n_shards')} shards, engine has "
                f"{self.n_shards}"
            )
        for shard_id, shard_state in enumerate(state["shards"]):
            self.shards[shard_id].durable_restore(shard_state)
            self.router.bump(shard_id)

    # -- observability -----------------------------------------------------

    def stats(self) -> dict:
        out = {
            "n_shards": self.n_shards,
            "epochs": list(self.router.epochs()),
            "shard_documents": [shard.n_documents for shard in self.shards],
            "shard_segments": [shard.n_segments for shard in self.shards],
            "worker_timeouts": self.worker_timeouts,
        }
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        return out


def _ensure_child_import_path() -> None:
    """Make ``repro`` importable in spawn/forkserver pool children.

    Spawned children re-import the worker module from scratch; when the
    package was put on ``sys.path`` by hand (PYTHONPATH=src, test
    harnesses), export that path so the children inherit it.
    """
    import repro

    package_root = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__))
    )
    existing = os.environ.get("PYTHONPATH", "")
    parts = existing.split(os.pathsep) if existing else []
    if package_root not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([package_root] + parts)
