"""Per-shard read replicas: WAL shipping, promotion, failover reads.

Each shard of the serving tier is a :class:`ShardReplicaSet` — one
**primary** store taking writes plus N **replicas** fed from the
primary's per-shard write-ahead log.  The machinery is the
``repro.durability`` stack end to end: the primary journals logical
ops through the :class:`~repro.durability.manager.Durable` protocol,
every mutation seals its journal into one checksummed WAL record
(append + fsync, ack-after-fsync), and replicas apply *acknowledged*
records in LSN order via ``durable_apply``.  Periodic snapshots
(``snapshot_every``) bound WAL replay: a replica that has fallen
behind a snapshot bootstraps from the snapshot file, then replays the
WAL suffix — the same recovery path a crashed process uses.

**Read consistency.**  A replica is eligible to serve a read only
while it is *fully caught up* (``applied_lsn == durable_lsn``); a
lagging replica is skipped and the primary serves.  Combined with the
cache's stamp-before-fan-out epoch protocol, a read can never observe
a state older than the epoch vector it was stamped with — replication
lag shifts load back to the primary instead of leaking stale results.

**Promotion.**  When the primary dies (process crash, poisoned WAL
after an fsync error), the most-caught-up replica is promoted: it
recovers from the *surviving bytes* — snapshot, then WAL replay with
torn-tail truncation — exactly as a restarted process would, so the
promoted primary holds every acknowledged write (and possibly a few
complete-but-unacknowledged records that survived the page cache,
which the durability contract allows).  A fresh replica is then
rebuilt from the snapshot + record mirror so the set keeps its
replication factor.
"""

from __future__ import annotations

import json
import threading
import time
from typing import TYPE_CHECKING, Any, Callable

from repro.durability.fs import MemFS
from repro.durability.snapshot import load_snapshot, write_snapshot
from repro.durability.wal import WriteAheadLog
from repro.exceptions import DurabilityError, ReplicaError, SearchError
from repro.runtime.executor import BatchExecutor
from repro.search.engine import ScoredHit, SearchEngine
from repro.serving.cache import QueryCache
from repro.serving.router import ShardRouter

if TYPE_CHECKING:  # pragma: no cover
    from repro.durability.manager import Durable
    from repro.runtime.metrics import MetricsRegistry


class Replica:
    """One read replica: a store plus the last LSN applied to it."""

    __slots__ = ("store", "applied_lsn")

    def __init__(self, store, applied_lsn: int = 0):
        self.store = store
        self.applied_lsn = applied_lsn


class ShardReplicaSet:
    """One shard's primary + replicas + per-shard WAL.

    Args:
        shard_id: shard index (names the WAL/snapshot files).
        store_factory: builds an empty ``Durable`` store; called once
            for the primary and once per replica, so every copy starts
            structurally identical.
        n_replicas: replication factor (>= 0; 0 keeps the WAL machinery
            but leaves nothing to promote).
        fs: durability filesystem for the shard's WAL + snapshots
            (``MemFS`` when omitted; tests wrap a ``FaultInjector``).
        ship_every: apply acknowledged records to replicas every Nth
            commit (1 = synchronous shipping; >1 creates real lag so
            the router's caught-up check earns its keep).
        snapshot_every: write a snapshot and reset the WAL after this
            many commits (``None`` disables).
        metrics: registry for promotion/shipping counters.
    """

    def __init__(
        self,
        shard_id: int,
        store_factory: Callable[[], "Durable"],
        n_replicas: int = 1,
        fs=None,
        ship_every: int = 1,
        snapshot_every: int | None = None,
        metrics: "MetricsRegistry | None" = None,
    ):
        if n_replicas < 0:
            raise ReplicaError(f"n_replicas must be >= 0, got {n_replicas}")
        if ship_every < 1:
            raise ReplicaError(f"ship_every must be >= 1, got {ship_every}")
        self.shard_id = shard_id
        self._factory = store_factory
        self.fs = fs if fs is not None else MemFS()
        self.wal = WriteAheadLog(self.fs, f"shard-{shard_id}.wal")
        self.snapshot_name = f"shard-{shard_id}.snapshot.json"
        self.ship_every = ship_every
        self.snapshot_every = snapshot_every
        self.metrics = metrics
        self.lock = threading.RLock()

        self.primary = store_factory()
        self.primary.journal = []
        self.replicas: list[Replica] = [
            Replica(store_factory()) for _ in range(n_replicas)
        ]
        self.down = False
        self.next_lsn = 1
        self.durable_lsn = 0
        self.snapshot_lsn = 0
        # Acknowledged records by LSN — the shipping mirror.  Everything
        # here is fsynced; promotion re-reads the *disk* bytes instead,
        # because a crash can strand this dict on the dead primary.
        self._records: dict[int, dict] = {}
        self._commits_since_ship = 0
        self._commits_since_snapshot = 0
        self._read_cursor = 0
        self.promotions = 0
        self.replica_rebuilds = 0

    # -- write path --------------------------------------------------------

    def mutate(self, fn: Callable[[Any], Any]) -> int | None:
        """Apply one mutation to the primary and make it durable.

        ``fn`` receives the primary store; whatever it journals is
        sealed into one WAL record whose LSN is returned (``None`` when
        the mutation journaled nothing).  A failed flush marks the
        primary down — after an fsync error its log tail is unknowable,
        so it must not acknowledge further writes; a replica takes over
        via :meth:`promote`.
        """
        with self.lock:
            if self.down:
                raise ReplicaError(
                    f"shard {self.shard_id} primary is down; promote a "
                    "replica before writing"
                )
            result = fn(self.primary)
            ops = list(self.primary.journal or ())
            if self.primary.journal:
                self.primary.journal.clear()
            if not ops:
                return result if isinstance(result, int) else None
            lsn = self.next_lsn
            self.next_lsn += 1
            record = {"lsn": lsn, "ops": ops}
            try:
                self.wal.append(record)
                self.wal.flush()
            except DurabilityError:
                self.down = True
                raise
            self.durable_lsn = lsn
            self._records[lsn] = record
            self._commits_since_ship += 1
            self._commits_since_snapshot += 1
            if (
                self.snapshot_every is not None
                and self._commits_since_snapshot >= self.snapshot_every
            ):
                self.snapshot()
            if self._commits_since_ship >= self.ship_every:
                self.ship()
            return lsn

    def snapshot(self) -> int:
        """Persist the primary's full state and reset the WAL."""
        with self.lock:
            if self.down:
                raise ReplicaError(
                    f"shard {self.shard_id} primary is down; cannot snapshot"
                )
            try:
                write_snapshot(
                    self.fs,
                    self.durable_lsn,
                    {"store": self.primary.durable_snapshot()},
                    self.snapshot_name,
                )
                self.wal.reset()
            except DurabilityError:
                self.down = True
                raise
            self.snapshot_lsn = self.durable_lsn
            self._commits_since_snapshot = 0
            # Records at or below the snapshot are covered by it.
            self._records = {
                lsn: rec
                for lsn, rec in self._records.items()
                if lsn > self.snapshot_lsn
            }
            self._count("snapshots_shipped")
            return self.snapshot_lsn

    # -- shipping ----------------------------------------------------------

    def ship(self) -> int:
        """Apply acknowledged records (and snapshots) to every replica.

        Returns the number of records applied across all replicas.
        """
        with self.lock:
            applied = 0
            for replica in self.replicas:
                applied += self._catch_up(replica)
            self._commits_since_ship = 0
            if applied:
                self._count("records_shipped", applied)
            return applied

    def _catch_up(self, replica: Replica) -> int:
        """Bring one replica to ``durable_lsn`` from snapshot + mirror."""
        applied = 0
        if replica.applied_lsn < self.snapshot_lsn:
            snapshot = load_snapshot(self.fs, self.snapshot_name)
            if snapshot is None:
                raise ReplicaError(
                    f"shard {self.shard_id} snapshot {self.snapshot_name} "
                    f"missing while replica lags it"
                )
            self._quiet_restore(replica.store, snapshot["stores"]["store"])
            replica.applied_lsn = int(snapshot.get("lsn", 0))
            applied += 1
        for lsn in sorted(self._records):
            if lsn <= replica.applied_lsn:
                continue
            for op in self._records[lsn]["ops"]:
                self._quiet_apply(replica.store, op)
            replica.applied_lsn = lsn
            applied += 1
        return applied

    # -- reads -------------------------------------------------------------

    def read_store(self):
        """The store that serves the next read.

        Caught-up replicas are preferred (round-robin) so reads scale
        out; a lagging replica is skipped — it would serve a stale
        epoch.  With the primary down this raises
        :class:`ReplicaError`; the tier promotes and retries.
        """
        with self.lock:
            if not self.down:
                eligible = [
                    replica
                    for replica in self.replicas
                    if replica.applied_lsn == self.durable_lsn
                ]
                if eligible:
                    self._read_cursor = (self._read_cursor + 1) % len(
                        eligible
                    )
                    self._count("replica_reads")
                    return eligible[self._read_cursor].store
                self._count("primary_reads")
                return self.primary
            raise ReplicaError(
                f"shard {self.shard_id} primary is down; reads need a "
                "promotion"
            )

    def lag_lsns(self) -> list[int]:
        """Per-replica lag behind the durable LSN, in LSNs."""
        with self.lock:
            return [
                self.durable_lsn - replica.applied_lsn
                for replica in self.replicas
            ]

    # -- failure & promotion -----------------------------------------------

    def crash_primary(self) -> None:
        """Declare the primary dead (its in-memory state is gone)."""
        with self.lock:
            self.down = True

    def promote(self) -> int:
        """Promote the most-caught-up replica to primary.

        The candidate recovers from the shard's *durable bytes* — load
        the snapshot if it is ahead of the replica, then replay the WAL
        suffix with torn-tail truncation — so the new primary reflects
        every acknowledged record regardless of shipping lag.  Returns
        the recovered durable LSN.
        """
        with self.lock:
            if not self.replicas:
                raise ReplicaError(
                    f"shard {self.shard_id} has no replica to promote"
                )
            candidate = max(self.replicas, key=lambda r: r.applied_lsn)
            self.replicas.remove(candidate)

            snapshot = load_snapshot(self.fs, self.snapshot_name)
            snapshot_lsn = 0
            if snapshot is not None:
                snapshot_lsn = int(snapshot.get("lsn", 0))
                if candidate.applied_lsn < snapshot_lsn:
                    self._quiet_restore(
                        candidate.store, snapshot["stores"]["store"]
                    )
                    candidate.applied_lsn = snapshot_lsn
            # The dead primary's WAL object may still buffer records
            # from a failed flush; a fresh one reads only disk bytes.
            self.wal = WriteAheadLog(self.fs, self.wal.name)
            replayed = self.wal.replay(truncate_torn=True)
            records: dict[int, dict] = {}
            last_lsn = max(candidate.applied_lsn, snapshot_lsn)
            for record in replayed.records:
                lsn = int(record.get("lsn", 0))
                if lsn <= snapshot_lsn:
                    continue
                records[lsn] = record
                if lsn > candidate.applied_lsn:
                    for op in record["ops"]:
                        self._quiet_apply(candidate.store, op)
                    candidate.applied_lsn = lsn
                last_lsn = max(last_lsn, lsn)

            self.primary = candidate.store
            self.primary.journal = []
            self.down = False
            self.durable_lsn = last_lsn
            self.next_lsn = last_lsn + 1
            self.snapshot_lsn = snapshot_lsn
            self._records = records
            self.promotions += 1
            self._count("promotions")
            self._rebuild_replica()
            return self.durable_lsn

    def _rebuild_replica(self) -> None:
        """Restore the replication factor with a fresh bootstrap."""
        replica = Replica(self._factory())
        self._catch_up(replica)
        self.replicas.append(replica)
        self.replica_rebuilds += 1

    # -- observability -----------------------------------------------------

    def stats(self) -> dict:
        with self.lock:
            return {
                "durable_lsn": self.durable_lsn,
                "snapshot_lsn": self.snapshot_lsn,
                "primary_down": self.down,
                "n_replicas": len(self.replicas),
                "lag_lsns": self.lag_lsns(),
                "promotions": self.promotions,
                "replica_rebuilds": self.replica_rebuilds,
            }

    # -- internals ---------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.increment(f"serving.replica.{name}", amount)

    @staticmethod
    def _quiet_apply(store, op: dict) -> None:
        journal, store.journal = store.journal, None
        try:
            store.durable_apply(op)
        finally:
            store.journal = journal

    @staticmethod
    def _quiet_restore(store, state: dict) -> None:
        journal, store.journal = store.journal, None
        try:
            store.durable_restore(state)
        finally:
            store.journal = journal


class _ReplicatedFieldStats:
    """Global corpus statistics summed across every shard's primary.

    Primaries hold every acknowledged write, and replicas only serve
    while byte-equivalent to their primary, so these statistics are
    exact for whichever copy executes the query.
    """

    __slots__ = ("_field", "_sets")

    def __init__(self, field_name: str, sets: list[ShardReplicaSet]):
        self._field = field_name
        self._sets = sets

    @property
    def n_documents(self) -> int:
        return sum(
            s.primary._field_index(self._field).n_documents
            for s in self._sets
        )

    @property
    def total_length(self) -> int:
        return sum(
            s.primary._field_index(self._field).total_length
            for s in self._sets
        )

    def document_frequency(self, term: str) -> int:
        return sum(
            s.primary._field_index(self._field).document_frequency(term)
            for s in self._sets
        )


class ReplicatedShardedSearchEngine:
    """N-way sharded search where every shard is a replica set.

    Semantically identical to
    :class:`~repro.serving.engine.ShardedSearchEngine` — exact rank
    equivalence via global BM25 statistics, epoch-stamped query cache —
    but each shard survives its primary's death: reads fail over to the
    most-caught-up replica (promotion recovers from the shard WAL) and
    writes resume against the promoted primary.

    Args:
        n_shards / field_analyzers / default_field / router /
            cache_size / metrics: as for ``ShardedSearchEngine``.
        n_replicas: replicas per shard.
        ship_every / snapshot_every: replication cadence (see
            :class:`ShardReplicaSet`).
        fs_factory: ``shard_id -> fs`` for per-shard WAL storage
            (``MemFS`` each when omitted; fuzzing injects faults here).
        executor_mode: fan-out executor mode (``"serial"`` for
            deterministic tests).
    """

    def __init__(
        self,
        n_shards: int,
        n_replicas: int = 1,
        field_analyzers: dict[str, dict] | None = None,
        default_field: str = "body",
        router: ShardRouter | None = None,
        cache_size: int = 256,
        ship_every: int = 1,
        snapshot_every: int | None = None,
        fs_factory: Callable[[int], Any] | None = None,
        executor_mode: str = "thread",
        metrics: "MetricsRegistry | None" = None,
    ):
        self.router = router if router is not None else ShardRouter(n_shards)
        if self.router.n_shards != n_shards:
            raise SearchError(
                f"router has {self.router.n_shards} shards, engine asked "
                f"for {n_shards}"
            )
        self.default_field = default_field
        self.metrics = metrics
        self._field_analyzers = field_analyzers
        self._field_stats: dict[str, _ReplicatedFieldStats] = {}

        def factory() -> SearchEngine:
            store = SearchEngine(field_analyzers, default_field=default_field)
            store.stats_provider = self._stats_for_field
            return store

        self.sets: list[ShardReplicaSet] = [
            ShardReplicaSet(
                shard_id,
                factory,
                n_replicas=n_replicas,
                fs=fs_factory(shard_id) if fs_factory is not None else None,
                ship_every=ship_every,
                snapshot_every=snapshot_every,
                metrics=metrics,
            )
            for shard_id in range(n_shards)
        ]
        self.cache = (
            QueryCache(cache_size, self.router.epochs) if cache_size else None
        )
        self._executor = BatchExecutor(
            workers=n_shards, mode=executor_mode
        )
        self.failovers = 0

    @property
    def n_shards(self) -> int:
        return len(self.sets)

    @property
    def n_documents(self) -> int:
        return sum(s.primary.n_documents for s in self.sets)

    def replica_set(self, shard_id: int) -> ShardReplicaSet:
        return self.sets[shard_id]

    def _stats_for_field(self, field_name: str) -> _ReplicatedFieldStats:
        stats = self._field_stats.get(field_name)
        if stats is None:
            stats = _ReplicatedFieldStats(field_name, self.sets)
            self._field_stats[field_name] = stats
        return stats

    # -- indexing ----------------------------------------------------------

    def index(self, doc_id: Any, fields: dict[str, str]) -> None:
        """Index (or re-index) a document on its owning replica set."""
        shard_id = self.router.shard_of(doc_id)
        self._mutate(shard_id, lambda store: store.index(doc_id, fields))
        self.router.bump(shard_id)

    def delete(self, doc_id: Any) -> bool:
        """Remove a document; returns False when it was absent."""
        shard_id = self.router.shard_of(doc_id)
        outcome: list[bool] = []
        self._mutate(
            shard_id,
            lambda store: outcome.append(store.delete(doc_id)),
        )
        if outcome[0]:
            self.router.bump(shard_id)
        return outcome[0]

    def _mutate(self, shard_id: int, fn) -> None:
        """Write through the shard's primary, failing over once when it
        is already known to be down."""
        try:
            self.sets[shard_id].mutate(fn)
        except ReplicaError:
            self.promote(shard_id)
            self.sets[shard_id].mutate(fn)

    # -- failover ----------------------------------------------------------

    def crash_primary(self, shard_id: int) -> None:
        """Declare one shard's primary dead (test/fuzz hook)."""
        self.sets[shard_id].crash_primary()

    def promote(self, shard_id: int) -> int:
        """Promote a replica on one shard and invalidate cached reads.

        The promoted state can differ from the dead primary's memory
        (unacknowledged writes are legitimately lost), so the shard
        epoch must bump — entries cached against the old state become
        structurally unservable.
        """
        lsn = self.sets[shard_id].promote()
        self.router.bump(shard_id)
        self.failovers += 1
        if self.metrics is not None:
            self.metrics.increment("serving.replica.failovers")
        return lsn

    def ship_all(self) -> int:
        """Force shipping on every shard (tests, graceful drains)."""
        return sum(s.ship() for s in self.sets)

    # -- search ------------------------------------------------------------

    def search(self, query: str | dict, size: int = 10) -> list[ScoredHit]:
        """Top ``size`` hits, exactly as the unsharded engine ranks
        them, served by caught-up replicas or primaries."""
        start = time.perf_counter()
        if isinstance(query, str):
            query = {"match": {self.default_field: query}}
        key = None
        stamp = None
        if self.cache is not None:
            key = (_canonical(query), size)
            cached = self.cache.get(key)
            if cached is not None:
                self._record_search(start, cached=True)
                return list(cached)
            # Stamp before fan-out: a mutation or promotion landing
            # mid-query makes this entry stale at store time.
            stamp = self.router.epochs()
        hits = self._fan_out(query, size)
        if self.cache is not None:
            self.cache.put(key, list(hits), stamp=stamp)
        self._record_search(start, cached=False)
        return hits

    def _fan_out(self, query: dict, size: int) -> list[ScoredHit]:
        outcomes = self._executor.map(
            lambda shard_id: self._shard_search(shard_id, query, size),
            range(self.n_shards),
        )
        merged: list[ScoredHit] = []
        for shard_id, outcome in enumerate(outcomes):
            if not outcome.ok:
                raise outcome.error
            if self.metrics is not None:
                self.metrics.record(
                    f"serving.replica.shard{shard_id}.search_seconds",
                    outcome.duration,
                )
            merged.extend(outcome.value)
        merged.sort(key=lambda hit: (-hit.score, str(hit.doc_id)))
        return merged[:size]

    def _shard_search(self, shard_id: int, query: dict, size: int):
        set_ = self.sets[shard_id]
        with set_.lock:
            try:
                store = set_.read_store()
            except ReplicaError:
                self.promote(shard_id)
                store = set_.read_store()
            return store.search(query, size=size)

    def highlight(
        self, doc_id: Any, field: str, query_text: str, window: int = 60
    ) -> list[str]:
        """Snippets from the owning shard's serving copy."""
        shard_id = self.router.shard_of(doc_id)
        set_ = self.sets[shard_id]
        with set_.lock:
            try:
                store = set_.read_store()
            except ReplicaError:
                self.promote(shard_id)
                store = set_.read_store()
            return store.highlight(doc_id, field, query_text, window=window)

    def _record_search(self, start: float, cached: bool) -> None:
        if self.metrics is None:
            return
        self.metrics.increment("serving.replica.searches")
        if cached:
            self.metrics.increment("serving.replica.cache_hits")
        else:
            self.metrics.increment("serving.replica.cache_misses")
        self.metrics.record(
            "serving.replica.search_seconds", time.perf_counter() - start
        )

    def close(self) -> None:
        self._executor.close()

    # -- observability -----------------------------------------------------

    def stats(self) -> dict:
        """Replication health for ``/stats``: lag, promotions, epochs."""
        out = {
            "n_shards": self.n_shards,
            "epochs": list(self.router.epochs()),
            "shard_documents": [s.primary.n_documents for s in self.sets],
            "failovers": self.failovers,
            "replication": [s.stats() for s in self.sets],
        }
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        return out


def _canonical(query: dict) -> str:
    """Stable cache key text for a query dict."""
    return json.dumps(query, sort_keys=True, ensure_ascii=False, default=str)
