"""Asyncio front end: bounded admission, deadlines, retry, shedding.

:class:`ServingFrontend` is the request edge of the serving tier.  It
wraps the synchronous engines (sharded/replicated search, graph, IR)
behind named routes and enforces the three SLO behaviors the engines
themselves cannot:

* **Bounded admission.**  At most ``max_concurrency`` requests execute
  at once and at most ``queue_limit`` requests exist in the system
  (executing + queued).  A request arriving past the limit is rejected
  *immediately* with :class:`~repro.exceptions.LoadShedError` — the
  fast-rejection path costs microseconds, so overload degrades into
  cheap 429s instead of an unbounded queue where every request
  eventually times out (collapse).
* **Deadlines.**  Every request carries a deadline budget that covers
  queueing *and* execution; when it runs out the caller gets
  :class:`~repro.exceptions.DeadlineExceededError` instead of waiting
  on a stuck backend.  The handler thread may still be running — the
  executor slot is reclaimed when it finishes, which is why admission
  is bounded by queue depth rather than thread count alone.
* **Retry with backoff.**  Transient backend errors (by default
  :class:`~repro.exceptions.ReplicaError`, i.e. a read that raced a
  primary crash before failover promoted a replica) are retried with
  exponential backoff while deadline budget remains — the retry lands
  on the promoted replica.

Everything is counted into :class:`~repro.runtime.metrics`
(``serving.frontend.*``): sheds, timeouts, retries, completions, and
per-route latency timers whose p50/p99 surface through ``/stats``.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable

from repro.exceptions import (
    DeadlineExceededError,
    LoadShedError,
    ServingError,
)
from repro.runtime.metrics import MetricsRegistry


@dataclass(frozen=True, slots=True)
class Route:
    """One registered handler and its per-route policy."""

    name: str
    fn: Callable[..., Any]
    deadline: float | None
    retryable: bool


class ServingFrontend:
    """Admission-controlled async facade over synchronous engines.

    Args:
        max_concurrency: handler threads executing simultaneously.
        queue_limit: total in-flight requests (executing + waiting);
            arrivals beyond it are shed.  This is the bounded queue —
            it must be finite or overload queues toward collapse.
        default_deadline: seconds of total budget per request unless
            the route or call overrides it.
        max_retries: extra attempts for retryable errors.
        backoff: initial retry sleep, doubled per attempt.
        retry_on: exception types treated as transient.
        metrics: shared registry (private one when omitted).
    """

    def __init__(
        self,
        max_concurrency: int = 4,
        queue_limit: int = 32,
        default_deadline: float = 1.0,
        max_retries: int = 1,
        backoff: float = 0.02,
        retry_on: tuple[type[BaseException], ...] | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if max_concurrency < 1:
            raise ServingError("max_concurrency must be >= 1")
        if queue_limit < max_concurrency:
            raise ServingError(
                f"queue_limit ({queue_limit}) must be >= max_concurrency "
                f"({max_concurrency})"
            )
        self.max_concurrency = max_concurrency
        self.queue_limit = queue_limit
        self.default_deadline = default_deadline
        self.max_retries = max(0, int(max_retries))
        self.backoff = backoff
        if retry_on is None:
            from repro.exceptions import ReplicaError

            retry_on = (ReplicaError,)
        self.retry_on = retry_on
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._routes: dict[str, Route] = {}
        self._semaphore = asyncio.Semaphore(max_concurrency)
        self._pool = ThreadPoolExecutor(
            max_workers=max_concurrency,
            thread_name_prefix="serving-frontend",
        )
        self._inflight = 0

    # -- wiring ------------------------------------------------------------

    def register(
        self,
        name: str,
        fn: Callable[..., Any],
        deadline: float | None = None,
        retryable: bool = True,
    ) -> None:
        """Expose ``fn`` as route ``name``.

        ``deadline`` overrides the front-end default for this route;
        ``retryable=False`` opts writes (non-idempotent handlers) out
        of automatic retry.
        """
        if name in self._routes:
            raise ServingError(f"route {name!r} already registered")
        self._routes[name] = Route(name, fn, deadline, retryable)

    # -- request path ------------------------------------------------------

    async def handle(
        self,
        route_name: str,
        *args,
        deadline: float | None = None,
        **kwargs,
    ) -> Any:
        """Run one request through admission, deadline, and retry.

        Raises:
            LoadShedError: rejected at admission (queue full).
            DeadlineExceededError: budget exhausted while queued or
                executing.
            ServingError: unknown route.
            Exception: whatever the handler raised, after retries.
        """
        route = self._routes.get(route_name)
        if route is None:
            raise ServingError(f"unknown route {route_name!r}")
        start = time.perf_counter()
        if self._inflight >= self.queue_limit:
            # Fast rejection: no queueing, no waiting, just a cheap,
            # honest 429 before the request costs anything.
            self.metrics.increment("serving.frontend.shed")
            self.metrics.record(
                f"serving.frontend.{route_name}.shed_seconds",
                time.perf_counter() - start,
            )
            raise LoadShedError(
                f"route {route_name!r} shed at admission: "
                f"{self._inflight}/{self.queue_limit} requests in flight"
            )
        budget = (
            deadline
            if deadline is not None
            else route.deadline
            if route.deadline is not None
            else self.default_deadline
        )
        self._inflight += 1
        self.metrics.increment("serving.frontend.admitted")
        try:
            value = await self._execute(route, budget, start, args, kwargs)
            self.metrics.increment("serving.frontend.completed")
            self.metrics.record(
                f"serving.frontend.{route_name}.seconds",
                time.perf_counter() - start,
            )
            return value
        except DeadlineExceededError:
            self.metrics.increment("serving.frontend.timeouts")
            raise
        except LoadShedError:
            raise
        except BaseException:
            self.metrics.increment("serving.frontend.errors")
            raise
        finally:
            self._inflight -= 1

    async def _execute(
        self, route: Route, budget: float, start: float, args, kwargs
    ) -> Any:
        """Semaphore-gated execution with deadline-bounded retries."""
        attempt = 0
        pause = self.backoff
        loop = asyncio.get_running_loop()
        while True:
            remaining = budget - (time.perf_counter() - start)
            if remaining <= 0:
                raise DeadlineExceededError(
                    f"route {route.name!r} exhausted its {budget:.3f}s "
                    f"deadline while queued"
                )
            try:
                async with self._semaphore:
                    remaining = budget - (time.perf_counter() - start)
                    if remaining <= 0:
                        raise DeadlineExceededError(
                            f"route {route.name!r} exhausted its "
                            f"{budget:.3f}s deadline waiting for a worker"
                        )
                    future = loop.run_in_executor(
                        self._pool,
                        lambda: route.fn(*args, **kwargs),
                    )
                    try:
                        return await asyncio.wait_for(future, remaining)
                    except asyncio.TimeoutError:
                        raise DeadlineExceededError(
                            f"route {route.name!r} missed its "
                            f"{budget:.3f}s deadline mid-execution"
                        ) from None
            except self.retry_on as exc:
                attempt += 1
                if not route.retryable or attempt > self.max_retries:
                    raise
                remaining = budget - (time.perf_counter() - start)
                if remaining <= pause:
                    raise DeadlineExceededError(
                        f"route {route.name!r} has no deadline budget "
                        f"left to retry after {type(exc).__name__}"
                    ) from exc
                self.metrics.increment("serving.frontend.retries")
                await asyncio.sleep(pause)
                pause *= 2

    # -- observability -----------------------------------------------------

    def stats(self) -> dict:
        """Admission/shed/timeout counters and per-route latency
        percentiles for ``/stats``."""
        out = {
            "inflight": self._inflight,
            "queue_limit": self.queue_limit,
            "max_concurrency": self.max_concurrency,
            "counters": {
                name: self.metrics.counter(f"serving.frontend.{name}")
                for name in (
                    "admitted",
                    "completed",
                    "shed",
                    "timeouts",
                    "retries",
                    "errors",
                )
            },
            "routes": {},
        }
        for name in self._routes:
            timer = self.metrics.timer_stats(f"serving.frontend.{name}.seconds")
            if timer is not None:
                out["routes"][name] = timer.as_dict()
        return out

    def close(self) -> None:
        """Release the handler thread pool."""
        self._pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ServingFrontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
