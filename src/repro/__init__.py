"""repro: a full reproduction of CREATe (ICDE 2021).

CREATe — Clinical Report Extraction and Annotation Technology — is an
end-to-end system for extracting, indexing and querying clinical case
reports.  This package reimplements the complete system in pure Python:
the CREATe-IR core (NER, PSL-regularized temporal relation extraction,
graph-first hybrid retrieval) and every substrate the paper's
deployment relied on (document store, full-text search engine, property
graph database with mini-Cypher, publication parser, web crawler, BRAT
annotation layer, force-directed visualization and the backend API).

Quickstart:

    >>> from repro.pipeline import build_demo_system
    >>> pipeline, reports = build_demo_system(n_reports=30, n_train=30)
    >>> response = pipeline.app.handle(
    ...     "GET", "/search", params={"q": "fever and cough"})
    >>> response.ok
    True
"""

from repro.pipeline import (
    ClinicalExtractor,
    CreatePipeline,
    build_demo_system,
)

__version__ = "1.0.0"

__all__ = [
    "ClinicalExtractor",
    "CreatePipeline",
    "build_demo_system",
    "__version__",
]
