"""SimPDF: a simulated positioned-text publication format.

A SimPDF file is line-oriented text:

    %SimPDF 1.0
    PAGE 1
    BLOCK x=72 y=60 size=18 style=bold
    A case of atrial fibrillation presenting with syncope
    ENDBLOCK
    BLOCK x=72 y=120 size=10 style=regular
    Wei Chen, Maria Garcia
    ENDBLOCK
    ENDPAGE

It models exactly the information a PDF text extractor recovers from a
real publication PDF — page, position, font size and style per text
block — which is what Grobid's metadata heuristics rely on.  The
renderer converts a structured publication into SimPDF; the parser
recovers the block structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ParseError

_HEADER = "%SimPDF 1.0"


@dataclass(frozen=True, slots=True)
class SimPdfBlock:
    """One positioned text block."""

    page: int
    x: float
    y: float
    size: float
    style: str
    text: str


@dataclass
class SimPdfDocument:
    """A parsed SimPDF file: pages of positioned blocks."""

    blocks: list[SimPdfBlock] = field(default_factory=list)

    @property
    def n_pages(self) -> int:
        if not self.blocks:
            return 0
        return max(block.page for block in self.blocks)

    def page_blocks(self, page: int) -> list[SimPdfBlock]:
        """Blocks of one page, top-to-bottom reading order."""
        return sorted(
            (b for b in self.blocks if b.page == page),
            key=lambda b: (b.y, b.x),
        )

    def full_text(self) -> str:
        """All block text joined in reading order."""
        parts = []
        for page in range(1, self.n_pages + 1):
            parts.extend(block.text for block in self.page_blocks(page))
        return "\n".join(parts)


def render_simpdf(
    title: str,
    authors: list[str],
    affiliations: list[str],
    abstract: str,
    body_sections: list[tuple[str, str]],
) -> str:
    """Render a structured publication as SimPDF content.

    Args:
        title: publication title (rendered largest, top of page 1).
        authors: author names (rendered below the title).
        affiliations: affiliation lines.
        abstract: abstract paragraph.
        body_sections: list of ``(heading, paragraph_text)``.
    """
    lines = [_HEADER, "PAGE 1"]
    y = 60.0

    def block(text: str, size: float, style: str) -> None:
        nonlocal y
        lines.append(f"BLOCK x=72 y={y:g} size={size:g} style={style}")
        lines.append(text)
        lines.append("ENDBLOCK")
        y += 30.0 + 10.0 * text.count("\n")

    block(title, 18, "bold")
    block(", ".join(authors), 11, "regular")
    for affiliation in affiliations:
        block(affiliation, 9, "italic")
    block("Abstract", 12, "bold")
    block(abstract, 10, "regular")

    page = 1
    for heading, paragraph in body_sections:
        if y > 700.0:
            lines.append("ENDPAGE")
            page += 1
            lines.append(f"PAGE {page}")
            y = 60.0
        block(heading, 12, "bold")
        block(paragraph, 10, "regular")
    lines.append("ENDPAGE")
    return "\n".join(lines) + "\n"


def parse_simpdf(content: str) -> SimPdfDocument:
    """Parse SimPDF content into its block structure.

    Raises:
        ParseError: missing header or malformed block structure.
    """
    lines = content.splitlines()
    if not lines or lines[0].strip() != _HEADER:
        raise ParseError("not a SimPDF file (missing %SimPDF header)")
    doc = SimPdfDocument()
    page = 0
    i = 1
    while i < len(lines):
        line = lines[i].strip()
        i += 1
        if not line:
            continue
        if line.startswith("PAGE "):
            try:
                page = int(line.split()[1])
            except (IndexError, ValueError) as exc:
                raise ParseError(f"bad PAGE line: {line!r}") from exc
            continue
        if line == "ENDPAGE":
            continue
        if line.startswith("BLOCK "):
            if page == 0:
                raise ParseError("BLOCK before any PAGE")
            attrs = _parse_block_attrs(line)
            text_lines = []
            while i < len(lines) and lines[i].strip() != "ENDBLOCK":
                text_lines.append(lines[i])
                i += 1
            if i >= len(lines):
                raise ParseError("unterminated BLOCK")
            i += 1  # consume ENDBLOCK
            doc.blocks.append(
                SimPdfBlock(
                    page=page,
                    x=attrs["x"],
                    y=attrs["y"],
                    size=attrs["size"],
                    style=attrs["style"],
                    text="\n".join(text_lines).strip(),
                )
            )
            continue
        raise ParseError(f"unexpected SimPDF line: {line!r}")
    return doc


def _parse_block_attrs(line: str) -> dict:
    attrs: dict = {"x": 0.0, "y": 0.0, "size": 10.0, "style": "regular"}
    for token in line.split()[1:]:
        if "=" not in token:
            raise ParseError(f"bad BLOCK attribute: {token!r}")
        key, value = token.split("=", 1)
        if key in ("x", "y", "size"):
            try:
                attrs[key] = float(value)
            except ValueError as exc:
                raise ParseError(f"bad numeric attribute: {token!r}") from exc
        elif key == "style":
            attrs[key] = value
        else:
            raise ParseError(f"unknown BLOCK attribute: {key!r}")
    return attrs
