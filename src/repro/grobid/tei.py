"""TEI-like XML: the "well organized XML format" Grobid emits.

A tiny dialect of TEI sufficient for CREATe's pipeline: header with
title/authors/affiliations, an abstract, and body divisions with
headings.  Uses :mod:`xml.etree.ElementTree` for emission and parsing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from xml.etree import ElementTree

from repro.exceptions import ParseError


@dataclass
class TeiDocument:
    """Structured publication content."""

    title: str = ""
    authors: list[str] = field(default_factory=list)
    affiliations: list[str] = field(default_factory=list)
    abstract: str = ""
    sections: list[tuple[str, str]] = field(default_factory=list)

    def body_text(self) -> str:
        """All section paragraphs joined (the narrative CREATe indexes)."""
        return " ".join(paragraph for _head, paragraph in self.sections)


def to_tei_xml(doc: TeiDocument) -> str:
    """Serialize a :class:`TeiDocument` to TEI-like XML."""
    tei = ElementTree.Element("TEI")
    header = ElementTree.SubElement(tei, "teiHeader")
    file_desc = ElementTree.SubElement(header, "fileDesc")
    title_stmt = ElementTree.SubElement(file_desc, "titleStmt")
    ElementTree.SubElement(title_stmt, "title").text = doc.title
    source = ElementTree.SubElement(file_desc, "sourceDesc")
    for author in doc.authors:
        ElementTree.SubElement(source, "author").text = author
    for affiliation in doc.affiliations:
        ElementTree.SubElement(source, "affiliation").text = affiliation
    ElementTree.SubElement(header, "abstract").text = doc.abstract

    text_el = ElementTree.SubElement(tei, "text")
    body = ElementTree.SubElement(text_el, "body")
    for heading, paragraph in doc.sections:
        div = ElementTree.SubElement(body, "div")
        ElementTree.SubElement(div, "head").text = heading
        ElementTree.SubElement(div, "p").text = paragraph
    return ElementTree.tostring(tei, encoding="unicode")


def parse_tei_xml(xml_content: str) -> TeiDocument:
    """Parse TEI-like XML back into a :class:`TeiDocument`.

    Raises:
        ParseError: malformed XML or missing TEI root.
    """
    try:
        root = ElementTree.fromstring(xml_content)
    except ElementTree.ParseError as exc:
        raise ParseError(f"malformed XML: {exc}") from exc
    if root.tag != "TEI":
        raise ParseError(f"expected <TEI> root, got <{root.tag}>")
    doc = TeiDocument()
    title_el = root.find("./teiHeader/fileDesc/titleStmt/title")
    doc.title = (title_el.text or "") if title_el is not None else ""
    doc.authors = [
        el.text or ""
        for el in root.findall("./teiHeader/fileDesc/sourceDesc/author")
    ]
    doc.affiliations = [
        el.text or ""
        for el in root.findall("./teiHeader/fileDesc/sourceDesc/affiliation")
    ]
    abstract_el = root.find("./teiHeader/abstract")
    doc.abstract = (
        (abstract_el.text or "") if abstract_el is not None else ""
    )
    for div in root.findall("./text/body/div"):
        head_el = div.find("head")
        p_el = div.find("p")
        doc.sections.append(
            (
                (head_el.text or "") if head_el is not None else "",
                (p_el.text or "") if p_el is not None else "",
            )
        )
    return doc
