"""The PDF submission service: SimPDF -> TEI XML -> structured parse.

This is the pipeline stage the paper describes in section II: "a PDF
submission service, based on Grobid, which is able to convert the
publications in PDF format into well organized XML format", with
automatic metadata extraction.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field

from repro.exceptions import ParseError, TransientParseError
from repro.grobid.metadata import PublicationMetadata, extract_metadata
from repro.grobid.sections import SectionSpan, segment_sections
from repro.grobid.simpdf import parse_simpdf
from repro.grobid.tei import TeiDocument, parse_tei_xml, to_tei_xml


@dataclass
class ParsedPublication:
    """The service's output: metadata + organized body."""

    metadata: PublicationMetadata
    sections: list[SectionSpan] = field(default_factory=list)
    tei_xml: str = ""

    def body_text(self) -> str:
        """The narrative text for downstream extraction/indexing."""
        return " ".join(section.text for section in self.sections)


class GrobidService:
    """Converts submitted publications into structured parses.

    Accepts either SimPDF content or TEI XML (the two capture formats
    the paper's crawler encounters: "The contents can be captured in
    XML or online PDFs").

    The real Grobid is a remote REST service; two knobs model that:

    Args:
        latency: simulated round-trip seconds per :meth:`process` call
            (a real wall-clock sleep, so concurrent callers overlap it
            the way concurrent RPCs would).
        transient_error_rate: fraction of documents whose *first*
            :meth:`process` call raises :class:`TransientParseError`.
            The decision is keyed on the content (not call order), so
            runs are deterministic under any execution schedule, and a
            retry of the same document succeeds.
        seed: perturbs which documents draw the transient failure.
    """

    def __init__(
        self,
        latency: float = 0.0,
        transient_error_rate: float = 0.0,
        seed: int = 0,
    ):
        self.latency = latency
        self.transient_error_rate = transient_error_rate
        self.seed = seed
        self._attempted: set[int] = set()

    def process(self, content: str) -> ParsedPublication:
        """Dispatch on content type and parse.

        Raises:
            TransientParseError: injected retryable service failure.
            ParseError: the content is neither SimPDF nor TEI XML.
        """
        if self.latency > 0.0:
            time.sleep(self.latency)
        if self.transient_error_rate > 0.0:
            key = zlib.crc32(content.encode("utf-8")) ^ (self.seed * 2654435761)
            if key not in self._attempted:
                self._attempted.add(key)
                if (key % 10_000) < self.transient_error_rate * 10_000:
                    raise TransientParseError(
                        "simulated transient Grobid failure"
                    )
        stripped = content.lstrip()
        if stripped.startswith("%SimPDF"):
            return self.process_pdf(content)
        if stripped.startswith("<TEI") or stripped.startswith("<?xml"):
            return self.process_xml(content)
        raise ParseError("unrecognized publication format")

    def process_pdf(self, simpdf_content: str) -> ParsedPublication:
        """SimPDF -> (metadata, sections, TEI XML)."""
        pdf = parse_simpdf(simpdf_content)
        metadata = extract_metadata(pdf)
        sections = segment_sections(pdf)
        tei = TeiDocument(
            title=metadata.title,
            authors=list(metadata.authors),
            affiliations=list(metadata.affiliations),
            abstract=metadata.abstract,
            sections=[(s.heading, s.text) for s in sections],
        )
        return ParsedPublication(
            metadata=metadata,
            sections=sections,
            tei_xml=to_tei_xml(tei),
        )

    def process_xml(self, xml_content: str) -> ParsedPublication:
        """TEI XML -> structured parse (no layout heuristics needed)."""
        if xml_content.lstrip().startswith("<?xml"):
            xml_content = xml_content.split("?>", 1)[1]
        tei = parse_tei_xml(xml_content)
        metadata = PublicationMetadata(
            title=tei.title,
            authors=list(tei.authors),
            affiliations=list(tei.affiliations),
            abstract=tei.abstract,
        )
        from repro.text.tokenize import SentenceSplitter

        splitter = SentenceSplitter()
        sections = [
            SectionSpan(
                name=_canonical(heading),
                heading=heading,
                text=paragraph,
                sentences=tuple(splitter.split_texts(paragraph)),
            )
            for heading, paragraph in tei.sections
        ]
        return ParsedPublication(
            metadata=metadata, sections=sections, tei_xml=to_tei_xml(tei)
        )


def _canonical(heading: str) -> str:
    from repro.grobid.sections import canonical_heading

    return canonical_heading(heading)
