"""The PDF submission service: SimPDF -> TEI XML -> structured parse.

This is the pipeline stage the paper describes in section II: "a PDF
submission service, based on Grobid, which is able to convert the
publications in PDF format into well organized XML format", with
automatic metadata extraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ParseError
from repro.grobid.metadata import PublicationMetadata, extract_metadata
from repro.grobid.sections import SectionSpan, segment_sections
from repro.grobid.simpdf import parse_simpdf
from repro.grobid.tei import TeiDocument, parse_tei_xml, to_tei_xml


@dataclass
class ParsedPublication:
    """The service's output: metadata + organized body."""

    metadata: PublicationMetadata
    sections: list[SectionSpan] = field(default_factory=list)
    tei_xml: str = ""

    def body_text(self) -> str:
        """The narrative text for downstream extraction/indexing."""
        return " ".join(section.text for section in self.sections)


class GrobidService:
    """Converts submitted publications into structured parses.

    Accepts either SimPDF content or TEI XML (the two capture formats
    the paper's crawler encounters: "The contents can be captured in
    XML or online PDFs").
    """

    def process(self, content: str) -> ParsedPublication:
        """Dispatch on content type and parse.

        Raises:
            ParseError: the content is neither SimPDF nor TEI XML.
        """
        stripped = content.lstrip()
        if stripped.startswith("%SimPDF"):
            return self.process_pdf(content)
        if stripped.startswith("<TEI") or stripped.startswith("<?xml"):
            return self.process_xml(content)
        raise ParseError("unrecognized publication format")

    def process_pdf(self, simpdf_content: str) -> ParsedPublication:
        """SimPDF -> (metadata, sections, TEI XML)."""
        pdf = parse_simpdf(simpdf_content)
        metadata = extract_metadata(pdf)
        sections = segment_sections(pdf)
        tei = TeiDocument(
            title=metadata.title,
            authors=list(metadata.authors),
            affiliations=list(metadata.affiliations),
            abstract=metadata.abstract,
            sections=[(s.heading, s.text) for s in sections],
        )
        return ParsedPublication(
            metadata=metadata,
            sections=sections,
            tei_xml=to_tei_xml(tei),
        )

    def process_xml(self, xml_content: str) -> ParsedPublication:
        """TEI XML -> structured parse (no layout heuristics needed)."""
        if xml_content.lstrip().startswith("<?xml"):
            xml_content = xml_content.split("?>", 1)[1]
        tei = parse_tei_xml(xml_content)
        metadata = PublicationMetadata(
            title=tei.title,
            authors=list(tei.authors),
            affiliations=list(tei.affiliations),
            abstract=tei.abstract,
        )
        from repro.text.tokenize import SentenceSplitter

        splitter = SentenceSplitter()
        sections = [
            SectionSpan(
                name=_canonical(heading),
                heading=heading,
                text=paragraph,
                sentences=tuple(splitter.split_texts(paragraph)),
            )
            for heading, paragraph in tei.sections
        ]
        return ParsedPublication(
            metadata=metadata, sections=sections, tei_xml=to_tei_xml(tei)
        )


def _canonical(heading: str) -> str:
    from repro.grobid.sections import canonical_heading

    return canonical_heading(heading)
