"""Section segmentation of parsed publication bodies.

After SimPDF parsing, body blocks alternate between bold headings and
regular paragraphs; :func:`segment_sections` pairs them up and
canonicalizes heading names so the pipeline can address "presentation"
or "outcome" uniformly across journals' heading conventions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.grobid.simpdf import SimPdfDocument
from repro.text.tokenize import SentenceSplitter

# Canonical section name <- alternative headings seen in the wild.
_CANONICAL_HEADINGS = {
    "demographics": ("demographics", "patient information", "patient"),
    "presentation": (
        "presentation", "case presentation", "chief complaint",
        "history of present illness",
    ),
    "workup": ("workup", "investigations", "diagnostic assessment", "findings"),
    "diagnosis": ("diagnosis", "diagnostic conclusion"),
    "treatment": ("treatment", "therapeutic intervention", "management"),
    "outcome": ("outcome", "outcome and follow-up", "follow-up", "discussion"),
}

_HEADING_LOOKUP = {
    alias: canonical
    for canonical, aliases in _CANONICAL_HEADINGS.items()
    for alias in aliases
}


@dataclass(frozen=True, slots=True)
class SectionSpan:
    """One canonical section with its text and sentences."""

    name: str
    heading: str
    text: str
    sentences: tuple[str, ...]


def canonical_heading(heading: str) -> str:
    """Map a free-form heading to a canonical section name."""
    return _HEADING_LOOKUP.get(heading.strip().lower(), "other")


def segment_sections(pdf: SimPdfDocument) -> list[SectionSpan]:
    """Pair bold headings with their following paragraphs.

    Page-1 front matter (title/authors/abstract) is skipped: body
    segmentation starts after the abstract heading when one exists.
    """
    splitter = SentenceSplitter()
    sections: list[SectionSpan] = []
    pending_heading: str | None = None
    seen_abstract = False

    for page in range(1, pdf.n_pages + 1):
        for block in pdf.page_blocks(page):
            text = block.text.strip()
            if not text:
                continue
            if block.style == "bold":
                if text.lower() == "abstract":
                    seen_abstract = True
                    pending_heading = None
                    continue
                if page == 1 and not seen_abstract:
                    continue  # the title block
                pending_heading = text
                continue
            if pending_heading is not None:
                sections.append(
                    SectionSpan(
                        name=canonical_heading(pending_heading),
                        heading=pending_heading,
                        text=text,
                        sentences=tuple(splitter.split_texts(text)),
                    )
                )
                pending_heading = None
    return sections
