"""Metadata mining from SimPDF layout: title, authors, affiliations.

Reproduces the heuristics Grobid applies to real PDFs, restated over
SimPDF blocks:

* **title** — the largest-font block on page 1;
* **authors** — the first regular block after the title whose text is a
  comma-separated list of capitalized name tokens;
* **affiliations** — italic blocks between the authors and the abstract;
* **abstract** — the block following a bold "Abstract" heading.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.grobid.simpdf import SimPdfDocument

_NAME_TOKEN_RE = re.compile(r"^[A-Z][a-zA-Z.'-]*$")


@dataclass
class PublicationMetadata:
    """Mined publication metadata."""

    title: str = ""
    authors: list[str] = field(default_factory=list)
    affiliations: list[str] = field(default_factory=list)
    abstract: str = ""


def _looks_like_author_list(text: str) -> bool:
    """Every comma-separated chunk is 2-4 capitalized name tokens."""
    chunks = [chunk.strip() for chunk in text.split(",") if chunk.strip()]
    if not chunks:
        return False
    for chunk in chunks:
        tokens = chunk.split()
        if not 2 <= len(tokens) <= 4:
            return False
        if not all(_NAME_TOKEN_RE.match(token) for token in tokens):
            return False
    return True


def extract_metadata(pdf: SimPdfDocument) -> PublicationMetadata:
    """Mine title/authors/affiliations/abstract from SimPDF layout."""
    meta = PublicationMetadata()
    page1 = pdf.page_blocks(1)
    if not page1:
        return meta

    title_block = max(page1, key=lambda b: (b.size, -b.y))
    meta.title = title_block.text.replace("\n", " ").strip()
    after_title = [b for b in page1 if b.y > title_block.y]

    abstract_index = None
    for i, block in enumerate(after_title):
        if block.style == "bold" and block.text.strip().lower() == "abstract":
            abstract_index = i
            break

    header_zone = (
        after_title[:abstract_index]
        if abstract_index is not None
        else after_title
    )
    for block in header_zone:
        text = block.text.replace("\n", " ").strip()
        if not meta.authors and _looks_like_author_list(text):
            meta.authors = [
                chunk.strip() for chunk in text.split(",") if chunk.strip()
            ]
        elif block.style == "italic":
            meta.affiliations.append(text)

    if abstract_index is not None and abstract_index + 1 < len(after_title):
        meta.abstract = after_title[abstract_index + 1].text.strip()
    return meta
