"""Publication parsing substrate: the Grobid analog.

CREATe's PDF submission service converts publication PDFs into
"well organized XML" with automatically mined metadata (title, authors,
affiliations).  Real PDFs cannot be synthesized offline, so this
package defines **SimPDF** — a positioned-text page format that
preserves what Grobid actually consumes from a PDF (text blocks with
layout and font-size information) — plus the TEI-like XML target
format, metadata mining heuristics, and section segmentation.
"""

from repro.grobid.simpdf import SimPdfBlock, SimPdfDocument, render_simpdf, parse_simpdf
from repro.grobid.tei import TeiDocument, to_tei_xml, parse_tei_xml
from repro.grobid.metadata import extract_metadata, PublicationMetadata
from repro.grobid.sections import segment_sections, SectionSpan
from repro.grobid.service import GrobidService, ParsedPublication

__all__ = [
    "SimPdfBlock",
    "SimPdfDocument",
    "render_simpdf",
    "parse_simpdf",
    "TeiDocument",
    "to_tei_xml",
    "parse_tei_xml",
    "extract_metadata",
    "PublicationMetadata",
    "segment_sections",
    "SectionSpan",
    "GrobidService",
    "ParsedPublication",
]
