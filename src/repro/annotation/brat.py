"""Parser and serializer for the BRAT ``.ann`` standoff format.

Supported line types (the full set brat emits for this schema):

* ``T<id>\\t<label> <start> <end>\\t<text>`` — text-bound annotation.
  Discontinuous spans (``start end;start end``) are normalized to their
  envelope span, matching how CREATe's indexer consumes them.
* ``R<id>\\t<label> Arg1:<id> Arg2:<id>`` — binary relation.
* ``E<id>\\t<label>:<trigger> <role>:<id> ...`` — event.
* ``A<id>\\t<label> <target> [<value>]`` — attribute.
* ``#<id>\\tAnnotatorNotes <target>\\t<text>`` — note.
"""

from __future__ import annotations

from pathlib import Path

from repro.annotation.model import (
    AnnotationDocument,
    AttributeAnn,
    EventAnn,
    NoteAnn,
    RelationAnn,
    TextBound,
)
from repro.exceptions import AnnotationError


def parse_ann(doc_id: str, text: str, ann_content: str) -> AnnotationDocument:
    """Parse ``.ann`` content against its source ``text``.

    Args:
        doc_id: identifier for the resulting document.
        text: the raw document text the offsets index into.
        ann_content: the full contents of the ``.ann`` file.

    Returns:
        A fully verified :class:`AnnotationDocument`.

    Raises:
        AnnotationError: on malformed lines or dangling references.
    """
    doc = AnnotationDocument(doc_id=doc_id, text=text)
    for lineno, raw_line in enumerate(ann_content.splitlines(), start=1):
        line = raw_line.rstrip("\n")
        if not line.strip():
            continue
        try:
            _parse_line(doc, line)
        except AnnotationError:
            raise
        except (ValueError, IndexError) as exc:
            raise AnnotationError(
                f"{doc_id}:{lineno}: malformed annotation line: {line!r}"
            ) from exc
    doc.verify()
    return doc


def _parse_line(doc: AnnotationDocument, line: str) -> None:
    kind = line[0]
    if kind == "T":
        _parse_textbound(doc, line)
    elif kind == "R":
        _parse_relation(doc, line)
    elif kind == "E":
        _parse_event(doc, line)
    elif kind == "A" or kind == "M":
        _parse_attribute(doc, line)
    elif kind == "#":
        _parse_note(doc, line)
    else:
        raise AnnotationError(f"unknown annotation line type: {line!r}")


def _parse_textbound(doc: AnnotationDocument, line: str) -> None:
    ann_id, header, surface = line.split("\t", 2)
    label, offsets = header.split(" ", 1)
    # Discontinuous spans are ;-separated fragments: take the envelope.
    fragments = []
    for fragment in offsets.split(";"):
        start_str, end_str = fragment.split()
        fragments.append((int(start_str), int(end_str)))
    start = min(frag[0] for frag in fragments)
    end = max(frag[1] for frag in fragments)
    tb = TextBound(ann_id, label, start, end, doc.text[start:end])
    tb.verify_against(doc.text)
    if len(fragments) > 1:
        # The .ann surface is fragment-joined; we keep the envelope text
        # but record the original fragments as a note-free check only.
        pass
    else:
        if surface != tb.text:
            raise AnnotationError(
                f"{ann_id}: surface text {surface!r} disagrees with "
                f"offsets covering {tb.text!r}"
            )
    if ann_id in doc.textbounds:
        raise AnnotationError(f"duplicate annotation id {ann_id}")
    doc.textbounds[ann_id] = tb


def _parse_relation(doc: AnnotationDocument, line: str) -> None:
    ann_id, body = line.split("\t", 1)
    parts = body.split()
    label = parts[0]
    args = dict(part.split(":", 1) for part in parts[1:])
    if "Arg1" not in args or "Arg2" not in args:
        raise AnnotationError(f"{ann_id}: relation missing Arg1/Arg2")
    if ann_id in doc.relations:
        raise AnnotationError(f"duplicate annotation id {ann_id}")
    doc.relations[ann_id] = RelationAnn(ann_id, label, args["Arg1"], args["Arg2"])


def _parse_event(doc: AnnotationDocument, line: str) -> None:
    ann_id, body = line.split("\t", 1)
    parts = body.split()
    label, trigger = parts[0].split(":", 1)
    arguments = tuple(
        tuple(part.split(":", 1)) for part in parts[1:]
    )
    if ann_id in doc.events:
        raise AnnotationError(f"duplicate annotation id {ann_id}")
    doc.events[ann_id] = EventAnn(ann_id, label, trigger, arguments)


def _parse_attribute(doc: AnnotationDocument, line: str) -> None:
    ann_id, body = line.split("\t", 1)
    parts = body.split()
    label, target = parts[0], parts[1]
    value = parts[2] if len(parts) > 2 else None
    if ann_id in doc.attributes:
        raise AnnotationError(f"duplicate annotation id {ann_id}")
    doc.attributes[ann_id] = AttributeAnn(ann_id, label, target, value)


def _parse_note(doc: AnnotationDocument, line: str) -> None:
    ann_id, body, note_text = line.split("\t", 2)
    label, target = body.split()
    doc.notes[ann_id] = NoteAnn(ann_id, label, target, note_text)


def serialize_ann(doc: AnnotationDocument) -> str:
    """Serialize a document's annotations back to ``.ann`` format.

    The output round-trips through :func:`parse_ann`: ids, labels,
    offsets, arguments and notes are preserved exactly.
    """
    lines: list[str] = []
    for tb in sorted(doc.textbounds.values(), key=_numeric_id_key):
        lines.append(f"{tb.ann_id}\t{tb.label} {tb.start} {tb.end}\t{tb.text}")
    for event in sorted(doc.events.values(), key=_numeric_id_key):
        args = " ".join(f"{role}:{ref}" for role, ref in event.arguments)
        suffix = f" {args}" if args else ""
        lines.append(f"{event.ann_id}\t{event.label}:{event.trigger}{suffix}")
    for rel in sorted(doc.relations.values(), key=_numeric_id_key):
        lines.append(
            f"{rel.ann_id}\t{rel.label} Arg1:{rel.source} Arg2:{rel.target}"
        )
    for attr in sorted(doc.attributes.values(), key=_numeric_id_key):
        value = f" {attr.value}" if attr.value is not None else ""
        lines.append(f"{attr.ann_id}\t{attr.label} {attr.target}{value}")
    for note in sorted(doc.notes.values(), key=_numeric_id_key):
        lines.append(f"{note.ann_id}\t{note.label} {note.target}\t{note.text}")
    return "\n".join(lines) + ("\n" if lines else "")


def _numeric_id_key(ann) -> tuple[str, int]:
    ann_id = ann.ann_id
    prefix = ann_id[0]
    try:
        number = int(ann_id[1:])
    except ValueError:
        number = 0
    return (prefix, number)


def read_document(txt_path: str | Path) -> AnnotationDocument:
    """Load a brat document pair: ``<name>.txt`` + ``<name>.ann``.

    Args:
        txt_path: path to the text file; the annotation file is located
            by swapping the extension.

    Raises:
        AnnotationError: the .ann file is missing or malformed.
    """
    txt_path = Path(txt_path)
    ann_path = txt_path.with_suffix(".ann")
    if not ann_path.exists():
        raise AnnotationError(f"no annotation file next to {txt_path}")
    text = txt_path.read_text(encoding="utf-8")
    return parse_ann(txt_path.stem, text, ann_path.read_text(encoding="utf-8"))


def write_document(doc: AnnotationDocument, directory: str | Path) -> Path:
    """Write the ``<doc_id>.txt`` / ``<doc_id>.ann`` pair into ``directory``.

    Both files are written atomically (temp file + fsync + rename), so
    an interrupted export never leaves a half-written or empty file for
    a reader to misparse as an empty annotation set.

    Returns the path of the text file.
    """
    from repro.durability import atomic_write

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    txt_path = atomic_write(directory / f"{doc.doc_id}.txt", doc.text)
    atomic_write(directory / f"{doc.doc_id}.ann", serialize_ann(doc))
    return txt_path
