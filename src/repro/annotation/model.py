"""Object model for BRAT standoff annotations.

Mirrors brat's annotation primitives: ``T`` text-bound annotations,
``R`` binary relations, ``E`` events (trigger + role arguments), ``A``
attributes and ``#`` notes.  Labels are plain strings at this layer;
schema conformance is checked separately by
:class:`repro.schema.SchemaValidator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import AnnotationError, SpanError


@dataclass(frozen=True, slots=True)
class TextBound:
    """A typed span of text (brat ``T`` line).

    Attributes:
        ann_id: brat identifier, e.g. ``"T3"``.
        label: span type, e.g. ``"Sign_symptom"``.
        start: character offset of span start (half-open interval).
        end: character offset one past span end.
        text: the covered surface string.
    """

    ann_id: str
    label: str
    start: int
    end: int
    text: str

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise SpanError(
                f"{self.ann_id}: invalid span [{self.start}, {self.end})"
            )

    def verify_against(self, document_text: str) -> None:
        """Check offsets index ``document_text`` and cover ``text``.

        Raises:
            SpanError: offsets fall outside the document or the covered
                substring differs from the recorded surface text.
        """
        if self.end > len(document_text):
            raise SpanError(
                f"{self.ann_id}: span end {self.end} beyond document "
                f"length {len(document_text)}"
            )
        covered = document_text[self.start : self.end]
        if covered != self.text:
            raise SpanError(
                f"{self.ann_id}: recorded text {self.text!r} does not match "
                f"document slice {covered!r}"
            )


@dataclass(frozen=True, slots=True)
class RelationAnn:
    """A directed binary relation (brat ``R`` line).

    ``source`` and ``target`` reference :class:`TextBound` ids (brat
    calls them Arg1/Arg2).
    """

    ann_id: str
    label: str
    source: str
    target: str


@dataclass(frozen=True, slots=True)
class EventAnn:
    """An n-ary event (brat ``E`` line): a trigger plus role arguments.

    Attributes:
        ann_id: brat identifier, e.g. ``"E1"``.
        label: event type (must match the trigger's label in brat).
        trigger: id of the trigger :class:`TextBound`.
        arguments: mapping role name -> referenced annotation id.
    """

    ann_id: str
    label: str
    trigger: str
    arguments: tuple[tuple[str, str], ...] = ()

    def argument_map(self) -> dict[str, str]:
        """Role -> annotation id as a dict (roles may repeat in brat;
        later bindings win here, matching brat's display behaviour)."""
        return dict(self.arguments)


@dataclass(frozen=True, slots=True)
class AttributeAnn:
    """A binary or valued attribute on another annotation (``A`` line)."""

    ann_id: str
    label: str
    target: str
    value: str | None = None


@dataclass(frozen=True, slots=True)
class NoteAnn:
    """A free-text annotator note (``#`` line)."""

    ann_id: str
    label: str
    target: str
    text: str


@dataclass
class AnnotationDocument:
    """A document plus all of its standoff annotations.

    This is the unit the annotation interface edits, the corpus
    generator emits as gold data, and the extraction pipeline produces
    as predictions.
    """

    doc_id: str
    text: str
    textbounds: dict[str, TextBound] = field(default_factory=dict)
    relations: dict[str, RelationAnn] = field(default_factory=dict)
    events: dict[str, EventAnn] = field(default_factory=dict)
    attributes: dict[str, AttributeAnn] = field(default_factory=dict)
    notes: dict[str, NoteAnn] = field(default_factory=dict)

    # -- construction helpers -------------------------------------------

    def add_textbound(
        self, label: str, start: int, end: int, ann_id: str | None = None
    ) -> TextBound:
        """Create, register and return a text-bound span over the text."""
        if ann_id is None:
            ann_id = self._next_id("T")
        if ann_id in self.textbounds:
            raise AnnotationError(f"duplicate annotation id {ann_id}")
        tb = TextBound(ann_id, label, start, end, self.text[start:end])
        tb.verify_against(self.text)
        self.textbounds[ann_id] = tb
        return tb

    def add_relation(
        self, label: str, source: str, target: str, ann_id: str | None = None
    ) -> RelationAnn:
        """Create and register a relation between two existing spans."""
        for ref in (source, target):
            if ref not in self.textbounds:
                raise AnnotationError(
                    f"relation references unknown annotation {ref}"
                )
        if source == target:
            raise AnnotationError("relation endpoints must differ")
        if ann_id is None:
            ann_id = self._next_id("R")
        if ann_id in self.relations:
            raise AnnotationError(f"duplicate annotation id {ann_id}")
        rel = RelationAnn(ann_id, label, source, target)
        self.relations[ann_id] = rel
        return rel

    def add_event(
        self,
        label: str,
        trigger: str,
        arguments: dict[str, str] | None = None,
        ann_id: str | None = None,
    ) -> EventAnn:
        """Create and register an event anchored on ``trigger``."""
        if trigger not in self.textbounds:
            raise AnnotationError(f"event trigger {trigger} unknown")
        if ann_id is None:
            ann_id = self._next_id("E")
        if ann_id in self.events:
            raise AnnotationError(f"duplicate annotation id {ann_id}")
        args = tuple((arguments or {}).items())
        event = EventAnn(ann_id, label, trigger, args)
        self.events[ann_id] = event
        return event

    def add_attribute(
        self,
        label: str,
        target: str,
        value: str | None = None,
        ann_id: str | None = None,
    ) -> AttributeAnn:
        """Attach an attribute (e.g. ``Negated``) to an annotation."""
        if not self._id_exists(target):
            raise AnnotationError(
                f"attribute references unknown annotation {target}"
            )
        if ann_id is None:
            ann_id = self._next_id("A")
        if ann_id in self.attributes:
            raise AnnotationError(f"duplicate annotation id {ann_id}")
        attribute = AttributeAnn(ann_id, label, target, value)
        self.attributes[ann_id] = attribute
        return attribute

    def attributes_of(self, ann_id: str) -> list[AttributeAnn]:
        """All attributes attached to ``ann_id``."""
        return [
            attribute
            for attribute in self.attributes.values()
            if attribute.target == ann_id
        ]

    def is_negated(self, ann_id: str) -> bool:
        """Does ``ann_id`` carry a ``Negated`` attribute?"""
        return any(
            attribute.label == "Negated"
            for attribute in self.attributes_of(ann_id)
        )

    def add_note(
        self, target: str, text: str, ann_id: str | None = None
    ) -> NoteAnn:
        """Attach an annotator note to an existing annotation."""
        if not self._id_exists(target):
            raise AnnotationError(f"note references unknown annotation {target}")
        if ann_id is None:
            ann_id = self._next_id("#")
        note = NoteAnn(ann_id, "AnnotatorNotes", target, text)
        self.notes[ann_id] = note
        return note

    # -- queries ----------------------------------------------------------

    def spans_sorted(self) -> list[TextBound]:
        """All text-bound spans in document order (start, then end)."""
        return sorted(
            self.textbounds.values(), key=lambda tb: (tb.start, tb.end)
        )

    def relations_of(self, ann_id: str) -> list[RelationAnn]:
        """All relations in which ``ann_id`` participates."""
        return [
            rel
            for rel in self.relations.values()
            if ann_id in (rel.source, rel.target)
        ]

    def spans_with_label(self, label: str) -> list[TextBound]:
        """All spans of a given type, in document order."""
        return [tb for tb in self.spans_sorted() if tb.label == label]

    def verify(self) -> None:
        """Validate internal referential integrity and span consistency.

        Raises:
            AnnotationError / SpanError: dangling references or spans
                that disagree with the document text.
        """
        for tb in self.textbounds.values():
            tb.verify_against(self.text)
        for rel in self.relations.values():
            for ref in (rel.source, rel.target):
                if ref not in self.textbounds:
                    raise AnnotationError(
                        f"{rel.ann_id}: dangling reference {ref}"
                    )
        for event in self.events.values():
            if event.trigger not in self.textbounds:
                raise AnnotationError(
                    f"{event.ann_id}: dangling trigger {event.trigger}"
                )
            for role, ref in event.arguments:
                if not self._id_exists(ref):
                    raise AnnotationError(
                        f"{event.ann_id}: dangling {role} argument {ref}"
                    )
        for note in self.notes.values():
            if not self._id_exists(note.target):
                raise AnnotationError(
                    f"{note.ann_id}: dangling note target {note.target}"
                )

    # -- internals --------------------------------------------------------

    def _id_exists(self, ann_id: str) -> bool:
        return (
            ann_id in self.textbounds
            or ann_id in self.relations
            or ann_id in self.events
            or ann_id in self.attributes
        )

    def _next_id(self, prefix: str) -> str:
        pools = {
            "T": self.textbounds,
            "R": self.relations,
            "E": self.events,
            "A": self.attributes,
            "#": self.notes,
        }
        pool = pools[prefix]
        n = len(pool) + 1
        while f"{prefix}{n}" in pool:
            n += 1
        return f"{prefix}{n}"
