"""Span algebra shared by annotation, NER evaluation and indexing."""

from __future__ import annotations

from typing import Sequence

from repro.text.tokenize import Token


def spans_overlap(a: tuple[int, int], b: tuple[int, int]) -> bool:
    """True when half-open spans ``a`` and ``b`` intersect."""
    return a[0] < b[1] and b[0] < a[1]


def span_contains(outer: tuple[int, int], inner: tuple[int, int]) -> bool:
    """True when ``outer`` fully covers ``inner``."""
    return outer[0] <= inner[0] and inner[1] <= outer[1]


def merge_overlapping(
    spans: Sequence[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Merge any overlapping or touching spans into their envelopes.

    The result is sorted and pairwise disjoint.
    """
    if not spans:
        return []
    ordered = sorted(spans)
    merged = [ordered[0]]
    for start, end in ordered[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def align_to_tokens(
    span: tuple[int, int], tokens: Sequence[Token]
) -> tuple[int, int] | None:
    """Map a character span to a token-index span ``[first, last]``.

    A token belongs to the span when they overlap at all (BRAT
    annotators frequently clip leading articles mid-token).

    Returns:
        Inclusive token index bounds, or None when no token overlaps.
    """
    first = None
    last = None
    for idx, token in enumerate(tokens):
        if token.overlaps(*span):
            if first is None:
                first = idx
            last = idx
        elif first is not None and token.start >= span[1]:
            break
    if first is None or last is None:
        return None
    return (first, last)
