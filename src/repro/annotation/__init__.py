"""BRAT standoff annotation substrate.

Implements the data layer of the brat rapid annotation tool (paper
reference [6]): text-bound annotations, relations, events and notes,
plus parsing and serialization of the ``.ann`` standoff format and
span algebra helpers.
"""

from repro.annotation.model import (
    TextBound,
    RelationAnn,
    EventAnn,
    AttributeAnn,
    NoteAnn,
    AnnotationDocument,
)
from repro.annotation.brat import parse_ann, serialize_ann, read_document
from repro.annotation.agreement import AgreementReport, agreement, cohens_kappa
from repro.annotation.spans import (
    spans_overlap,
    span_contains,
    merge_overlapping,
    align_to_tokens,
)

__all__ = [
    "TextBound",
    "RelationAnn",
    "EventAnn",
    "AttributeAnn",
    "NoteAnn",
    "AnnotationDocument",
    "AgreementReport",
    "agreement",
    "cohens_kappa",
    "parse_ann",
    "serialize_ann",
    "read_document",
    "spans_overlap",
    "span_contains",
    "merge_overlapping",
    "align_to_tokens",
]
