"""Inter-annotator agreement for BRAT annotation campaigns.

The paper "invite[s] several medical experts to annotate hundreds of
case reports"; any such campaign needs agreement measurement before
the data is trusted.  This module implements the standard suite:
pairwise span F1 (the conventional IAA statistic for NER-style tasks,
since span kappa is ill-defined), token-level Cohen's kappa over BIO
projections, and relation agreement.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.annotation.model import AnnotationDocument
from repro.ml.metrics import PRF1, span_prf1
from repro.ner.encoding import bio_encode, spans_of_document
from repro.text.tokenize import tokenize


@dataclass(frozen=True, slots=True)
class AgreementReport:
    """Agreement between two annotators over one document set."""

    span_f1: PRF1
    token_kappa: float
    relation_f1: PRF1
    n_documents: int


def cohens_kappa(labels_a: list[str], labels_b: list[str]) -> float:
    """Cohen's kappa between two aligned label sequences.

    Returns 1.0 for perfect agreement on a non-empty sequence; 0.0 when
    agreement equals chance; can be negative below chance.
    """
    if len(labels_a) != len(labels_b):
        raise ValueError("label sequences must align")
    n = len(labels_a)
    if n == 0:
        return 1.0
    observed = sum(1 for a, b in zip(labels_a, labels_b) if a == b) / n
    counts_a = Counter(labels_a)
    counts_b = Counter(labels_b)
    expected = sum(
        (counts_a[label] / n) * (counts_b[label] / n)
        for label in set(counts_a) | set(counts_b)
    )
    if expected >= 1.0:
        return 1.0
    return (observed - expected) / (1.0 - expected)


def _relation_triples(doc: AnnotationDocument) -> set[tuple]:
    """Relations as comparable triples keyed by span positions (ids are
    annotator-specific, offsets are not)."""
    triples = set()
    for rel in doc.relations.values():
        src = doc.textbounds.get(rel.source)
        tgt = doc.textbounds.get(rel.target)
        if src is None or tgt is None:
            continue
        triples.add(
            (rel.label, src.start, src.end, tgt.start, tgt.end)
        )
    return triples


def agreement(
    annotator_a: list[AnnotationDocument],
    annotator_b: list[AnnotationDocument],
) -> AgreementReport:
    """Pairwise agreement between two annotators' document sets.

    Documents are aligned by position and must share underlying text.

    Raises:
        ValueError: mismatched document counts or diverging texts.
    """
    if len(annotator_a) != len(annotator_b):
        raise ValueError("annotators covered different document counts")

    all_labels_a: list[str] = []
    all_labels_b: list[str] = []
    relation_tp = 0
    relation_a_total = 0
    relation_b_total = 0

    for doc_a, doc_b in zip(annotator_a, annotator_b):
        if doc_a.text != doc_b.text:
            raise ValueError(
                f"text mismatch between annotators on {doc_a.doc_id}"
            )
        tokens = tokenize(doc_a.text)
        all_labels_a.extend(bio_encode(tokens, spans_of_document(doc_a)))
        all_labels_b.extend(bio_encode(tokens, spans_of_document(doc_b)))
        triples_a = _relation_triples(doc_a)
        triples_b = _relation_triples(doc_b)
        relation_tp += len(triples_a & triples_b)
        relation_a_total += len(triples_a)
        relation_b_total += len(triples_b)

    span_agreement = span_prf1(
        [spans_of_document(doc) for doc in annotator_a],
        [spans_of_document(doc) for doc in annotator_b],
    )
    return AgreementReport(
        span_f1=span_agreement,
        token_kappa=cohens_kappa(all_labels_a, all_labels_b),
        relation_f1=PRF1.from_counts(
            relation_tp, relation_b_total, relation_a_total
        ),
        n_documents=len(annotator_a),
    )
