"""Evaluation datasets: three NER corpora and two temporal-RE corpora.

Substitutes for the paper's evaluation data:

* NER (paper: "three public datasets", +1.5 F1 claim):
  ``cardio-cases`` (CVD reports, full schema), ``maccrobat-like``
  (mixed categories, full schema, noisier narratives) and ``i2b2-like``
  (mixed categories projected onto the I2B2-2010 coarse label set
  PROBLEM / TREATMENT / TEST).
* Temporal RE (paper: I2B2-2012 +1.98 F1, TB-Dense +2.01 F1):
  ``i2b2-2012-like`` (3-way BEFORE/AFTER/OVERLAP over event pairs up to
  distance 3 — the dense pair set makes transitivity informative) and
  ``tbdense-like`` (6-way BEFORE/AFTER/INCLUDES/IS_INCLUDED/
  SIMULTANEOUS/VAGUE).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.annotation.model import AnnotationDocument
from repro.corpus.generator import CaseReportGenerator, GeneratorConfig
from repro.corpus.lexicon import LEXICON
from repro.corpus.pubmed import sample_categories
from repro.corpus.timeline import Timeline, dense_relation, interval_relation
from repro.schema.types import EventType
from repro.text.tokenize import tokenize

NER_DATASET_NAMES = ("cardio-cases", "maccrobat-like", "i2b2-like")

# I2B2-2010-style projection of schema labels onto coarse concepts.
_I2B2_PROJECTION = {
    EventType.DISEASE_DISORDER.value: "PROBLEM",
    EventType.SIGN_SYMPTOM.value: "PROBLEM",
    EventType.MEDICATION.value: "TREATMENT",
    EventType.THERAPEUTIC_PROCEDURE.value: "TREATMENT",
    EventType.DIAGNOSTIC_PROCEDURE.value: "TEST",
    EventType.LAB_VALUE.value: "TEST",
}


@dataclass
class NerDataset:
    """A named NER corpus split into train/test annotation documents.

    ``unlabeled`` holds tokenized sentences from a larger corpus drawn
    from the *full* lexicon — the pretraining material for contextual
    embeddings (the analog of C-FLAIR's unlabeled clinical pretraining
    corpus).  Train documents come from a restricted lexicon slice and
    test documents from the full lexicon, so test text contains entity
    surfaces unseen in training (lexical holdout).
    """

    name: str
    train: list[AnnotationDocument]
    test: list[AnnotationDocument]
    label_set: tuple[str, ...]
    unlabeled: list[list[str]] = field(default_factory=list)


def _project_labels(
    doc: AnnotationDocument, projection: dict[str, str]
) -> AnnotationDocument:
    """Rewrite span labels through ``projection``; unmapped spans drop."""
    out = AnnotationDocument(doc_id=doc.doc_id, text=doc.text)
    for tb in doc.spans_sorted():
        mapped = projection.get(tb.label)
        if mapped is not None:
            out.add_textbound(mapped, tb.start, tb.end)
    return out


def make_ner_dataset(
    name: str,
    n_train: int = 120,
    n_test: int = 40,
    seed: int = 0,
    n_unlabeled: int = 250,
    holdout_fraction: float = 0.65,
) -> NerDataset:
    """Build one of the three NER evaluation corpora.

    Training documents draw entity terms from a lexicon restricted to
    its first ``holdout_fraction``; test documents draw from the full
    lexicon, so a substantial share of test entity surfaces never occur
    in training.  ``n_unlabeled`` extra documents (full lexicon, no
    labels kept) provide the contextual-embedding pretraining corpus.

    Raises:
        ValueError: unknown dataset name.
    """
    if name == "cardio-cases":
        base_seed, config, projection = seed, None, None
        mixed_categories = False
    elif name == "maccrobat-like":
        base_seed = seed + 100
        config = GeneratorConfig(
            extra_symptom_prob=0.75,
            distractor_prob=0.6,
            complication_prob=0.75,
            second_workup_prob=0.65,
        )
        projection = None
        mixed_categories = True
    elif name == "i2b2-like":
        base_seed, config, projection = seed + 200, None, _I2B2_PROJECTION
        mixed_categories = True
    else:
        raise ValueError(
            f"unknown NER dataset {name!r}; choose from {NER_DATASET_NAMES}"
        )

    train_lexicon = LEXICON.restricted(holdout_fraction)
    train_gen = CaseReportGenerator(
        seed=base_seed, lexicon=train_lexicon, config=config
    )
    test_gen = CaseReportGenerator(
        seed=base_seed + 1, lexicon=LEXICON, config=config
    )
    unlabeled_gen = CaseReportGenerator(
        seed=base_seed + 2, lexicon=LEXICON, config=config
    )

    total = n_train + n_test
    if mixed_categories:
        categories = sample_categories(total + n_unlabeled, seed=base_seed + 3)
    else:
        categories = ["cardiovascular"] * (total + n_unlabeled)

    def build(gen, idx, count, offset):
        docs = []
        for k in range(count):
            i = offset + k
            raw = gen.generate(f"{name}-{idx}-{i:04d}", categories[i])
            doc = raw.annotations
            if projection is not None:
                doc = _project_labels(doc, projection)
            docs.append(doc)
        return docs

    train = build(train_gen, "tr", n_train, 0)
    test = build(test_gen, "te", n_test, n_train)
    unlabeled_docs = build(unlabeled_gen, "ul", n_unlabeled, total)
    unlabeled = [
        [token.text for token in tokenize(doc.text)]
        for doc in unlabeled_docs
    ]

    if projection is not None:
        labels: tuple[str, ...] = ("PROBLEM", "TREATMENT", "TEST")
    else:
        labels = _span_labels(train + test)
    return NerDataset(name, train, test, labels, unlabeled)


def _span_labels(docs: list[AnnotationDocument]) -> tuple[str, ...]:
    labels = {tb.label for doc in docs for tb in doc.textbounds.values()}
    return tuple(sorted(labels))


# -- temporal relation datasets ---------------------------------------------


@dataclass(frozen=True, slots=True)
class TemporalInstance:
    """One labeled event pair.

    Attributes:
        doc_id: owning document.
        src_id / tgt_id: BRAT T-ids of the two events.
        label: gold relation.
        narrative_distance: |position difference| in narrative order.
    """

    doc_id: str
    src_id: str
    tgt_id: str
    label: str
    narrative_distance: int


@dataclass
class TemporalDocument:
    """One document's events (narrative order) and labeled pairs."""

    doc_id: str
    annotations: AnnotationDocument
    event_order: list[str] = field(default_factory=list)
    pairs: list[TemporalInstance] = field(default_factory=list)


@dataclass
class TemporalDataset:
    """A named temporal-RE corpus."""

    name: str
    train: list[TemporalDocument]
    test: list[TemporalDocument]
    label_set: tuple[str, ...]

    def all_instances(self, split: str = "train") -> list[TemporalInstance]:
        """Flatten one split's labeled pairs."""
        docs = self.train if split == "train" else self.test
        return [pair for doc in docs for pair in doc.pairs]


def _pairs_from_timeline(
    doc_id: str,
    timeline: Timeline,
    max_distance: int,
    labeler,
) -> tuple[list[str], list[TemporalInstance]]:
    order = [event.event_id for event in timeline.events]
    pairs = []
    for i, a in enumerate(timeline.events):
        for j in range(i + 1, min(i + 1 + max_distance, len(timeline.events))):
            b = timeline.events[j]
            pairs.append(
                TemporalInstance(
                    doc_id, a.event_id, b.event_id, labeler(a, b), j - i
                )
            )
    return order, pairs


def make_temporal_dataset(
    name: str,
    n_train: int = 100,
    n_test: int = 35,
    seed: int = 0,
    config: GeneratorConfig | None = None,
) -> TemporalDataset:
    """Build ``i2b2-2012-like`` or ``tbdense-like``.

    The default generator configuration maximizes relation-variant
    density (frequent optional events, moderate cue noise) so local
    classification has real errors for global inference to repair —
    the regime both source corpora put extraction systems in.

    Raises:
        ValueError: unknown dataset name.
    """
    if name == "i2b2-2012-like":
        labeler = interval_relation
        max_distance = 3
        gen_seed = seed + 300
    elif name == "tbdense-like":
        labeler = dense_relation
        max_distance = 3
        gen_seed = seed + 400
    else:
        raise ValueError(f"unknown temporal dataset {name!r}")

    if config is None:
        config = GeneratorConfig(
            extra_symptom_prob=0.85,
            second_workup_prob=0.75,
            therapeutic_procedure_prob=0.9,
            complication_prob=0.9,
            second_course_event_prob=0.6,
            cue_noise=0.3,
        )
    generator = CaseReportGenerator(seed=gen_seed, config=config)
    docs: list[TemporalDocument] = []
    for i in range(n_train + n_test):
        report = generator.generate(f"{name}-{i:04d}", "cardiovascular")
        order, pairs = _pairs_from_timeline(
            report.report_id, report.timeline, max_distance, labeler
        )
        docs.append(
            TemporalDocument(
                report.report_id, report.annotations, order, pairs
            )
        )
    labels = tuple(
        sorted({pair.label for doc in docs for pair in doc.pairs})
    )
    return TemporalDataset(name, docs[:n_train], docs[n_train:], labels)
