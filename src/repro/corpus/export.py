"""Corpus export: BRAT directories and CoNLL sequence files.

Gold (or predicted) annotation documents export to the two formats
downstream NLP tooling consumes: brat ``.txt``/``.ann`` pairs for
annotation tools, and CoNLL-style token-per-line files for sequence
model training outside this library.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.annotation.brat import write_document
from repro.annotation.model import AnnotationDocument
from repro.ner.encoding import bio_encode, spans_of_document
from repro.text.tokenize import split_sentences, tokenize


def export_brat_directory(
    docs: Sequence[AnnotationDocument], directory: str | Path
) -> int:
    """Write every document as a brat ``.txt``/``.ann`` pair.

    Returns the number of documents written.
    """
    directory = Path(directory)
    for doc in docs:
        write_document(doc, directory)
    return len(docs)


def to_conll(doc: AnnotationDocument) -> str:
    """One document in CoNLL format: ``token<TAB>BIO-tag`` lines,
    blank line between sentences."""
    gold = spans_of_document(doc)
    blocks = []
    for start, end in split_sentences(doc.text):
        sentence = doc.text[start:end]
        tokens = [
            token.__class__(token.text, token.start + start, token.end + start)
            for token in tokenize(sentence)
        ]
        labels = bio_encode(tokens, gold)
        blocks.append(
            "\n".join(
                f"{token.text}\t{label}"
                for token, label in zip(tokens, labels)
            )
        )
    return "\n\n".join(blocks) + "\n"


def export_conll(
    docs: Sequence[AnnotationDocument], path: str | Path
) -> int:
    """Write documents to one CoNLL file separated by ``-DOCSTART-``.

    The file is written atomically (temp file + fsync + rename): a
    crashed export leaves either the previous complete file or the new
    one, never a truncated training set.

    Returns the number of documents written.
    """
    from repro.durability import atomic_write

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    parts = []
    for doc in docs:
        parts.append(f"-DOCSTART- ({doc.doc_id})\n\n{to_conll(doc)}")
    atomic_write(path, "\n".join(parts))
    return len(docs)


def parse_conll(content: str) -> list[list[tuple[str, str]]]:
    """Parse CoNLL content back into per-sentence (token, tag) lists.

    ``-DOCSTART-`` markers are skipped; useful for round-trip checks.
    """
    sentences: list[list[tuple[str, str]]] = []
    current: list[tuple[str, str]] = []
    for line in content.splitlines():
        line = line.rstrip()
        if not line or line.startswith("-DOCSTART-"):
            if current:
                sentences.append(current)
                current = []
            continue
        token, _, tag = line.partition("\t")
        current.append((token, tag))
    if current:
        sentences.append(current)
    return sentences
