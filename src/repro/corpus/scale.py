"""Deterministic corpus generation at serving scale (100k+ docs).

The gold-annotated :class:`~repro.corpus.generator.CaseReportGenerator`
builds one report at a time with full span/timeline bookkeeping —
perfect for extraction tests, far too slow for serving benchmarks that
need the paper's ~118k-document scale.  This module trades annotations
for speed: titles and bodies are drawn from the same clinical lexicon
with vectorized numpy sampling, so a 100k-document corpus builds in
seconds and is bit-reproducible from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.lexicon import LEXICON
from repro.corpus.pubmed import sample_categories


@dataclass(frozen=True, slots=True)
class ScaleDoc:
    """One synthetic document (no gold annotations)."""

    doc_id: str
    title: str
    body: str
    category: str

    def fields(self) -> dict[str, str]:
        """The indexable field dict."""
        return {"title": self.title, "body": self.body}


def _word_pool() -> list[str]:
    """Single words and short phrases from the clinical lexicon, plus
    connective stopwords so analyzers exercise their stop/position
    logic at scale."""
    phrases: list[str] = []
    phrases.extend(LEXICON.sign_symptoms)
    phrases.extend(LEXICON.all_diseases())
    phrases.extend(LEXICON.medications)
    phrases.extend(LEXICON.diagnostic_procedures)
    phrases.extend(LEXICON.therapeutic_procedures)
    phrases.extend(LEXICON.lab_values)
    words: dict[str, None] = {}
    for phrase in phrases:
        words.setdefault(phrase.lower(), None)
        for word in phrase.lower().split():
            words.setdefault(word, None)
    for stopword in ("the", "and", "of", "with", "was", "on", "a", "in"):
        words.setdefault(stopword, None)
    return list(words)


def build_scale_corpus(
    n: int,
    seed: int = 0,
    prefix: str = "scale",
    body_words: tuple[int, int] = (30, 90),
    title_words: tuple[int, int] = (3, 8),
) -> list[ScaleDoc]:
    """Generate ``n`` documents deterministically from ``seed``.

    Args:
        n: document count.
        seed: RNG seed; identical inputs give identical corpora.
        prefix: doc-id prefix (``{prefix}-{i:06d}``).
        body_words / title_words: inclusive word-count ranges.

    Example:
        >>> docs = build_scale_corpus(3, seed=7)
        >>> [d.doc_id for d in docs]
        ['scale-000000', 'scale-000001', 'scale-000002']
        >>> docs == build_scale_corpus(3, seed=7)
        True
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    pool = np.asarray(_word_pool(), dtype=object)
    rng = np.random.default_rng(seed)
    body_lens = rng.integers(body_words[0], body_words[1] + 1, size=n)
    title_lens = rng.integers(title_words[0], title_words[1] + 1, size=n)
    body_flat = pool[rng.integers(0, len(pool), size=int(body_lens.sum()))]
    title_flat = pool[rng.integers(0, len(pool), size=int(title_lens.sum()))]
    categories = sample_categories(n, seed=seed + 1)
    docs: list[ScaleDoc] = []
    body_at = 0
    title_at = 0
    for i in range(n):
        b = int(body_lens[i])
        t = int(title_lens[i])
        docs.append(
            ScaleDoc(
                f"{prefix}-{i:06d}",
                " ".join(title_flat[title_at : title_at + t]),
                " ".join(body_flat[body_at : body_at + b]),
                categories[i],
            )
        )
        body_at += b
        title_at += t
    return docs


def scale_queries(
    n: int, seed: int = 0, words_per_query: tuple[int, int] = (1, 3)
) -> list[dict]:
    """A deterministic ``match``-query workload over the same lexicon."""
    if n < 0:
        raise ValueError("n must be non-negative")
    pool = np.asarray(_word_pool(), dtype=object)
    rng = np.random.default_rng(seed)
    lens = rng.integers(
        words_per_query[0], words_per_query[1] + 1, size=n
    )
    flat = pool[rng.integers(0, len(pool), size=int(lens.sum()))]
    queries: list[dict] = []
    at = 0
    for i in range(n):
        k = int(lens[i])
        queries.append({"match": {"body": " ".join(flat[at : at + k])}})
        at += k
    return queries
