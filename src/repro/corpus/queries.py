"""IR query workload with gold relevance judgements.

Queries are phrased like the paper's running example ("A patient was
admitted to the hospital because of fever and cough") and come in three
families: co-occurring symptoms (OVERLAP), ordered event pairs
(BEFORE/AFTER), and disease+treatment pairs.  Relevance is *derived
from gold annotations*, never from any system output:

* grade 2 — the document mentions every query concept AND its gold
  timeline realizes the queried temporal relation;
* grade 1 — the document mentions every query concept (any ordering);
* grade 0 — otherwise.

This grading is exactly the axis on which CREATe-IR should beat the
keyword baseline: both engines can find grade-1 documents, only
relation-aware search can prefer grade-2 ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corpus.generator import CaseReport
from repro.schema.types import EventType


@dataclass(frozen=True, slots=True)
class QueryConcept:
    """One concept mentioned by a query."""

    surface: str
    entity_type: str


@dataclass
class QueryCase:
    """A natural-language query with structure and judgements.

    Attributes:
        query_id: workload-unique id.
        text: the natural-language query string.
        concepts: the concepts a perfect parser would extract.
        relation: optional ``(src_idx, tgt_idx, label)`` over concepts.
        judgements: doc_id -> grade (2 relational match, 1 bag match).
    """

    query_id: str
    text: str
    concepts: list[QueryConcept]
    relation: tuple[int, int, str] | None
    judgements: dict[str, int] = field(default_factory=dict)

    def relevant_ids(self, min_grade: int = 1) -> frozenset[str]:
        """Doc ids judged at or above ``min_grade``."""
        return frozenset(
            doc_id
            for doc_id, grade in self.judgements.items()
            if grade >= min_grade
        )


def _doc_mentions(report: CaseReport, surface: str) -> list[str]:
    """T-ids of gold spans whose text matches ``surface`` (case-fold)."""
    needle = surface.lower()
    return [
        tb.ann_id
        for tb in report.annotations.textbounds.values()
        if tb.text.lower() == needle
    ]


def _relation_holds(
    report: CaseReport, src_surface: str, tgt_surface: str, label: str
) -> bool:
    """Does the gold timeline realize ``label`` between the surfaces?"""
    src_ids = set(_doc_mentions(report, src_surface))
    tgt_ids = set(_doc_mentions(report, tgt_surface))
    if not src_ids or not tgt_ids:
        return False
    for a_id, b_id, rel in report.timeline.all_pairs():
        if a_id in src_ids and b_id in tgt_ids and rel == label:
            return True
        # all_pairs orders by narrative position; check the flip too.
        if a_id in tgt_ids and b_id in src_ids:
            flipped = {"BEFORE": "AFTER", "AFTER": "BEFORE"}.get(rel, rel)
            if flipped == label:
                return True
    return False


def _judge(
    reports: list[CaseReport],
    concepts: list[QueryConcept],
    relation: tuple[int, int, str] | None,
) -> dict[str, int]:
    judgements: dict[str, int] = {}
    for report in reports:
        if not all(
            _doc_mentions(report, concept.surface) for concept in concepts
        ):
            continue
        grade = 1
        if relation is not None:
            src_idx, tgt_idx, label = relation
            if _relation_holds(
                report,
                concepts[src_idx].surface,
                concepts[tgt_idx].surface,
                label,
            ):
                grade = 2
        judgements[report.report_id] = grade
    return judgements


def make_query_workload(
    reports: list[CaseReport], n_queries: int = 30, seed: int = 0
) -> list[QueryCase]:
    """Build a judged query workload over a generated corpus.

    Each query is seeded from a random report's gold graph so that at
    least one grade-2 document exists; judgements are then computed
    over the *whole* corpus.
    """
    rng = np.random.default_rng(seed)
    queries: list[QueryCase] = []
    attempts = 0
    while len(queries) < n_queries and attempts < n_queries * 20:
        attempts += 1
        report = reports[int(rng.integers(0, len(reports)))]
        family = int(rng.integers(0, 3))
        query = _make_query(report, family, f"q{len(queries):03d}", rng)
        if query is None:
            continue
        query.judgements = _judge(reports, query.concepts, query.relation)
        if not query.judgements:
            continue
        queries.append(query)
    return queries


def _make_query(
    report: CaseReport, family: int, query_id: str, rng
) -> QueryCase | None:
    spans = report.annotations.spans_sorted()
    symptoms = [
        tb for tb in spans if tb.label == EventType.SIGN_SYMPTOM.value
    ]
    diseases = [
        tb for tb in spans if tb.label == EventType.DISEASE_DISORDER.value
    ]
    medications = [
        tb for tb in spans if tb.label == EventType.MEDICATION.value
    ]

    if family == 0:
        # Overlapping symptoms at presentation.
        overlapping = _overlapping_symptom_pair(report, symptoms)
        if overlapping is None:
            return None
        first, second = overlapping
        text = (
            f"A patient was admitted to the hospital because of "
            f"{first.text} and {second.text}."
        )
        concepts = [
            QueryConcept(first.text, first.label),
            QueryConcept(second.text, second.label),
        ]
        return QueryCase(query_id, text, concepts, (0, 1, "OVERLAP"))

    if family == 1:
        # Symptom that preceded the outcome/complication.
        pairs = [
            (a, b, rel)
            for a, b, rel in report.timeline.all_pairs()
            if rel == "BEFORE"
        ]
        if not pairs:
            return None
        a_id, b_id, _rel = pairs[int(rng.integers(0, len(pairs)))]
        a = report.annotations.textbounds[a_id]
        b = report.annotations.textbounds[b_id]
        verbs = {
            "Medication": "received",
            "Diagnostic_procedure": "underwent",
            "Therapeutic_procedure": "underwent",
            "Disease_disorder": "was diagnosed with",
        }
        verb = verbs.get(b.label, "developed")
        text = f"A patient {verb} {b.text} after {a.text}."
        concepts = [
            QueryConcept(a.text, a.label),
            QueryConcept(b.text, b.label),
        ]
        return QueryCase(query_id, text, concepts, (0, 1, "BEFORE"))

    # family == 2: disease treated with medication.
    if not diseases or not medications:
        return None
    disease = diseases[0]
    medication = medications[0]
    text = f"A patient with {disease.text} treated with {medication.text}."
    concepts = [
        QueryConcept(disease.text, disease.label),
        QueryConcept(medication.text, medication.label),
    ]
    return QueryCase(query_id, text, concepts, (0, 1, "BEFORE"))


def _overlapping_symptom_pair(report: CaseReport, symptoms):
    by_id = {tb.ann_id: tb for tb in symptoms}
    for a_id, b_id, rel in report.timeline.all_pairs():
        if rel == "OVERLAP" and a_id in by_id and b_id in by_id:
            return by_id[a_id], by_id[b_id]
    return None
